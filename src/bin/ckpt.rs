//! `ckpt` — de-duplicated checkpoint records on the command line.
//!
//! ```text
//! ckpt create  --out <dir> [--method tree|list|basic|full] [--chunk N]
//!              [--compress off|adaptive|zstd|lz4|...]
//!              [--payload-compress zstd|lz4|...] [--stats] <snapshot files...>
//! ckpt info    <dir>
//! ckpt stats   <dir>
//! ckpt restore <dir> --version K --out <file> [--parallel] [--stats]
//! ckpt verify  <dir> <original snapshot files...>
//! ```
//!
//! A record directory holds one `NNNN.ckpt` file per version: the encoded
//! diff wire format of `ckpt_dedup::Diff`, wrapped in an integrity frame
//! (`ckpt_dedup::frame`) whose checksum is verified on every read. Legacy
//! unframed records are still readable (detected by the magic sniff). All
//! snapshots must have equal length (the engine checkpoints a fixed-size
//! buffer, like the paper's GDV array).
//!
//! `--compress` applies the runtime's frame-level compression stage to each
//! record file: the encoded diff goes through the
//! [`CompressionPolicy`](ckpt_runtime::CompressionPolicy) (`adaptive`
//! samples each object and picks a codec; a codec name fixes one; `off` is
//! the default) and is stored in a compressed frame whose checksum covers
//! the compressed bytes. `info`/`stats`/`verify` read the codec flag and
//! decompress transparently. `--payload-compress` is the older, orthogonal
//! dedup-layer knob: it compresses first-occurrence chunk payloads *inside*
//! the diff (`Diff::payload_codec`) before it is ever framed.
//!
//! A *compacted* record (chain-compaction GC deleted the files below a
//! rebase point) starts at `NNNN.ckpt` for some `NNNN > 0`; every command
//! detects the base automatically and requires the head record to be
//! self-contained. `--version` always takes absolute checkpoint ids.
//!
//! `ckpt restore --parallel` uses the single-pass restart engine: one
//! newest-to-oldest walk resolves every chunk's provenance, then each
//! resolved region is copied exactly once — bit-identical to sequential
//! replay at any thread count.
//!
//! `ckpt verify <dir>` with no originals runs in *integrity mode*: every
//! frame is checksum-verified and the whole restore chain replayed, without
//! needing the original snapshots.
//!
//! `--stats` (on `create` and `restore`) and the `stats` subcommand emit a
//! one-line JSON telemetry report on stdout, prefixed with `stats: `. The
//! schema is stable: `{"command", "method", ..., "breakdowns": [...],
//! "metrics": {"counters", "gauges", "histograms", "spans"}}` (see
//! `DESIGN.md` § Observability).

use gpu_dedup_ckpt::compress::codec_by_id;
use gpu_dedup_ckpt::dedup::prelude::*;
use gpu_dedup_ckpt::dedup::{
    decode_frame_expecting, decode_payload, encode_frame, encode_frame_compressed, looks_framed,
    looks_rankdedup, Diff, RankDedupRecord,
};
use gpu_dedup_ckpt::gpu_sim::Device;
use gpu_dedup_ckpt::runtime::{
    resolve_record, CompressMetrics, CompressionEngine, CompressionPolicy, RankDedupConfig,
    RankDedupEngine, RankDedupMetrics, RedundancyMetrics, RedundancyPolicy, RedundancyStore,
    StoredObject,
};
use gpu_dedup_ckpt::telemetry::{JsonWriter, Registry, StageBreakdown};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

type ObjectId = (u32, u32);

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  ckpt create  --out <dir> [--method tree|list|basic|full] [--chunk N] \
         [--compress off|adaptive|<codec>] [--payload-compress <codec>] \
         [--redundancy off|partner|xor:<k>] [--ranks R] [--rank-dedup] \
         [--verify-collisions] [--stats] <snapshots...>\n  \
         ckpt info    <dir>\n  ckpt stats   <dir>\n  \
         ckpt restore <dir> --version K --out <file> [--parallel] [--stats]\n  \
         ckpt verify  <dir> [--json] [<snapshots...>]   (no snapshots: integrity-only mode)\n\n\
         --redundancy splits the snapshots across R ranks (default: the group \
         size), writes rank####/ record subdirs plus a group/ directory of \
         partner copies or XOR parity stripes, and makes verify/stats \
         group-aware: a rank whose directory is absent is reported per object \
         as reconstructable-from-group or LOST, never silently skipped. \
         --rank-dedup shares one content-addressed index across the ranks, \
         storing a chunk first seen by any rank exactly once cluster-wide; \
         verify resolves the cross-rank references and types a dangling one \
         as LOST, never a wrong payload. verify exits 0 clean, 3 when every \
         fault is group-repairable, 4 when anything is LOST."
    );
    ExitCode::from(2)
}

/// The display name of a frame codec id (`raw` for 0).
fn codec_name(codec: u8) -> String {
    if codec == 0 {
        "raw".into()
    } else {
        codec_by_id(codec)
            .map(|c| c.name().to_string())
            .unwrap_or_else(|| format!("codec{codec}"))
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--stats` is a global flag: strip it wherever it appears.
    let stats = args.iter().any(|a| a == "--stats");
    args.retain(|a| a != "--stats");
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "create" => cmd_create(rest, stats),
        "info" => cmd_info(rest),
        "stats" => cmd_stats(rest),
        "restore" => cmd_restore(rest, stats),
        "verify" => cmd_verify(rest),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ckpt: {e}");
            match e.downcast_ref::<CliExit>() {
                Some(x) => ExitCode::from(x.code),
                None => ExitCode::FAILURE,
            }
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Missing or malformed command-line operands.
const EXIT_USAGE: u8 = 2;
/// Verification found damage the redundancy group can still repair.
const EXIT_REPAIRABLE: u8 = 3;
/// Verification found at least one unrecoverable (LOST) object.
const EXIT_LOST: u8 = 4;

/// An error that carries a stable process exit code. Generic errors keep
/// exiting 1; usage errors exit 2; the verify matrix distinguishes
/// corrupt-but-repairable (3) from lost (4).
#[derive(Debug)]
struct CliExit {
    code: u8,
    msg: String,
}

impl std::fmt::Display for CliExit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for CliExit {}

fn exit_with(code: u8, msg: impl Into<String>) -> Box<dyn std::error::Error> {
    Box::new(CliExit {
        code,
        msg: msg.into(),
    })
}

fn diff_path(dir: &Path, version: usize) -> PathBuf {
    dir.join(format!("{version:04}.ckpt"))
}

/// Unwrap a checkpoint file's integrity frame — verifying the checksum
/// (over the *stored* bytes, compressed or not) and transparently
/// decompressing compressed frames — falling back to the raw bytes for
/// legacy unframed records. Returns the frame codec id (0 for uncompressed
/// or legacy) and the decoded diff payload. Flat CLI records use rank 0
/// and the version number as checkpoint id; clustered records carry their
/// real rank in the frame.
fn unframe_as(
    bytes: &[u8],
    rank: u32,
    version: usize,
    path: &Path,
) -> Result<(u8, Vec<u8>), String> {
    if looks_framed(bytes) {
        decode_payload(bytes, Some((rank, version as u32)))
            .map(|(header, payload)| (header.codec, payload))
            .map_err(|e| format!("{}: corrupt frame: {e}", path.display()))
    } else {
        Ok((0, bytes.to_vec()))
    }
}

/// The lowest `NNNN.ckpt` version present in a record directory: 0 for a
/// full record, the rebase point for a chain whose prefix was compacted
/// away by GC.
fn record_base(dir: &Path) -> Result<usize, Box<dyn std::error::Error>> {
    let mut base: Option<usize> = None;
    let entries =
        std::fs::read_dir(dir).map_err(|_| format!("no checkpoints found in {}", dir.display()))?;
    for entry in entries {
        let name = entry?.file_name();
        let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".ckpt")) else {
            continue;
        };
        if let Ok(v) = stem.parse::<usize>() {
            base = Some(base.map_or(v, |b: usize| b.min(v)));
        }
    }
    base.ok_or_else(|| format!("no checkpoints found in {}", dir.display()).into())
}

/// Load the record's diffs in version order, verifying integrity frames
/// and transparently decompressing compressed frames. Returns
/// `(base, diffs, frame_codecs)` where `base` is the first surviving
/// version (a compacted record starts at its rebase point, whose head
/// record must be self-contained) and `frame_codecs[k]` is the frame-level
/// codec id version `base + k` was stored with (0 = uncompressed).
type LoadedRecord = (usize, Vec<Diff>, Vec<u8>);

fn load_record(dir: &Path) -> Result<LoadedRecord, Box<dyn std::error::Error>> {
    // A cluster rank subdir's frames carry their real rank id; flat
    // records use rank 0.
    load_record_as(dir, dir_rank(dir).unwrap_or(0))
}

/// The rank number of a `rank####/` record subdirectory, if `dir` is one.
fn dir_rank(dir: &Path) -> Option<u32> {
    let digits = dir.file_name()?.to_str()?.strip_prefix("rank")?;
    (digits.len() == 4 && digits.bytes().all(|b| b.is_ascii_digit()))
        .then(|| digits.parse().ok())
        .flatten()
}

fn load_record_as(dir: &Path, rank: u32) -> Result<LoadedRecord, Box<dyn std::error::Error>> {
    let base = record_base(dir)?;
    let mut diffs = Vec::new();
    let mut codecs = Vec::new();
    // Lazily opened on the first rank-dedup record: resolving cross-rank
    // references needs the cluster root and its redundancy group.
    let mut cluster: Option<Option<ClusterContext>> = None;
    for version in base.. {
        let path = diff_path(dir, version);
        if !path.exists() {
            break;
        }
        let bytes = std::fs::read(&path)?;
        let (codec, payload) = unframe_as(&bytes, rank, version, &path)?;
        let payload = if looks_rankdedup(&payload) {
            let ctx = cluster
                .get_or_insert_with(|| ClusterContext::open(dir).ok().flatten())
                .as_ref()
                .ok_or_else(|| {
                    format!(
                        "{}: rank-dedup record outside a cluster root",
                        path.display()
                    )
                })?;
            ctx.resolve((rank, version as u32), &payload).map_err(|e| {
                exit_with(
                    EXIT_LOST,
                    format!(
                        "{}: LOST  rank-dedup resolution failed: {e}",
                        path.display()
                    ),
                )
            })?
        } else {
            payload
        };
        codecs.push(codec);
        diffs.push(Diff::decode(&payload).map_err(|e| format!("{}: {e}", path.display()))?);
    }
    if base > 0 && !is_self_contained(&diffs[0]) {
        return Err(format!(
            "record is compacted at v{base:04} but that record is not self-contained \
             (not a rebase point); the chain cannot replay"
        )
        .into());
    }
    Ok((base, diffs, codecs))
}

/// Print the one-line JSON telemetry report: the command-specific header
/// fields, per-checkpoint stage breakdowns, and the registry snapshot.
fn emit_stats_report(
    command: &str,
    header: &[(&str, u64)],
    method: Option<&str>,
    breakdowns: &[StageBreakdown],
    registry: &Registry,
) {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("command").string(command);
    if let Some(m) = method {
        w.key("method").string(m);
    }
    for (k, v) in header {
        w.key(k).u64(*v);
    }
    w.key("breakdowns").begin_array();
    for b in breakdowns {
        b.write_json(&mut w);
    }
    w.end_array();
    w.key("metrics");
    registry.write_json(&mut w);
    w.end_object();
    println!("stats: {}", w.finish());
}

fn cmd_create(args: &[String], stats: bool) -> CliResult {
    let mut out_dir: Option<PathBuf> = None;
    let mut method = "tree".to_string();
    let mut chunk = 128usize;
    let mut compress: Option<String> = None;
    let mut payload_compress: Option<String> = None;
    let mut redundancy = RedundancyPolicy::Off;
    let mut ranks: Option<usize> = None;
    let mut verify_collisions = false;
    let mut rank_dedup = false;
    let mut snapshots: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--redundancy" => {
                let spec = args.get(i + 1).ok_or("--redundancy needs a value")?;
                redundancy = RedundancyPolicy::parse(spec).ok_or_else(|| {
                    format!("unknown --redundancy policy '{spec}' (off|partner|xor:<k>)")
                })?;
                i += 2;
            }
            "--ranks" => {
                let r: usize = args.get(i + 1).ok_or("--ranks needs a value")?.parse()?;
                if r == 0 {
                    return Err("--ranks must be at least 1".into());
                }
                ranks = Some(r);
                i += 2;
            }
            "--out" => {
                out_dir = Some(PathBuf::from(args.get(i + 1).ok_or("--out needs a value")?));
                i += 2;
            }
            "--method" => {
                method = args.get(i + 1).ok_or("--method needs a value")?.clone();
                i += 2;
            }
            "--chunk" => {
                chunk = args.get(i + 1).ok_or("--chunk needs a value")?.parse()?;
                i += 2;
            }
            "--compress" => {
                compress = Some(args.get(i + 1).ok_or("--compress needs a value")?.clone());
                i += 2;
            }
            "--payload-compress" => {
                payload_compress = Some(
                    args.get(i + 1)
                        .ok_or("--payload-compress needs a value")?
                        .clone(),
                );
                i += 2;
            }
            "--verify-collisions" => {
                verify_collisions = true;
                i += 1;
            }
            "--rank-dedup" => {
                rank_dedup = true;
                i += 1;
            }
            other => {
                snapshots.push(PathBuf::from(other));
                i += 1;
            }
        }
    }
    let out_dir = out_dir.ok_or("missing --out <dir>")?;
    if snapshots.is_empty() {
        return Err("no snapshot files given".into());
    }
    std::fs::create_dir_all(&out_dir)?;

    // `--compress` is the frame-level stage (post-dedup, per record file);
    // `--payload-compress` the dedup-layer knob (inside the diff).
    let policy = match &compress {
        None => CompressionPolicy::Off,
        Some(spec) => CompressionPolicy::parse(spec)
            .ok_or_else(|| format!("unknown --compress policy '{spec}' (off|adaptive|<codec>)"))?,
    };

    if redundancy != RedundancyPolicy::Off || ranks.is_some() {
        // A rank count defaults to one full redundancy group.
        let n_ranks = ranks.unwrap_or(redundancy.group_size().max(1) as usize);
        return cmd_create_cluster(CreateCluster {
            out_dir,
            method,
            chunk,
            policy,
            payload_compress,
            verify_collisions,
            redundancy,
            rank_dedup,
            n_ranks,
            snapshots,
            stats,
        });
    }
    if rank_dedup {
        return Err("--rank-dedup needs a clustered record (--ranks and/or --redundancy)".into());
    }

    let device = Device::a100();
    let mut cfg = TreeConfig::new(chunk);
    if let Some(codec) = &payload_compress {
        cfg = cfg.with_payload_codec(codec);
    }
    if verify_collisions {
        cfg = cfg.with_collision_verification();
    }
    let mut ckpt: Box<dyn Checkpointer> = match method.as_str() {
        "tree" => Box::new(TreeCheckpointer::new(device.clone(), cfg)),
        "list" => Box::new(ListCheckpointer::new(device.clone(), cfg)),
        "basic" => Box::new(BasicCheckpointer::new(device.clone(), chunk)),
        "full" => Box::new(FullCheckpointer::new(device.clone(), chunk)),
        other => return Err(format!("unknown method '{other}'").into()),
    };

    let registry = Arc::new(Registry::new());
    let metrics = Arc::new(if stats {
        CompressMetrics::bound(registry.clone())
    } else {
        CompressMetrics::detached()
    });
    let engine = CompressionEngine::new(policy, metrics);
    let mut breakdowns = Vec::new();
    let mut total_in = 0u64;
    let mut total_out = 0u64;
    for (version, path) in snapshots.iter().enumerate() {
        let data = std::fs::read(path)?;
        let mut span = stats.then(|| registry.span("cli/checkpoint"));
        let out = ckpt.checkpoint(&data);
        if let Some(s) = span.as_mut() {
            s.add_modeled_sec(out.stats.modeled_sec);
        }
        drop(span);
        let encoded = out.diff.encode();
        let encoded_len = encoded.len();
        // The on-disk file is the encoded diff, run through the frame-level
        // compression policy and wrapped in an integrity frame; sizes
        // reported below are stored payload sizes (the 32-byte header is
        // bookkeeping, not checkpoint data).
        let object = engine.encode(encoded);
        let stored_len = object.payload.len();
        let framed = if object.codec == 0 {
            encode_frame(0, version as u32, &object.payload)
        } else {
            encode_frame_compressed(
                0,
                version as u32,
                object.codec,
                object.uncompressed_len,
                &object.payload,
            )
        };
        std::fs::write(diff_path(&out_dir, version), framed)?;
        total_in += data.len() as u64;
        total_out += stored_len as u64;
        println!(
            "v{version:04}  {:>12} -> {:>12} bytes  (ratio {:>8.2}x)  {}{}",
            data.len(),
            stored_len,
            out.stats.ratio(),
            path.display(),
            if object.codec != 0 {
                format!(
                    "  [frame {}: {encoded_len} -> {stored_len} B]",
                    codec_name(object.codec)
                )
            } else {
                String::new()
            },
        );
        if stats {
            registry
                .histogram("cli/snapshot_bytes")
                .record(data.len() as u64);
            // Payload units (pre-compression), comparable across policies;
            // the `compress/*` counters carry the post-compression story.
            registry
                .histogram("cli/encoded_bytes")
                .record(encoded_len as u64);
            breakdowns.push(out.breakdown);
        }
    }
    println!(
        "record: {} versions, {total_in} -> {total_out} bytes ({:.2}x), modeled device time {:.3} ms",
        snapshots.len(),
        total_in as f64 / total_out.max(1) as f64,
        device.metrics().modeled_sec() * 1e3,
    );
    if stats {
        registry.counter("cli/versions").add(snapshots.len() as u64);
        // Steady-state memory counters: device-arena lease traffic and
        // historical-record reset/rebuild counts for the whole record.
        let mem = ckpt.memory_stats();
        registry
            .counter("alloc/device_bytes_leased")
            .add(mem.device_bytes_leased);
        registry
            .counter("alloc/device_bytes_allocated")
            .add(mem.device_bytes_allocated);
        registry.counter("alloc/arena_hits").add(mem.arena_hits);
        registry.counter("alloc/arena_misses").add(mem.arena_misses);
        registry
            .counter("map/generation_bumps")
            .add(mem.map_generation_bumps);
        registry
            .counter("map/rehash_rebuilds")
            .add(mem.map_rehash_rebuilds);
        emit_stats_report(
            "create",
            &[
                ("versions", snapshots.len() as u64),
                ("input_bytes", total_in),
                ("stored_bytes", total_out),
            ],
            Some(ckpt.name()),
            &breakdowns,
            &registry,
        );
    }
    Ok(())
}

/// Per-rank record subdirectory of a clustered record root.
fn rank_dir(root: &Path, rank: u32) -> PathBuf {
    root.join(format!("rank{rank:04}"))
}

/// On-disk name of one exported group object (partner copy or parity
/// stripe), keyed by `(hosting_rank, ckpt_id)`.
fn group_object_path(root: &Path, key: ObjectId) -> PathBuf {
    root.join("group")
        .join(format!("h{:04}_c{:04}.grp", key.0, key.1))
}

/// Whether a record root uses the clustered multi-rank layout. Any
/// surviving `rank####/` subdirectory counts — a cluster that lost rank 0
/// *and* its group tier must still verify as a cluster, with the absent
/// members typed, not fall back to the flat-record path.
fn is_cluster_dir(dir: &Path) -> bool {
    if dir.join("group").join("MANIFEST").exists() {
        return true;
    }
    let Ok(entries) = std::fs::read_dir(dir) else {
        return false;
    };
    entries.flatten().any(|e| {
        e.path().is_dir()
            && e.file_name()
                .to_str()
                .and_then(|n| n.strip_prefix("rank"))
                .is_some_and(|n| n.len() == 4 && n.chars().all(|c| c.is_ascii_digit()))
    })
}

/// Read one member's stored object back from its rank directory: the
/// framed file, checksum-verified, with the *stored* (possibly compressed)
/// payload kept intact so group checksums line up with what was encoded.
fn read_member_object(root: &Path, id: ObjectId) -> Option<StoredObject> {
    let path = rank_dir(root, id.0).join(format!("{:04}.ckpt", id.1));
    let bytes = std::fs::read(&path).ok()?;
    let (header, payload) = decode_frame_expecting(&bytes, Some(id)).ok()?;
    Some(if header.codec == 0 {
        StoredObject::raw(payload.to_vec())
    } else {
        StoredObject::encoded(header.codec, header.uncompressed_len, payload.to_vec())
    })
}

/// The cluster root a record directory belongs to: the directory itself
/// when it is a cluster root, its parent when it is a `rank####/` record
/// subdir, `None` for a flat record.
fn cluster_root_of(dir: &Path) -> Option<PathBuf> {
    if is_cluster_dir(dir) {
        return Some(dir.to_path_buf());
    }
    dir_rank(dir)
        .and_then(|_| dir.parent())
        .map(Path::to_path_buf)
}

/// Load the record root's redundancy group (manifest + exported group
/// objects) when one exists, ready to reconstruct lost members.
fn load_group_store(root: &Path) -> Result<Option<RedundancyStore>, Box<dyn std::error::Error>> {
    let manifest_path = root.join("group").join("MANIFEST");
    if !manifest_path.exists() {
        return Ok(None);
    }
    let text = std::fs::read_to_string(&manifest_path)?;
    let store = RedundancyStore::from_manifest(&text).ok_or("group/MANIFEST is malformed")?;
    for entry in std::fs::read_dir(root.join("group"))? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = name.strip_suffix(".grp") else {
            continue;
        };
        let key: ObjectId = (|| {
            let (h, c) = stem.strip_prefix('h')?.split_once("_c")?;
            Some((h.parse().ok()?, c.parse().ok()?))
        })()
        .ok_or_else(|| format!("unparseable group object name '{name}'"))?;
        let bytes = std::fs::read(&path)?;
        let (header, payload) = decode_frame_expecting(&bytes, Some(key))
            .map_err(|e| format!("{}: corrupt group frame: {e}", path.display()))?;
        let obj = if header.codec == 0 {
            StoredObject::raw(payload.to_vec())
        } else {
            StoredObject::encoded(header.codec, header.uncompressed_len, payload.to_vec())
        };
        store
            .group_tier()
            .store_object(key, obj)
            .map_err(|_| format!("{}: group store refused the object", path.display()))?;
    }
    Ok(Some(store))
}

/// The decoded stored payload of one cluster member, for rank-dedup
/// reference resolution: the rank's file when it verifies, else a group
/// reconstruction — so a chunk on a lost rank still resolves through its
/// parity group. `None` is a typed dangling reference upstream.
fn fetch_member_payload(
    root: &Path,
    store: Option<&RedundancyStore>,
    id: ObjectId,
) -> Option<Vec<u8>> {
    if let Some(obj) = read_member_object(root, id) {
        if let Ok(payload) = obj.decode() {
            return Some(payload);
        }
    }
    let store = store?;
    let fetch = |mid: ObjectId| read_member_object(root, mid);
    store.reconstruct(id, &fetch).ok()?.decode().ok()
}

/// Cluster context for resolving rank-dedup records outside the runtime:
/// the record root plus its (lazily loaded) redundancy group.
struct ClusterContext {
    root: PathBuf,
    store: Option<RedundancyStore>,
}

impl ClusterContext {
    fn open(dir: &Path) -> Result<Option<Self>, Box<dyn std::error::Error>> {
        let Some(root) = cluster_root_of(dir) else {
            return Ok(None);
        };
        let store = load_group_store(&root)?;
        Ok(Some(ClusterContext { root, store }))
    }

    fn resolve(&self, id: ObjectId, payload: &[u8]) -> Result<Vec<u8>, String> {
        let fetch = |mid: ObjectId| fetch_member_payload(&self.root, self.store.as_ref(), mid);
        resolve_record(id, payload, &fetch).map_err(|e| e.to_string())
    }
}

struct CreateCluster {
    out_dir: PathBuf,
    method: String,
    chunk: usize,
    policy: CompressionPolicy,
    payload_compress: Option<String>,
    verify_collisions: bool,
    redundancy: RedundancyPolicy,
    rank_dedup: bool,
    n_ranks: usize,
    snapshots: Vec<PathBuf>,
    stats: bool,
}

/// `ckpt create --redundancy ... [--ranks R]`: the snapshots are split
/// into `R` contiguous per-rank sequences, each rank de-duplicates its own
/// record into `rank####/`, and every framed record file is additionally
/// partner-copied or XOR-parity-encoded across the rank's group into
/// `group/` (plus a `group/MANIFEST` naming policy and members).
fn cmd_create_cluster(c: CreateCluster) -> CliResult {
    let n = c.snapshots.len();
    if n < c.n_ranks {
        return Err(format!("{n} snapshots cannot be split across {} ranks", c.n_ranks).into());
    }
    let group_size = c.redundancy.group_size().max(1) as usize;
    if c.redundancy != RedundancyPolicy::Off && !c.n_ranks.is_multiple_of(group_size) {
        return Err(format!(
            "--ranks {} is not a multiple of the {} group size {group_size}",
            c.n_ranks,
            c.redundancy.label()
        )
        .into());
    }
    let registry = Arc::new(Registry::new());
    let engine = CompressionEngine::new(
        c.policy,
        Arc::new(if c.stats {
            CompressMetrics::bound(registry.clone())
        } else {
            CompressMetrics::detached()
        }),
    );
    let store = (c.redundancy != RedundancyPolicy::Off).then(|| {
        RedundancyStore::new(
            c.redundancy,
            if c.stats {
                RedundancyMetrics::bound(registry.clone())
            } else {
                RedundancyMetrics::detached()
            },
        )
    });
    // The cluster dedup index: one inline engine shared by every rank, so
    // stored-byte totals are deterministic. Ranks encode in order, so later
    // ranks reference chunks the earlier ones claimed.
    let dedup = c.rank_dedup.then(|| {
        RankDedupEngine::new(
            RankDedupConfig {
                ranks: c.n_ranks as u32,
                chunk_len: c.chunk,
            },
            if c.stats {
                RankDedupMetrics::bound(registry.clone())
            } else {
                RankDedupMetrics::detached()
            },
        )
    });

    // Contiguous split: the first `n % ranks` ranks take one extra.
    let base_len = n / c.n_ranks;
    let extra = n % c.n_ranks;
    let mut next = 0usize;
    let mut total_in = 0u64;
    let mut total_out = 0u64;
    for rank in 0..c.n_ranks as u32 {
        let take = base_len + usize::from((rank as usize) < extra);
        let slice = &c.snapshots[next..next + take];
        next += take;
        let rdir = rank_dir(&c.out_dir, rank);
        std::fs::create_dir_all(&rdir)?;
        let device = Device::a100();
        let mut cfg = TreeConfig::new(c.chunk);
        if let Some(codec) = &c.payload_compress {
            cfg = cfg.with_payload_codec(codec);
        }
        if c.verify_collisions {
            cfg = cfg.with_collision_verification();
        }
        let mut ckpt: Box<dyn Checkpointer> = match c.method.as_str() {
            "tree" => Box::new(TreeCheckpointer::new(device.clone(), cfg)),
            "list" => Box::new(ListCheckpointer::new(device.clone(), cfg)),
            "basic" => Box::new(BasicCheckpointer::new(device.clone(), c.chunk)),
            "full" => Box::new(FullCheckpointer::new(device.clone(), c.chunk)),
            other => return Err(format!("unknown method '{other}'").into()),
        };
        for (version, path) in slice.iter().enumerate() {
            let data = std::fs::read(path)?;
            let out = ckpt.checkpoint(&data);
            // Dedup against the cluster index *before* frame compression,
            // so cross-rank references survive any codec.
            let staged = match &dedup {
                Some(e) => e.encode((rank, version as u32), out.diff.encode()),
                None => out.diff.encode(),
            };
            let object = engine.encode(staged);
            if let Some(store) = &store {
                store.encode_member((rank, version as u32), &object);
            }
            let framed = if object.codec == 0 {
                encode_frame(rank, version as u32, &object.payload)
            } else {
                encode_frame_compressed(
                    rank,
                    version as u32,
                    object.codec,
                    object.uncompressed_len,
                    &object.payload,
                )
            };
            total_in += data.len() as u64;
            total_out += object.payload.len() as u64;
            std::fs::write(diff_path(&rdir, version), framed)?;
        }
        println!(
            "rank{rank:04}: {take} versions  ({} .. {})",
            slice
                .first()
                .map(|p| p.display().to_string())
                .unwrap_or_default(),
            slice
                .last()
                .map(|p| p.display().to_string())
                .unwrap_or_default(),
        );
    }

    if let Some(store) = &store {
        let gdir = c.out_dir.join("group");
        std::fs::create_dir_all(&gdir)?;
        let mut group_bytes = 0u64;
        let mut group_objects = 0u64;
        for key in store.group_tier().resident() {
            let obj = store
                .group_tier()
                .inspect_object(key)
                .into_object()
                .ok_or("group object failed verification during export")?;
            let framed = if obj.codec == 0 {
                encode_frame(key.0, key.1, &obj.payload)
            } else {
                encode_frame_compressed(key.0, key.1, obj.codec, obj.uncompressed_len, &obj.payload)
            };
            group_bytes += framed.len() as u64;
            group_objects += 1;
            std::fs::write(group_object_path(&c.out_dir, key), framed)?;
        }
        std::fs::write(gdir.join("MANIFEST"), store.export_manifest())?;
        println!(
            "group: policy {}, {} ranks in groups of {group_size}, \
             {group_objects} objects ({group_bytes} B)",
            c.redundancy.label(),
            c.n_ranks,
        );
    }
    if let Some(e) = &dedup {
        println!(
            "rank-dedup: {} first-occurrence claims shared across {} ranks",
            e.index().claim_count(),
            c.n_ranks,
        );
    }
    println!(
        "cluster record: {} ranks, {n} versions, {total_in} -> {total_out} bytes ({:.2}x)",
        c.n_ranks,
        total_in as f64 / total_out.max(1) as f64,
    );
    if c.stats {
        registry.counter("cli/versions").add(n as u64);
        registry.counter("cli/ranks").add(c.n_ranks as u64);
        emit_stats_report(
            "create",
            &[
                ("versions", n as u64),
                ("ranks", c.n_ranks as u64),
                ("input_bytes", total_in),
                ("stored_bytes", total_out),
            ],
            Some(&c.method),
            &[],
            &registry,
        );
    }
    Ok(())
}

/// Group-aware verification of a clustered record: every present rank
/// directory is integrity-verified like a flat record, and every rank
/// whose directory is *absent* is checked object by object against the
/// redundancy group — reported as reconstructable or LOST, never silently
/// skipped.
fn verify_cluster(dir: &Path, json: bool) -> CliResult {
    let ctx = ClusterContext {
        root: dir.to_path_buf(),
        store: load_group_store(dir)?,
    };

    // The rank set: every rank#### directory present, plus every rank the
    // group manifest knows about (so a wholly-lost rank is still checked).
    let mut ranks: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        if let Some(r) = name
            .to_str()
            .and_then(|n| n.strip_prefix("rank"))
            .and_then(|n| n.parse().ok())
        {
            ranks.insert(r);
        }
    }
    if let Some(store) = &ctx.store {
        ranks.extend(store.member_ids().iter().map(|&(r, _)| r));
    }
    if ranks.is_empty() {
        return Err(format!("no rank directories found in {}", dir.display()).into());
    }

    let mut report: Vec<(u32, Vec<(u32, VerifyStatus)>)> = Vec::new();
    for &rank in &ranks {
        let rdir = rank_dir(dir, rank);
        // Every object the record names for this rank: its on-disk files
        // plus everything the group manifest attributes to it, so a wiped
        // file is still typed rather than silently absent.
        let mut ckpts: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        if rdir.is_dir() {
            for entry in std::fs::read_dir(&rdir)? {
                let name = entry?.file_name();
                if let Some(v) = name
                    .to_str()
                    .and_then(|n| n.strip_suffix(".ckpt"))
                    .and_then(|n| n.parse().ok())
                {
                    ckpts.insert(v);
                }
            }
        }
        if let Some(store) = &ctx.store {
            ckpts.extend(
                store
                    .member_ids()
                    .iter()
                    .filter(|&&(r, _)| r == rank)
                    .map(|&(_, c)| c),
            );
        }
        if ckpts.is_empty() {
            println!("rank{rank:04}: LOST  directory absent and unknown to the group");
            report.push((rank, vec![(0, VerifyStatus::Lost)]));
            continue;
        }
        let mut objects = Vec::with_capacity(ckpts.len());
        for ckpt_id in ckpts {
            let id = (rank, ckpt_id);
            let (status, detail) = classify_member(&ctx, id);
            println!(
                "rank{rank:04} v{ckpt_id:04} {}{}{}",
                status.label(),
                if detail.is_empty() { "" } else { "  " },
                detail,
            );
            objects.push((ckpt_id, status));
        }
        report.push((rank, objects));
    }

    let count = |s: VerifyStatus| -> u64 {
        report
            .iter()
            .flat_map(|(_, objs)| objs.iter())
            .filter(|&&(_, st)| st == s)
            .count() as u64
    };
    let (verified, repairable, lost) = (
        count(VerifyStatus::Verified),
        count(VerifyStatus::Repairable),
        count(VerifyStatus::Lost),
    );
    if json {
        println!(
            "{}",
            verify_report_json("cluster", verified, repairable, lost, &report)
        );
    }
    if lost > 0 {
        return Err(exit_with(
            EXIT_LOST,
            format!("{lost} object(s) LOST ({repairable} repairable, {verified} verified)"),
        ));
    }
    if repairable > 0 {
        return Err(exit_with(
            EXIT_REPAIRABLE,
            format!("{repairable} object(s) repairable from the group ({verified} verified)"),
        ));
    }
    println!(
        "cluster record ok: {} ranks, {verified} objects verified",
        ranks.len()
    );
    Ok(())
}

/// Stable per-object verification outcome (and its process exit code):
/// `verified` (0) — the stored frame decodes and, for rank-dedup records,
/// every cross-rank reference resolves; `repairable` (3) — the local copy
/// is corrupt or absent but the redundancy group rebuilds it bit-exact;
/// `lost` (4) — no path to a correct payload (a dangling remote reference
/// lands here, never a wrong payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VerifyStatus {
    Verified,
    Repairable,
    Lost,
}

impl VerifyStatus {
    fn label(self) -> &'static str {
        match self {
            VerifyStatus::Verified => "ok",
            VerifyStatus::Repairable => "REPAIRABLE",
            VerifyStatus::Lost => "LOST",
        }
    }

    fn json_name(self) -> &'static str {
        match self {
            VerifyStatus::Verified => "verified",
            VerifyStatus::Repairable => "repairable",
            VerifyStatus::Lost => "lost",
        }
    }
}

/// Classify one cluster member (see [`VerifyStatus`]).
fn classify_member(ctx: &ClusterContext, id: ObjectId) -> (VerifyStatus, String) {
    // A payload is only acceptable once fully proven: frame checksum,
    // rank-dedup reference resolution (checksummed against the original),
    // and diff decode.
    let prove = |payload: Vec<u8>| -> Result<(), String> {
        let resolved = if looks_rankdedup(&payload) {
            ctx.resolve(id, &payload)
                .map_err(|e| format!("dangling rank-dedup reference: {e}"))?
        } else {
            payload
        };
        Diff::decode(&resolved).map_err(|e| e.to_string())?;
        Ok(())
    };
    let path = rank_dir(&ctx.root, id.0).join(format!("{:04}.ckpt", id.1));
    let direct = std::fs::read(&path)
        .ok()
        .and_then(|bytes| unframe_as(&bytes, id.0, id.1 as usize, &path).ok())
        .map(|(_, payload)| payload);
    let direct_err = match direct {
        Some(payload) => match prove(payload) {
            Ok(()) => return (VerifyStatus::Verified, String::new()),
            // The local bytes verified as a frame but the payload cannot be
            // proven (dangling reference / undecodable diff): the group
            // holds the *same* object, so reconstruction cannot repair a
            // resolution failure — only a damaged or missing local copy.
            Err(e) => Some(e),
        },
        None => None,
    };
    if let Some(e) = direct_err {
        return (VerifyStatus::Lost, e);
    }
    let Some(store) = &ctx.store else {
        return (
            VerifyStatus::Lost,
            "no local copy and no redundancy group".into(),
        );
    };
    let fetch = |mid: ObjectId| read_member_object(&ctx.root, mid);
    match store
        .reconstruct(id, &fetch)
        .map_err(|e| e.to_string())
        .and_then(|obj| obj.decode().map_err(|e| e.to_string()))
        .and_then(&prove)
    {
        Ok(()) => (
            VerifyStatus::Repairable,
            format!("reconstructable from group ({})", store.policy().label()),
        ),
        Err(e) => (VerifyStatus::Lost, e),
    }
}

/// The stable `verify --json` report. Schema (field order fixed):
/// `{"command":"verify","mode":...,"clean":...,"verified":N,
///   "repairable":N,"lost":N,"ranks":[{"rank":R,"objects":
///   [{"ckpt_id":K,"status":"verified"|"repairable"|"lost"},..]},..]}`
fn verify_report_json(
    mode: &str,
    verified: u64,
    repairable: u64,
    lost: u64,
    ranks: &[(u32, Vec<(u32, VerifyStatus)>)],
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("command").string("verify");
    w.key("mode").string(mode);
    w.key("clean").bool(repairable == 0 && lost == 0);
    w.key("verified").u64(verified);
    w.key("repairable").u64(repairable);
    w.key("lost").u64(lost);
    w.key("ranks").begin_array();
    for (rank, objects) in ranks {
        w.begin_object();
        w.key("rank").u64(*rank as u64);
        w.key("objects").begin_array();
        for (ckpt_id, status) in objects {
            w.begin_object();
            w.key("ckpt_id").u64(*ckpt_id as u64);
            w.key("status").string(status.json_name());
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Group-aware `ckpt stats` over a clustered record: per-rank record
/// aggregates plus `redundancy/*` inventory counters.
fn cmd_stats_cluster(dir: &Path) -> CliResult {
    let registry = Registry::new();
    let mut versions = 0u64;
    let mut stored = 0u64;
    let mut n_ranks = 0u64;
    let mut method: Option<String> = None;
    // Scan for rank#### directories rather than counting up from 0: a
    // wholly-lost rank must not hide the ranks numbered after it.
    let mut present: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        if let Some(r) = name
            .to_str()
            .and_then(|n| n.strip_prefix("rank"))
            .and_then(|n| n.parse().ok())
        {
            present.insert(r);
        }
    }
    // Rank-dedup inventory: counted from the *stored* records (before
    // reference resolution), so `rankdedup/remote_bytes_saved` reports
    // what cross-rank sharing actually kept off the disk.
    let mut dedup_records = 0u64;
    let mut dedup_remote_refs = 0u64;
    let mut dedup_bytes_saved = 0u64;
    for &rank in &present {
        let rdir = rank_dir(dir, rank);
        n_ranks += 1;
        for version in record_base(&rdir)?.. {
            let path = diff_path(&rdir, version);
            if !path.exists() {
                break;
            }
            let bytes = std::fs::read(&path)?;
            let Ok((_, payload)) = unframe_as(&bytes, rank, version, &path) else {
                continue;
            };
            if let Ok(rec) = RankDedupRecord::decode(&payload) {
                dedup_records += 1;
                dedup_remote_refs += rec.remote_refs().count() as u64;
                dedup_bytes_saved += rec.orig_len.saturating_sub(rec.local.len() as u64);
            }
        }
        let (_base, diffs, _codecs) = load_record_as(&rdir, rank)?;
        method.get_or_insert_with(|| diffs[0].kind.name().to_string());
        for d in &diffs {
            registry
                .histogram("record/stored_bytes")
                .record(d.stored_bytes() as u64);
            stored += d.stored_bytes() as u64;
        }
        versions += diffs.len() as u64;
    }
    if dedup_records > 0 {
        registry.counter("rankdedup/records").add(dedup_records);
        registry
            .counter("rankdedup/remote_refs")
            .add(dedup_remote_refs);
        registry
            .counter("rankdedup/remote_bytes_saved")
            .add(dedup_bytes_saved);
    }
    let manifest_path = dir.join("group").join("MANIFEST");
    if let Ok(text) = std::fs::read_to_string(&manifest_path) {
        let store = RedundancyStore::from_manifest(&text).ok_or("group/MANIFEST is malformed")?;
        registry
            .counter("redundancy/members")
            .add(store.member_ids().len() as u64);
        let mut group_objects = 0u64;
        let mut group_bytes = 0u64;
        for entry in std::fs::read_dir(dir.join("group"))? {
            let entry = entry?;
            if entry.path().extension().is_some_and(|e| e == "grp") {
                group_objects += 1;
                group_bytes += entry.metadata()?.len();
            }
        }
        registry
            .counter("redundancy/group_objects")
            .add(group_objects);
        registry.counter("redundancy/group_bytes").add(group_bytes);
        registry
            .counter("redundancy/group_ranks")
            .add(store.policy().group_size() as u64);
    }
    if n_ranks == 0 {
        return Err(format!("no rank directories found in {}", dir.display()).into());
    }
    emit_stats_report(
        "stats",
        &[
            ("versions", versions),
            ("ranks", n_ranks),
            ("stored_bytes", stored),
        ],
        method.as_deref(),
        &[],
        &registry,
    );
    Ok(())
}

fn cmd_info(args: &[String]) -> CliResult {
    let dir = PathBuf::from(args.first().ok_or("missing <dir>")?);
    let (base, diffs, codecs) = load_record(&dir)?;
    println!(
        "record {}: {} versions{}, method {}, chunk {} B, buffer {} bytes",
        dir.display(),
        diffs.len(),
        if base > 0 {
            format!(" (compacted, base v{base:04})")
        } else {
            String::new()
        },
        diffs[0].kind.name(),
        diffs[0].chunk_size,
        diffs[0].data_len,
    );
    let mut total = 0u64;
    for (d, &frame_codec) in diffs.iter().zip(&codecs) {
        total += d.stored_bytes() as u64;
        println!(
            "  v{:04}  stored {:>10} B  payload {:>10} B  meta {:>8} B  regions {:>6}+{:<6}{}{}",
            d.ckpt_id,
            d.stored_bytes(),
            d.payload.len(),
            d.metadata_bytes(),
            d.first_regions.len(),
            d.shift_regions.len(),
            if d.payload_codec != 0 {
                "  [compressed]"
            } else {
                ""
            },
            if frame_codec != 0 {
                format!("  [frame {}]", codec_name(frame_codec))
            } else {
                String::new()
            },
        );
    }
    let full = diffs[0].data_len * diffs.len() as u64;
    println!(
        "total stored {total} B vs {full} B full ({:.2}x)",
        full as f64 / total.max(1) as f64
    );
    Ok(())
}

/// `ckpt stats <dir>`: offline telemetry report over an existing record —
/// per-version size distributions as histograms, plus record totals.
fn cmd_stats(args: &[String]) -> CliResult {
    let dir = PathBuf::from(args.first().ok_or("missing <dir>")?);
    if is_cluster_dir(&dir) {
        return cmd_stats_cluster(&dir);
    }
    let (base, diffs, codecs) = load_record(&dir)?;
    let registry = Registry::new();
    let mut stored = 0u64;
    let mut compressed_frames = 0u64;
    for (d, &frame_codec) in diffs.iter().zip(&codecs) {
        registry
            .histogram("record/stored_bytes")
            .record(d.stored_bytes() as u64);
        if frame_codec != 0 {
            compressed_frames += 1;
            registry
                .counter(&format!("record/frames/{}", codec_name(frame_codec)))
                .inc();
        }
        registry
            .histogram("record/payload_bytes")
            .record(d.payload.len() as u64);
        registry
            .histogram("record/metadata_bytes")
            .record(d.metadata_bytes() as u64);
        registry
            .counter("record/first_regions")
            .add(d.first_regions.len() as u64);
        registry
            .counter("record/shift_regions")
            .add(d.shift_regions.len() as u64);
        stored += d.stored_bytes() as u64;
    }
    emit_stats_report(
        "stats",
        &[
            ("versions", diffs.len() as u64),
            ("base", base as u64),
            ("data_len", diffs[0].data_len),
            ("chunk_size", diffs[0].chunk_size as u64),
            ("stored_bytes", stored),
            ("compressed_frames", compressed_frames),
        ],
        Some(diffs[0].kind.name()),
        &[],
        &registry,
    );
    Ok(())
}

fn cmd_restore(args: &[String], stats: bool) -> CliResult {
    let mut dir: Option<PathBuf> = None;
    let mut version: Option<usize> = None;
    let mut out: Option<PathBuf> = None;
    let mut parallel = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--version" => {
                version = Some(args.get(i + 1).ok_or("--version needs a value")?.parse()?);
                i += 2;
            }
            "--out" => {
                out = Some(PathBuf::from(args.get(i + 1).ok_or("--out needs a value")?));
                i += 2;
            }
            "--parallel" => {
                parallel = true;
                i += 1;
            }
            other => {
                dir = Some(PathBuf::from(other));
                i += 1;
            }
        }
    }
    let dir = dir.ok_or("missing <dir>")?;
    let out = out.ok_or("missing --out <file>")?;
    let (base, diffs, _codecs) = load_record(&dir)?;
    let last = base + diffs.len() - 1;
    let version = version.unwrap_or(last);
    if version < base || version > last {
        return Err(format!("version {version} not in record ({base}..{last})").into());
    }
    let index = version - base;
    let registry = Registry::new();
    let mut span = stats.then(|| registry.span("cli/restore"));
    let bytes = if parallel {
        // Single-pass parallel restart: walk the chain newest -> oldest,
        // resolve every chunk's provenance, then copy each resolved
        // region exactly once — no intermediate version materialized.
        let device = Device::a100();
        let (bytes, rstats) = restore_version_single_pass(&device, base as u32, &diffs, index)?;
        if stats {
            registry.counter("restore/chains_restored").inc();
            registry
                .counter("restore/records_read")
                .add(rstats.records_visited as u64);
            registry
                .counter("restore/regions_copied")
                .add(rstats.regions_copied);
            registry
                .counter("restore/bytes_copied")
                .add(rstats.bytes_copied);
            registry
                .counter("restore/zero_chunks")
                .add(rstats.zero_chunks);
        }
        bytes
    } else if base == 0 {
        // Random-access reader: restores without materializing every
        // version (requires an uncompacted record, ids from 0).
        let reader = RecordReader::build(&diffs)?;
        reader.read_version(version as u32)?
    } else {
        // Compacted record: sequential replay from the rebase base.
        let mut versions = restore_record_from(base as u32, &diffs)?;
        versions.swap_remove(index)
    };
    drop(span.take());
    std::fs::write(&out, &bytes)?;
    println!(
        "restored v{version} ({} bytes) -> {}",
        bytes.len(),
        out.display()
    );
    if stats {
        registry
            .histogram("cli/restored_bytes")
            .record(bytes.len() as u64);
        emit_stats_report(
            "restore",
            &[
                ("versions", diffs.len() as u64),
                ("base", base as u64),
                ("version", version as u64),
                ("restored_bytes", bytes.len() as u64),
            ],
            Some(diffs[0].kind.name()),
            &[],
            &registry,
        );
    }
    Ok(())
}

/// Integrity-only verification: checksum every frame and replay the whole
/// restore chain, reporting per-version outcomes. No originals needed.
fn verify_integrity(dir: &Path) -> CliResult {
    verify_integrity_as(dir, 0)
}

/// `verify --json` on a flat (single-rank) record: the same report schema
/// and exit-code matrix as cluster mode. With no redundancy group a
/// corrupt object has no repair source, so it types straight to `lost`.
fn verify_flat_json(dir: &Path) -> CliResult {
    let base = record_base(dir)?;
    let mut objects: Vec<(u32, VerifyStatus)> = Vec::new();
    for version in base.. {
        let path = diff_path(dir, version);
        if !path.exists() {
            break;
        }
        let ok = std::fs::read(&path)
            .map_err(|e| e.to_string())
            .and_then(|bytes| unframe_as(&bytes, 0, version, &path))
            .and_then(|(_, payload)| Diff::decode(&payload).map_err(|e| e.to_string()))
            .is_ok();
        objects.push((
            version as u32,
            if ok {
                VerifyStatus::Verified
            } else {
                VerifyStatus::Lost
            },
        ));
    }
    if objects.is_empty() {
        return Err(format!("no checkpoints found in {}", dir.display()).into());
    }
    let verified = objects
        .iter()
        .filter(|&&(_, s)| s == VerifyStatus::Verified)
        .count() as u64;
    let lost = objects.len() as u64 - verified;
    let report = vec![(0u32, objects)];
    println!("{}", verify_report_json("flat", verified, 0, lost, &report));
    if lost > 0 {
        return Err(exit_with(
            EXIT_LOST,
            format!("{lost} object(s) LOST ({verified} verified)"),
        ));
    }
    Ok(())
}

fn verify_integrity_as(dir: &Path, rank: u32) -> CliResult {
    let base = record_base(dir)?;
    if base > 0 {
        println!("record is compacted: first surviving version is v{base:04} (rebase point)");
    }
    let mut diffs = Vec::new();
    let mut bad = 0usize;
    let mut version = base;
    loop {
        let path = diff_path(dir, version);
        if !path.exists() {
            break;
        }
        let bytes = std::fs::read(&path)?;
        let legacy = if looks_framed(&bytes) {
            ""
        } else {
            "  [legacy unframed]"
        };
        match unframe_as(&bytes, rank, version, &path)
            .map_err(Into::into)
            .and_then(
            |(codec, payload): (u8, Vec<u8>)| -> Result<(u8, Diff), Box<dyn std::error::Error>> {
                Diff::decode(&payload)
                    .map(|d| (codec, d))
                    .map_err(|e| format!("{}: {e}", path.display()).into())
            },
        ) {
            Ok((codec, diff)) => {
                println!(
                    "v{version:04} ok   frame + diff verified ({} B){}{legacy}",
                    bytes.len(),
                    if codec != 0 {
                        format!("  [frame {}]", codec_name(codec))
                    } else {
                        String::new()
                    },
                );
                diffs.push(diff);
            }
            Err(e) => {
                bad += 1;
                println!("v{version:04} BAD  {e}");
            }
        }
        version += 1;
    }
    let total = version - base;
    if total == 0 {
        return Err(format!("no checkpoints found in {}", dir.display()).into());
    }
    if bad > 0 {
        return Err(format!("{bad} of {total} checkpoint files failed verification").into());
    }
    // Frames are intact; prove the chain also replays end to end. A
    // compacted record must open with a self-contained rebase record.
    if base > 0 && !is_self_contained(&diffs[0]) {
        return Err(format!(
            "v{base:04} heads a compacted record but is not self-contained (not a rebase point)"
        )
        .into());
    }
    let versions = restore_record_from(base as u32, &diffs)?;
    println!(
        "record integrity ok: {} versions, restore chain replays cleanly from v{base:04}",
        versions.len()
    );
    Ok(())
}

fn cmd_verify(args: &[String]) -> CliResult {
    let mut args: Vec<String> = args.to_vec();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let dir = PathBuf::from(args.first().ok_or_else(|| {
        exit_with(
            EXIT_USAGE,
            "usage: ckpt verify <dir> [originals...] [--json]",
        )
    })?);
    let originals = &args[1..];
    if is_cluster_dir(&dir) {
        if !originals.is_empty() {
            return Err("clustered records verify in integrity mode (no originals)".into());
        }
        return verify_cluster(&dir, json);
    }
    if originals.is_empty() {
        if json {
            return verify_flat_json(&dir);
        }
        return verify_integrity(&dir);
    }
    if json {
        return Err("--json applies to integrity mode (no originals)".into());
    }
    let (base, diffs, _codecs) = load_record(&dir)?;
    if originals.len() != diffs.len() {
        return Err(format!(
            "record has {} versions (from v{base:04}) but {} originals were given",
            diffs.len(),
            originals.len()
        )
        .into());
    }
    let versions = restore_record_from(base as u32, &diffs)?;
    for (k, (restored, path)) in versions.iter().zip(originals).enumerate() {
        let original = std::fs::read(path)?;
        if restored != &original {
            return Err(format!("version {} does not match {path}", base + k).into());
        }
        println!("v{:04} ok  {path}", base + k);
    }
    println!("all {} versions verified bit-exact", versions.len());
    Ok(())
}
