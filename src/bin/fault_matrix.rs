//! `fault_matrix` — the CI entry point for the crash-consistency harness.
//!
//! Runs one deterministic fault-injection schedule, derived entirely from
//! `--seed`: a multi-rank checkpoint workload drains through a faulted
//! tier chain, the runtime is killed at a seed-chosen point, and recovery
//! is audited against the ground-truth snapshots. Violations (a durable
//! prefix that does not restore bit-exact, or accounting that does not
//! reconcile with telemetry) fail the process with exit code 1.
//!
//! ```text
//! fault_matrix --seed S [--ranks N] [--ckpts K] [--len BYTES] [--json-out PATH]
//! ```
//!
//! The JSON report (stdout line `fault-matrix: {...}`, and `--json-out`)
//! carries the seed, the derived configuration, the full `RecoveryReport`,
//! the fired-fault log and the telemetry snapshot — the artifact the CI
//! `fault-matrix` job uploads per seed.

use gpu_dedup_ckpt::dedup::prelude::*;
use gpu_dedup_ckpt::dedup::Diff;
use gpu_dedup_ckpt::gpu_sim::Device;
use gpu_dedup_ckpt::runtime::{AsyncRuntime, FaultPlan, ObjectStatus, SplitMix64, TierChain};
use gpu_dedup_ckpt::telemetry::JsonWriter;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage: fault_matrix --seed S [--ranks N] [--ckpts K] [--len BYTES] [--json-out PATH]"
    );
    ExitCode::from(2)
}

fn rank_snapshots(rank: u32, len: usize, data_seed: u64, count: usize) -> Vec<Vec<u8>> {
    let mut rng = SplitMix64::new(data_seed ^ (rank as u64).wrapping_mul(0x9e37_79b9));
    let mut data: Vec<u8> = (0..len).map(|_| (rng.next() & 0xff) as u8).collect();
    let mut out = vec![data.clone()];
    for _ in 1..count {
        let edits = 1 + (rng.next() % 32) as usize;
        for _ in 0..edits {
            let at = (rng.next() as usize) % len;
            data[at] = (rng.next() & 0xff) as u8;
        }
        out.push(data.clone());
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: Option<u64> = None;
    let mut ranks = 3u32;
    let mut ckpts = 5u32;
    let mut len = 2048usize;
    let mut json_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| args.get(i + 1).cloned().ok_or(());
        match args[i].as_str() {
            "--seed" => match need(i).and_then(|v| v.parse().map_err(|_| ())) {
                Ok(v) => seed = Some(v),
                Err(()) => return usage(),
            },
            "--ranks" => match need(i).and_then(|v| v.parse().map_err(|_| ())) {
                Ok(v) => ranks = v,
                Err(()) => return usage(),
            },
            "--ckpts" => match need(i).and_then(|v| v.parse().map_err(|_| ())) {
                Ok(v) => ckpts = v,
                Err(()) => return usage(),
            },
            "--len" => match need(i).and_then(|v| v.parse().map_err(|_| ())) {
                Ok(v) => len = v,
                Err(()) => return usage(),
            },
            "--json-out" => match need(i) {
                Ok(v) => json_out = Some(v),
                Err(()) => return usage(),
            },
            _ => return usage(),
        }
        i += 2;
    }
    let Some(seed) = seed else { return usage() };

    // Everything below is a pure function of the seed + knobs.
    let mut rng = SplitMix64::new(seed);
    let total = (ranks * ckpts) as usize;
    let method_idx = (rng.next() % 3) as usize;
    let fault_count = 4 + (rng.next() % 8) as usize;
    let kill_after = (rng.next() as usize) % (total + 1);
    let horizon = (total * 4) as u64;
    let plan = FaultPlan::from_seed(rng.next(), fault_count, horizon);
    let method_name = ["tree", "list", "basic"][method_idx];

    // Ground truth + the exact bytes handed to the runtime.
    let mut snapshots: Vec<Vec<Vec<u8>>> = Vec::new();
    let mut diffs: Vec<Vec<Vec<u8>>> = Vec::new();
    for r in 0..ranks {
        let snaps = rank_snapshots(r, len, seed, ckpts as usize);
        let mut m: Box<dyn Checkpointer> = match method_idx {
            0 => Box::new(TreeCheckpointer::new(Device::a100(), TreeConfig::new(64))),
            1 => Box::new(ListCheckpointer::new(Device::a100(), TreeConfig::new(64))),
            _ => Box::new(BasicCheckpointer::new(Device::a100(), 64)),
        };
        diffs.push(
            snaps
                .iter()
                .map(|s| m.checkpoint(s).diff.encode())
                .collect(),
        );
        snapshots.push(snaps);
    }

    // Drive the schedule: submit rank-interleaved, crash at the kill point.
    let rt = AsyncRuntime::with_tiers(TierChain::with_faults(Arc::clone(&plan)));
    let mut submitted_ok = Vec::new();
    let mut n = 0usize;
    let mut killed = false;
    for k in 0..ckpts {
        for r in 0..ranks {
            if n == kill_after && !killed {
                rt.wait_durable(&submitted_ok);
                rt.kill();
                killed = true;
            }
            n += 1;
            if rt
                .submit(r, k, diffs[r as usize][k as usize].clone())
                .is_ok()
            {
                submitted_ok.push((r, k));
            }
        }
    }
    if !killed {
        rt.wait_durable(&submitted_ok);
        rt.kill();
    }

    let report = rt.recover_report();
    let reg = rt.telemetry();
    let mut violations: Vec<String> = Vec::new();

    // Accounting: every accepted object classified exactly once.
    if report.total_objects() != submitted_ok.len() {
        violations.push(format!(
            "report covers {} objects but {} were submitted",
            report.total_objects(),
            submitted_ok.len()
        ));
    }
    // Reconciliation with telemetry (read faults can only make recovery
    // *more* conservative, never claim extra durability).
    let durable = reg.counter("runtime/durable").get();
    let pfs_classified = (report.total_verified()
        + report.total_repaired()
        + report.total(ObjectStatus::LostCorrupt)) as u64;
    if pfs_classified > durable {
        violations.push(format!(
            "recovery classified {pfs_classified} durable objects but only {durable} drained"
        ));
    }
    if durable - pfs_classified.min(durable) > fault_count as u64 {
        violations.push(format!(
            "durable counter {durable} vs classified {pfs_classified}: gap exceeds fault budget"
        ));
    }
    // Bit-exactness of every durable prefix.
    for rr in &report.ranks {
        let r = rr.rank as usize;
        for (k, payload) in rr.payloads.iter().enumerate() {
            if payload != &diffs[r][k] {
                violations.push(format!("rank {r} ckpt {k}: recovered payload differs"));
            }
        }
        if rr.prefix_len == 0 {
            continue;
        }
        let decoded: Result<Vec<Diff>, _> = rr.payloads.iter().map(|b| Diff::decode(b)).collect();
        match decoded.map(|d| restore_record(&d)) {
            Ok(Ok(versions)) => {
                for (k, v) in versions.iter().enumerate() {
                    if v != &snapshots[r][k] {
                        violations.push(format!("rank {r} version {k} not bit-exact"));
                    }
                }
            }
            other => violations.push(format!(
                "rank {r}: durable prefix failed to replay: {other:?}"
            )),
        }
    }

    // Render the artifact.
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("seed").u64(seed);
    w.key("ok").bool(violations.is_empty());
    w.key("config").begin_object();
    w.key("ranks").u64(ranks as u64);
    w.key("ckpts").u64(ckpts as u64);
    w.key("len").u64(len as u64);
    w.key("method").string(method_name);
    w.key("fault_count").u64(fault_count as u64);
    w.key("kill_after").u64(kill_after as u64);
    w.end_object();
    w.key("fired_faults").begin_array();
    for f in plan.fired() {
        w.begin_object();
        w.key("tier").string(f.tier);
        w.key("op").string(match f.op {
            gpu_dedup_ckpt::runtime::OpKind::Put => "put",
            gpu_dedup_ckpt::runtime::OpKind::Get => "get",
        });
        w.key("ordinal").u64(f.ordinal);
        w.key("kind").string(&format!("{:?}", f.kind));
        w.end_object();
    }
    w.end_array();
    w.key("violations").begin_array();
    for v in &violations {
        w.begin_object();
        w.key("violation").string(v);
        w.end_object();
    }
    w.end_array();
    w.key("report");
    report.write_json(&mut w);
    w.key("metrics");
    reg.write_json(&mut w);
    w.end_object();
    let json = w.finish();
    println!("fault-matrix: {json}");
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("fault_matrix: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if violations.is_empty() {
        eprintln!(
            "seed {seed}: ok — {} submitted, {} verified, {} repaired, {} lost, prefix {}",
            submitted_ok.len(),
            report.total_verified(),
            report.total_repaired(),
            report.total_lost(),
            report.total_durable_prefix(),
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("seed {seed}: VIOLATION: {v}");
        }
        ExitCode::FAILURE
    }
}
