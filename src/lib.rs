//! Umbrella crate for the GPU-accelerated de-duplication checkpointing
//! reproduction (ICPP'23, Tan et al.).
//!
//! Re-exports the workspace crates under one roof so examples and integration
//! tests can `use gpu_dedup_ckpt::...`. See `README.md` for the architecture
//! overview and `DESIGN.md` for the system inventory.

pub use ckpt_adjoint as adjoint;
pub use ckpt_compress as compress;
pub use ckpt_dedup as dedup;
pub use ckpt_graph as graph;
pub use ckpt_hash as hash;
pub use ckpt_oranges as oranges;
pub use ckpt_runtime as runtime;
pub use ckpt_telemetry as telemetry;
pub use gpu_sim;
