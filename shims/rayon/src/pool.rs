//! The persistent work-stealing executor behind every parallel terminal.
//!
//! One global pool is lazily initialized on first use and reused for the
//! life of the process — no per-launch thread spawns. A parallel terminal
//! becomes a *job*: its index space is split into chunks whose boundaries
//! depend only on the item count (never on the thread count — see
//! [`plan`]), the chunks are dealt contiguously into per-participant
//! deques, and participants pop their own deque front-first then steal
//! half a victim's deque from the back in one lock acquisition (chunked
//! stealing). The submitting thread is always participant 0, so a job
//! completes even if every worker stays asleep.
//!
//! Sizing: `RAYON_NUM_THREADS` overrides; otherwise the full
//! `available_parallelism` is used. [`set_active_threads`] further caps (or
//! raises, for oversubscription experiments) how many participants a job
//! uses — the scaling benchmark sweeps it — without touching pool state:
//! workers beyond the active count simply sleep through the job.
//!
//! Liveness rules, chosen so the pool can never deadlock the process:
//! * one job at a time; a submitter that finds the pool busy runs its job
//!   inline on the calling thread (`try_lock`, never a blocking wait);
//! * a terminal launched from inside another terminal's body runs inline
//!   (thread-local re-entrancy flag);
//! * a panicking chunk poisons the job — remaining chunks are drained
//!   without executing — and the payload re-raises on the submitting
//!   thread once every chunk is accounted for.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Hard cap on pool threads (sanity bound for oversubscription requests).
pub const MAX_POOL_THREADS: usize = 256;

/// Upper bound on chunks per job: enough slack for stealing to balance
/// skewed workloads, small enough that queue traffic stays negligible.
const MAX_CHUNKS_PER_JOB: usize = 1024;

thread_local! {
    /// Set while this thread executes inside a parallel section (worker
    /// threads permanently; submitters for the duration of their job).
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// Lock ignoring poisoning: pool invariants hold regardless of panics in
/// user chunks (those are caught), so a poisoned mutex carries no hazard.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// How a terminal's index space maps onto executor chunks.
///
/// A pure function of `(n_items, min_items_per_chunk)`: chunk boundaries
/// must not depend on the thread count, so order-sensitive combines (e.g.
/// `reduce` partials) yield bit-identical results at any parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ChunkPlan {
    pub chunk_size: usize,
    pub n_chunks: usize,
}

pub(crate) fn plan(n_items: usize, min_items_per_chunk: usize) -> ChunkPlan {
    if n_items == 0 {
        return ChunkPlan {
            chunk_size: 1,
            n_chunks: 0,
        };
    }
    let chunk_size = min_items_per_chunk
        .max(1)
        .max(n_items.div_ceil(MAX_CHUNKS_PER_JOB));
    ChunkPlan {
        chunk_size,
        n_chunks: n_items.div_ceil(chunk_size),
    }
}

/// One parallel terminal in flight.
struct Job {
    /// Runs one chunk by index. The reference's lifetime is erased: the
    /// submitting thread blocks until `pending` hits zero before the
    /// underlying closure can go out of scope, and no participant starts a
    /// chunk after that point (queues are empty once pending is zero).
    run: &'static (dyn Fn(usize) + Sync),
    /// Per-participant chunk deques; participant 0 is the submitter.
    queues: Box<[Mutex<VecDeque<usize>>]>,
    /// Chunks not yet finished (executed or drained-after-poison).
    pending: AtomicUsize,
    /// Set by the first panicking chunk; later chunks drain without running.
    poisoned: AtomicBool,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    done: Mutex<()>,
    done_cv: Condvar,
}

// SAFETY: `run` points at a `Sync` closure that outlives the job (see the
// field comment); every other field is already thread-safe.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    fn new(run: &(dyn Fn(usize) + Sync), participants: usize, n_chunks: usize) -> Self {
        // SAFETY: lifetime erasure justified on the `run` field.
        let run: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(run) };
        let per = n_chunks.div_ceil(participants);
        let queues = (0..participants)
            .map(|p| {
                let lo = (p * per).min(n_chunks);
                let hi = ((p + 1) * per).min(n_chunks);
                Mutex::new((lo..hi).collect::<VecDeque<usize>>())
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Job {
            run,
            queues,
            pending: AtomicUsize::new(n_chunks),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
        }
    }
}

struct PoolState {
    /// Bumped per published job so sleeping workers can tell old from new.
    epoch: u64,
    /// The in-flight job and its participant count, if any.
    job: Option<(Arc<Job>, usize)>,
    /// Worker threads spawned so far (they live forever).
    spawned: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    /// Held by the submitting thread for the whole job. `try_lock` only —
    /// a busy pool means the submitter runs inline, never blocks.
    submit: Mutex<()>,
}

static POOL: OnceLock<Pool> = OnceLock::new();
static SPAWNED_EVER: AtomicUsize = AtomicUsize::new(0);
/// 0 = no override (use the configured size).
static ACTIVE_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            epoch: 0,
            job: None,
            spawned: 0,
        }),
        work_cv: Condvar::new(),
        submit: Mutex::new(()),
    })
}

/// Pool size from the environment: `RAYON_NUM_THREADS` if set and positive,
/// else the machine's full `available_parallelism` (no artificial cap).
fn configured_threads() -> usize {
    static CONF: OnceLock<usize> = OnceLock::new();
    *CONF.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .clamp(1, MAX_POOL_THREADS)
    })
}

/// Threads the next job may use (override if set, else configured size).
pub fn current_num_threads() -> usize {
    match ACTIVE_OVERRIDE.load(Ordering::Relaxed) {
        0 => configured_threads(),
        n => n.min(MAX_POOL_THREADS),
    }
}

/// Cap (or raise, for oversubscription sweeps) the participants of future
/// jobs. `0` clears the override. Results are bit-identical at any setting
/// by construction; only wall time changes.
pub fn set_active_threads(n: usize) {
    ACTIVE_OVERRIDE.store(n.min(MAX_POOL_THREADS), Ordering::Relaxed);
}

/// Worker threads spawned since process start. Stable across jobs once the
/// pool is warm — the no-respawn property the executor tests assert.
pub fn pool_spawned_threads() -> usize {
    SPAWNED_EVER.load(Ordering::Relaxed)
}

/// Execute `run(c)` for every `c in 0..n_chunks` on the pool, blocking
/// until all chunks complete. Chunks may run on any participant in any
/// order; callers needing determinism index their outputs by chunk.
///
/// When the [`crate::host_clock`] is enabled, every top-level region (not
/// nested terminals — those bill to their enclosing chunk) additionally
/// records per-chunk CPU time so scaling studies can model the region's
/// makespan independently of the machine's physical core count.
pub(crate) fn run_chunks(n_chunks: usize, run: &(dyn Fn(usize) + Sync)) {
    if n_chunks == 0 {
        return;
    }
    // A terminal launched from inside another terminal's body runs inline;
    // its time is already part of the enclosing chunk's measurement.
    if IN_PARALLEL.with(|f| f.get()) {
        for c in 0..n_chunks {
            run(c);
        }
        return;
    }
    if !crate::host_clock::enabled() {
        dispatch(n_chunks, run);
        return;
    }
    use std::sync::atomic::AtomicU64;
    let work = AtomicU64::new(0);
    let span = AtomicU64::new(0);
    let timed = |c: usize| {
        let t0 = crate::host_clock::thread_cpu_ns();
        run(c);
        let dt = crate::host_clock::thread_cpu_ns().saturating_sub(t0);
        work.fetch_add(dt, Ordering::Relaxed);
        span.fetch_max(dt, Ordering::Relaxed);
    };
    let started = std::time::Instant::now();
    dispatch(n_chunks, &timed);
    crate::host_clock::record_region(
        work.load(Ordering::Relaxed),
        span.load(Ordering::Relaxed),
        started.elapsed().as_nanos() as u64,
        current_num_threads().min(n_chunks) as u64,
    );
}

/// The untimed execution core of [`run_chunks`].
fn dispatch(n_chunks: usize, run: &(dyn Fn(usize) + Sync)) {
    let threads = current_num_threads();
    if n_chunks == 1 || threads <= 1 {
        for c in 0..n_chunks {
            run(c);
        }
        return;
    }
    let pool = pool();
    let Ok(submit) = pool.submit.try_lock() else {
        // Another thread's job is in flight; inline is always correct.
        for c in 0..n_chunks {
            run(c);
        }
        return;
    };

    let participants = threads.min(n_chunks);
    let job = Arc::new(Job::new(run, participants, n_chunks));
    {
        let mut st = lock(&pool.state);
        while st.spawned + 1 < participants {
            spawn_worker(st.spawned);
            st.spawned += 1;
        }
        st.epoch += 1;
        st.job = Some((Arc::clone(&job), participants));
        pool.work_cv.notify_all();
    }

    IN_PARALLEL.with(|f| f.set(true));
    participate(&job, 0);
    IN_PARALLEL.with(|f| f.set(false));

    // The submitter ran dry; wait for workers to finish their chunks.
    {
        let mut g = lock(&job.done);
        while job.pending.load(Ordering::Acquire) != 0 {
            g = job.done_cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
    lock(&pool.state).job = None;
    let payload = lock(&job.panic).take();
    drop(submit);
    if let Some(p) = payload {
        resume_unwind(p);
    }
}

fn spawn_worker(index: usize) {
    SPAWNED_EVER.fetch_add(1, Ordering::Relaxed);
    std::thread::Builder::new()
        .name(format!("rayon-shim-worker-{index}"))
        .spawn(move || worker_main(index))
        .expect("failed to spawn pool worker");
}

fn worker_main(index: usize) {
    // Terminals launched from inside a chunk body run inline.
    IN_PARALLEL.with(|f| f.set(true));
    let pool = pool();
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = lock(&pool.state);
            loop {
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    if let Some((job, participants)) = st.job.clone() {
                        if index + 1 < participants {
                            break job;
                        }
                        // Not a participant of this job; sleep through it.
                    }
                }
                st = pool.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        participate(&job, index + 1);
    }
}

/// Work loop of one participant: drain own deque, then steal.
fn participate(job: &Job, me: usize) {
    while let Some(c) = take_chunk(job, me) {
        if !job.poisoned.load(Ordering::Relaxed) {
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| (job.run)(c))) {
                let mut slot = lock(&job.panic);
                if slot.is_none() {
                    *slot = Some(p);
                }
                job.poisoned.store(true, Ordering::Relaxed);
            }
        }
        if job.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = lock(&job.done);
            job.done_cv.notify_all();
        }
    }
}

fn take_chunk(job: &Job, me: usize) -> Option<usize> {
    if let Some(c) = lock(&job.queues[me]).pop_front() {
        return Some(c);
    }
    let n = job.queues.len();
    for k in 1..n {
        let victim = (me + k) % n;
        let mut vq = lock(&job.queues[victim]);
        let len = vq.len();
        if len == 0 {
            continue;
        }
        // Chunked steal: take the back half in one lock acquisition so a
        // thief services several chunks per contention event.
        let stolen: Vec<usize> = vq.drain(len - len.div_ceil(2)..).collect();
        drop(vq);
        let mut mine = lock(&job.queues[me]);
        mine.extend(stolen[1..].iter().copied());
        return Some(stolen[0]);
    }
    None
}
