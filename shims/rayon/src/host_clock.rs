//! A modeled *host clock* for scaling studies on machines whose physical
//! core count can't express the parallelism under test.
//!
//! The simulated device already separates the executor from the clock: kernels
//! run wherever they run, while modeled A100 time accrues analytically. This
//! module applies the same idea to the *host* side of the pipeline. When
//! enabled, every top-level parallel region records, per executor chunk, the
//! chunk's **thread CPU time** (immune to preemption and oversubscription —
//! on a 1-core container, wall-clock time of interleaved workers double-counts
//! every context switch, CPU time doesn't). A region that measured total work
//! `W` and longest chunk `S` with `k` participants is then modeled at
//!
//! ```text
//! T_k = max(W / k, S)
//! ```
//!
//! the classic greedy-scheduler makespan bound (work/span with perfect
//! balance; `S` caps the speedup exactly as the critical path does). The
//! benchmark reconstructs a point's modeled host time as
//! `wall − Σ real_region + Σ T_k`: serial glue is measured, parallel regions
//! are modeled. Chunk boundaries are a pure function of the item count, so
//! the *computation* is identical at every thread count — only the clock
//! differs — and reports carry both `wall_sec` (measured) and the modeled
//! time, clearly labeled.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGIONS: AtomicU64 = AtomicU64::new(0);
static REAL_NS: AtomicU64 = AtomicU64::new(0);
static MODELED_NS: AtomicU64 = AtomicU64::new(0);
static WORK_NS: AtomicU64 = AtomicU64::new(0);
static SPAN_NS: AtomicU64 = AtomicU64::new(0);

/// Accumulated host-clock readings since the last [`host_clock_take`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HostClockSample {
    /// Top-level parallel regions observed.
    pub regions: u64,
    /// Measured wall time spent inside those regions.
    pub real_parallel_sec: f64,
    /// Modeled makespan of those regions: Σ max(work/k, span).
    pub modeled_parallel_sec: f64,
    /// Total chunk CPU time (the regions' sequential work).
    pub work_sec: f64,
    /// Σ per-region longest chunk (the critical-path floor).
    pub span_sec: f64,
}

/// Turn region recording on or off. Off (the default) adds a single relaxed
/// atomic load to each parallel terminal and nothing else.
pub fn host_clock_enable(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

pub(crate) fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Read and reset the accumulated sample. The clock is process-global:
/// benchmarks bracket each measured phase with a `take` on either side.
pub fn host_clock_take() -> HostClockSample {
    HostClockSample {
        regions: REGIONS.swap(0, Ordering::Relaxed),
        real_parallel_sec: REAL_NS.swap(0, Ordering::Relaxed) as f64 * 1e-9,
        modeled_parallel_sec: MODELED_NS.swap(0, Ordering::Relaxed) as f64 * 1e-9,
        work_sec: WORK_NS.swap(0, Ordering::Relaxed) as f64 * 1e-9,
        span_sec: SPAN_NS.swap(0, Ordering::Relaxed) as f64 * 1e-9,
    }
}

pub(crate) fn record_region(work_ns: u64, span_ns: u64, real_ns: u64, participants: u64) {
    let k = participants.max(1);
    let modeled = (work_ns / k).max(span_ns);
    REGIONS.fetch_add(1, Ordering::Relaxed);
    REAL_NS.fetch_add(real_ns, Ordering::Relaxed);
    MODELED_NS.fetch_add(modeled, Ordering::Relaxed);
    WORK_NS.fetch_add(work_ns, Ordering::Relaxed);
    SPAN_NS.fetch_add(span_ns, Ordering::Relaxed);
}

/// Per-thread CPU time in nanoseconds (scheduler-independent), falling back
/// to wall time where the clock is unavailable.
#[cfg(target_os = "linux")]
pub(crate) fn thread_cpu_ns() -> u64 {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clk_id: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    let mut ts = Timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: `ts` is a valid, writable timespec; the clock id is a Linux
    // constant. On failure we fall through to zero, which only under-counts.
    let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    if rc != 0 {
        return 0;
    }
    (ts.tv_sec as u64).saturating_mul(1_000_000_000) + ts.tv_nsec as u64
}

#[cfg(not(target_os = "linux"))]
pub(crate) fn thread_cpu_ns() -> u64 {
    use std::time::Instant;
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cpu_time_advances_with_work() {
        let t0 = thread_cpu_ns();
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_add(i.wrapping_mul(2654435761));
        }
        std::hint::black_box(acc);
        assert!(thread_cpu_ns() > t0, "CPU clock must advance");
    }

    #[test]
    fn makespan_takes_the_larger_of_work_over_k_and_span() {
        host_clock_take();
        host_clock_enable(true);
        record_region(8_000, 1_000, 9_000, 4); // work-bound: 2000
        record_region(8_000, 5_000, 9_000, 4); // span-bound: 5000
        host_clock_enable(false);
        let s = host_clock_take();
        assert_eq!(s.regions, 2);
        assert!((s.modeled_parallel_sec - 7_000e-9).abs() < 1e-12);
        assert!((s.real_parallel_sec - 18_000e-9).abs() < 1e-12);
        assert!((s.work_sec - 16_000e-9).abs() < 1e-12);
    }
}
