//! Minimal offline stand-in for the subset of `rayon` 1.x this workspace
//! uses, backed by a persistent work-stealing thread pool ([`pool`]).
//!
//! Unlike the earlier shim — which wrapped sequential iterators and spawned
//! fresh scoped threads per `for_each` — every terminal here (`for_each`,
//! `map`+`collect`, `reduce`, `sum`, `count`) executes on the shared pool.
//! Sources and adapters implement an indexed [`Producer`] model (length +
//! random access by position), which is what makes *value-producing*
//! terminals parallelizable with deterministic results:
//!
//! * `collect` writes each item into a pre-sized output slot at its source
//!   position, so output order is independent of execution order;
//! * `reduce`/`sum` compute one partial per executor chunk and combine the
//!   partials in ascending chunk order. Chunk boundaries are a pure
//!   function of the item count ([`pool::plan`]), never of the thread
//!   count, so even non-associative combines (float sums, hash folds) are
//!   bit-identical at 1, 2, or N threads.
//!
//! The modeled device time in `gpu-sim` is computed analytically and is
//! unaffected by how many host threads execute a kernel; only wall time
//! changes with [`set_active_threads`].

use std::marker::PhantomData;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::ops::Range;

pub mod host_clock;
mod pool;

pub use host_clock::{host_clock_enable, host_clock_take, HostClockSample};
pub use pool::{current_num_threads, pool_spawned_threads, set_active_threads, MAX_POOL_THREADS};

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// A fixed-length source of work items with random access by position.
///
/// # Safety
///
/// Implementations must tolerate `item(i)` being called concurrently for
/// distinct `i`, and terminals must call `item(i)` **at most once** per
/// index — producers like [`VecProducer`] move values out by position.
#[allow(clippy::len_without_is_empty)]
pub unsafe trait Producer: Sync {
    type Item: Send;

    fn len(&self) -> usize;

    /// Items per executor chunk below which splitting isn't worthwhile.
    /// Must be a constant per producer *type* (heavier items → smaller
    /// value): chunk boundaries derive from it, and cross-thread-count
    /// determinism requires boundaries that depend only on the source
    /// shape.
    fn min_items_per_chunk(&self) -> usize {
        1024
    }

    /// Produce the item at position `i`.
    ///
    /// # Safety
    /// `i < self.len()`, called at most once per index per terminal, and
    /// concurrent calls only for distinct indices.
    unsafe fn item(&self, i: usize) -> Self::Item;
}

pub struct Par<P>(P);

pub trait IntoParallelIterator {
    type Item: Send;
    type Producer: Producer<Item = Self::Item>;
    fn into_par_iter(self) -> Par<Self::Producer>;
}

impl<P: Producer> IntoParallelIterator for Par<P> {
    type Item = P::Item;
    type Producer = P;
    fn into_par_iter(self) -> Par<P> {
        self
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

pub struct RangeProducer<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_producer {
    ($($t:ty),*) => {$(
        // SAFETY: indexing is pure arithmetic; items are `Copy`.
        unsafe impl Producer for RangeProducer<$t> {
            type Item = $t;
            fn len(&self) -> usize {
                self.len
            }
            unsafe fn item(&self, i: usize) -> $t {
                self.start + i as $t
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Producer = RangeProducer<$t>;
            fn into_par_iter(self) -> Par<RangeProducer<$t>> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                Par(RangeProducer { start: self.start, len })
            }
        }
    )*};
}

impl_range_producer!(usize, u32, u64);

/// Owning producer over a `Vec`: items are moved out by position.
pub struct VecProducer<T: Send> {
    buf: *mut T,
    len: usize,
    cap: usize,
}

// SAFETY: access is index-disjoint per the `Producer` contract; `T: Send`
// lets items cross to worker threads.
unsafe impl<T: Send> Sync for VecProducer<T> {}
unsafe impl<T: Send> Send for VecProducer<T> {}

// SAFETY: each index read at most once (contract), so no double-move.
unsafe impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.len
    }
    /// Owned vectors in this workspace carry coarse items (gather segments,
    /// whole sub-slices), so every item is its own unit of work.
    fn min_items_per_chunk(&self) -> usize {
        1
    }
    unsafe fn item(&self, i: usize) -> T {
        unsafe { std::ptr::read(self.buf.add(i)) }
    }
}

impl<T: Send> Drop for VecProducer<T> {
    fn drop(&mut self) {
        // Reclaims the allocation only: items were moved out by `item`. If
        // a panicking terminal left indices unconsumed their values leak —
        // the documented trade-off for lock-free by-index consumption.
        unsafe { drop(Vec::from_raw_parts(self.buf, 0, self.cap)) };
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Producer = VecProducer<T>;
    fn into_par_iter(self) -> Par<VecProducer<T>> {
        let mut v = ManuallyDrop::new(self);
        Par(VecProducer {
            buf: v.as_mut_ptr(),
            len: v.len(),
            cap: v.capacity(),
        })
    }
}

pub struct SliceProducer<'a, T> {
    slice: &'a [T],
}

// SAFETY: shared references to distinct (or even equal) indices are fine.
unsafe impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    unsafe fn item(&self, i: usize) -> &'a T {
        unsafe { self.slice.get_unchecked(i) }
    }
}

pub struct ChunksProducer<'a, T> {
    slice: &'a [T],
    size: usize,
}

// SAFETY: shared sub-slices; indexing bounded by `len()`.
unsafe impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn min_items_per_chunk(&self) -> usize {
        1
    }
    unsafe fn item(&self, i: usize) -> &'a [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.slice.len());
        &self.slice[lo..hi]
    }
}

pub struct SliceMutProducer<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: each index is handed out at most once (contract), so the `&mut`s
// produced are disjoint; `T: Send` lets them cross threads.
unsafe impl<T: Send> Sync for SliceMutProducer<'_, T> {}
unsafe impl<T: Send> Send for SliceMutProducer<'_, T> {}

// SAFETY: see `Sync` justification above.
unsafe impl<'a, T: Send + 'a> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn item(&self, i: usize) -> &'a mut T {
        unsafe { &mut *self.ptr.add(i) }
    }
}

pub struct ChunksMutProducer<'a, T> {
    ptr: *mut T,
    len: usize,
    size: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: as for `SliceMutProducer`; chunks at distinct indices are
// disjoint sub-slices.
unsafe impl<T: Send> Sync for ChunksMutProducer<'_, T> {}
unsafe impl<T: Send> Send for ChunksMutProducer<'_, T> {}

// SAFETY: see `Sync` justification above.
unsafe impl<'a, T: Send + 'a> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    fn len(&self) -> usize {
        self.len.div_ceil(self.size)
    }
    fn min_items_per_chunk(&self) -> usize {
        1
    }
    unsafe fn item(&self, i: usize) -> &'a mut [T] {
        let lo = i * self.size;
        let n = self.size.min(self.len - lo);
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(lo), n) }
    }
}

pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> Par<SliceProducer<'_, T>>;
    fn par_chunks(&self, chunk_size: usize) -> Par<ChunksProducer<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Par<SliceProducer<'_, T>> {
        Par(SliceProducer { slice: self })
    }
    fn par_chunks(&self, chunk_size: usize) -> Par<ChunksProducer<'_, T>> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        Par(ChunksProducer {
            slice: self,
            size: chunk_size,
        })
    }
}

pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> Par<SliceMutProducer<'_, T>>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<ChunksMutProducer<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> Par<SliceMutProducer<'_, T>> {
        Par(SliceMutProducer {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: PhantomData,
        })
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<ChunksMutProducer<'_, T>> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        Par(ChunksMutProducer {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            size: chunk_size,
            _marker: PhantomData,
        })
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

pub struct MapProducer<P, F> {
    inner: P,
    f: F,
}

// SAFETY: forwards the inner producer's guarantees; `f` is `Sync`.
unsafe impl<P, O, F> Producer for MapProducer<P, F>
where
    P: Producer,
    O: Send,
    F: Fn(P::Item) -> O + Sync,
{
    type Item = O;
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn min_items_per_chunk(&self) -> usize {
        self.inner.min_items_per_chunk()
    }
    unsafe fn item(&self, i: usize) -> O {
        (self.f)(unsafe { self.inner.item(i) })
    }
}

pub struct EnumerateProducer<P> {
    inner: P,
}

// SAFETY: forwards the inner producer's guarantees.
unsafe impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn min_items_per_chunk(&self) -> usize {
        self.inner.min_items_per_chunk()
    }
    unsafe fn item(&self, i: usize) -> (usize, P::Item) {
        (i, unsafe { self.inner.item(i) })
    }
}

pub struct ZipProducer<A, B> {
    a: A,
    b: B,
}

// SAFETY: forwards both producers' guarantees; length is the minimum, so
// indices stay in bounds for both sides.
unsafe impl<A: Producer, B: Producer> Producer for ZipProducer<A, B> {
    type Item = (A::Item, B::Item);
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn min_items_per_chunk(&self) -> usize {
        self.a
            .min_items_per_chunk()
            .min(self.b.min_items_per_chunk())
    }
    unsafe fn item(&self, i: usize) -> (A::Item, B::Item) {
        unsafe { (self.a.item(i), self.b.item(i)) }
    }
}

// ---------------------------------------------------------------------------
// Terminals
// ---------------------------------------------------------------------------

/// Shared pointer into a pre-sized slot array; each slot is written by
/// exactly one chunk/item, making concurrent writes disjoint.
struct Slots<T>(*mut MaybeUninit<T>);
// SAFETY: writes are index-disjoint (one writer per slot).
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    /// # Safety
    /// `i` in bounds and written by exactly one thread.
    unsafe fn write(&self, i: usize, value: T) {
        unsafe { (*self.0.add(i)).write(value) };
    }
}

/// Assume all `slots` are initialized and reinterpret as `Vec<T>`.
///
/// # Safety
/// Every element must have been written.
unsafe fn assume_init_vec<T>(slots: Vec<MaybeUninit<T>>) -> Vec<T> {
    let mut s = ManuallyDrop::new(slots);
    unsafe { Vec::from_raw_parts(s.as_mut_ptr() as *mut T, s.len(), s.capacity()) }
}

fn uninit_slots<T>(n: usize) -> Vec<MaybeUninit<T>> {
    let mut v = Vec::with_capacity(n);
    // SAFETY: `MaybeUninit` needs no initialization.
    unsafe { v.set_len(n) };
    v
}

impl<P: Producer> Par<P> {
    pub fn map<O, F>(self, f: F) -> Par<MapProducer<P, F>>
    where
        O: Send,
        F: Fn(P::Item) -> O + Sync,
    {
        Par(MapProducer { inner: self.0, f })
    }

    pub fn enumerate(self) -> Par<EnumerateProducer<P>> {
        Par(EnumerateProducer { inner: self.0 })
    }

    pub fn zip<J: IntoParallelIterator>(self, other: J) -> Par<ZipProducer<P, J::Producer>> {
        Par(ZipProducer {
            a: self.0,
            b: other.into_par_iter().0,
        })
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Sync,
    {
        let p = self.0;
        let plan = pool::plan(p.len(), p.min_items_per_chunk());
        let n = p.len();
        pool::run_chunks(plan.n_chunks, &|c| {
            let lo = c * plan.chunk_size;
            let hi = (lo + plan.chunk_size).min(n);
            for i in lo..hi {
                // SAFETY: chunks partition 0..n; each index visited once.
                f(unsafe { p.item(i) });
            }
        });
    }

    /// Like `for_each`, but each executor chunk builds its own state with
    /// `init` first — the hook kernels use for per-chunk scratch buffers
    /// and batched-atomic accumulators.
    pub fn for_each_init<T, INIT, F>(self, init: INIT, f: F)
    where
        INIT: Fn() -> T + Sync,
        F: Fn(&mut T, P::Item) + Sync,
    {
        let p = self.0;
        let plan = pool::plan(p.len(), p.min_items_per_chunk());
        let n = p.len();
        pool::run_chunks(plan.n_chunks, &|c| {
            let lo = c * plan.chunk_size;
            let hi = (lo + plan.chunk_size).min(n);
            let mut state = init();
            for i in lo..hi {
                // SAFETY: chunks partition 0..n; each index visited once.
                f(&mut state, unsafe { p.item(i) });
            }
        });
    }

    /// Parallel reduce with deterministic combine order: one partial per
    /// chunk, folded left-to-right by ascending chunk index. Bit-identical
    /// at any thread count, even for non-associative `op`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Item
    where
        ID: Fn() -> P::Item + Sync,
        OP: Fn(P::Item, P::Item) -> P::Item + Sync,
    {
        let p = self.0;
        let n = p.len();
        let plan = pool::plan(n, p.min_items_per_chunk());
        if plan.n_chunks == 0 {
            return identity();
        }
        let mut partials = uninit_slots::<P::Item>(plan.n_chunks);
        let slots = Slots(partials.as_mut_ptr());
        pool::run_chunks(plan.n_chunks, &|c| {
            let lo = c * plan.chunk_size;
            let hi = (lo + plan.chunk_size).min(n);
            // SAFETY: chunks partition 0..n; indices consumed once each.
            let mut acc = unsafe { p.item(lo) };
            for i in lo + 1..hi {
                acc = op(acc, unsafe { p.item(i) });
            }
            // SAFETY: slot `c` written exactly once, by this chunk.
            unsafe { slots.write(c, acc) };
        });
        // SAFETY: run_chunks executed every chunk (a panic would have
        // propagated), so every partial slot is initialized.
        let partials = unsafe { assume_init_vec(partials) };
        partials.into_iter().fold(identity(), &op)
    }

    /// Parallel sum via per-chunk partials combined in chunk order.
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<P::Item> + std::iter::Sum<S>,
    {
        let p = self.0;
        let n = p.len();
        let plan = pool::plan(n, p.min_items_per_chunk());
        if plan.n_chunks == 0 {
            return std::iter::empty::<P::Item>().sum();
        }
        let mut partials = uninit_slots::<S>(plan.n_chunks);
        let slots = Slots(partials.as_mut_ptr());
        pool::run_chunks(plan.n_chunks, &|c| {
            let lo = c * plan.chunk_size;
            let hi = (lo + plan.chunk_size).min(n);
            // SAFETY: chunks partition 0..n; indices consumed once each.
            let part: S = (lo..hi).map(|i| unsafe { p.item(i) }).sum();
            // SAFETY: slot `c` written exactly once, by this chunk.
            unsafe { slots.write(c, part) };
        });
        // SAFETY: every chunk ran, so every partial is initialized.
        let partials = unsafe { assume_init_vec(partials) };
        partials.into_iter().sum()
    }

    pub fn count(self) -> usize {
        self.0.len()
    }

    /// Parallel collect: each item is written into the output slot at its
    /// source position, so the result order matches the source regardless
    /// of which thread produced which item.
    pub fn collect<C: FromIterator<P::Item>>(self) -> C {
        let p = self.0;
        let n = p.len();
        let mut out = uninit_slots::<P::Item>(n);
        let slots = Slots(out.as_mut_ptr());
        let plan = pool::plan(n, p.min_items_per_chunk());
        pool::run_chunks(plan.n_chunks, &|c| {
            let lo = c * plan.chunk_size;
            let hi = (lo + plan.chunk_size).min(n);
            for i in lo..hi {
                // SAFETY: chunks partition 0..n — slot `i` written exactly
                // once, and `item(i)` consumed exactly once.
                unsafe { slots.write(i, p.item(i)) };
            }
        });
        // SAFETY: every chunk ran, so every slot is initialized.
        let items = unsafe { assume_init_vec(out) };
        items.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{current_num_threads, pool_spawned_threads, set_active_threads};
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Tests that touch the global thread-count override or assert on pool
    /// spawn counts serialize through this lock.
    static POOL_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        POOL_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn for_each_covers_every_index_in_parallel() {
        let n = 40_000usize;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        (0..n).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_reduce_and_chunked_zip_match_sequential() {
        let n = 10_000u64;
        let total: u64 = (0..n as usize)
            .into_par_iter()
            .map(|i| i as u64)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, n * (n - 1) / 2);

        let input: Vec<u64> = (0..n).collect();
        let mut out = vec![0u64; input.len()];
        out.par_chunks_mut(128)
            .zip(input.par_chunks(128))
            .for_each(|(o, i)| {
                o.copy_from_slice(i);
            });
        assert_eq!(out, input);
    }

    #[test]
    fn collect_preserves_source_order_at_many_threads() {
        let _g = locked();
        for threads in [1, 2, 5, 16] {
            set_active_threads(threads);
            let v: Vec<u64> = (0..100_000usize)
                .into_par_iter()
                .map(|i| i as u64 * 7)
                .collect();
            assert_eq!(v.len(), 100_000);
            assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 * 7));
        }
        set_active_threads(0);
    }

    #[test]
    fn nonassociative_reduce_is_bit_identical_across_thread_counts() {
        let _g = locked();
        // Float addition is not associative: any thread-count-dependent
        // combine order would change low-order bits.
        let run = || -> f64 {
            (0..200_000usize)
                .into_par_iter()
                .map(|i| 1.0f64 / (i as f64 + 1.0))
                .reduce(|| 0.0, |a, b| a + b)
        };
        set_active_threads(1);
        let base = run();
        for threads in [2, 3, 8, 32] {
            set_active_threads(threads);
            assert_eq!(run().to_bits(), base.to_bits(), "threads={threads}");
        }
        set_active_threads(0);
    }

    #[test]
    fn pool_is_reused_after_warmup() {
        let _g = locked();
        set_active_threads(4);
        let work = || {
            (0..100_000usize).into_par_iter().for_each(|i| {
                std::hint::black_box(i.wrapping_mul(0x9e37_79b9));
            });
        };
        work(); // warmup: spawns up to 3 workers
        let warm = pool_spawned_threads();
        for _ in 0..20 {
            work();
        }
        assert_eq!(
            pool_spawned_threads(),
            warm,
            "persistent pool must not spawn threads after warmup"
        );
        set_active_threads(0);
    }

    #[test]
    fn panic_in_worker_chunk_propagates_to_caller() {
        let _g = locked();
        set_active_threads(4);
        let r = std::panic::catch_unwind(|| {
            (0..100_000usize).into_par_iter().for_each(|i| {
                if i == 67_123 {
                    panic!("boom at {i}");
                }
            });
        });
        set_active_threads(0);
        let payload = r.expect_err("panic must propagate out of for_each");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom"), "unexpected payload: {msg:?}");
    }

    #[test]
    fn panic_on_inline_path_propagates_too() {
        // Small n runs inline on the caller with no catch_unwind wrapper.
        let r = std::panic::catch_unwind(|| {
            (0..10usize).into_par_iter().for_each(|i| {
                if i == 3 {
                    panic!("inline boom");
                }
            });
        });
        assert!(r.is_err());
    }

    #[test]
    fn empty_and_single_item_terminals() {
        let hits = AtomicUsize::new(0);
        (0..0usize).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 0);
        let v: Vec<u32> = (0..0u32).into_par_iter().collect();
        assert!(v.is_empty());
        let s: u64 = (0..0usize).into_par_iter().map(|i| i as u64).sum();
        assert_eq!(s, 0);
        let r: u64 = (0..0usize)
            .into_par_iter()
            .map(|i| i as u64)
            .reduce(|| 99, |a, b| a + b);
        assert_eq!(r, 99, "empty reduce yields the identity");

        (0..1usize).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        let v: Vec<u32> = (5..6u32).into_par_iter().collect();
        assert_eq!(v, vec![5]);
        let r: u64 = (7..8usize)
            .into_par_iter()
            .map(|i| i as u64)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(r, 7);
        assert_eq!((0..1usize).into_par_iter().count(), 1);
    }

    #[test]
    fn for_each_init_builds_state_per_chunk_not_per_item() {
        let inits = AtomicUsize::new(0);
        let n = 50_000usize;
        (0..n).into_par_iter().for_each_init(
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |state, i| {
                *state += i as u64;
            },
        );
        let count = inits.load(Ordering::Relaxed);
        assert!(count >= 1 && count <= n / 1024 + 1, "inits={count}");
    }

    #[test]
    fn vec_into_par_iter_moves_items() {
        let src: Vec<String> = (0..5000).map(|i| format!("s{i}")).collect();
        let out: Vec<String> = src.into_par_iter().map(|s| s + "!").collect();
        assert_eq!(out.len(), 5000);
        assert!(out.iter().enumerate().all(|(i, s)| *s == format!("s{i}!")));
    }

    #[test]
    fn enumerate_and_nested_zip_shapes() {
        let data: Vec<u32> = (0..10_000).collect();
        let sum: u64 = data
            .par_iter()
            .enumerate()
            .map(|(i, &v)| (i as u64) ^ (v as u64))
            .sum();
        assert_eq!(sum, 0, "index equals value, so xor is zero everywhere");

        let a: Vec<u64> = (0..4096).collect();
        let b: Vec<u64> = (0..4096).map(|i| i * 2).collect();
        let mut out = vec![0u64; 4096];
        out.par_chunks_mut(64)
            .zip(a.par_chunks(64))
            .zip(b.par_iter())
            .for_each(|((o, x), _)| o.copy_from_slice(x));
        assert_eq!(out, a);
    }

    #[test]
    fn nested_parallel_terminals_run_inline_without_deadlock() {
        let _g = locked();
        set_active_threads(4);
        // A Vec producer treats every item as a work unit, so the outer
        // terminal really submits to the pool; the inner ones must detect
        // the parallel context and run inline instead of deadlocking.
        let outer: Vec<usize> = (0..64).collect();
        let total: u64 = outer
            .into_par_iter()
            .map(|_| {
                (0..10_000usize)
                    .into_par_iter()
                    .map(|j| j as u64)
                    .sum::<u64>()
            })
            .sum();
        set_active_threads(0);
        assert_eq!(total, 64 * (9_999 * 10_000 / 2));
    }

    #[test]
    fn thread_count_override_roundtrip() {
        let _g = locked();
        set_active_threads(3);
        assert_eq!(current_num_threads(), 3);
        set_active_threads(0);
        assert!(current_num_threads() >= 1);
    }
}
