//! Minimal offline stand-in for the subset of `rayon` 1.x this workspace
//! uses. "Parallel iterators" here wrap plain sequential iterators; the
//! side-effecting terminals (`for_each`, `for_each_init`) fan work out over
//! scoped OS threads when the item count is large enough to amortize spawn
//! cost, so concurrent code paths (atomic maps, shared-slice kernels) are
//! still exercised under real parallelism. Value-producing terminals
//! (`map`/`reduce`/`sum`/`collect`) run sequentially — same results, simpler
//! code, and the simulator's modeled device time never depends on host
//! parallelism.

use std::ops::Range;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Below this many items a terminal runs sequentially; above it, work is
/// split so each spawned thread gets at least this many items.
const ITEMS_PER_THREAD: usize = 2048;

fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

pub struct Par<I: Iterator>(I);

pub trait IntoParallelIterator {
    type Item;
    type IntoIter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> Par<Self::IntoIter>;
}

impl<I: Iterator> IntoParallelIterator for Par<I> {
    type Item = I::Item;
    type IntoIter = I;
    fn into_par_iter(self) -> Par<I> {
        self
    }
}

impl<T> IntoParallelIterator for Range<T>
where
    Range<T>: Iterator<Item = T>,
{
    type Item = T;
    type IntoIter = Range<T>;
    fn into_par_iter(self) -> Par<Range<T>> {
        Par(self)
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> Par<std::vec::IntoIter<T>> {
        Par(self.into_iter())
    }
}

pub trait ParallelSlice<T> {
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>>;
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>> {
        Par(self.iter())
    }
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>> {
        Par(self.chunks(chunk_size))
    }
}

pub trait ParallelSliceMut<T> {
    fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>> {
        Par(self.iter_mut())
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        Par(self.chunks_mut(chunk_size))
    }
}

impl<I: Iterator> Par<I> {
    pub fn map<O, F: Fn(I::Item) -> O>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    pub fn filter<P: Fn(&I::Item) -> bool>(self, p: P) -> Par<std::iter::Filter<I, P>> {
        Par(self.0.filter(p))
    }

    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }

    pub fn zip<J: IntoParallelIterator>(self, other: J) -> Par<std::iter::Zip<I, J::IntoIter>> {
        Par(self.0.zip(other.into_par_iter().0))
    }

    pub fn for_each<F>(self, f: F)
    where
        I::Item: Send,
        F: Fn(I::Item) + Sync,
    {
        run_spread(self.0.collect(), &|item| f(item));
    }

    pub fn for_each_init<T, INIT, F>(self, init: INIT, f: F)
    where
        I::Item: Send,
        INIT: Fn() -> T + Sync,
        F: Fn(&mut T, I::Item) + Sync,
    {
        let items: Vec<I::Item> = self.0.collect();
        let chunks = split_chunks(items);
        if chunks.len() == 1 {
            let mut state = init();
            for item in chunks.into_iter().flatten() {
                f(&mut state, item);
            }
            return;
        }
        std::thread::scope(|scope| {
            for chunk in chunks {
                let (init, f) = (&init, &f);
                scope.spawn(move || {
                    let mut state = init();
                    for item in chunk {
                        f(&mut state, item);
                    }
                });
            }
        });
    }

    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    pub fn count(self) -> usize {
        self.0.count()
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }
}

/// Split an item vector into per-thread chunks (possibly just one).
fn split_chunks<T>(items: Vec<T>) -> Vec<Vec<T>> {
    let threads = (items.len() / ITEMS_PER_THREAD).clamp(1, max_threads());
    if threads == 1 {
        return vec![items];
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut rest = items;
    let mut chunks = Vec::with_capacity(threads);
    while rest.len() > chunk_len {
        let tail = rest.split_off(rest.len() - chunk_len);
        chunks.push(tail);
    }
    chunks.push(rest);
    chunks
}

fn run_spread<T: Send>(items: Vec<T>, f: &(impl Fn(T) + Sync)) {
    let chunks = split_chunks(items);
    if chunks.len() == 1 {
        for item in chunks.into_iter().flatten() {
            f(item);
        }
        return;
    }
    std::thread::scope(|scope| {
        for chunk in chunks {
            scope.spawn(move || {
                for item in chunk {
                    f(item);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn for_each_covers_every_index_in_parallel() {
        let n = 40_000usize;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        (0..n).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_reduce_and_chunked_zip_match_sequential() {
        let n = 10_000u64;
        let total: u64 = (0..n as usize)
            .into_par_iter()
            .map(|i| i as u64)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, n * (n - 1) / 2);

        let input: Vec<u64> = (0..n).collect();
        let mut out = vec![0u64; input.len()];
        out.par_chunks_mut(128)
            .zip(input.par_chunks(128))
            .for_each(|(o, i)| {
                o.copy_from_slice(i);
            });
        assert_eq!(out, input);
    }
}
