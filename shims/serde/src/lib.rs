//! Offline placeholder for `serde`. It exists only so that the optional,
//! default-off `serde` feature of `ckpt-hash` resolves without touching the
//! network. The derive macros are not provided; enabling that feature in an
//! offline build is unsupported and will fail to compile.
