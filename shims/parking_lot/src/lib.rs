//! Minimal offline stand-in for the subset of `parking_lot` 0.12 used here:
//! a non-poisoning `Mutex` and a `Condvar` whose `wait_for` takes the guard
//! by `&mut` (unlike std's by-value `wait_timeout`). Backed by std; poison
//! errors are unwrapped into the inner guard, matching parking_lot's
//! poison-free behaviour.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard invariant")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard invariant")
    }
}

#[derive(Default)]
pub struct Condvar(sync::Condvar);

#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard invariant");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard invariant");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}
