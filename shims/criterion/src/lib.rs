//! Minimal offline stand-in for the subset of `criterion` 0.5 used by this
//! workspace's benches. It runs each benchmark a small, fixed number of
//! iterations and prints mean wall time — enough to compare runs by eye and
//! to keep `cargo bench` compiling and running without network access.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLES: usize = 10;

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, f);
        self
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(&label, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    // One warmup sample, then the measured ones.
    f(&mut b);
    b.elapsed = Duration::ZERO;
    b.iterations = 0;
    for _ in 0..samples {
        f(&mut b);
    }
    let per_iter = if b.iterations > 0 {
        b.elapsed.as_secs_f64() / b.iterations as f64
    } else {
        0.0
    };
    println!(
        "bench {label:<48} {:>12.3} µs/iter  ({} iters)",
        per_iter * 1e6,
        b.iterations
    );
}

pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Debug)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{param}", name.into()),
        }
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}
