//! Per-test configuration and the deterministic test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Outcome of a single generated case (used by the `proptest!` expansion).
pub enum CaseResult {
    Pass,
    Reject,
}

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Deterministic per-test RNG: seeded from a hash of the fully-qualified
/// test name, XORed with `PROPTEST_SEED` when set so failures can be
/// explored from other starting points.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test path gives a stable, distinct seed per test.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(s) = seed.parse::<u64>() {
                h ^= s;
            }
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}
