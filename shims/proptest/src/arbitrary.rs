//! `any::<T>()` — the full-domain strategy for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

pub trait Arbitrary: Sized + std::fmt::Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng().gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen::<f64>()
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
