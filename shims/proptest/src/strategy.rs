//! Value-generation strategies. No shrinking: a strategy is just a way to
//! sample one value from the test RNG.

use crate::test_runner::TestRng;
use rand::Rng;

pub trait Strategy {
    type Value: std::fmt::Debug;

    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// References to strategies sample like the strategy itself (the real crate
/// has this too, and the `proptest!` macro relies on it).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample_value(rng)
    }
}

/// Object-safe sampling facade behind `BoxedStrategy`.
trait DynStrategy {
    type Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value {
        self.sample_value(rng)
    }
}

pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

impl<V: std::fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample_value(&self, rng: &mut TestRng) -> V {
        self.0.sample_dyn(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample_value(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.sample_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter: no value satisfied '{}' after 1024 tries",
            self.whence
        );
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        Union(alternatives)
    }
}

impl<V: std::fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn sample_value(&self, rng: &mut TestRng) -> V {
        let pick = rng.rng().gen_range(0..self.0.len());
        self.0[pick].sample_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
