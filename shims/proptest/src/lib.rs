//! Minimal offline stand-in for the subset of `proptest` 1.x this workspace
//! uses: the `proptest!` macro, `Strategy` with `prop_map`/`boxed`, integer
//! ranges and `any::<T>()` strategies, `Just`, `prop_oneof!`,
//! `prop::collection::vec`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//! - no shrinking — on failure the generated inputs are printed verbatim;
//! - value generation is plain random sampling from a deterministic
//!   per-test seed (override with `PROPTEST_SEED`);
//! - `ProptestConfig` only honours `cases`.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror so `prop::collection::vec(...)` resolves after a
    /// glob import of the prelude, as in the real crate.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Assertion macros: without shrinking there is nothing to propagate, so
/// they lower directly onto the std assertions.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return $crate::test_runner::CaseResult::Reject;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return $crate::test_runner::CaseResult::Reject;
        }
    };
}

/// Weightless `prop_oneof![a, b, ...]`: uniform choice among the arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The `proptest!` block macro. Supports an optional leading
/// `#![proptest_config(...)]` and one or more `#[test] fn name(arg in
/// strategy, ...) { body }` items (args must be plain identifiers).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut case = 0u32;
            let mut rejected = 0u32;
            while case < config.cases {
                $(let $arg = $crate::strategy::Strategy::sample_value(&$strat, &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    || -> $crate::test_runner::CaseResult {
                        $body
                        #[allow(unreachable_code)]
                        return $crate::test_runner::CaseResult::Pass;
                    },
                ));
                match outcome {
                    Ok($crate::test_runner::CaseResult::Pass) => case += 1,
                    Ok($crate::test_runner::CaseResult::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(64).max(1024),
                            "proptest: too many prop_assume! rejections in {}",
                            stringify!($name),
                        );
                    }
                    Err(payload) => {
                        eprintln!(
                            "proptest case {case} of {} failed with inputs: {inputs}",
                            stringify!($name),
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
