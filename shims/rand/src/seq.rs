//! Slice helpers (`shuffle`).

use crate::Rng;

pub trait SliceRandom {
    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}
