//! Minimal offline stand-in for the subset of the `rand` 0.8 API this
//! workspace uses: `StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen,
//! gen_range, gen_bool}` and `seq::SliceRandom::shuffle`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed, statistically solid for test workloads, and entirely
//! dependency-free so the workspace builds without network access.

pub mod rngs;
pub mod seq;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable construction; only the `seed_from_u64` entry point is used here.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling of a "standard" value for `Rng::gen`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types `gen_range` can sample uniformly. Mirrors real rand's structure:
/// `SampleRange<T>` below has exactly one blanket impl per range form, which
/// is what lets type inference unify an integer-literal range with the
/// surrounding expression's type.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range form accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// User-facing convenience methods, blanket-implemented for any `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::sample_standard(self) < p
    }

    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
