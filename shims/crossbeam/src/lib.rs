//! Minimal offline stand-in for the subset of `crossbeam` 0.8 used here:
//! `crossbeam::channel::{unbounded, bounded, Sender, Receiver}`. Backed by
//! `std::sync::mpsc`, which (since Rust 1.72) has a `Sync` `Sender` and
//! matching `send`/`recv`/`iter` semantics for this workspace's usage.
//!
//! One divergence: real crossbeam has a single `Sender` type for bounded
//! and unbounded channels; std splits them, so [`channel::bounded`] returns
//! the re-exported [`channel::SyncSender`] (same `send`-blocks-when-full
//! contract as crossbeam's bounded sender).

pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, SyncSender, TryRecvError,
    };

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    /// A channel holding at most `cap` queued messages; `send` blocks while
    /// full. `cap = 1` is the double-buffer handoff used by the checkpoint
    /// pipeline.
    pub fn bounded<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}
