//! Minimal offline stand-in for the subset of `crossbeam` 0.8 used here:
//! `crossbeam::channel::{unbounded, Sender, Receiver}`. Backed by
//! `std::sync::mpsc`, which (since Rust 1.72) has a `Sync` `Sender` and
//! matching `send`/`recv`/`iter` semantics for this workspace's usage.

pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}
