//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures <experiment> [--scale N] [--rank-scale N] [--seed N]
//!
//! experiments:
//!   table1            input-graph inventory
//!   fig2              compact-metadata worked example
//!   fig4              chunk-size sweep (ratio + throughput)
//!   fig5              checkpoint-frequency sweep incl. compressors
//!   fig6              strong scaling 1..64 ranks, Tree vs Full
//!   hybrid            E1: dedup + payload compression (paper §5)
//!   highfreq          E2: producer stall under storage backpressure (§1)
//!   streaming         E3: checkpoint-level compute/transfer pipelining (§5)
//!   adjoint           E5: adjoint reversal, revolve vs dedup store (§5)
//!   host_scaling      scale x thread-count sweep of the persistent host
//!                     pool (writes BENCH_host_scaling.json; see --scales)
//!   restart_latency   sequential replay vs single-pass parallel restart,
//!                     chain length x method x threads (writes
//!                     BENCH_restart_latency.json; see --chain-lens)
//!   flush_pipeline    compressed-tier flush sweep, method x compression
//!                     policy x threads (writes BENCH_flush_pipeline.json;
//!                     see --scales / --threads)
//!   redundancy        cross-rank redundancy groups: throughput overhead
//!                     and rank-loss restore latency vs PFS-only recovery,
//!                     method x policy (writes BENCH_redundancy.json)
//!   rank_dedup        cluster-wide dedup index: stored bytes and restore
//!                     digests, policy x rank-dedup on/off over 4 ranks
//!                     with overlapping working sets (writes
//!                     BENCH_rank_dedup.json)
//!   ablation-hash     A1: Murmur3 vs MD5
//!   ablation-metadata A2: Tree vs List metadata
//!   ablation-waves    A3: two-stage vs naive wave ordering
//!   ablation-gorder   A4: Gorder on/off
//!   all               everything above
//! ```

use ckpt_bench::experiments::{self, ExpConfig};
use ckpt_bench::report;

fn usage() -> ! {
    eprintln!(
        "usage: figures <table1|fig2|fig4|fig5|fig6|hybrid|highfreq|streaming|adjoint|host_scaling|restart_latency|\
         flush_pipeline|redundancy|rank_dedup|ablation-hash|ablation-metadata|ablation-waves|ablation-gorder|ablation-fusion|all> \
         [--scale N] [--scales A,B,C] [--threads A,B,C] [--chain-lens A,B] [--rank-scale N] [--coverage F] \
         [--seed N] [--json-out PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let what = args[0].clone();
    let mut cfg = ExpConfig::default();
    let mut rank_scale = 4_000usize;
    let mut coverage = ckpt_bench::workload::SCALING_COVERAGE;
    let mut json_out: Option<String> = None;
    let mut scales: Option<Vec<usize>> = None;
    let mut threads: Vec<usize> = experiments::FLUSH_PIPELINE_THREADS.to_vec();
    let mut chain_lens: Vec<usize> = experiments::RESTART_CHAIN_LENS.to_vec();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                cfg.scale = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--rank-scale" => {
                rank_scale = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--coverage" => {
                coverage = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--scales" => {
                scales = Some(
                    args.get(i + 1)
                        .map(|v| {
                            v.split(',')
                                .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                                .collect()
                        })
                        .filter(|v: &Vec<usize>| !v.is_empty())
                        .unwrap_or_else(|| usage()),
                );
                i += 2;
            }
            "--threads" => {
                threads = args
                    .get(i + 1)
                    .map(|v| {
                        v.split(',')
                            .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                            .collect()
                    })
                    .filter(|v: &Vec<usize>| !v.is_empty())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--chain-lens" => {
                chain_lens = args
                    .get(i + 1)
                    .map(|v| {
                        v.split(',')
                            .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                            .collect()
                    })
                    .filter(|v: &Vec<usize>| !v.is_empty())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--json-out" => {
                json_out = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            "--seed" => {
                cfg.seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            _ => usage(),
        }
    }

    let t0 = std::time::Instant::now();
    let all = what == "all";
    let mut ran = false;
    let mut run = |name: &str, f: &mut dyn FnMut() -> String| {
        if all || what == name {
            println!("==== {name} ====");
            println!("{}", f());
            ran = true;
        }
    };

    run("table1", &mut || {
        report::render_table1(&experiments::table1(cfg))
    });
    run("fig2", &mut || {
        report::render_fig2(&experiments::fig2_demo())
    });
    run("fig4", &mut || report::render_fig4(&experiments::fig4(cfg)));
    run("fig5", &mut || {
        let cells = experiments::fig5(cfg);
        let json = report::render_fig5_json(&cells);
        let out = json_out.clone().unwrap_or_else(|| "BENCH_fig5.json".into());
        std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
        let mut text = report::render_fig5(&cells);
        text.push_str(&format!("wrote {out}\n"));
        text
    });
    run("fig6", &mut || {
        report::render_fig6(&experiments::fig6_with_ranks(
            rank_scale,
            cfg.seed,
            &experiments::FIG6_RANKS,
            coverage,
        ))
    });
    run("hybrid", &mut || {
        report::render_hybrid(&experiments::hybrid(cfg))
    });
    run("highfreq", &mut || {
        report::render_highfreq(&experiments::highfreq(cfg))
    });
    run("streaming", &mut || {
        report::render_streaming(&experiments::streaming(cfg))
    });
    run("adjoint", &mut || {
        report::render_adjoint(&experiments::adjoint(cfg))
    });
    run("host_scaling", &mut || {
        let scales = scales
            .clone()
            .unwrap_or_else(|| experiments::HOST_SCALING_SCALES.to_vec());
        let rep = experiments::host_scaling_at(&scales, cfg.seed);
        let json = report::render_host_scaling_json(&rep);
        let out = json_out
            .clone()
            .unwrap_or_else(|| "BENCH_host_scaling.json".into());
        std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
        let mut text = report::render_host_scaling(&rep);
        text.push_str(&format!("wrote {out}\n"));
        text
    });
    run("restart_latency", &mut || {
        let rep = experiments::restart_latency_at(&chain_lens, cfg.scale, cfg.seed);
        let json = report::render_restart_latency_json(&rep);
        let out = json_out
            .clone()
            .unwrap_or_else(|| "BENCH_restart_latency.json".into());
        std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
        let mut text = report::render_restart_latency(&rep);
        text.push_str(&format!("wrote {out}\n"));
        text
    });
    run("flush_pipeline", &mut || {
        let scales = scales
            .clone()
            .unwrap_or_else(|| experiments::FLUSH_PIPELINE_SCALES.to_vec());
        let rep = experiments::flush_pipeline_at(&scales, cfg.seed, &threads);
        let json = report::render_flush_pipeline_json(&rep);
        let out = json_out
            .clone()
            .unwrap_or_else(|| "BENCH_flush_pipeline.json".into());
        std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
        let mut text = report::render_flush_pipeline(&rep);
        text.push_str(&format!("wrote {out}\n"));
        text
    });
    run("redundancy", &mut || {
        let scale = scales
            .clone()
            .and_then(|s| s.first().copied())
            .unwrap_or(experiments::REDUNDANCY_SCALE);
        let rep = experiments::redundancy_at(scale, cfg.seed);
        let json = report::render_redundancy_json(&rep);
        let out = json_out
            .clone()
            .unwrap_or_else(|| "BENCH_redundancy.json".into());
        std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
        let mut text = report::render_redundancy(&rep);
        text.push_str(&format!("wrote {out}\n"));
        text
    });
    run("rank_dedup", &mut || {
        let scale = scales
            .clone()
            .and_then(|s| s.first().copied())
            .unwrap_or(experiments::RANK_DEDUP_SCALE);
        let rep = experiments::rank_dedup_at(scale, cfg.seed);
        let json = report::render_rank_dedup_json(&rep);
        let out = json_out
            .clone()
            .unwrap_or_else(|| "BENCH_rank_dedup.json".into());
        std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
        let mut text = report::render_rank_dedup(&rep);
        text.push_str(&format!("wrote {out}\n"));
        text
    });
    run("ablation-hash", &mut || {
        report::render_hash(&experiments::ablation_hash(cfg))
    });
    run("ablation-metadata", &mut || {
        report::render_metadata(&experiments::ablation_metadata(cfg))
    });
    run("ablation-waves", &mut || {
        report::render_waves(&experiments::ablation_waves(cfg))
    });
    run("ablation-gorder", &mut || {
        report::render_gorder(&experiments::ablation_gorder(cfg))
    });
    run("ablation-fusion", &mut || {
        report::render_fusion(&experiments::ablation_fusion(cfg))
    });

    if !ran {
        usage();
    }
    eprintln!("[figures] completed in {:.1}s", t0.elapsed().as_secs_f64());
}
