//! Compressor baselines as checkpoint runners (the nvCOMP rows of Fig. 5).
//!
//! Each checkpoint is compressed independently — compression sees only
//! *spatial* redundancy within one snapshot, never the record's temporal
//! redundancy, which is the structural disadvantage Figure 5 demonstrates.
//! Modeled GPU time = a compression kernel (roofline with the codec's
//! flop/byte cost) plus one device-to-host transfer of the compressed bytes,
//! mirroring how the de-duplication methods are accounted.

use ckpt_compress::Codec;
use ckpt_telemetry::{StageBreakdown, StageSample};
use gpu_sim::{Device, KernelCost};

/// Aggregate result of running one method over a snapshot sequence —
/// the common currency of every figure.
#[derive(Debug, Clone)]
pub struct MeasuredRecord {
    pub name: String,
    /// Σ original bytes (excluding-first aggregation already applied where
    /// the experiment calls for it).
    pub uncompressed: u64,
    /// Σ stored bytes.
    pub stored: u64,
    /// Σ metadata bytes (0 for compressors / Full).
    pub metadata: u64,
    pub modeled_sec: f64,
    pub measured_sec: f64,
    /// Stage-wise sum of the per-checkpoint breakdowns (same aggregation
    /// window as the scalar fields). Compressors report one `total` stage.
    pub breakdown: StageBreakdown,
}

impl MeasuredRecord {
    pub fn ratio(&self) -> f64 {
        self.uncompressed as f64 / self.stored.max(1) as f64
    }

    pub fn modeled_throughput(&self) -> f64 {
        self.uncompressed as f64 / self.modeled_sec.max(1e-12)
    }

    pub fn measured_throughput(&self) -> f64 {
        self.uncompressed as f64 / self.measured_sec.max(1e-12)
    }
}

/// Run a compressor over a snapshot sequence. `skip_first` drops the initial
/// checkpoint from the aggregate (§3.2's frequency-scenario aggregation).
pub fn run_codec(codec: &dyn Codec, snapshots: &[Vec<u8>], skip_first: bool) -> MeasuredRecord {
    let device = Device::a100();
    let mut uncompressed = 0u64;
    let mut stored = 0u64;
    let mut modeled = 0.0f64;
    let mut measured = 0.0f64;
    for (k, snap) in snapshots.iter().enumerate() {
        let before = device.metrics().modeled_sec();
        let t0 = std::time::Instant::now();
        let packed = codec.compress(snap);
        let wall = t0.elapsed().as_secs_f64();
        // Model the GPU compression kernel + consolidated transfer.
        let cost = KernelCost {
            bytes_read: snap.len() as u64,
            bytes_written: packed.len() as u64,
            flops: (snap.len() as f64 * codec.flops_per_byte()) as u64,
        };
        device.parallel_for("compress", 0, cost, |_| {});
        device.account_d2h_bytes(packed.len() as u64);
        if skip_first && k == 0 {
            continue;
        }
        uncompressed += snap.len() as u64;
        stored += packed.len() as u64;
        modeled += device.metrics().modeled_sec() - before;
        measured += wall;
    }
    MeasuredRecord {
        name: codec.name().to_string(),
        uncompressed,
        stored,
        metadata: 0,
        modeled_sec: modeled,
        measured_sec: measured,
        breakdown: StageBreakdown {
            method: codec.name().to_string(),
            ckpt_id: 0,
            stages: vec![StageSample {
                name: "total",
                measured_sec: measured,
                modeled_sec: modeled,
            }],
            total_measured_sec: measured,
            total_modeled_sec: modeled,
        },
    }
}

/// Run a de-duplication method over a snapshot sequence into the same
/// currency as [`run_codec`].
pub fn run_dedup(
    method: &mut dyn ckpt_dedup::Checkpointer,
    name: &str,
    snapshots: &[Vec<u8>],
    skip_first: bool,
) -> MeasuredRecord {
    let mut uncompressed = 0u64;
    let mut stored = 0u64;
    let mut metadata = 0u64;
    let mut modeled = 0.0f64;
    let mut measured = 0.0f64;
    let mut breakdown = StageBreakdown::default();
    for (k, snap) in snapshots.iter().enumerate() {
        let out = method.checkpoint(snap);
        if skip_first && k == 0 {
            continue;
        }
        uncompressed += out.stats.uncompressed_bytes;
        stored += out.stats.stored_bytes;
        metadata += out.stats.metadata_bytes;
        modeled += out.stats.modeled_sec;
        measured += out.stats.measured_sec;
        breakdown.accumulate(&out.breakdown);
    }
    breakdown.method = name.to_string();
    MeasuredRecord {
        name: name.to_string(),
        uncompressed,
        stored,
        metadata,
        modeled_sec: modeled,
        measured_sec: measured,
        breakdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_compress::ZstdLike;
    use ckpt_dedup::prelude::*;

    fn snapshots() -> Vec<Vec<u8>> {
        // Slowly mutating buffer: dedup-friendly and compressible.
        let mut data: Vec<u8> = (0..32_768u32).map(|i| ((i / 64) % 40) as u8).collect();
        let mut out = vec![data.clone()];
        for k in 1..4 {
            for j in 0..16 {
                data[k * 1000 + j * 8] ^= 0x11;
            }
            out.push(data.clone());
        }
        out
    }

    #[test]
    fn codec_record_accounts_all_checkpoints() {
        let snaps = snapshots();
        let rec = run_codec(&ZstdLike::default(), &snaps, false);
        assert_eq!(rec.uncompressed, (snaps.len() * snaps[0].len()) as u64);
        assert!(rec.ratio() > 2.0);
        assert!(rec.modeled_sec > 0.0);

        let rec_skip = run_codec(&ZstdLike::default(), &snaps, true);
        assert_eq!(
            rec_skip.uncompressed,
            ((snaps.len() - 1) * snaps[0].len()) as u64
        );
    }

    #[test]
    fn dedup_beats_compression_on_temporal_redundancy() {
        let snaps = snapshots();
        let zstd = run_codec(&ZstdLike::default(), &snaps, true);
        let mut tree = TreeCheckpointer::new(gpu_sim::Device::a100(), TreeConfig::new(64));
        let dedup = run_dedup(&mut tree, "Tree", &snaps, true);
        assert!(
            dedup.ratio() > zstd.ratio(),
            "tree {:.1} vs zstd {:.1} on near-identical snapshots",
            dedup.ratio(),
            zstd.ratio()
        );
    }
}
