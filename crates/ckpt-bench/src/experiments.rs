//! Experiment drivers: one function per paper table/figure plus ablations.
//!
//! Each returns plain data; `report` renders it and the `figures` binary
//! wires both to the command line. Absolute numbers differ from the paper's
//! A100 testbed (see `EXPERIMENTS.md`), but each driver reproduces the
//! *design* of its experiment: same sweeps, same baselines, same
//! aggregation rules.

use crate::codecs::{run_codec, run_dedup, MeasuredRecord};
use crate::workload::gdv_snapshots;
use ckpt_compress::all_codecs;
use ckpt_dedup::prelude::*;
use ckpt_graph::{GraphStats, PaperGraph};
use ckpt_runtime::{run_scaling, AsyncRuntime, RebasePolicy, ScalingConfig, ScalingMethod};
use gpu_sim::Device;

/// Shared experiment knobs (scaled-down defaults; the paper's 11–18 M-vertex
/// graphs become `scale`-vertex synthetic stand-ins).
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Target vertex count per graph.
    pub scale: usize,
    /// RNG seed for generators.
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale: 20_000,
            seed: 42,
        }
    }
}

/// The four de-duplication methods of Figures 4–5, in legend order.
fn dedup_methods(chunk: usize) -> Vec<(&'static str, Box<dyn Checkpointer>)> {
    vec![
        (
            "Full",
            Box::new(FullCheckpointer::new(Device::a100(), chunk)) as Box<dyn Checkpointer>,
        ),
        (
            "Basic",
            Box::new(BasicCheckpointer::new(Device::a100(), chunk)),
        ),
        (
            "List",
            Box::new(ListCheckpointer::new(
                Device::a100(),
                TreeConfig::new(chunk),
            )),
        ),
        (
            "Tree",
            Box::new(TreeCheckpointer::new(
                Device::a100(),
                TreeConfig::new(chunk),
            )),
        ),
    ]
}

// ---------------------------------------------------------------- Table 1

/// One row of Table 1: the original graph's published size next to the
/// synthetic stand-in actually used.
#[derive(Debug)]
pub struct Table1Row {
    pub graph: PaperGraph,
    pub paper_vertices: u64,
    pub paper_arcs: u64,
    pub paper_gdv_bytes: u64,
    pub generated: GraphStats,
    pub generated_gdv_bytes: u64,
}

pub fn table1(cfg: ExpConfig) -> Vec<Table1Row> {
    PaperGraph::all()
        .into_iter()
        .map(|pg| {
            let g = pg.generate(cfg.scale, cfg.seed);
            let stats = GraphStats::compute(&g);
            let gdv = (stats.n_vertices * ckpt_oranges::N_ORBITS * 4) as u64;
            let (v, a, gdvp) = pg.table1_row();
            Table1Row {
                graph: pg,
                paper_vertices: v,
                paper_arcs: a,
                paper_gdv_bytes: gdvp,
                generated: stats,
                generated_gdv_bytes: gdv,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Figure 4

/// One (graph, chunk-size) cell: all four methods measured.
#[derive(Debug)]
pub struct Fig4Cell {
    pub graph: PaperGraph,
    pub chunk_size: usize,
    pub methods: Vec<MeasuredRecord>,
}

/// Chunk sizes swept by Figure 4.
pub const FIG4_CHUNKS: [usize; 5] = [32, 64, 128, 256, 512];

/// Checkpoints per run in the chunk-size scenario.
pub const FIG4_CHECKPOINTS: usize = 10;

/// Figure 4: impact of chunk size on ratio and throughput, per graph.
pub fn fig4(cfg: ExpConfig) -> Vec<Fig4Cell> {
    let mut out = Vec::new();
    for graph in PaperGraph::single_process() {
        // One ORANGES run per graph, reused across every chunk size and
        // method (only the checkpointing side varies).
        let w = gdv_snapshots(graph, cfg.scale, FIG4_CHECKPOINTS, cfg.seed, true);
        for chunk in FIG4_CHUNKS {
            // The chunk-size scenario aggregates the whole record (the
            // frequency scenario is the one that excludes the initial
            // checkpoint, §3.2).
            let methods = dedup_methods(chunk)
                .into_iter()
                .map(|(name, mut m)| run_dedup(&mut *m, name, &w.snapshots, false))
                .collect();
            out.push(Fig4Cell {
                graph,
                chunk_size: chunk,
                methods,
            });
        }
    }
    out
}

// ---------------------------------------------------------------- Figure 5

/// One (graph, N) cell of Figure 5: dedup methods plus nvCOMP-style codecs.
#[derive(Debug)]
pub struct Fig5Cell {
    pub graph: PaperGraph,
    pub n_checkpoints: usize,
    pub methods: Vec<MeasuredRecord>,
}

/// Checkpoint counts swept by Figure 5.
pub const FIG5_COUNTS: [usize; 3] = [5, 10, 20];

/// Chunk size used in the frequency scenario.
pub const FIG5_CHUNK: usize = 128;

/// Hybrid series added to Figure 5: the Tree method with its
/// first-occurrence payloads compressed by these codecs — the composed
/// dedup+compression data point next to the paper's either/or comparison.
pub const FIG5_HYBRID_CODECS: [&str; 2] = ["zstd", "cascaded"];

/// Figure 5: impact of checkpoint frequency; compressors and the hybrid
/// `Tree+codec` series included.
pub fn fig5(cfg: ExpConfig) -> Vec<Fig5Cell> {
    let mut out = Vec::new();
    for graph in PaperGraph::single_process() {
        for n in FIG5_COUNTS {
            let w = gdv_snapshots(graph, cfg.scale, n, cfg.seed, true);
            let mut methods: Vec<MeasuredRecord> = dedup_methods(FIG5_CHUNK)
                .into_iter()
                .map(|(name, mut m)| run_dedup(&mut *m, name, &w.snapshots, true))
                .collect();
            for codec in FIG5_HYBRID_CODECS {
                let cfg_c = TreeConfig::new(FIG5_CHUNK).with_payload_codec(codec);
                let mut m = TreeCheckpointer::new(Device::a100(), cfg_c);
                methods.push(run_dedup(
                    &mut m,
                    &format!("Tree+{codec}"),
                    &w.snapshots,
                    true,
                ));
            }
            for codec in all_codecs() {
                methods.push(run_codec(&*codec, &w.snapshots, true));
            }
            out.push(Fig5Cell {
                graph,
                n_checkpoints: n,
                methods,
            });
        }
    }
    out
}

// ---------------------------------------------------------------- Figure 6

/// One rank-count point of the strong-scaling experiment.
#[derive(Debug)]
pub struct Fig6Point {
    pub n_ranks: usize,
    pub method: ScalingMethod,
    pub total_stored: u64,
    pub total_full: u64,
    pub modeled_throughput: f64,
    pub measured_throughput: f64,
}

/// Rank counts swept by Figure 6.
pub const FIG6_RANKS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Checkpoints per process in the scaling scenario.
pub const FIG6_CHECKPOINTS: usize = 10;

/// Figure 6: strong scaling, Tree vs Full on Delaunay.
///
/// `per_rank_scale` is the vertex count of each rank's partition (the
/// paper's per-GPU share of Delaunay N24).
pub fn fig6(per_rank_scale: usize, seed: u64) -> Vec<Fig6Point> {
    fig6_with_ranks(
        per_rank_scale,
        seed,
        &FIG6_RANKS,
        crate::workload::SCALING_COVERAGE,
    )
}

/// [`fig6`] over a custom rank sweep and run coverage (tests use short
/// sweeps; the coverage knob models how early in the long Delaunay run the
/// paper's 10-minute checkpoint interval samples).
pub fn fig6_with_ranks(
    per_rank_scale: usize,
    seed: u64,
    ranks: &[usize],
    coverage: f64,
) -> Vec<Fig6Point> {
    use crate::workload::scaling_snapshots_with_coverage;
    let mut out = Vec::new();
    for &n_ranks in ranks {
        // Pre-generate workloads outside the timed region, in parallel.
        let snapshots: Vec<Vec<Vec<u8>>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n_ranks as u32)
                .map(|r| {
                    s.spawn(move || {
                        scaling_snapshots_with_coverage(
                            r,
                            per_rank_scale,
                            FIG6_CHECKPOINTS,
                            seed,
                            coverage,
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for method in [ScalingMethod::Tree, ScalingMethod::Full] {
            let rt = std::sync::Arc::new(AsyncRuntime::new());
            let cfg = ScalingConfig {
                method,
                n_ranks,
                gpus_per_node: 8,
                chunk_size: 128,
                rebase: RebasePolicy::Never,
            };
            let report = run_scaling(cfg, &rt, |rank| snapshots[rank as usize].clone());
            out.push(Fig6Point {
                n_ranks,
                method,
                total_stored: report.total_stored_bytes,
                total_full: report.total_full_bytes,
                modeled_throughput: report.modeled_throughput(),
                measured_throughput: report.measured_throughput(),
            });
        }
    }
    out
}

// ---------------------------------------------------------- Host scaling

/// One thread-count point of the host-throughput sweep.
#[derive(Debug)]
pub struct HostScalingPoint {
    pub threads: usize,
    /// Measured CPU wall time for the whole checkpoint record.
    pub wall_sec: f64,
    /// Wall time with every top-level parallel region's real duration
    /// replaced by its work/span makespan bound `max(W/k, S)` at this
    /// point's thread count `k` (see the rayon shim's `host_clock` module).
    /// This is the scaling signal on oversubscribed containers, where the
    /// pool has `k` workers but the host may have fewer physical cores.
    pub host_modeled_sec: f64,
    /// Real wall seconds the instrumented parallel regions took.
    pub real_parallel_sec: f64,
    /// Their modeled `max(W/k, S)` replacement.
    pub modeled_parallel_sec: f64,
    /// Modeled device time for the same record (thread-count independent).
    pub modeled_sec: f64,
    pub stored_bytes: u64,
    /// Order-sensitive Murmur3 digest chained over every encoded diff;
    /// equal digests mean bit-identical checkpoint records.
    pub record_digest: (u64, u64),
    /// Per-stage totals over the record: (stage, measured wall sec,
    /// modeled device sec), in pipeline order.
    pub stages: Vec<(String, f64, f64)>,
}

/// One swept problem size of the host-throughput sweep.
#[derive(Debug)]
pub struct HostScalingScale {
    pub scale: usize,
    pub snapshot_bytes: usize,
    pub points: Vec<HostScalingPoint>,
}

impl HostScalingScale {
    /// True when every thread count produced bit-identical checkpoints.
    pub fn bit_identical(&self) -> bool {
        self.points
            .windows(2)
            .all(|w| w[0].record_digest == w[1].record_digest)
    }

    /// Host-modeled speedup of `p` over this scale's 1-thread point.
    pub fn speedup_vs_1(&self, p: &HostScalingPoint) -> f64 {
        self.points[0].host_modeled_sec / p.host_modeled_sec.max(1e-12)
    }
}

/// The host-throughput sweep: Tree-method host time vs pool thread count,
/// across problem scales.
#[derive(Debug)]
pub struct HostScalingReport {
    pub n_checkpoints: usize,
    pub scales: Vec<HostScalingScale>,
}

impl HostScalingReport {
    pub fn bit_identical(&self) -> bool {
        self.scales.iter().all(|s| s.bit_identical())
    }
}

/// Checkpoints per (scale, thread-count) point in the host-scaling sweep.
pub const HOST_SCALING_CHECKPOINTS: usize = 8;

/// Thread counts swept (fixed so reports are comparable across machines;
/// the shim pool oversubscribes if the host has fewer cores).
pub const HOST_SCALING_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Default problem scales (graph vertices; one snapshot is `73 * 4` bytes
/// per vertex). Spans ~6 MiB to ~58 MiB snapshots.
pub const HOST_SCALING_SCALES: [usize; 3] = [20_000, 80_000, 200_000];

/// Host-throughput benchmark over the default scales. See
/// [`host_scaling_at`].
pub fn host_scaling(cfg: ExpConfig) -> HostScalingReport {
    host_scaling_at(&HOST_SCALING_SCALES, cfg.seed)
}

/// Host-throughput benchmark: for each problem scale, sweep the persistent
/// pool's thread count and measure the Tree method end-to-end over the GDV
/// workload. Modeled device time and checkpoint bytes must not move with
/// the thread count — only host time may.
///
/// One checkpointer persists per scale; each thread point restarts its
/// record via `reset_record`, so the sweep runs on warm arenas and a
/// generation-bumped hash map — the steady-state path. Encoding and
/// digesting the diffs happens outside the timed window (the digest is a
/// correctness check, not a pipeline stage).
pub fn host_scaling_at(scales: &[usize], seed: u64) -> HostScalingReport {
    use ckpt_hash::{Hasher128, Murmur3};
    use rayon::prelude::*;

    let hasher = Murmur3;
    let mut out = Vec::new();
    for &scale in scales {
        let w = gdv_snapshots(
            PaperGraph::MessageRace,
            scale,
            HOST_SCALING_CHECKPOINTS,
            seed,
            true,
        );
        let device = Device::a100();
        let mut m = TreeCheckpointer::new(device.clone(), TreeConfig::new(FIG5_CHUNK));
        // Warm-up record outside every timed window: the first pass over the
        // workload reserves the arena floors and sizes the hash map, so all
        // thread points below measure the same steady-state zero-allocation
        // path. Without this the first point sweeps a cold checkpointer and
        // its allocation cost masquerades as single-thread slowness.
        for snap in &w.snapshots {
            m.checkpoint(snap);
        }
        let mut points: Vec<HostScalingPoint> = Vec::new();
        for &threads in &HOST_SCALING_THREADS {
            rayon::set_active_threads(threads);
            // Warm the pool outside the timed region so worker spawns are
            // not billed to the first checkpoint.
            (0..(1usize << 16)).into_par_iter().for_each(|_| {});
            m.reset_record();

            rayon::host_clock_enable(true);
            let _ = rayon::host_clock_take();
            let before = device.metrics().snapshot();
            let mut stage_names: Vec<&'static str> = Vec::new();
            let mut stage_measured: Vec<f64> = Vec::new();
            let mut stage_modeled: Vec<f64> = Vec::new();
            let mut diffs = Vec::with_capacity(w.snapshots.len());
            let t0 = std::time::Instant::now();
            for snap in &w.snapshots {
                let out = m.checkpoint(snap);
                for s in &out.breakdown.stages {
                    match stage_names.iter().position(|n| *n == s.name) {
                        Some(i) => {
                            stage_measured[i] += s.measured_sec;
                            stage_modeled[i] += s.modeled_sec;
                        }
                        None => {
                            stage_names.push(s.name);
                            stage_measured.push(s.measured_sec);
                            stage_modeled.push(s.modeled_sec);
                        }
                    }
                }
                diffs.push(out.diff);
            }
            let wall_sec = t0.elapsed().as_secs_f64();
            let clock = rayon::host_clock_take();
            rayon::host_clock_enable(false);
            let after = device.metrics().snapshot();

            let mut stored = 0u64;
            let mut digest = hasher.hash(b"host_scaling");
            for diff in &diffs {
                stored += diff.stored_bytes() as u64;
                digest = hasher.combine(&digest, &hasher.hash(&diff.encode()));
            }
            points.push(HostScalingPoint {
                threads,
                wall_sec,
                host_modeled_sec: (wall_sec - clock.real_parallel_sec + clock.modeled_parallel_sec)
                    .max(0.0),
                real_parallel_sec: clock.real_parallel_sec,
                modeled_parallel_sec: clock.modeled_parallel_sec,
                modeled_sec: after.modeled_sec - before.modeled_sec,
                stored_bytes: stored,
                record_digest: (digest.h1, digest.h2),
                stages: stage_names
                    .iter()
                    .zip(stage_measured.iter().zip(stage_modeled.iter()))
                    .map(|(n, (&me, &mo))| (n.to_string(), me, mo))
                    .collect(),
            });
        }
        out.push(HostScalingScale {
            scale,
            snapshot_bytes: w.snapshot_bytes(),
            points,
        });
    }
    rayon::set_active_threads(0);
    HostScalingReport {
        n_checkpoints: HOST_SCALING_CHECKPOINTS,
        scales: out,
    }
}

// ---------------------------------------------------------- Restart latency

/// One thread-count point of the restart-latency sweep: sequential replay
/// vs the single-pass parallel restart engine over the same chain.
#[derive(Debug)]
pub struct RestartLatencyPoint {
    pub threads: usize,
    /// Wall time of the sequential full replay (thread-count independent;
    /// re-measured per point so both engines share a clock window).
    pub seq_wall_sec: f64,
    pub par_wall_sec: f64,
    /// Host-modeled time with shim-pool wall time swapped for modeled
    /// parallel time — the cross-machine comparable number.
    pub seq_host_modeled_sec: f64,
    pub par_host_modeled_sec: f64,
    /// Murmur3 digest of the restored latest snapshot, per engine; equal
    /// digests mean bit-identical restored bytes.
    pub seq_digest: (u64, u64),
    pub par_digest: (u64, u64),
    /// Records the single-pass walk actually visited (≤ chain length;
    /// shorter when a rebase record short-circuits the walk).
    pub records_visited: u32,
    /// Bytes the single-pass engine copied into the restored buffer.
    pub bytes_copied: u64,
}

/// One (method, chain-length) cell of the restart-latency sweep.
#[derive(Debug)]
pub struct RestartLatencyCell {
    pub method: &'static str,
    pub chain_len: usize,
    pub snapshot_bytes: usize,
    pub points: Vec<RestartLatencyPoint>,
}

impl RestartLatencyCell {
    /// True when both engines produced identical bytes at every thread
    /// count (one digest per cell — the chain is fixed across points).
    pub fn bit_identical(&self) -> bool {
        self.points.iter().all(|p| p.seq_digest == p.par_digest)
            && self
                .points
                .windows(2)
                .all(|w| w[0].par_digest == w[1].par_digest)
    }

    /// Host-modeled speedup of the parallel engine over the sequential
    /// replay at the same point.
    pub fn speedup(&self, p: &RestartLatencyPoint) -> f64 {
        p.seq_host_modeled_sec / p.par_host_modeled_sec.max(1e-12)
    }

    /// The cell's best speedup across the thread sweep.
    pub fn best_speedup(&self) -> f64 {
        self.points
            .iter()
            .map(|p| self.speedup(p))
            .fold(0.0, f64::max)
    }
}

/// The restart-latency sweep: chain length x method x pool threads.
#[derive(Debug)]
pub struct RestartLatencyReport {
    pub scale: usize,
    pub cells: Vec<RestartLatencyCell>,
}

impl RestartLatencyReport {
    pub fn bit_identical(&self) -> bool {
        self.cells.iter().all(|c| c.bit_identical())
    }
}

/// Chain lengths swept by [`restart_latency_at`]: a short chain where the
/// walk overhead shows, and the paper-shaped 32-record chain the ≥2x
/// speedup acceptance gate runs against.
pub const RESTART_CHAIN_LENS: [usize; 2] = [8, 32];

/// Restart-latency benchmark over the default chain lengths. See
/// [`restart_latency_at`].
pub fn restart_latency(cfg: ExpConfig) -> RestartLatencyReport {
    restart_latency_at(&RESTART_CHAIN_LENS, cfg.scale, cfg.seed)
}

/// Restart-latency benchmark: for each (chain length, method) cell, build
/// a checkpoint chain over the GDV workload, then sweep the persistent
/// pool's thread count restoring the *latest* version two ways — the
/// sequential full replay (`restore_latest`) and the single-pass parallel
/// engine (`restore_latest_single_pass`). Both run inside host-clock
/// windows so shim-pool wall time is swapped for modeled parallel time;
/// restored bytes are digested outside the timed windows and must be
/// bit-identical across engines and thread counts.
pub fn restart_latency_at(chain_lens: &[usize], scale: usize, seed: u64) -> RestartLatencyReport {
    use ckpt_hash::{Hasher128, Murmur3};
    use rayon::prelude::*;

    let hasher = Murmur3;
    let mut cells = Vec::new();
    for &chain_len in chain_lens {
        let w = gdv_snapshots(PaperGraph::MessageRace, scale, chain_len, seed, true);
        for (name, mut m) in dedup_methods(FIG5_CHUNK) {
            let diffs: Vec<_> = w.snapshots.iter().map(|s| m.checkpoint(s).diff).collect();
            let device = Device::a100();
            let mut points = Vec::new();
            for &threads in &HOST_SCALING_THREADS {
                rayon::set_active_threads(threads);
                // Warm the pool outside both timed regions so worker
                // spawns are not billed to either engine.
                (0..(1usize << 16)).into_par_iter().for_each(|_| {});

                rayon::host_clock_enable(true);
                let _ = rayon::host_clock_take();
                let t0 = std::time::Instant::now();
                let seq = restore_latest(&diffs).expect("sequential replay");
                let seq_wall_sec = t0.elapsed().as_secs_f64();
                let seq_clock = rayon::host_clock_take();

                let t1 = std::time::Instant::now();
                let (par, stats) =
                    restore_latest_single_pass(&device, 0, &diffs).expect("single-pass restart");
                let par_wall_sec = t1.elapsed().as_secs_f64();
                let par_clock = rayon::host_clock_take();
                rayon::host_clock_enable(false);

                points.push(RestartLatencyPoint {
                    threads,
                    seq_wall_sec,
                    par_wall_sec,
                    seq_host_modeled_sec: (seq_wall_sec - seq_clock.real_parallel_sec
                        + seq_clock.modeled_parallel_sec)
                        .max(0.0),
                    par_host_modeled_sec: (par_wall_sec - par_clock.real_parallel_sec
                        + par_clock.modeled_parallel_sec)
                        .max(0.0),
                    seq_digest: {
                        let d = hasher.hash(&seq);
                        (d.h1, d.h2)
                    },
                    par_digest: {
                        let d = hasher.hash(&par);
                        (d.h1, d.h2)
                    },
                    records_visited: stats.records_visited,
                    bytes_copied: stats.bytes_copied,
                });
            }
            cells.push(RestartLatencyCell {
                method: name,
                chain_len,
                snapshot_bytes: w.snapshot_bytes(),
                points,
            });
        }
    }
    rayon::set_active_threads(0);
    RestartLatencyReport { scale, cells }
}

// ---------------------------------------------------------------- Ablations

/// A2: metadata bytes per checkpoint, Tree vs List, across chunk sizes.
#[derive(Debug)]
pub struct MetadataPoint {
    pub graph: PaperGraph,
    pub chunk_size: usize,
    pub tree_metadata: u64,
    pub list_metadata: u64,
    pub tree_regions: u64,
    pub list_entries: u64,
}

pub fn ablation_metadata(cfg: ExpConfig) -> Vec<MetadataPoint> {
    let mut out = Vec::new();
    for graph in [PaperGraph::MessageRace, PaperGraph::Hugebubbles] {
        let w = gdv_snapshots(graph, cfg.scale, FIG4_CHECKPOINTS, cfg.seed, true);
        for chunk in FIG4_CHUNKS {
            let mut tree = TreeCheckpointer::new(Device::a100(), TreeConfig::new(chunk));
            let mut list = ListCheckpointer::new(Device::a100(), TreeConfig::new(chunk));
            let (mut tm, mut lm, mut tr, mut le) = (0u64, 0u64, 0u64, 0u64);
            for (k, snap) in w.snapshots.iter().enumerate() {
                let t = tree.checkpoint(snap);
                let l = list.checkpoint(snap);
                if k == 0 {
                    continue;
                }
                tm += t.stats.metadata_bytes;
                lm += l.stats.metadata_bytes;
                tr += t.stats.n_first + t.stats.n_shift;
                le += l.stats.n_first + l.stats.n_shift;
            }
            out.push(MetadataPoint {
                graph,
                chunk_size: chunk,
                tree_metadata: tm,
                list_metadata: lm,
                tree_regions: tr,
                list_entries: le,
            });
        }
    }
    out
}

/// A3: two-stage wave ordering vs the naive fused sweep.
#[derive(Debug)]
pub struct WavesPoint {
    pub workload: String,
    pub two_stage: MeasuredRecord,
    pub naive: MeasuredRecord,
}

/// Synthetic workload exhibiting the §2.2 hazard: every checkpoint writes a
/// *new* pattern that repeats at several aligned positions within the same
/// checkpoint. The two-stage ordering registers the first copy's subtree
/// before the shifted copies consolidate against it; the naive fused sweep
/// cannot see those same-level inserts and must store the extra copies.
fn repeated_pattern_snapshots(cfg: ExpConfig) -> Vec<Vec<u8>> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xA3);
    let pattern_bytes = 16 * 64; // 16 chunks at 64 B
    let copies = 8usize;
    let n_patterns = (cfg.scale / 256).max(8);
    let slots = copies * n_patterns;
    let len = pattern_bytes * slots;
    let mut data = vec![0u8; len];
    let mut out = Vec::new();
    for _ckpt in 0..FIG4_CHECKPOINTS {
        // A fresh pattern, stamped into `copies` random aligned slots.
        let pattern: Vec<u8> = (0..pattern_bytes).map(|_| rng.gen()).collect();
        for _ in 0..copies {
            let at = rng.gen_range(0..slots) * pattern_bytes;
            data[at..at + pattern_bytes].copy_from_slice(&pattern);
        }
        out.push(data.clone());
    }
    out
}

pub fn ablation_waves(cfg: ExpConfig) -> Vec<WavesPoint> {
    let mut points: Vec<WavesPoint> = PaperGraph::single_process()
        .into_iter()
        .map(|graph| {
            let w = gdv_snapshots(graph, cfg.scale, FIG4_CHECKPOINTS, cfg.seed, true);
            let mut two = TreeCheckpointer::new(Device::a100(), TreeConfig::new(64));
            let mut naive = NaiveTreeCheckpointer::new(Device::a100(), TreeConfig::new(64));
            WavesPoint {
                workload: format!("GDV / {}", graph.name()),
                two_stage: run_dedup(&mut two, "Tree(two-stage)", &w.snapshots, true),
                naive: run_dedup(&mut naive, "Tree(naive)", &w.snapshots, true),
            }
        })
        .collect();

    let snaps = repeated_pattern_snapshots(cfg);
    let mut two = TreeCheckpointer::new(Device::a100(), TreeConfig::new(64));
    let mut naive = NaiveTreeCheckpointer::new(Device::a100(), TreeConfig::new(64));
    points.push(WavesPoint {
        workload: "synthetic repeated patterns".to_string(),
        two_stage: run_dedup(&mut two, "Tree(two-stage)", &snaps, false),
        naive: run_dedup(&mut naive, "Tree(naive)", &snaps, false),
    });
    points
}

/// Extension E5 (paper §5: "other classes of applications, such as adjoint
/// computations"): reversing a PDE solve. Classic binomial checkpointing
/// (revolve) trades recomputation for a handful of snapshot slots; the
/// de-duplicated store keeps *every* state with no recomputation at a
/// fraction of the raw footprint.
#[derive(Debug)]
pub struct AdjointPoint {
    pub strategy: String,
    pub forward_steps: u64,
    pub store_bytes: u64,
}

pub fn adjoint(cfg: ExpConfig) -> Vec<AdjointPoint> {
    use ckpt_adjoint::{run_dedup_store, run_revolve, HeatModel, HeatParams};
    let n = cfg.scale.clamp(1_024, 1 << 16);
    let l = 192usize;
    let model = HeatModel::new(HeatParams::new(n));
    let u0 = model.initial_state();

    let mut out = Vec::new();
    let dedup = run_dedup_store(&model, &u0, l, 128);
    let reference_grad = dedup.gradient.clone();
    out.push(AdjointPoint {
        strategy: "dedup store (all states)".into(),
        forward_steps: dedup.forward_steps,
        store_bytes: dedup.peak_store_bytes,
    });
    out.push(AdjointPoint {
        strategy: "raw store (all states)".into(),
        forward_steps: l as u64,
        store_bytes: ((l + 1) * n * 8) as u64,
    });
    for c in [4usize, 8, 16] {
        let rep = run_revolve(&model, &u0, l, c).expect("feasible");
        assert_eq!(rep.gradient, reference_grad, "strategies must agree");
        out.push(AdjointPoint {
            strategy: format!("revolve c={c}"),
            forward_steps: rep.forward_steps,
            store_bytes: rep.peak_store_bytes,
        });
    }
    out
}

/// Extension E3 (paper §5 future work): streaming — overlap de-duplication
/// with transfers to host memory. At A100 ratios (HBM ≈ 60× PCIe) the
/// overlap headroom within one checkpoint's *serialization stage* is
/// negligible, so the profitable formulation pipelines at checkpoint
/// granularity: while diff `k` is in flight over PCIe, the de-duplication
/// compute of checkpoint `k+1` runs. This driver measures each checkpoint's
/// modeled compute and transfer halves and compares the sequential schedule
/// against the pipelined one.
#[derive(Debug)]
pub struct StreamingPoint {
    pub graph: PaperGraph,
    /// Σ (compute + transfer), the blocking schedule.
    pub sequential_sec: f64,
    /// Pipelined schedule: transfer of diff k overlapped with compute of k+1.
    pub pipelined_sec: f64,
}

impl StreamingPoint {
    pub fn speedup(&self) -> f64 {
        self.sequential_sec / self.pipelined_sec.max(1e-12)
    }
}

pub fn streaming(cfg: ExpConfig) -> Vec<StreamingPoint> {
    PaperGraph::single_process()
        .into_iter()
        .map(|graph| {
            let w = gdv_snapshots(graph, cfg.scale, FIG4_CHECKPOINTS, cfg.seed, true);
            let device = Device::a100();
            let mut m = TreeCheckpointer::new(device.clone(), TreeConfig::new(FIG5_CHUNK));
            let mut compute = Vec::new();
            let mut transfer = Vec::new();
            for snap in &w.snapshots {
                let before = device.metrics().snapshot();
                m.checkpoint(snap);
                let after = device.metrics().snapshot();
                transfer.push(after.modeled_transfer_sec - before.modeled_transfer_sec);
                compute.push(
                    (after.modeled_sec - before.modeled_sec)
                        - (after.modeled_transfer_sec - before.modeled_transfer_sec),
                );
            }
            let sequential_sec: f64 = compute.iter().sum::<f64>() + transfer.iter().sum::<f64>();
            // Pipeline: c_0, then step i overlaps compute[i] with
            // transfer[i-1]; the final transfer drains alone.
            let mut pipelined_sec = compute[0];
            for i in 1..compute.len() {
                pipelined_sec += compute[i].max(transfer[i - 1]);
            }
            pipelined_sec += transfer[transfer.len() - 1];
            StreamingPoint {
                graph,
                sequential_sec,
                pipelined_sec,
            }
        })
        .collect()
}

/// Extension E2 (the §1 high-frequency limitation): producers that emit
/// checkpoints faster than the storage hierarchy drains them stall once the
/// host staging tier fills. De-duplicated diffs drain in a fraction of the
/// time, so the Tree method keeps the application running where Full
/// checkpointing blocks it.
#[derive(Debug)]
pub struct HighFreqPoint {
    pub method: &'static str,
    /// Total time the producer spent blocked on a full host tier.
    pub stall_sec: f64,
    /// End-to-end time to emit all checkpoints.
    pub makespan_sec: f64,
    pub total_stored: u64,
}

pub fn highfreq(cfg: ExpConfig) -> Vec<HighFreqPoint> {
    use ckpt_runtime::{AsyncRuntime, TierChain, TierConfig};

    let n_ckpts = 24;
    let w = gdv_snapshots(PaperGraph::MessageRace, cfg.scale, n_ckpts, cfg.seed, true);
    let snap_bytes = w.snapshot_bytes() as u64;

    let mut out = Vec::new();
    for (name, mut method) in [
        (
            "Tree",
            Box::new(TreeCheckpointer::new(
                Device::a100(),
                TreeConfig::new(FIG5_CHUNK),
            )) as Box<dyn Checkpointer>,
        ),
        (
            "Full",
            Box::new(FullCheckpointer::new(Device::a100(), FIG5_CHUNK)),
        ),
    ] {
        // Host staging holds ~3 full checkpoints; the SSD throttles in real
        // time (scaled) to its modeled bandwidth.
        let tiers = TierChain::with_configs(
            TierConfig {
                name: "host",
                bandwidth_bps: 25.0e9,
                capacity: snap_bytes * 3 + 1024,
            },
            TierConfig::ssd(),
            TierConfig::pfs(),
        );
        // Time dilation: one modeled SSD-second costs 25 real seconds, so a
        // full-checkpoint drain takes ~30 ms of real time and the producer's
        // burst outpaces it visibly (while keeping the experiment short).
        let rt = AsyncRuntime::with_tiers_throttled(tiers, 25.0);
        let t0 = std::time::Instant::now();
        let mut stall = std::time::Duration::ZERO;
        let mut total_stored = 0u64;
        for (k, snap) in w.snapshots.iter().enumerate() {
            let diff = method.checkpoint(snap).diff;
            total_stored += diff.stored_bytes() as u64;
            stall += rt
                .submit_blocking(0, k as u32, diff.encode())
                .expect("runtime alive");
        }
        let makespan = t0.elapsed().as_secs_f64();
        out.push(HighFreqPoint {
            method: name,
            stall_sec: stall.as_secs_f64(),
            makespan_sec: makespan,
            total_stored,
        });
        rt.shutdown();
    }
    out
}

/// Extension E1 (paper §5 future work): the dedup+compression hybrid —
/// "compressing the first-time occurrences in the difference".
#[derive(Debug)]
pub struct HybridPoint {
    pub graph: PaperGraph,
    pub methods: Vec<MeasuredRecord>,
}

pub fn hybrid(cfg: ExpConfig) -> Vec<HybridPoint> {
    PaperGraph::single_process()
        .into_iter()
        .map(|graph| {
            let w = gdv_snapshots(graph, cfg.scale, FIG4_CHECKPOINTS, cfg.seed, true);
            let mut methods = Vec::new();
            let mut raw = TreeCheckpointer::new(Device::a100(), TreeConfig::new(FIG5_CHUNK));
            methods.push(run_dedup(&mut raw, "Tree", &w.snapshots, false));
            for codec in ["zstd", "lz4", "cascaded", "bitcomp"] {
                let cfg_c = TreeConfig::new(FIG5_CHUNK).with_payload_codec(codec);
                let mut m = TreeCheckpointer::new(Device::a100(), cfg_c);
                methods.push(run_dedup(
                    &mut m,
                    &format!("Tree+{codec}"),
                    &w.snapshots,
                    false,
                ));
            }
            HybridPoint { graph, methods }
        })
        .collect()
}

// ------------------------------------ Flush pipeline (compressed tiers)

/// One (policy, thread-count) point of the compressed-flush sweep.
#[derive(Debug)]
pub struct FlushPipelinePoint {
    /// Policy spelling (`off`, a codec name, or `adaptive`).
    pub policy: String,
    pub threads: usize,
    /// Pre-compression payload bytes submitted (Σ encoded diff lengths;
    /// policy- and thread-independent).
    pub raw_bytes: u64,
    /// Post-compression wire bytes durable on the PFS — what capacity,
    /// throttling, and the bandwidth model charge.
    pub stored_bytes: u64,
    /// `stored / raw` in percent (100 = incompressible or policy off).
    pub ratio_pct: u64,
    /// Modeled PFS write time for the whole record: stored bytes over the
    /// PFS tier's configured bandwidth.
    pub modeled_pfs_write_sec: f64,
    /// Modeled hash+flush makespan under the depth-1 pipeline: checkpoint
    /// `k`'s hashing overlaps the SSD+PFS flush of `k-1`.
    pub modeled_e2e_sec: f64,
    /// Measured wall time from first submit to a fully drained PFS.
    pub wall_sec: f64,
    /// Producer time blocked in the depth-1 handoff
    /// (`pipeline/enqueue_wait`). Compression runs on the flusher's side of
    /// the channel, so this must not grow when a policy is enabled.
    pub enqueue_wait_sec: f64,
    /// Murmur3 digest of the bytes the parallel restart engine recovered.
    pub restore_digest: (u64, u64),
    /// The digest equals the producer's final snapshot (bit-exact
    /// round trip through compress → tiers → decompress).
    pub restore_ok: bool,
}

/// One method's policy × threads sweep over a workload.
#[derive(Debug)]
pub struct FlushPipelineCell {
    pub method: &'static str,
    pub points: Vec<FlushPipelinePoint>,
}

impl FlushPipelineCell {
    fn point(&self, policy: &str) -> Option<&FlushPipelinePoint> {
        self.points.iter().find(|p| p.policy == policy)
    }

    /// Every point restored bit-exact and all digests agree.
    pub fn bit_identical(&self) -> bool {
        self.points.iter().all(|p| p.restore_ok)
            && self
                .points
                .windows(2)
                .all(|w| w[0].restore_digest == w[1].restore_digest)
    }

    /// Stored-bytes reduction of `adaptive` over `off` (>1 = smaller).
    pub fn stored_reduction_adaptive(&self) -> f64 {
        match (self.point("off"), self.point("adaptive")) {
            (Some(off), Some(ad)) => off.stored_bytes as f64 / ad.stored_bytes.max(1) as f64,
            _ => 1.0,
        }
    }

    /// Modeled hash+flush speedup of `adaptive` over `off`.
    pub fn e2e_speedup_adaptive(&self) -> f64 {
        match (self.point("off"), self.point("adaptive")) {
            (Some(off), Some(ad)) => off.modeled_e2e_sec / ad.modeled_e2e_sec.max(1e-12),
            _ => 1.0,
        }
    }
}

/// One workload (graph × scale) of the sweep.
#[derive(Debug)]
pub struct FlushPipelineWorkload {
    pub graph: PaperGraph,
    pub scale: usize,
    pub snapshot_bytes: usize,
    pub cells: Vec<FlushPipelineCell>,
}

/// The compressed-flush benchmark: methods × policy × threads
/// (`BENCH_flush_pipeline.json`).
#[derive(Debug)]
pub struct FlushPipelineReport {
    pub n_checkpoints: usize,
    pub workloads: Vec<FlushPipelineWorkload>,
}

impl FlushPipelineReport {
    pub fn bit_identical(&self) -> bool {
        self.workloads
            .iter()
            .all(|w| w.cells.iter().all(|c| c.bit_identical()))
    }
}

/// Checkpoints per cell in the flush-pipeline sweep.
pub const FLUSH_PIPELINE_CHECKPOINTS: usize = 8;

/// Pool thread counts swept (the compression stage and the restore
/// prefetch both fan out on the shim pool).
pub const FLUSH_PIPELINE_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Policies swept: the pre-compression baseline, one fixed codec, and the
/// per-object adaptive selector.
pub const FLUSH_PIPELINE_POLICIES: [&str; 3] = ["off", "zstd", "adaptive"];

/// Default problem scales (graph vertices; one snapshot is `73 * 4` bytes
/// per vertex).
pub const FLUSH_PIPELINE_SCALES: [usize; 2] = [20_000, 80_000];

/// Compressed-flush benchmark over the default scales and thread counts.
pub fn flush_pipeline(cfg: ExpConfig) -> FlushPipelineReport {
    flush_pipeline_at(&FLUSH_PIPELINE_SCALES, cfg.seed, &FLUSH_PIPELINE_THREADS)
}

/// The compressed-flush benchmark: for each workload (graph × scale) and
/// method, hash the record once (the encoded diffs and their modeled device
/// time depend on neither policy nor threads), then sweep policy × thread
/// count over the *flush* side: submit every encoded diff through the
/// depth-1 [`CheckpointPipeline`] into an [`AsyncRuntime`] whose flusher
/// compresses per the policy, wait until the PFS holds the whole record,
/// and round-trip the latest version back through the parallel restart
/// engine. Stored bytes are read off the PFS tier (wire sizes, what the
/// bandwidth model charges); the modeled end-to-end makespan overlaps
/// checkpoint `k`'s hashing with the SSD+PFS flush of `k-1`, exactly the
/// double-buffer schedule the submit path implements.
pub fn flush_pipeline_at(scales: &[usize], seed: u64, threads: &[usize]) -> FlushPipelineReport {
    use ckpt_hash::{Hasher128, Murmur3};
    use ckpt_runtime::{
        restore_rank_latest_parallel, CheckpointPipeline, CompressionPolicy, TierChain, TierConfig,
    };
    use ckpt_telemetry::Registry;
    use rayon::prelude::*;
    use std::sync::Arc;

    let hasher = Murmur3;
    let ssd_bw = TierConfig::ssd().bandwidth_bps;
    let pfs_bw = TierConfig::pfs().bandwidth_bps;
    let mut workloads = Vec::new();
    for &scale in scales {
        for graph in [PaperGraph::MessageRace, PaperGraph::Hugebubbles] {
            let w = gdv_snapshots(graph, scale, FLUSH_PIPELINE_CHECKPOINTS, seed, true);
            let want = hasher.hash(w.snapshots.last().expect("snapshots"));
            let mut cells = Vec::new();
            for method in ["Tree", "Full"] {
                let device = Device::a100();
                let mut m: Box<dyn Checkpointer> = match method {
                    "Tree" => Box::new(TreeCheckpointer::new(
                        device.clone(),
                        TreeConfig::new(FIG5_CHUNK),
                    )),
                    _ => Box::new(FullCheckpointer::new(device.clone(), FIG5_CHUNK)),
                };
                let mut encoded: Vec<Vec<u8>> = Vec::new();
                let mut hash_sec: Vec<f64> = Vec::new();
                for snap in &w.snapshots {
                    let before = device.metrics().snapshot();
                    let out = m.checkpoint(snap);
                    hash_sec.push(device.metrics().snapshot().modeled_sec - before.modeled_sec);
                    encoded.push(out.diff.encode());
                }
                let raw_bytes: u64 = encoded.iter().map(|e| e.len() as u64).sum();

                let mut points = Vec::new();
                for policy_name in FLUSH_PIPELINE_POLICIES {
                    let policy = CompressionPolicy::parse(policy_name).expect("known policy");
                    for &t in threads {
                        rayon::set_active_threads(t);
                        // Warm the pool outside the timed region.
                        (0..(1usize << 14)).into_par_iter().for_each(|_| {});
                        let registry = Arc::new(Registry::new());
                        let rt = Arc::new(AsyncRuntime::with_compression(
                            TierChain::new(),
                            0.0,
                            Arc::clone(&registry),
                            policy,
                        ));
                        let pipe = CheckpointPipeline::new(Arc::clone(&rt));
                        let ids: Vec<(u32, u32)> =
                            (0..encoded.len() as u32).map(|k| (0, k)).collect();
                        let t0 = std::time::Instant::now();
                        for (k, bytes) in encoded.iter().enumerate() {
                            let b = bytes.clone();
                            pipe.submit_with(0, k as u32, Box::new(move || b));
                        }
                        let pstats = pipe.close();
                        rt.wait_durable(&ids);
                        let wall_sec = t0.elapsed().as_secs_f64();
                        assert_eq!(
                            pstats.submitted,
                            encoded.len() as u64,
                            "every checkpoint must land durably"
                        );

                        // Post-compression wire bytes, per object, off the PFS.
                        let wire: Vec<u64> = ids
                            .iter()
                            .map(|&id| {
                                rt.tiers()
                                    .pfs
                                    .inspect_object(id)
                                    .into_object()
                                    .expect("durable object")
                                    .stored_len()
                            })
                            .collect();
                        let stored_bytes: u64 = wire.iter().sum();

                        // Depth-1 overlap: hash of checkpoint k hides behind
                        // the SSD+PFS flush of k-1; the last flush drains alone.
                        let flush: Vec<f64> = wire
                            .iter()
                            .map(|&b| b as f64 / ssd_bw + b as f64 / pfs_bw)
                            .collect();
                        let mut e2e = hash_sec[0];
                        for k in 1..flush.len() {
                            e2e += hash_sec[k].max(flush[k - 1]);
                        }
                        e2e += flush[flush.len() - 1];

                        let restored = restore_rank_latest_parallel(rt.tiers(), &device, 0, None)
                            .expect("record restorable");
                        let digest = hasher.hash(&restored.data);
                        points.push(FlushPipelinePoint {
                            policy: policy_name.to_string(),
                            threads: t,
                            raw_bytes,
                            stored_bytes,
                            ratio_pct: stored_bytes * 100 / raw_bytes.max(1),
                            modeled_pfs_write_sec: stored_bytes as f64 / pfs_bw,
                            modeled_e2e_sec: e2e,
                            wall_sec,
                            enqueue_wait_sec: registry
                                .span_stats("pipeline/enqueue_wait")
                                .measured_sec(),
                            restore_digest: (digest.h1, digest.h2),
                            restore_ok: (digest.h1, digest.h2) == (want.h1, want.h2),
                        });
                        Arc::try_unwrap(rt)
                            .ok()
                            .expect("pipeline released its handle")
                            .shutdown();
                    }
                }
                cells.push(FlushPipelineCell { method, points });
            }
            workloads.push(FlushPipelineWorkload {
                graph,
                scale,
                snapshot_bytes: w.snapshot_bytes(),
                cells,
            });
        }
    }
    rayon::set_active_threads(0);
    FlushPipelineReport {
        n_checkpoints: FLUSH_PIPELINE_CHECKPOINTS,
        workloads,
    }
}

// ------------------------------------ Cross-rank redundancy groups

/// One redundancy-policy point of the rank-loss sweep.
#[derive(Debug)]
pub struct RedundancyPoint {
    /// Policy spelling (`off`, `partner`, `xor:<k>`).
    pub policy: String,
    /// Pre-compression payload bytes submitted across all ranks.
    pub raw_bytes: u64,
    /// Post-compression wire bytes durable on the PFS, all ranks.
    pub stored_bytes: u64,
    /// Bytes resident on the redundancy group tier (0 with policy off).
    pub group_bytes: u64,
    /// `group_bytes * 100 / stored_bytes` — the storage cost of the
    /// encoding (≈100 for partner, ≈100/(k−1) for `xor:k`).
    pub storage_overhead_pct: u64,
    /// Wall time from first submit to a fully drained PFS (the
    /// producer-visible makespan; redundancy encoding rides the flusher).
    pub wall_sec: f64,
    /// Aggregate submit throughput, raw bytes over `wall_sec`.
    pub agg_throughput_bps: f64,
    /// Extra wall time until every member's redundancy encoding is also
    /// durable (what GC waits on before `compact_below`).
    pub redundancy_drain_sec: f64,
    /// Producer time blocked in the depth-1 handoff — must not grow when
    /// a redundancy policy is enabled (critical path untouched).
    pub enqueue_wait_sec: f64,
    /// Where the lost rank's record came back from: `pfs` (policy off —
    /// local tiers lost, PFS survives) or `group` (every local copy
    /// including the PFS lost; partners/parity rebuild it).
    pub restore_source: &'static str,
    /// Wall time to restore the lost rank's latest checkpoint.
    pub rank_loss_restore_sec: f64,
    /// Murmur3 digest of the restored bytes.
    pub restore_digest: (u64, u64),
    /// The digest equals the lost rank's final snapshot (bit-exact).
    pub restore_ok: bool,
}

/// One method's policy sweep.
#[derive(Debug)]
pub struct RedundancyCell {
    pub method: &'static str,
    pub points: Vec<RedundancyPoint>,
}

impl RedundancyCell {
    pub fn point(&self, policy: &str) -> Option<&RedundancyPoint> {
        self.points.iter().find(|p| p.policy == policy)
    }

    /// Producer-visible throughput cost of `policy` over `off`, percent
    /// (positive = slower with redundancy).
    pub fn throughput_overhead_pct(&self, policy: &str) -> f64 {
        match (self.point("off"), self.point(policy)) {
            (Some(off), Some(p)) => (p.wall_sec / off.wall_sec.max(1e-12) - 1.0) * 100.0,
            _ => 0.0,
        }
    }

    /// Every point restored the lost rank bit-exact.
    pub fn bit_identical(&self) -> bool {
        self.points.iter().all(|p| p.restore_ok)
    }
}

/// The rank-loss redundancy benchmark (`BENCH_redundancy.json`).
#[derive(Debug)]
pub struct RedundancyReport {
    pub graph: PaperGraph,
    pub scale: usize,
    pub n_ranks: usize,
    pub n_checkpoints: usize,
    /// The rank whose local tiers get wiped before the restore timing.
    pub lost_rank: u32,
    pub cells: Vec<RedundancyCell>,
}

impl RedundancyReport {
    pub fn bit_identical(&self) -> bool {
        self.cells.iter().all(|c| c.bit_identical())
    }
}

/// Checkpoints per rank in the redundancy sweep.
pub const REDUNDANCY_CHECKPOINTS: usize = 6;

/// Ranks in the modeled cluster (divisible by every swept group size).
pub const REDUNDANCY_RANKS: usize = 4;

/// Policies swept: no redundancy (PFS-only recovery baseline), full
/// partner copies, and XOR parity at two group sizes.
pub const REDUNDANCY_POLICIES: [&str; 4] = ["off", "partner", "xor:2", "xor:4"];

/// Default problem scale (graph vertices per rank).
pub const REDUNDANCY_SCALE: usize = 20_000;

/// The cross-rank redundancy benchmark: per method, every rank hashes its
/// own record once (encoded diffs are policy-independent), then each
/// policy submits all ranks' records interleaved through one depth-1
/// pipeline into a redundancy-enabled [`AsyncRuntime`]. After the PFS
/// drains (and the group encodings settle), rank `lost_rank` suffers a
/// full local loss — with policy `off` only host+SSD go (PFS-only
/// recovery, the baseline); with redundancy on, the PFS copies are wiped
/// too, so the parallel restart engine must rebuild every record from the
/// group before replaying. The restored bytes are digest-checked against
/// the rank's final snapshot.
pub fn redundancy_at(scale: usize, seed: u64) -> RedundancyReport {
    use ckpt_hash::{Hasher128, Murmur3};
    use ckpt_runtime::{
        restore_rank_latest_parallel, CheckpointPipeline, CompressionPolicy, RedundancyPolicy,
        TierChain,
    };
    use ckpt_telemetry::Registry;
    use std::sync::Arc;

    let hasher = Murmur3;
    let graph = PaperGraph::MessageRace;
    let lost_rank: u32 = 1;

    // Per-rank workloads: same graph, seed-perturbed so records differ.
    let workloads: Vec<_> = (0..REDUNDANCY_RANKS)
        .map(|r| gdv_snapshots(graph, scale, REDUNDANCY_CHECKPOINTS, seed + r as u64, true))
        .collect();
    let want: Vec<_> = workloads
        .iter()
        .map(|w| {
            let d = hasher.hash(w.snapshots.last().expect("snapshots"));
            (d.h1, d.h2)
        })
        .collect();

    let device = Device::a100();
    let mut cells = Vec::new();
    for method in ["Tree", "Full"] {
        // Hash every rank's record once; diffs depend only on the method.
        let mut encoded: Vec<Vec<Vec<u8>>> = Vec::new();
        for w in &workloads {
            let mut m: Box<dyn Checkpointer> = match method {
                "Tree" => Box::new(TreeCheckpointer::new(
                    device.clone(),
                    TreeConfig::new(FIG5_CHUNK),
                )),
                _ => Box::new(FullCheckpointer::new(device.clone(), FIG5_CHUNK)),
            };
            encoded.push(
                w.snapshots
                    .iter()
                    .map(|s| m.checkpoint(s).diff.encode())
                    .collect(),
            );
        }
        let raw_bytes: u64 = encoded
            .iter()
            .flat_map(|r| r.iter().map(|e| e.len() as u64))
            .sum();

        let mut points = Vec::new();
        for policy_name in REDUNDANCY_POLICIES {
            let redundancy = RedundancyPolicy::parse(policy_name).expect("known policy");
            let registry = Arc::new(Registry::new());
            let rt = Arc::new(AsyncRuntime::with_redundancy(
                TierChain::new(),
                0.0,
                Arc::clone(&registry),
                CompressionPolicy::parse("adaptive").expect("known policy"),
                redundancy,
            ));
            let pipe = CheckpointPipeline::new(Arc::clone(&rt));
            let ids: Vec<(u32, u32)> = (0..REDUNDANCY_CHECKPOINTS as u32)
                .flat_map(|k| (0..REDUNDANCY_RANKS as u32).map(move |r| (r, k)))
                .collect();
            let t0 = std::time::Instant::now();
            for k in 0..REDUNDANCY_CHECKPOINTS {
                // Interleave ranks checkpoint-major, the cluster schedule.
                for (r, rank_encoded) in encoded.iter().enumerate() {
                    let b = rank_encoded[k].clone();
                    pipe.submit_with(r as u32, k as u32, Box::new(move || b));
                }
            }
            let pstats = pipe.close();
            rt.wait_durable(&ids);
            let wall_sec = t0.elapsed().as_secs_f64();
            assert_eq!(
                pstats.submitted,
                ids.len() as u64,
                "every checkpoint must land durably"
            );
            let t1 = std::time::Instant::now();
            rt.wait_redundancy_durable(&ids);
            let redundancy_drain_sec = t1.elapsed().as_secs_f64();

            let stored_bytes: u64 = ids
                .iter()
                .map(|&id| {
                    rt.tiers()
                        .pfs
                        .inspect_object(id)
                        .into_object()
                        .expect("durable object")
                        .stored_len()
                })
                .sum();
            let group_bytes = rt
                .tiers()
                .redundancy()
                .map(|red| red.group_tier().used_bytes())
                .unwrap_or(0);

            // Rank loss: local tiers always go; with redundancy on, the
            // PFS copies go too so recovery must come from the group.
            rt.tiers().host.wipe_rank(lost_rank);
            rt.tiers().ssd.wipe_rank(lost_rank);
            let restore_source = if redundancy == RedundancyPolicy::Off {
                "pfs"
            } else {
                rt.tiers().pfs.wipe_rank(lost_rank);
                "group"
            };
            let t2 = std::time::Instant::now();
            let restored = restore_rank_latest_parallel(rt.tiers(), &device, lost_rank, None)
                .expect("lost rank restorable");
            let rank_loss_restore_sec = t2.elapsed().as_secs_f64();
            let digest = hasher.hash(&restored.data);

            points.push(RedundancyPoint {
                policy: policy_name.to_string(),
                raw_bytes,
                stored_bytes,
                group_bytes,
                storage_overhead_pct: group_bytes * 100 / stored_bytes.max(1),
                wall_sec,
                agg_throughput_bps: raw_bytes as f64 / wall_sec.max(1e-12),
                redundancy_drain_sec,
                enqueue_wait_sec: registry.span_stats("pipeline/enqueue_wait").measured_sec(),
                restore_source,
                rank_loss_restore_sec,
                restore_digest: (digest.h1, digest.h2),
                restore_ok: (digest.h1, digest.h2) == want[lost_rank as usize],
            });
            Arc::try_unwrap(rt)
                .ok()
                .expect("pipeline released its handle")
                .shutdown();
        }
        cells.push(RedundancyCell { method, points });
    }
    RedundancyReport {
        graph,
        scale,
        n_ranks: REDUNDANCY_RANKS,
        n_checkpoints: REDUNDANCY_CHECKPOINTS,
        lost_rank,
        cells,
    }
}

/// One restore measurement in the rank-dedup sweep: the lost rank and a
/// surviving "witness" rank (whose records hold cross-rank references
/// into the lost rank) restored at a fixed thread count.
#[derive(Debug)]
pub struct RankDedupRestore {
    pub threads: usize,
    pub lost_digest: (u64, u64),
    pub witness_digest: (u64, u64),
    pub lost_ok: bool,
    pub witness_ok: bool,
    pub restore_sec: f64,
}

/// One redundancy-policy x rank-dedup cell of the sweep.
#[derive(Debug)]
pub struct RankDedupPoint {
    pub policy: String,
    pub rank_dedup: bool,
    pub raw_bytes: u64,
    pub stored_bytes: u64,
    pub group_bytes: u64,
    pub claims: u64,
    pub remote_refs: u64,
    pub remote_bytes_saved: u64,
    pub wall_sec: f64,
    /// Modeled tier time to drain every checkpoint host -> SSD -> PFS.
    pub modeled_e2e_sec: f64,
    pub restore_source: &'static str,
    pub restores: Vec<RankDedupRestore>,
}

impl RankDedupPoint {
    pub fn bit_identical(&self) -> bool {
        self.restores.iter().all(|r| r.lost_ok && r.witness_ok)
    }
}

#[derive(Debug)]
pub struct RankDedupCell {
    pub method: &'static str,
    pub points: Vec<RankDedupPoint>,
}

impl RankDedupCell {
    /// Stored-byte reduction of rank-dedup ON vs per-rank dedup only
    /// (OFF) under the same redundancy policy.
    pub fn reduction_pct(&self, policy: &str) -> f64 {
        let stored = |on: bool| {
            self.points
                .iter()
                .find(|p| p.policy == policy && p.rank_dedup == on)
                .map(|p| p.stored_bytes as f64)
        };
        match (stored(false), stored(true)) {
            (Some(off), Some(on)) if off > 0.0 => (off - on) * 100.0 / off,
            _ => 0.0,
        }
    }

    pub fn bit_identical(&self) -> bool {
        self.points.iter().all(|p| p.bit_identical())
    }
}

#[derive(Debug)]
pub struct RankDedupReport {
    pub graph: PaperGraph,
    pub scale: usize,
    pub n_ranks: usize,
    pub n_checkpoints: usize,
    pub chunk: usize,
    pub lost_rank: u32,
    pub witness_rank: u32,
    pub threads: Vec<usize>,
    pub cells: Vec<RankDedupCell>,
}

impl RankDedupReport {
    pub fn bit_identical(&self) -> bool {
        self.cells.iter().all(|c| c.bit_identical())
    }

    /// Worst-case reduction across methods and redundancy policies.
    pub fn min_reduction_pct(&self) -> f64 {
        self.cells
            .iter()
            .flat_map(|c| RANK_DEDUP_POLICIES.iter().map(move |p| c.reduction_pct(p)))
            .fold(f64::INFINITY, f64::min)
    }
}

/// Redundancy policies crossed with rank-dedup on/off.
pub const RANK_DEDUP_POLICIES: [&str; 3] = ["off", "partner", "xor:4"];

/// Restore-side thread counts the digests are checked at.
pub const RANK_DEDUP_THREADS: [usize; 3] = [1, 2, 8];

/// Default problem scale (shared-region graph vertices).
pub const RANK_DEDUP_SCALE: usize = 12_000;

/// Cluster-index grid size: the per-rank dedup grid ([`FIG5_CHUNK`]).
/// Tree diffs pack changed chunks in encoder order, which varies with
/// each rank's private tail — a coarser cluster grid would group
/// different runs of chunks on different ranks and miss nearly every
/// cross-rank match, so only the native granularity dedups robustly.
pub const RANK_DEDUP_CHUNK: usize = FIG5_CHUNK;

/// The cluster-wide dedup benchmark: every rank checkpoints a snapshot
/// made of a *shared* region (identical bytes on all ranks, the
/// overlapping working set) plus a seed-perturbed private tail. With
/// rank-dedup on, one shared inline claim index spans the ranks, so each
/// shared chunk is stored exactly once cluster-wide and every other rank
/// writes a `CKPR` cross-rank reference instead. Rank `lost_rank` (the
/// claim winner under the checkpoint-major schedule) then suffers a full
/// local loss; both the lost rank and a surviving witness rank — whose
/// records point *into* the lost rank — are restored at several thread
/// counts and digest-checked against their final snapshots.
pub fn rank_dedup_at(scale: usize, seed: u64) -> RankDedupReport {
    use ckpt_hash::{Hasher128, Murmur3};
    use ckpt_runtime::{
        restore_rank_latest_parallel, CheckpointPipeline, CompressionPolicy, RankDedupConfig,
        RankDedupEngine, RankDedupMetrics, RedundancyPolicy, TierChain,
    };
    use ckpt_telemetry::Registry;
    use std::sync::Arc;

    let hasher = Murmur3;
    let graph = PaperGraph::MessageRace;
    // The first submitter under the checkpoint-major interleave wins the
    // shared-region claims, so losing it exercises group reconstruction
    // of remotely-referenced chunks during every other rank's restore.
    let lost_rank: u32 = 0;
    let witness_rank: u32 = 2;

    // Shared region: one workload, identical on every rank, padded to a
    // chunk multiple so the private tail starts grid-aligned and the
    // shared chunks hash identically across ranks.
    let shared = gdv_snapshots(graph, scale, REDUNDANCY_CHECKPOINTS, seed, true);
    let pad = |b: &[u8]| {
        let mut v = b.to_vec();
        v.resize(v.len().div_ceil(RANK_DEDUP_CHUNK) * RANK_DEDUP_CHUNK, 0);
        v
    };
    let workloads: Vec<Vec<Vec<u8>>> = (0..REDUNDANCY_RANKS)
        .map(|r| {
            let tail = gdv_snapshots(
                graph,
                scale / 3,
                REDUNDANCY_CHECKPOINTS,
                seed + 101 * (r as u64 + 1),
                true,
            );
            shared
                .snapshots
                .iter()
                .zip(&tail.snapshots)
                .map(|(s, t)| {
                    let mut v = pad(s);
                    v.extend_from_slice(t);
                    v
                })
                .collect()
        })
        .collect();
    let want: Vec<_> = workloads
        .iter()
        .map(|w| {
            let d = hasher.hash(w.last().expect("snapshots"));
            (d.h1, d.h2)
        })
        .collect();

    let device = Device::a100();
    let mut cells = Vec::new();
    for method in ["Tree", "Full"] {
        // Hash every rank's record once; encoded diffs depend only on
        // the method, not on the policy/dedup cell.
        let mut encoded: Vec<Vec<Vec<u8>>> = Vec::new();
        for w in &workloads {
            let mut m: Box<dyn Checkpointer> = match method {
                "Tree" => Box::new(TreeCheckpointer::new(
                    device.clone(),
                    TreeConfig::new(FIG5_CHUNK),
                )),
                _ => Box::new(FullCheckpointer::new(device.clone(), FIG5_CHUNK)),
            };
            encoded.push(w.iter().map(|s| m.checkpoint(s).diff.encode()).collect());
        }
        let raw_bytes: u64 = encoded
            .iter()
            .flat_map(|r| r.iter().map(|e| e.len() as u64))
            .sum();

        let mut points = Vec::new();
        for policy_name in RANK_DEDUP_POLICIES {
            for rank_dedup in [false, true] {
                let redundancy = RedundancyPolicy::parse(policy_name).expect("known policy");
                let registry = Arc::new(Registry::new());
                let engine = rank_dedup.then(|| {
                    RankDedupEngine::new(
                        RankDedupConfig {
                            ranks: REDUNDANCY_RANKS as u32,
                            chunk_len: RANK_DEDUP_CHUNK,
                        },
                        RankDedupMetrics::bound(Arc::clone(&registry)),
                    )
                });
                // Compression off: the sweep isolates the cluster
                // index's stored-byte effect (the compression stage has
                // its own sweep, `flush_pipeline`, and composes with
                // rank-dedup in the production path).
                let rt = Arc::new(AsyncRuntime::with_rank_dedup(
                    TierChain::new(),
                    0.0,
                    Arc::clone(&registry),
                    CompressionPolicy::Off,
                    redundancy,
                    engine,
                ));
                let pipe = CheckpointPipeline::new(Arc::clone(&rt));
                let ids: Vec<(u32, u32)> = (0..REDUNDANCY_CHECKPOINTS as u32)
                    .flat_map(|k| (0..REDUNDANCY_RANKS as u32).map(move |r| (r, k)))
                    .collect();
                let t0 = std::time::Instant::now();
                for k in 0..REDUNDANCY_CHECKPOINTS {
                    for (r, rank_encoded) in encoded.iter().enumerate() {
                        let b = rank_encoded[k].clone();
                        pipe.submit_with(r as u32, k as u32, Box::new(move || b));
                    }
                }
                let pstats = pipe.close();
                rt.wait_durable(&ids);
                let wall_sec = t0.elapsed().as_secs_f64();
                assert_eq!(
                    pstats.submitted,
                    ids.len() as u64,
                    "every checkpoint must land durably"
                );
                rt.wait_redundancy_durable(&ids);
                if let Some(e) = rt.rank_dedup() {
                    e.quiesce();
                }

                let stored_bytes: u64 = ids
                    .iter()
                    .map(|&id| {
                        rt.tiers()
                            .pfs
                            .inspect_object(id)
                            .into_object()
                            .expect("durable object")
                            .stored_len()
                    })
                    .sum();
                let group_bytes = rt
                    .tiers()
                    .redundancy()
                    .map(|red| red.group_tier().used_bytes())
                    .unwrap_or(0);
                let modeled_e2e_sec = rt.tiers().host.modeled_busy_sec()
                    + rt.tiers().ssd.modeled_busy_sec()
                    + rt.tiers().pfs.modeled_busy_sec();
                let counter = |name: &str| registry.counter(name).get();

                // Full local loss of the claim-winning rank; with
                // redundancy on, the PFS copies go too so both its own
                // restore and every cross-rank reference into it must
                // come back through the parity group.
                rt.tiers().host.wipe_rank(lost_rank);
                rt.tiers().ssd.wipe_rank(lost_rank);
                let restore_source = if redundancy == RedundancyPolicy::Off {
                    "pfs"
                } else {
                    rt.tiers().pfs.wipe_rank(lost_rank);
                    "group"
                };
                let mut restores = Vec::new();
                for &threads in &RANK_DEDUP_THREADS {
                    rayon::set_active_threads(threads);
                    let t1 = std::time::Instant::now();
                    let lost = restore_rank_latest_parallel(rt.tiers(), &device, lost_rank, None)
                        .expect("lost rank restorable");
                    let witness =
                        restore_rank_latest_parallel(rt.tiers(), &device, witness_rank, None)
                            .expect("witness rank restorable");
                    let restore_sec = t1.elapsed().as_secs_f64();
                    let ld = hasher.hash(&lost.data);
                    let wd = hasher.hash(&witness.data);
                    restores.push(RankDedupRestore {
                        threads,
                        lost_digest: (ld.h1, ld.h2),
                        witness_digest: (wd.h1, wd.h2),
                        lost_ok: (ld.h1, ld.h2) == want[lost_rank as usize],
                        witness_ok: (wd.h1, wd.h2) == want[witness_rank as usize],
                        restore_sec,
                    });
                }
                rayon::set_active_threads(0);

                points.push(RankDedupPoint {
                    policy: policy_name.to_string(),
                    rank_dedup,
                    raw_bytes,
                    stored_bytes,
                    group_bytes,
                    claims: counter("rankdedup/claims"),
                    remote_refs: counter("rankdedup/remote_refs"),
                    remote_bytes_saved: counter("rankdedup/remote_bytes_saved"),
                    wall_sec,
                    modeled_e2e_sec,
                    restore_source,
                    restores,
                });
                Arc::try_unwrap(rt)
                    .ok()
                    .expect("pipeline released its handle")
                    .shutdown();
            }
        }
        cells.push(RankDedupCell { method, points });
    }
    RankDedupReport {
        graph,
        scale,
        n_ranks: REDUNDANCY_RANKS,
        n_checkpoints: REDUNDANCY_CHECKPOINTS,
        chunk: RANK_DEDUP_CHUNK,
        lost_rank,
        witness_rank,
        threads: RANK_DEDUP_THREADS.to_vec(),
        cells,
    }
}

/// A4: vertex-ordering pre-processing — Gorder vs the classic orderings the
/// Gorder paper compares against (BFS, RCM) and the as-received labeling.
#[derive(Debug)]
pub struct GorderPoint {
    pub graph: PaperGraph,
    /// One record per ordering, in `ORDERINGS` order.
    pub orderings: Vec<MeasuredRecord>,
}

/// The orderings swept by A4.
pub const ORDERINGS: [(&str, crate::workload::VertexOrder); 4] = [
    ("scrambled", crate::workload::VertexOrder::Scrambled),
    ("bfs", crate::workload::VertexOrder::Bfs),
    ("rcm", crate::workload::VertexOrder::Rcm),
    ("gorder", crate::workload::VertexOrder::Gorder),
];

pub fn ablation_gorder(cfg: ExpConfig) -> Vec<GorderPoint> {
    use crate::workload::gdv_snapshots_ordered;
    PaperGraph::single_process()
        .into_iter()
        .map(|graph| {
            let orderings = ORDERINGS
                .iter()
                .map(|(name, order)| {
                    let w =
                        gdv_snapshots_ordered(graph, cfg.scale, FIG4_CHECKPOINTS, cfg.seed, *order);
                    let mut m = TreeCheckpointer::new(Device::a100(), TreeConfig::new(64));
                    run_dedup(&mut m, &format!("Tree/{name}"), &w.snapshots, true)
                })
                .collect();
            GorderPoint { graph, orderings }
        })
        .collect()
}

/// A1: hash-function throughput, Murmur3 vs MD5 (§2.4's motivation for a
/// non-cryptographic hash).
#[derive(Debug)]
pub struct HashPoint {
    pub hasher: &'static str,
    pub chunk_size: usize,
    /// Measured hashing throughput, bytes/sec.
    pub bytes_per_sec: f64,
    /// End-to-end Tree checkpoint record with this hash.
    pub record: MeasuredRecord,
}

pub fn ablation_hash(cfg: ExpConfig) -> Vec<HashPoint> {
    use ckpt_hash::{Hasher128, Md5, Murmur3, Sha256};
    let w = gdv_snapshots(PaperGraph::MessageRace, cfg.scale, 5, cfg.seed, true);
    let buf = &w.snapshots[0];
    let mut out = Vec::new();
    for (name, hasher) in [
        ("murmur3", Box::new(Murmur3) as Box<dyn Hasher128>),
        ("md5", Box::new(Md5)),
        ("sha256", Box::new(Sha256)),
    ] {
        let chunk = 128;
        // Raw hashing throughput over the checkpoint buffer.
        let t0 = std::time::Instant::now();
        let mut acc = 0u64;
        for c in buf.chunks(chunk) {
            acc ^= hasher.hash(c).h1;
        }
        std::hint::black_box(acc);
        let dt = t0.elapsed().as_secs_f64();

        let mut m = TreeCheckpointer::with_hasher(Device::a100(), TreeConfig::new(chunk), hasher);
        let record = run_dedup(&mut m, name, &w.snapshots, true);
        out.push(HashPoint {
            hasher: name,
            chunk_size: chunk,
            bytes_per_sec: buf.len() as f64 / dt.max(1e-12),
            record,
        });
    }
    out
}

/// A5 (§2.1 "fused GPU kernels ... a naive method would introduce
/// unacceptable latencies associated with submitting and executing new
/// kernels"): the same pipeline with per-pass kernel launches vs one fused
/// kernel, in modeled device time.
#[derive(Debug)]
pub struct FusionPoint {
    pub graph: PaperGraph,
    /// (launches, modeled launch seconds, total modeled seconds) fused.
    pub fused: (u64, f64, f64),
    /// Same, unfused.
    pub unfused: (u64, f64, f64),
}

pub fn ablation_fusion(cfg: ExpConfig) -> Vec<FusionPoint> {
    PaperGraph::single_process()
        .into_iter()
        .map(|graph| {
            let w = gdv_snapshots(graph, cfg.scale, FIG4_CHECKPOINTS, cfg.seed, true);
            let run = |fused: bool| {
                let device = Device::a100();
                let tree_cfg = TreeConfig {
                    fused,
                    ..TreeConfig::new(FIG5_CHUNK)
                };
                let mut m = TreeCheckpointer::new(device.clone(), tree_cfg);
                for snap in &w.snapshots {
                    m.checkpoint(snap);
                }
                let snap = device.metrics().snapshot();
                (
                    snap.kernels_launched,
                    snap.modeled_launch_sec,
                    snap.modeled_sec,
                )
            };
            FusionPoint {
                graph,
                fused: run(true),
                unfused: run(false),
            }
        })
        .collect()
}

/// Fig. 2 demonstration: the worked example's region counts, Tree vs List.
#[derive(Debug)]
pub struct Fig2Demo {
    pub tree_regions: usize,
    pub list_entries: usize,
    pub tree_first: Vec<u32>,
    pub tree_shift: Vec<(u32, u32, u32)>,
}

pub fn fig2_demo() -> Fig2Demo {
    const CS: usize = 32;
    let chunks = |tags: &[u8]| -> Vec<u8> {
        tags.iter()
            .flat_map(|&t| (0..CS).map(move |i| t.wrapping_mul(31).wrapping_add(i as u8)))
            .collect()
    };
    let v0 = chunks(b"ABCDEFGH");
    let v1 = chunks(b"IJKLEAIJ");

    let mut tree = TreeCheckpointer::new(Device::a100(), TreeConfig::new(CS));
    tree.checkpoint(&v0);
    let t = tree.checkpoint(&v1);
    let mut list = ListCheckpointer::new(Device::a100(), TreeConfig::new(CS));
    list.checkpoint(&v0);
    let l = list.checkpoint(&v1);

    Fig2Demo {
        tree_regions: t.diff.first_regions.len() + t.diff.shift_regions.len(),
        list_entries: l.diff.first_regions.len() + l.diff.shift_regions.len(),
        tree_first: t.diff.first_regions.clone(),
        tree_shift: t
            .diff
            .shift_regions
            .iter()
            .map(|s| (s.node, s.ref_node, s.ref_ckpt))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            scale: 1200,
            seed: 7,
        }
    }

    #[test]
    fn fig2_demo_matches_paper() {
        let d = fig2_demo();
        assert_eq!(d.tree_regions, 3);
        assert_eq!(d.list_entries, 7);
        assert_eq!(d.tree_first, vec![1]);
    }

    #[test]
    fn table1_rows_cover_all_graphs() {
        let rows = table1(tiny());
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.generated.n_vertices > 500);
            assert_eq!(
                r.generated_gdv_bytes,
                (r.generated.n_vertices * 73 * 4) as u64
            );
        }
    }

    #[test]
    fn fig4_tree_wins_ratio_at_fine_chunks() {
        let cells = fig4(ExpConfig {
            scale: 1500,
            seed: 3,
        });
        // At 32-byte chunks the Tree method must beat List on every graph.
        for cell in cells.iter().filter(|c| c.chunk_size == 32) {
            let find = |n: &str| cell.methods.iter().find(|m| m.name == n).unwrap();
            let (tree, list, full) = (find("Tree"), find("List"), find("Full"));
            assert!(
                tree.ratio() >= list.ratio(),
                "{}: tree {:.2} < list {:.2}",
                cell.graph,
                tree.ratio(),
                list.ratio()
            );
            assert!(tree.ratio() > 2.0 * full.ratio(), "{}", cell.graph);
        }
    }

    #[test]
    fn fig6_tree_reduces_total_size_at_scale() {
        let points = fig6_with_ranks(800, 5, &[1, 8], 0.5);
        let at = |ranks: usize, m: ScalingMethod| {
            points
                .iter()
                .find(|p| p.n_ranks == ranks && p.method == m)
                .unwrap()
        };
        for &ranks in &[1usize, 8] {
            let tree = at(ranks, ScalingMethod::Tree);
            let full = at(ranks, ScalingMethod::Full);
            assert_eq!(tree.total_full, full.total_full);
            assert!(tree.total_stored * 4 < full.total_stored, "ranks {ranks}");
        }
    }

    #[test]
    fn hybrid_compresses_further_without_losing_restorability() {
        let points = hybrid(ExpConfig {
            scale: 1500,
            seed: 4,
        });
        for p in &points {
            let raw = &p.methods[0];
            let zstd = p.methods.iter().find(|m| m.name == "Tree+zstd").unwrap();
            assert!(
                zstd.stored <= raw.stored,
                "{}: hybrid {} vs raw {}",
                p.graph,
                zstd.stored,
                raw.stored
            );
        }
    }

    #[test]
    fn fusion_saves_launch_latency() {
        for p in ablation_fusion(ExpConfig {
            scale: 1200,
            seed: 3,
        }) {
            let (_, fused_launch, fused_total) = p.fused;
            let (_, unfused_launch, unfused_total) = p.unfused;
            assert!(
                unfused_launch > 5.0 * fused_launch,
                "{}: unfused launch {unfused_launch} vs fused {fused_launch}",
                p.graph
            );
            assert!(unfused_total > fused_total);
        }
    }

    #[test]
    fn adjoint_strategies_agree_and_tradeoff_holds() {
        let points = adjoint(ExpConfig {
            scale: 1024,
            seed: 0,
        });
        let dedup = &points[0];
        let raw = &points[1];
        let revolve4 = points.iter().find(|p| p.strategy.contains("c=4")).unwrap();
        // Dedup stores everything in less space than raw...
        assert!(dedup.store_bytes < raw.store_bytes / 2);
        // ...with no recomputation, while tight revolve recomputes heavily.
        assert_eq!(dedup.forward_steps, 192);
        assert!(revolve4.forward_steps > 2 * dedup.forward_steps);
    }

    #[test]
    fn streaming_pipeline_never_slower_and_usually_faster() {
        let points = streaming(ExpConfig {
            scale: 1500,
            seed: 4,
        });
        for p in &points {
            assert!(
                p.pipelined_sec <= p.sequential_sec * 1.0001,
                "{}: pipelined {} vs sequential {}",
                p.graph,
                p.pipelined_sec,
                p.sequential_sec
            );
            assert!(p.speedup() >= 1.0);
        }
        // At least one graph should show a visible (>5%) gain.
        assert!(points.iter().any(|p| p.speedup() > 1.05));
    }

    #[test]
    fn highfreq_full_stalls_more_than_tree() {
        let points = highfreq(ExpConfig {
            scale: 1500,
            seed: 4,
        });
        let tree = points.iter().find(|p| p.method == "Tree").unwrap();
        let full = points.iter().find(|p| p.method == "Full").unwrap();
        assert!(
            full.stall_sec > 5.0 * tree.stall_sec.max(1e-3),
            "full {} vs tree {}",
            full.stall_sec,
            tree.stall_sec
        );
        assert!(full.total_stored > 10 * tree.total_stored);
    }

    #[test]
    fn host_scaling_sweeps_and_stays_bit_identical() {
        let rep = host_scaling_at(&[1_200, 2_400], tiny().seed);
        assert_eq!(rep.scales.len(), 2);
        assert!(
            rep.bit_identical(),
            "checkpoint bytes drifted across thread counts"
        );
        for sc in &rep.scales {
            assert_eq!(sc.points.len(), HOST_SCALING_THREADS.len());
            assert_eq!(sc.points[0].threads, 1);
            assert!(sc.points.iter().any(|p| p.threads == 4));
            let stored0 = sc.points[0].stored_bytes;
            for p in &sc.points {
                assert_eq!(p.stored_bytes, stored0);
                assert!((p.modeled_sec - sc.points[0].modeled_sec).abs() < 1e-9);
                assert!(sc.speedup_vs_1(p).is_finite());
                assert!(
                    p.stages.iter().any(|(n, _, _)| n == "leaf_hash"),
                    "missing per-stage breakdown"
                );
                assert!(p.host_modeled_sec > 0.0);
            }
        }
    }

    #[test]
    fn redundancy_restores_lost_rank_bit_identically() {
        let rep = redundancy_at(900, 7);
        assert_eq!(rep.cells.len(), 2);
        assert!(rep.bit_identical(), "lost-rank restore drifted");
        for cell in &rep.cells {
            assert_eq!(cell.points.len(), REDUNDANCY_POLICIES.len());
            let off = cell.point("off").unwrap();
            assert_eq!(off.group_bytes, 0);
            assert_eq!(off.restore_source, "pfs");
            for policy in ["partner", "xor:2", "xor:4"] {
                let p = cell.point(policy).unwrap();
                assert_eq!(p.restore_source, "group");
                assert!(p.group_bytes > 0, "{policy}: no group objects");
                assert_eq!(p.restore_digest, off.restore_digest);
            }
            // XOR parity must be cheaper than mirroring, and wider groups
            // cheaper than narrow ones.
            let partner = cell.point("partner").unwrap();
            let x2 = cell.point("xor:2").unwrap();
            let x4 = cell.point("xor:4").unwrap();
            assert!(x4.group_bytes < x2.group_bytes);
            assert!(x2.group_bytes <= partner.group_bytes + partner.group_bytes / 8);
        }
    }

    #[test]
    fn ablation_waves_naive_has_more_metadata() {
        let points = ablation_waves(ExpConfig {
            scale: 1200,
            seed: 9,
        });
        for p in &points {
            assert!(
                p.naive.stored >= p.two_stage.stored,
                "{}: naive {} < two-stage {}",
                p.workload,
                p.naive.stored,
                p.two_stage.stored
            );
        }
        // The synthetic workload must make the penalty visible.
        let synth = points.last().unwrap();
        assert!(
            synth.naive.stored as f64 > 1.2 * synth.two_stage.stored as f64,
            "synthetic: naive {} vs two-stage {}",
            synth.naive.stored,
            synth.two_stage.stored
        );
    }
}
