//! Plain-text rendering of experiment results, one section per paper
//! table/figure.

use crate::codecs::MeasuredRecord;
use crate::experiments::*;

/// Human-friendly byte formatting.
pub fn fmt_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

/// Throughput in GB/s.
pub fn fmt_tp(bps: f64) -> String {
    format!("{:.2} GB/s", bps / 1e9)
}

fn method_line(m: &MeasuredRecord) -> String {
    format!(
        "    {:<10} ratio {:>8.2}x | stored {:>12} | meta {:>10} | modeled {} | measured {}",
        m.name,
        m.ratio(),
        fmt_bytes(m.stored),
        fmt_bytes(m.metadata),
        fmt_tp(m.modeled_throughput()),
        fmt_tp(m.measured_throughput()),
    )
}

pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    s.push_str("Table 1: input graphs (paper original vs generated stand-in)\n");
    s.push_str(&format!(
        "{:<18} {:>12} {:>13} {:>9} | {:>10} {:>12} {:>10} {:>9}\n",
        "Graph", "|V| paper", "arcs paper", "GDV", "|V| gen", "arcs gen", "GDV gen", "tri"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<18} {:>12} {:>13} {:>9} | {:>10} {:>12} {:>10} {:>9}\n",
            r.graph.name(),
            r.paper_vertices,
            r.paper_arcs,
            fmt_bytes(r.paper_gdv_bytes),
            r.generated.n_vertices,
            r.generated.n_arcs,
            fmt_bytes(r.generated_gdv_bytes),
            r.generated.n_triangles,
        ));
    }
    s
}

pub fn render_fig2(d: &Fig2Demo) -> String {
    format!(
        "Figure 2 worked example (8 chunks, second checkpoint):\n\
           Tree compact metadata : {} regions (first-occurrence roots {:?}, \
         shifted {:?})\n\
           List naive metadata   : {} entries\n\
           -> compaction saves {} entries, as in the paper (7 -> 3)\n",
        d.tree_regions,
        d.tree_first,
        d.tree_shift,
        d.list_entries,
        d.list_entries - d.tree_regions,
    )
}

pub fn render_fig4(cells: &[Fig4Cell]) -> String {
    let mut s = String::new();
    s.push_str("Figure 4: chunk-size sweep (dedup ratio & throughput), N=10 checkpoints\n");
    let mut last = None;
    for c in cells {
        if last != Some(c.graph) {
            s.push_str(&format!("\n  [{}]\n", c.graph.name()));
            last = Some(c.graph);
        }
        s.push_str(&format!("  chunk {:>4} B\n", c.chunk_size));
        for m in &c.methods {
            s.push_str(&method_line(m));
            s.push('\n');
        }
    }
    s.push_str("\nper-stage breakdown (JSON):\n");
    s.push_str(&render_fig4_json(cells));
    s.push('\n');
    s
}

/// The machine-readable side of Figure 4: each cell's methods with their
/// aggregated [`ckpt_telemetry::StageBreakdown`]s, on one line.
pub fn render_fig4_json(cells: &[Fig4Cell]) -> String {
    let mut w = ckpt_telemetry::JsonWriter::new();
    w.begin_object();
    w.key("fig4").begin_array();
    for c in cells {
        w.begin_object();
        w.key("chunk_size").u64(c.chunk_size as u64);
        w.key("graph").string(c.graph.name());
        w.key("methods").begin_array();
        for m in &c.methods {
            m.breakdown.write_json(&mut w);
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

pub fn render_fig5(cells: &[Fig5Cell]) -> String {
    let mut s = String::new();
    s.push_str("Figure 5: checkpoint-frequency sweep (chunk 128 B), vs compressors\n");
    let mut last = None;
    for c in cells {
        if last != Some(c.graph) {
            s.push_str(&format!("\n  [{}]\n", c.graph.name()));
            last = Some(c.graph);
        }
        s.push_str(&format!("  N = {} checkpoints\n", c.n_checkpoints));
        for m in &c.methods {
            s.push_str(&method_line(m));
            s.push('\n');
        }
    }
    s
}

pub fn render_fig6(points: &[Fig6Point]) -> String {
    let mut s = String::new();
    s.push_str("Figure 6: strong scaling on Delaunay, Tree vs Full, 10 ckpts/process\n");
    s.push_str(&format!(
        "{:>6} {:>8} {:>14} {:>14} {:>10} {:>14} {:>14}\n",
        "ranks", "method", "total full", "total stored", "reduction", "modeled tp", "measured tp"
    ));
    for p in points {
        s.push_str(&format!(
            "{:>6} {:>8} {:>14} {:>14} {:>9.1}x {:>14} {:>14}\n",
            p.n_ranks,
            p.method.name(),
            fmt_bytes(p.total_full),
            fmt_bytes(p.total_stored),
            p.total_full as f64 / p.total_stored.max(1) as f64,
            fmt_tp(p.modeled_throughput),
            fmt_tp(p.measured_throughput),
        ));
    }
    s
}

pub fn render_metadata(points: &[MetadataPoint]) -> String {
    let mut s = String::new();
    s.push_str("Ablation A2: metadata compaction (Tree vs List), aggregated over N=10\n");
    s.push_str(&format!(
        "{:<18} {:>6} {:>14} {:>14} {:>12} {:>12} {:>8}\n",
        "graph", "chunk", "tree meta", "list meta", "tree regions", "list entries", "saving"
    ));
    for p in points {
        s.push_str(&format!(
            "{:<18} {:>6} {:>14} {:>14} {:>12} {:>12} {:>7.1}x\n",
            p.graph.name(),
            p.chunk_size,
            fmt_bytes(p.tree_metadata),
            fmt_bytes(p.list_metadata),
            p.tree_regions,
            p.list_entries,
            p.list_metadata as f64 / p.tree_metadata.max(1) as f64,
        ));
    }
    s
}

pub fn render_waves(points: &[WavesPoint]) -> String {
    let mut s = String::new();
    s.push_str("Ablation A3: two-stage wave ordering vs naive fused sweep (chunk 64 B)\n");
    for p in points {
        s.push_str(&format!("  [{}]\n", p.workload));
        s.push_str(&method_line(&p.two_stage));
        s.push('\n');
        s.push_str(&method_line(&p.naive));
        s.push_str(&format!(
            "\n    -> naive stores {:.2}x more ({:.2}x more metadata)\n",
            p.naive.stored as f64 / p.two_stage.stored.max(1) as f64,
            p.naive.metadata as f64 / p.two_stage.metadata.max(1) as f64
        ));
    }
    s
}

pub fn render_hybrid(points: &[HybridPoint]) -> String {
    let mut s = String::new();
    s.push_str("Extension E1 (paper \u{a7}5): compressing first occurrences inside the diff\n");
    for p in points {
        s.push_str(&format!("  [{}]\n", p.graph.name()));
        for m in &p.methods {
            s.push_str(&method_line(m));
            s.push('\n');
        }
    }
    s
}

pub fn render_adjoint(points: &[AdjointPoint]) -> String {
    let mut s = String::new();
    s.push_str(
        "Extension E5 (\u{a7}5): adjoint reversal \u{2014} recomputation vs de-duplicated storage\n",
    );
    s.push_str(&format!(
        "{:<28} {:>14} {:>14}\n",
        "strategy", "forward steps", "store bytes"
    ));
    for p in points {
        s.push_str(&format!(
            "{:<28} {:>14} {:>14}\n",
            p.strategy,
            p.forward_steps,
            fmt_bytes(p.store_bytes),
        ));
    }
    s
}

pub fn render_streaming(points: &[StreamingPoint]) -> String {
    let mut s = String::new();
    s.push_str(
        "Extension E3 (\u{a7}5): checkpoint-level streaming (overlap dedup with transfers)\n",
    );
    s.push_str(&format!(
        "{:<20} {:>16} {:>16} {:>9}\n",
        "graph", "sequential", "pipelined", "speedup"
    ));
    for p in points {
        s.push_str(&format!(
            "{:<20} {:>13.3} ms {:>13.3} ms {:>8.2}x\n",
            p.graph.name(),
            p.sequential_sec * 1e3,
            p.pipelined_sec * 1e3,
            p.speedup(),
        ));
    }
    s
}

pub fn render_highfreq(points: &[HighFreqPoint]) -> String {
    let mut s = String::new();
    s.push_str("Extension E2 (\u{a7}1): high-frequency checkpointing under storage backpressure\n");
    s.push_str(&format!(
        "{:>8} {:>14} {:>14} {:>16}\n",
        "method", "stall", "makespan", "record stored"
    ));
    for p in points {
        s.push_str(&format!(
            "{:>8} {:>12.2} s {:>12.2} s {:>16}\n",
            p.method,
            p.stall_sec,
            p.makespan_sec,
            fmt_bytes(p.total_stored),
        ));
    }
    s
}

pub fn render_gorder(points: &[GorderPoint]) -> String {
    let mut s = String::new();
    s.push_str("Ablation A4: vertex-ordering pre-processing (Tree, chunk 64 B)\n");
    for p in points {
        s.push_str(&format!("  [{}]\n", p.graph.name()));
        for rec in &p.orderings {
            s.push_str(&method_line(rec));
            s.push('\n');
        }
    }
    s
}

pub fn render_fusion(points: &[FusionPoint]) -> String {
    let mut s = String::new();
    s.push_str("Ablation A5: fused kernels (\u{a7}2.1) \u{2014} modeled launch-latency cost\n");
    s.push_str(&format!(
        "{:<20} {:>10} {:>14} {:>14} | {:>10} {:>14} {:>14}\n",
        "graph", "fused", "launch", "total", "unfused", "launch", "total"
    ));
    for p in points {
        s.push_str(&format!(
            "{:<20} {:>10} {:>11.3} ms {:>11.3} ms | {:>10} {:>11.3} ms {:>11.3} ms\n",
            p.graph.name(),
            p.fused.0,
            p.fused.1 * 1e3,
            p.fused.2 * 1e3,
            p.unfused.0,
            p.unfused.1 * 1e3,
            p.unfused.2 * 1e3,
        ));
    }
    s
}

pub fn render_host_scaling(rep: &HostScalingReport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "Host scaling: Tree method, {} checkpoints per point (persistent pool)\n",
        rep.n_checkpoints,
    ));
    for sc in &rep.scales {
        s.push_str(&format!(
            "scale {} ({} per snapshot)\n",
            sc.scale,
            fmt_bytes(sc.snapshot_bytes as u64),
        ));
        s.push_str(&format!(
            "{:>8} {:>12} {:>12} {:>12} {:>14} {:>10} {:>34}\n",
            "threads", "wall", "host-model", "dev-model", "stored", "speedup", "record digest"
        ));
        for p in &sc.points {
            s.push_str(&format!(
                "{:>8} {:>9.2} ms {:>9.2} ms {:>9.2} ms {:>14} {:>9.2}x {:>34}\n",
                p.threads,
                p.wall_sec * 1e3,
                p.host_modeled_sec * 1e3,
                p.modeled_sec * 1e3,
                fmt_bytes(p.stored_bytes),
                sc.speedup_vs_1(p),
                format!("{:016x}{:016x}", p.record_digest.0, p.record_digest.1),
            ));
        }
        s.push_str(&format!(
            "bit-identical across thread counts: {}\n",
            sc.bit_identical()
        ));
    }
    s
}

/// The machine-readable side of the host-scaling sweep
/// (`BENCH_host_scaling.json`).
pub fn render_host_scaling_json(rep: &HostScalingReport) -> String {
    let mut w = ckpt_telemetry::JsonWriter::new();
    w.begin_object();
    w.key("host_scaling").begin_object();
    w.key("n_checkpoints").u64(rep.n_checkpoints as u64);
    w.key("bit_identical").bool(rep.bit_identical());
    w.key("scales").begin_array();
    for sc in &rep.scales {
        w.begin_object();
        w.key("scale").u64(sc.scale as u64);
        w.key("snapshot_bytes").u64(sc.snapshot_bytes as u64);
        w.key("bit_identical").bool(sc.bit_identical());
        w.key("points").begin_array();
        for p in &sc.points {
            w.begin_object();
            w.key("threads").u64(p.threads as u64);
            w.key("wall_sec").f64(p.wall_sec);
            w.key("host_modeled_sec").f64(p.host_modeled_sec);
            w.key("real_parallel_sec").f64(p.real_parallel_sec);
            w.key("modeled_parallel_sec").f64(p.modeled_parallel_sec);
            w.key("modeled_sec").f64(p.modeled_sec);
            w.key("stored_bytes").u64(p.stored_bytes);
            w.key("speedup_vs_1").f64(sc.speedup_vs_1(p));
            w.key("record_digest").string(&format!(
                "{:016x}{:016x}",
                p.record_digest.0, p.record_digest.1
            ));
            w.key("stages").begin_array();
            for (name, measured, modeled) in &p.stages {
                w.begin_object();
                w.key("stage").string(name);
                w.key("measured_sec").f64(*measured);
                w.key("modeled_sec").f64(*modeled);
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.end_object();
    w.finish()
}

pub fn render_restart_latency(rep: &RestartLatencyReport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "Restart latency: sequential replay vs single-pass parallel engine (scale {})\n",
        rep.scale,
    ));
    for cell in &rep.cells {
        s.push_str(&format!(
            "{} chain, {} records ({} per snapshot)\n",
            cell.method,
            cell.chain_len,
            fmt_bytes(cell.snapshot_bytes as u64),
        ));
        s.push_str(&format!(
            "{:>8} {:>14} {:>14} {:>10} {:>10} {:>14}\n",
            "threads", "seq host-model", "par host-model", "speedup", "visited", "copied"
        ));
        for p in &cell.points {
            s.push_str(&format!(
                "{:>8} {:>11.2} ms {:>11.2} ms {:>9.2}x {:>10} {:>14}\n",
                p.threads,
                p.seq_host_modeled_sec * 1e3,
                p.par_host_modeled_sec * 1e3,
                cell.speedup(p),
                p.records_visited,
                fmt_bytes(p.bytes_copied),
            ));
        }
        s.push_str(&format!(
            "bit-identical to sequential replay: {}\n",
            cell.bit_identical()
        ));
    }
    s
}

/// The machine-readable side of the restart-latency sweep
/// (`BENCH_restart_latency.json`).
pub fn render_restart_latency_json(rep: &RestartLatencyReport) -> String {
    let mut w = ckpt_telemetry::JsonWriter::new();
    w.begin_object();
    w.key("restart_latency").begin_object();
    w.key("scale").u64(rep.scale as u64);
    w.key("bit_identical").bool(rep.bit_identical());
    w.key("cells").begin_array();
    for cell in &rep.cells {
        w.begin_object();
        w.key("method").string(cell.method);
        w.key("chain_len").u64(cell.chain_len as u64);
        w.key("snapshot_bytes").u64(cell.snapshot_bytes as u64);
        w.key("bit_identical").bool(cell.bit_identical());
        w.key("best_speedup").f64(cell.best_speedup());
        w.key("points").begin_array();
        for p in &cell.points {
            w.begin_object();
            w.key("threads").u64(p.threads as u64);
            w.key("seq_wall_sec").f64(p.seq_wall_sec);
            w.key("par_wall_sec").f64(p.par_wall_sec);
            w.key("seq_host_modeled_sec").f64(p.seq_host_modeled_sec);
            w.key("par_host_modeled_sec").f64(p.par_host_modeled_sec);
            w.key("speedup").f64(cell.speedup(p));
            w.key("seq_digest")
                .string(&format!("{:016x}{:016x}", p.seq_digest.0, p.seq_digest.1));
            w.key("par_digest")
                .string(&format!("{:016x}{:016x}", p.par_digest.0, p.par_digest.1));
            w.key("records_visited").u64(p.records_visited as u64);
            w.key("bytes_copied").u64(p.bytes_copied);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.end_object();
    w.finish()
}

pub fn render_flush_pipeline(rep: &FlushPipelineReport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "Flush pipeline: compressed tiers, {} checkpoints per cell (methods x policy x threads)\n",
        rep.n_checkpoints,
    ));
    for wl in &rep.workloads {
        s.push_str(&format!(
            "\n[{} / scale {}] ({} per snapshot)\n",
            wl.graph.name(),
            wl.scale,
            fmt_bytes(wl.snapshot_bytes as u64),
        ));
        for cell in &wl.cells {
            s.push_str(&format!(
                "{}: adaptive vs off — stored {:.2}x smaller, modeled hash+flush {:.2}x faster\n",
                cell.method,
                cell.stored_reduction_adaptive(),
                cell.e2e_speedup_adaptive(),
            ));
            s.push_str(&format!(
                "{:>10} {:>8} {:>12} {:>7} {:>12} {:>12} {:>10} {:>12} {:>8}\n",
                "policy",
                "threads",
                "stored",
                "ratio",
                "pfs-write",
                "e2e-model",
                "wall",
                "enq-wait",
                "restore"
            ));
            for p in &cell.points {
                s.push_str(&format!(
                    "{:>10} {:>8} {:>12} {:>6}% {:>9.3} ms {:>9.3} ms {:>7.2} ms {:>9.3} ms {:>8}\n",
                    p.policy,
                    p.threads,
                    fmt_bytes(p.stored_bytes),
                    p.ratio_pct,
                    p.modeled_pfs_write_sec * 1e3,
                    p.modeled_e2e_sec * 1e3,
                    p.wall_sec * 1e3,
                    p.enqueue_wait_sec * 1e3,
                    if p.restore_ok { "ok" } else { "MISMATCH" },
                ));
            }
            s.push_str(&format!(
                "bit-identical restores across policy x threads: {}\n",
                cell.bit_identical()
            ));
        }
    }
    s
}

/// The machine-readable side of the flush-pipeline sweep
/// (`BENCH_flush_pipeline.json`).
pub fn render_flush_pipeline_json(rep: &FlushPipelineReport) -> String {
    let mut w = ckpt_telemetry::JsonWriter::new();
    w.begin_object();
    w.key("flush_pipeline").begin_object();
    w.key("n_checkpoints").u64(rep.n_checkpoints as u64);
    w.key("bit_identical").bool(rep.bit_identical());
    w.key("workloads").begin_array();
    for wl in &rep.workloads {
        w.begin_object();
        w.key("graph").string(wl.graph.name());
        w.key("scale").u64(wl.scale as u64);
        w.key("snapshot_bytes").u64(wl.snapshot_bytes as u64);
        w.key("cells").begin_array();
        for cell in &wl.cells {
            w.begin_object();
            w.key("method").string(cell.method);
            w.key("bit_identical").bool(cell.bit_identical());
            w.key("stored_reduction_adaptive")
                .f64(cell.stored_reduction_adaptive());
            w.key("e2e_speedup_adaptive")
                .f64(cell.e2e_speedup_adaptive());
            w.key("points").begin_array();
            for p in &cell.points {
                w.begin_object();
                w.key("policy").string(&p.policy);
                w.key("threads").u64(p.threads as u64);
                w.key("raw_bytes").u64(p.raw_bytes);
                w.key("stored_bytes").u64(p.stored_bytes);
                w.key("ratio_pct").u64(p.ratio_pct);
                w.key("modeled_pfs_write_sec").f64(p.modeled_pfs_write_sec);
                w.key("modeled_e2e_sec").f64(p.modeled_e2e_sec);
                w.key("wall_sec").f64(p.wall_sec);
                w.key("enqueue_wait_sec").f64(p.enqueue_wait_sec);
                w.key("restore_digest").string(&format!(
                    "{:016x}{:016x}",
                    p.restore_digest.0, p.restore_digest.1
                ));
                w.key("restore_ok").bool(p.restore_ok);
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.end_object();
    w.finish()
}

pub fn render_redundancy(rep: &RedundancyReport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "Cross-rank redundancy: {} ranks x {} checkpoints [{} / scale {}], rank {} lost\n",
        rep.n_ranks,
        rep.n_checkpoints,
        rep.graph.name(),
        rep.scale,
        rep.lost_rank,
    ));
    for cell in &rep.cells {
        s.push_str(&format!(
            "\n{}: rank-loss restores bit-identical: {}\n",
            cell.method,
            cell.bit_identical()
        ));
        s.push_str(&format!(
            "{:>8} {:>12} {:>12} {:>9} {:>10} {:>9} {:>10} {:>7} {:>10} {:>8}\n",
            "policy",
            "stored",
            "group",
            "store-ov",
            "wall",
            "tput-ov",
            "red-drain",
            "source",
            "restore",
            "digest"
        ));
        for p in &cell.points {
            s.push_str(&format!(
                "{:>8} {:>12} {:>12} {:>8}% {:>7.2} ms {:>8.1}% {:>7.2} ms {:>7} {:>7.2} ms {:>8}\n",
                p.policy,
                fmt_bytes(p.stored_bytes),
                fmt_bytes(p.group_bytes),
                p.storage_overhead_pct,
                p.wall_sec * 1e3,
                cell.throughput_overhead_pct(&p.policy),
                p.redundancy_drain_sec * 1e3,
                p.restore_source,
                p.rank_loss_restore_sec * 1e3,
                if p.restore_ok { "ok" } else { "MISMATCH" },
            ));
        }
    }
    s
}

/// The machine-readable side of the redundancy sweep
/// (`BENCH_redundancy.json`).
pub fn render_redundancy_json(rep: &RedundancyReport) -> String {
    let mut w = ckpt_telemetry::JsonWriter::new();
    w.begin_object();
    w.key("redundancy").begin_object();
    w.key("graph").string(rep.graph.name());
    w.key("scale").u64(rep.scale as u64);
    w.key("n_ranks").u64(rep.n_ranks as u64);
    w.key("n_checkpoints").u64(rep.n_checkpoints as u64);
    w.key("lost_rank").u64(rep.lost_rank as u64);
    w.key("bit_identical").bool(rep.bit_identical());
    w.key("cells").begin_array();
    for cell in &rep.cells {
        w.begin_object();
        w.key("method").string(cell.method);
        w.key("bit_identical").bool(cell.bit_identical());
        w.key("points").begin_array();
        for p in &cell.points {
            w.begin_object();
            w.key("policy").string(&p.policy);
            w.key("raw_bytes").u64(p.raw_bytes);
            w.key("stored_bytes").u64(p.stored_bytes);
            w.key("group_bytes").u64(p.group_bytes);
            w.key("storage_overhead_pct").u64(p.storage_overhead_pct);
            w.key("wall_sec").f64(p.wall_sec);
            w.key("agg_throughput_bps").f64(p.agg_throughput_bps);
            w.key("throughput_overhead_pct")
                .f64(cell.throughput_overhead_pct(&p.policy));
            w.key("redundancy_drain_sec").f64(p.redundancy_drain_sec);
            w.key("enqueue_wait_sec").f64(p.enqueue_wait_sec);
            w.key("restore_source").string(p.restore_source);
            w.key("rank_loss_restore_sec").f64(p.rank_loss_restore_sec);
            w.key("restore_digest").string(&format!(
                "{:016x}{:016x}",
                p.restore_digest.0, p.restore_digest.1
            ));
            w.key("restore_ok").bool(p.restore_ok);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.end_object();
    w.finish()
}

pub fn render_rank_dedup(rep: &RankDedupReport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "Cluster-wide rank dedup: {} ranks x {} checkpoints [{} / scale {} / chunk {} B], \
         rank {} lost, rank {} witness\n",
        rep.n_ranks,
        rep.n_checkpoints,
        rep.graph.name(),
        rep.scale,
        rep.chunk,
        rep.lost_rank,
        rep.witness_rank,
    ));
    for cell in &rep.cells {
        s.push_str(&format!(
            "\n{}: restores bit-identical at threads {:?}: {}\n",
            cell.method,
            rep.threads,
            cell.bit_identical()
        ));
        s.push_str(&format!(
            "{:>8} {:>6} {:>12} {:>12} {:>7} {:>8} {:>12} {:>10} {:>7} {:>10} {:>8}\n",
            "policy",
            "dedup",
            "stored",
            "group",
            "claims",
            "refs",
            "saved",
            "modeled",
            "source",
            "restore",
            "reduct"
        ));
        for p in &cell.points {
            let restore_ms: f64 =
                p.restores.iter().map(|r| r.restore_sec).sum::<f64>() / p.restores.len() as f64;
            s.push_str(&format!(
                "{:>8} {:>6} {:>12} {:>12} {:>7} {:>8} {:>12} {:>7.2} ms {:>7} {:>7.2} ms {:>7}\n",
                p.policy,
                if p.rank_dedup { "on" } else { "off" },
                fmt_bytes(p.stored_bytes),
                fmt_bytes(p.group_bytes),
                p.claims,
                p.remote_refs,
                fmt_bytes(p.remote_bytes_saved),
                p.modeled_e2e_sec * 1e3,
                p.restore_source,
                restore_ms * 1e3,
                if p.rank_dedup {
                    format!("{:.1}%", cell.reduction_pct(&p.policy))
                } else {
                    "-".into()
                },
            ));
        }
    }
    s.push_str(&format!(
        "\nworst-case stored-byte reduction vs per-rank dedup: {:.1}%\n",
        rep.min_reduction_pct()
    ));
    s
}

/// The machine-readable side of the rank-dedup sweep
/// (`BENCH_rank_dedup.json`).
pub fn render_rank_dedup_json(rep: &RankDedupReport) -> String {
    let mut w = ckpt_telemetry::JsonWriter::new();
    w.begin_object();
    w.key("rank_dedup").begin_object();
    w.key("graph").string(rep.graph.name());
    w.key("scale").u64(rep.scale as u64);
    w.key("n_ranks").u64(rep.n_ranks as u64);
    w.key("n_checkpoints").u64(rep.n_checkpoints as u64);
    w.key("chunk").u64(rep.chunk as u64);
    w.key("lost_rank").u64(rep.lost_rank as u64);
    w.key("witness_rank").u64(rep.witness_rank as u64);
    w.key("bit_identical").bool(rep.bit_identical());
    w.key("min_reduction_pct").f64(rep.min_reduction_pct());
    w.key("cells").begin_array();
    for cell in &rep.cells {
        w.begin_object();
        w.key("method").string(cell.method);
        w.key("bit_identical").bool(cell.bit_identical());
        w.key("points").begin_array();
        for p in &cell.points {
            w.begin_object();
            w.key("policy").string(&p.policy);
            w.key("rank_dedup").bool(p.rank_dedup);
            w.key("raw_bytes").u64(p.raw_bytes);
            w.key("stored_bytes").u64(p.stored_bytes);
            w.key("group_bytes").u64(p.group_bytes);
            w.key("claims").u64(p.claims);
            w.key("remote_refs").u64(p.remote_refs);
            w.key("remote_bytes_saved").u64(p.remote_bytes_saved);
            w.key("reduction_pct").f64(if p.rank_dedup {
                cell.reduction_pct(&p.policy)
            } else {
                0.0
            });
            w.key("wall_sec").f64(p.wall_sec);
            w.key("modeled_e2e_sec").f64(p.modeled_e2e_sec);
            w.key("restore_source").string(p.restore_source);
            w.key("restores").begin_array();
            for r in &p.restores {
                w.begin_object();
                w.key("threads").u64(r.threads as u64);
                w.key("lost_digest")
                    .string(&format!("{:016x}{:016x}", r.lost_digest.0, r.lost_digest.1));
                w.key("witness_digest").string(&format!(
                    "{:016x}{:016x}",
                    r.witness_digest.0, r.witness_digest.1
                ));
                w.key("lost_ok").bool(r.lost_ok);
                w.key("witness_ok").bool(r.witness_ok);
                w.key("restore_sec").f64(r.restore_sec);
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.end_object();
    w.finish()
}

/// The machine-readable side of Figure 5 (`BENCH_fig5.json`), including
/// the hybrid `Tree+codec` series.
pub fn render_fig5_json(cells: &[Fig5Cell]) -> String {
    let mut w = ckpt_telemetry::JsonWriter::new();
    w.begin_object();
    w.key("fig5").begin_object();
    w.key("cells").begin_array();
    for c in cells {
        w.begin_object();
        w.key("graph").string(c.graph.name());
        w.key("n_checkpoints").u64(c.n_checkpoints as u64);
        w.key("methods").begin_array();
        for m in &c.methods {
            w.begin_object();
            w.key("name").string(&m.name);
            w.key("uncompressed_bytes").u64(m.uncompressed);
            w.key("stored_bytes").u64(m.stored);
            w.key("metadata_bytes").u64(m.metadata);
            w.key("ratio").f64(m.ratio());
            w.key("modeled_sec").f64(m.modeled_sec);
            w.key("measured_sec").f64(m.measured_sec);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.end_object();
    w.finish()
}

pub fn render_hash(points: &[HashPoint]) -> String {
    let mut s = String::new();
    s.push_str("Ablation A1: hash function choice (chunk 128 B)\n");
    for p in points {
        s.push_str(&format!(
            "  {:<8} raw hashing {:>12} | end-to-end Tree: {}\n",
            p.hasher,
            fmt_tp(p.bytes_per_sec),
            method_line(&p.record).trim_start(),
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(5 * 1024 * 1024), "5.00 MiB");
        assert_eq!(fmt_bytes((4.33 * (1u64 << 40) as f64) as u64), "4.33 TiB");
    }

    #[test]
    fn host_scaling_json_has_expected_schema() {
        use crate::experiments::{HostScalingPoint, HostScalingReport, HostScalingScale};
        let rep = HostScalingReport {
            n_checkpoints: 8,
            scales: vec![HostScalingScale {
                scale: 1000,
                snapshot_bytes: 292_000,
                points: vec![HostScalingPoint {
                    threads: 1,
                    wall_sec: 0.5,
                    host_modeled_sec: 0.4,
                    real_parallel_sec: 0.3,
                    modeled_parallel_sec: 0.2,
                    modeled_sec: 0.01,
                    stored_bytes: 123,
                    record_digest: (0xdead, 0xbeef),
                    stages: vec![("leaf_hash".to_string(), 0.1, 0.005)],
                }],
            }],
        };
        let json = render_host_scaling_json(&rep);
        let keys = ckpt_telemetry::collect_keys(&json);
        for k in [
            "host_scaling",
            "scales",
            "scale",
            "snapshot_bytes",
            "n_checkpoints",
            "bit_identical",
            "points",
            "threads",
            "wall_sec",
            "host_modeled_sec",
            "real_parallel_sec",
            "modeled_parallel_sec",
            "modeled_sec",
            "stored_bytes",
            "speedup_vs_1",
            "record_digest",
            "stages",
            "stage",
            "measured_sec",
        ] {
            assert!(keys.iter().any(|have| have == k), "missing key {k}");
        }
        assert!(json.contains("000000000000dead000000000000beef"));
        assert!(json.contains("leaf_hash"));
    }

    #[test]
    fn restart_latency_json_has_expected_schema() {
        use crate::experiments::{RestartLatencyCell, RestartLatencyPoint, RestartLatencyReport};
        let rep = RestartLatencyReport {
            scale: 4000,
            cells: vec![RestartLatencyCell {
                method: "Tree",
                chain_len: 32,
                snapshot_bytes: 292_000,
                points: vec![RestartLatencyPoint {
                    threads: 8,
                    seq_wall_sec: 0.5,
                    par_wall_sec: 0.1,
                    seq_host_modeled_sec: 0.4,
                    par_host_modeled_sec: 0.1,
                    seq_digest: (0xdead, 0xbeef),
                    par_digest: (0xdead, 0xbeef),
                    records_visited: 32,
                    bytes_copied: 292_000,
                }],
            }],
        };
        assert!(rep.bit_identical());
        let json = render_restart_latency_json(&rep);
        let keys = ckpt_telemetry::collect_keys(&json);
        for k in [
            "restart_latency",
            "scale",
            "bit_identical",
            "cells",
            "method",
            "chain_len",
            "snapshot_bytes",
            "best_speedup",
            "points",
            "threads",
            "seq_wall_sec",
            "par_wall_sec",
            "seq_host_modeled_sec",
            "par_host_modeled_sec",
            "speedup",
            "seq_digest",
            "par_digest",
            "records_visited",
            "bytes_copied",
        ] {
            assert!(keys.iter().any(|have| have == k), "missing key {k}");
        }
        assert!(json.contains("000000000000dead000000000000beef"));
        assert!(json.contains("\"Tree\""));
    }

    #[test]
    fn fig2_rendering_mentions_savings() {
        let d = crate::experiments::fig2_demo();
        let text = render_fig2(&d);
        assert!(text.contains("3 regions"));
        assert!(text.contains("7 entries"));
    }
}
