//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§3), plus the ablations listed in `DESIGN.md`.
//!
//! * [`workload`] — ORANGES GDV snapshot sequences over the Table 1 graphs;
//! * [`codecs`] — compressor baselines and the common measurement currency;
//! * [`experiments`] — one driver per table/figure/ablation;
//! * [`report`] — plain-text rendering.
//!
//! Run `cargo run -p ckpt-bench --release --bin figures -- all` to regenerate
//! everything; see `EXPERIMENTS.md` at the repository root for the recorded
//! paper-vs-measured comparison.

pub mod codecs;
pub mod experiments;
pub mod report;
pub mod workload;
