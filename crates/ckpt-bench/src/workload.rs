//! Checkpoint workload generation: ORANGES GDV snapshot sequences.
//!
//! Every experiment consumes the same kind of object the paper checkpoints:
//! the evolving GDV array of an ORANGES run over one of the Table 1 graphs,
//! captured at `n_checkpoints` evenly spaced points (§3.2, "we capture a
//! full initial checkpoint, then another N−1 incremental checkpoints evenly
//! distributed during the runtime").

use ckpt_graph::{gorder, CsrGraph, PaperGraph};
use ckpt_oranges::OrangesRun;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};

/// Vertex labeling applied before the ORANGES run.
///
/// The paper's real inputs arrive with arbitrary (non-local) vertex ids and
/// are pre-processed with Gorder (§3.2). Our synthetic generators emit
/// naturally local ids, so modeling "as received" means scrambling first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VertexOrder {
    /// The generator's native labeling (already fairly local).
    Natural,
    /// Deterministically shuffled labels — how real-world inputs arrive.
    Scrambled,
    /// Scrambled, then breadth-first reordered.
    Bfs,
    /// Scrambled, then reverse Cuthill–McKee reordered.
    Rcm,
    /// Scrambled, then reordered with Gorder — the paper's pre-processing.
    Gorder,
}

/// A ready-to-checkpoint snapshot sequence.
#[derive(Debug, Clone)]
pub struct Workload {
    pub graph: PaperGraph,
    pub n_vertices: usize,
    /// GDV byte snapshots, one per checkpoint (first = initial checkpoint).
    pub snapshots: Vec<Vec<u8>>,
}

impl Workload {
    /// Bytes of one (full) checkpoint.
    pub fn snapshot_bytes(&self) -> usize {
        self.snapshots.first().map_or(0, |s| s.len())
    }
}

fn scramble(g: &CsrGraph, seed: u64) -> CsrGraph {
    let mut perm: Vec<u32> = (0..g.n_vertices() as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5ca3_3b1e);
    perm.shuffle(&mut rng);
    g.permute(&perm)
}

/// Build the GDV snapshot sequence for `graph` at `n_target` vertices under
/// the given vertex ordering.
pub fn gdv_snapshots_ordered(
    graph: PaperGraph,
    n_target: usize,
    n_checkpoints: usize,
    seed: u64,
    order: VertexOrder,
) -> Workload {
    let g = graph.generate(n_target, seed);
    let g = match order {
        VertexOrder::Natural => g,
        VertexOrder::Scrambled => scramble(&g, seed),
        VertexOrder::Bfs => {
            let s = scramble(&g, seed);
            s.permute(&ckpt_graph::bfs_order(&s))
        }
        VertexOrder::Rcm => {
            let s = scramble(&g, seed);
            s.permute(&ckpt_graph::rcm_order(&s))
        }
        VertexOrder::Gorder => gorder::reorder(&scramble(&g, seed)),
    };
    let mut snapshots = Vec::with_capacity(n_checkpoints);
    let mut run = OrangesRun::new(&g);
    run.run_with_checkpoints_par(n_checkpoints, |bytes, _| snapshots.push(bytes.to_vec()));
    Workload {
        graph,
        n_vertices: g.n_vertices(),
        snapshots,
    }
}

/// [`gdv_snapshots_ordered`] with the paper's default pre-processing
/// (`use_gorder = true` → [`VertexOrder::Gorder`], else as-received).
pub fn gdv_snapshots(
    graph: PaperGraph,
    n_target: usize,
    n_checkpoints: usize,
    seed: u64,
    use_gorder: bool,
) -> Workload {
    let order = if use_gorder {
        VertexOrder::Gorder
    } else {
        VertexOrder::Scrambled
    };
    gdv_snapshots_ordered(graph, n_target, n_checkpoints, seed, order)
}

/// Per-rank workload for the strong-scaling experiment: every rank runs
/// ORANGES over its own partition-equivalent copy (the paper's setup is
/// embarrassingly parallel, one process per GPU), decorrelated by seed.
///
/// The paper's scaling scenario checkpoints every 10 minutes while "at
/// scale, for larger dense graphs, the number of iterations rapidly
/// increases" — its 10 checkpoints sample the *early* part of a much longer
/// Delaunay run, where the GDV array is still mostly zeros. `coverage` is
/// the fraction of root vertices completed by the final checkpoint
/// ([`SCALING_COVERAGE`] by default).
pub fn scaling_snapshots(
    rank: u32,
    n_target: usize,
    n_checkpoints: usize,
    seed: u64,
) -> Vec<Vec<u8>> {
    scaling_snapshots_with_coverage(rank, n_target, n_checkpoints, seed, SCALING_COVERAGE)
}

/// Fraction of the ORANGES run the scaling scenario's checkpoints cover.
pub const SCALING_COVERAGE: f64 = 0.25;

/// [`scaling_snapshots`] with an explicit run-coverage fraction.
pub fn scaling_snapshots_with_coverage(
    rank: u32,
    n_target: usize,
    n_checkpoints: usize,
    seed: u64,
    coverage: f64,
) -> Vec<Vec<u8>> {
    let seed = seed ^ (rank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let g = PaperGraph::DelaunayN24.generate(n_target, seed);
    let g = gorder::reorder(&scramble(&g, seed));
    let n = g.n_vertices() as u64;
    let mut run = OrangesRun::new(&g);
    let mut snapshots = Vec::with_capacity(n_checkpoints);
    for k in 1..=n_checkpoints as u64 {
        let target = ((n as f64 * coverage) as u64 * k / n_checkpoints as u64) as u32;
        while run.next_root() < target {
            let batch = (target - run.next_root()) as usize;
            run.step_par(batch);
        }
        snapshots.push(run.gdv().as_bytes().to_vec());
    }
    snapshots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_have_constant_size_and_grow_monotonically() {
        let w = gdv_snapshots(PaperGraph::MessageRace, 2000, 5, 1, true);
        assert_eq!(w.snapshots.len(), 5);
        let len = w.snapshot_bytes();
        assert_eq!(len, w.n_vertices * 73 * 4);
        assert!(w.snapshots.iter().all(|s| s.len() == len));
        // Counters only increase: each snapshot differs from the previous.
        for pair in w.snapshots.windows(2) {
            assert_ne!(pair[0], pair[1]);
        }
    }

    #[test]
    fn gorder_reduces_dirty_chunks() {
        // Count 128-byte chunks that change between consecutive snapshots —
        // the granularity the de-duplication methods see. Gorder clusters
        // each interval's updates into fewer chunks than an as-received
        // (scrambled) labeling.
        fn mean_dirty_chunks(w: &Workload) -> f64 {
            let mut total = 0usize;
            for pair in w.snapshots.windows(2) {
                total += pair[0]
                    .chunks(128)
                    .zip(pair[1].chunks(128))
                    .filter(|(a, b)| a != b)
                    .count();
            }
            total as f64 / (w.snapshots.len() - 1) as f64
        }
        let with = gdv_snapshots(PaperGraph::AsiaOsm, 4000, 10, 2, true);
        let without = gdv_snapshots(PaperGraph::AsiaOsm, 4000, 10, 2, false);
        // Same data volume, different layout.
        assert_eq!(with.snapshot_bytes(), without.snapshot_bytes());
        assert!(
            mean_dirty_chunks(&with) < 0.9 * mean_dirty_chunks(&without),
            "gorder {} dirty chunks vs scrambled {}",
            mean_dirty_chunks(&with),
            mean_dirty_chunks(&without)
        );
    }

    #[test]
    fn scaling_ranks_are_decorrelated() {
        let a = scaling_snapshots(0, 1000, 3, 5);
        let b = scaling_snapshots(1, 1000, 3, 5);
        assert_eq!(a.len(), 3);
        assert_ne!(a[0], b[0]);
    }
}
