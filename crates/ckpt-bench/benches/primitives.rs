//! Microbenchmarks of the substrate primitives the paper's design leans on:
//! the lock-free distinct-hash map, the device scan, and the team gather.

use ckpt_hash::{Hasher128, Murmur3};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::{collectives, Device, DistinctMap, MapEntry};
use rayon::prelude::*;

fn bench_distinct_map(c: &mut Criterion) {
    let n = 100_000usize;
    let digests: Vec<_> = (0..n)
        .map(|i| Murmur3.hash(&(i as u64).to_le_bytes()))
        .collect();

    let mut group = c.benchmark_group("distinct_map");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("insert_serial", |b| {
        b.iter(|| {
            let map = DistinctMap::with_capacity(n);
            for (i, d) in digests.iter().enumerate() {
                map.insert(d, MapEntry::new(i as u32, 0));
            }
            map.len()
        })
    });
    group.bench_function("insert_parallel", |b| {
        b.iter(|| {
            let map = DistinctMap::with_capacity(n);
            digests.par_iter().enumerate().for_each(|(i, d)| {
                map.insert(d, MapEntry::new(i as u32, 0));
            });
            map.len()
        })
    });
    group.bench_function("lookup_hit", |b| {
        let map = DistinctMap::with_capacity(n);
        for (i, d) in digests.iter().enumerate() {
            map.insert(d, MapEntry::new(i as u32, 0));
        }
        b.iter(|| digests.iter().filter(|d| map.contains(d)).count())
    });
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let n = 1usize << 20;
    let input: Vec<u64> = (0..n as u64).map(|i| i % 97).collect();
    let mut out = vec![0u64; n];

    let mut group = c.benchmark_group("collectives");
    group.throughput(Throughput::Bytes((n * 8) as u64));
    group.bench_function("exclusive_scan", |b| {
        b.iter(|| collectives::exclusive_scan(&input, &mut out))
    });

    let src: Vec<u8> = (0..(4 << 20)).map(|i| i as u8).collect();
    let segments: Vec<(usize, usize)> = (0..8192).map(|i| (i * 512, 256)).collect();
    let total: usize = segments.iter().map(|s| s.1).sum();
    let mut dst = vec![0u8; total];
    group.throughput(Throughput::Bytes(total as u64));
    group.bench_function("segmented_gather", |b| {
        b.iter(|| collectives::segmented_gather(&src, &segments, &mut dst))
    });
    group.finish();
}

fn bench_device_launch_overhead(c: &mut Criterion) {
    let dev = Device::a100();
    let mut group = c.benchmark_group("device");
    for n in [1_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::new("parallel_for", n), &n, |b, &n| {
            b.iter(|| {
                dev.parallel_for("noop", n, gpu_sim::KernelCost::stream(n as u64), |i| {
                    std::hint::black_box(i);
                })
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_distinct_map,
    bench_collectives,
    bench_device_launch_overhead
);
criterion_main!(benches);
