//! Criterion bench for Figure 5: per-checkpoint cost of de-duplication vs
//! compression at the frequency-scenario chunk size (128 B).
//!
//! De-duplication cost shrinks as checkpoints get closer together (fewer
//! changed chunks to serialize); per-checkpoint compression cost does not —
//! the asymmetry behind Figure 5's throughput panels.

use ckpt_bench::workload::gdv_snapshots;
use ckpt_compress::all_codecs;
use ckpt_dedup::prelude::*;
use ckpt_graph::PaperGraph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::Device;

fn bench_frequency(c: &mut Criterion) {
    // N = 10: the middle frequency of the paper's sweep.
    let w = gdv_snapshots(PaperGraph::UnstructuredMesh, 4_000, 10, 42, true);
    let snaps = &w.snapshots;
    let bytes = snaps[0].len() as u64;

    let mut group = c.benchmark_group("fig5_frequency");
    group.throughput(Throughput::Bytes(bytes));
    group.sample_size(20);

    group.bench_function("tree_incremental", |b| {
        b.iter_batched(
            || {
                let mut m = TreeCheckpointer::new(Device::a100(), TreeConfig::new(128));
                for s in &snaps[..snaps.len() - 1] {
                    m.checkpoint(s);
                }
                m
            },
            |mut m| m.checkpoint(snaps.last().unwrap()),
            criterion::BatchSize::LargeInput,
        )
    });

    for codec in all_codecs() {
        let name = codec.name();
        group.bench_with_input(BenchmarkId::new("compress", name), &codec, |b, codec| {
            b.iter(|| codec.compress(snaps.last().unwrap()))
        });
    }
    group.finish();
}

fn bench_decompression(c: &mut Criterion) {
    // Restore-path comparison: decompressing one checkpoint vs replaying a
    // dedup record.
    let w = gdv_snapshots(PaperGraph::UnstructuredMesh, 3_000, 5, 42, true);
    let snaps = &w.snapshots;

    let mut group = c.benchmark_group("fig5_restore");
    group.sample_size(20);
    for codec in all_codecs().into_iter().take(3) {
        let packed = codec.compress(snaps.last().unwrap());
        let name = codec.name();
        group.bench_with_input(
            BenchmarkId::new("decompress", name),
            &packed,
            |b, packed| b.iter(|| codec.decompress(packed).unwrap()),
        );
    }
    let mut m = TreeCheckpointer::new(Device::a100(), TreeConfig::new(128));
    let diffs: Vec<_> = snaps.iter().map(|s| m.checkpoint(s).diff).collect();
    group.bench_function("tree_restore_record", |b| {
        b.iter(|| restore_record(&diffs).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_frequency, bench_decompression);
criterion_main!(benches);
