//! Criterion bench for Figure 4: checkpointing cost across chunk sizes.
//!
//! Measures the wall time of one incremental checkpoint (the second of a
//! pair, so the historical record is warm) for each method at each chunk
//! size of the paper's sweep, on a Message Race GDV workload.

use ckpt_bench::workload::gdv_snapshots;
use ckpt_dedup::prelude::*;
use ckpt_graph::PaperGraph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::Device;

fn bench_chunk_sizes(c: &mut Criterion) {
    let w = gdv_snapshots(PaperGraph::MessageRace, 4_000, 2, 42, true);
    let (first, second) = (&w.snapshots[0], &w.snapshots[1]);

    let mut group = c.benchmark_group("fig4_chunk_size");
    group.throughput(Throughput::Bytes(second.len() as u64));
    for chunk in [32usize, 64, 128, 256, 512] {
        group.bench_with_input(BenchmarkId::new("tree", chunk), &chunk, |b, &chunk| {
            b.iter_batched(
                || {
                    let mut m = TreeCheckpointer::new(Device::a100(), TreeConfig::new(chunk));
                    m.checkpoint(first);
                    m
                },
                |mut m| m.checkpoint(second),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("list", chunk), &chunk, |b, &chunk| {
            b.iter_batched(
                || {
                    let mut m = ListCheckpointer::new(Device::a100(), TreeConfig::new(chunk));
                    m.checkpoint(first);
                    m
                },
                |mut m| m.checkpoint(second),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("basic", chunk), &chunk, |b, &chunk| {
            b.iter_batched(
                || {
                    let mut m = BasicCheckpointer::new(Device::a100(), chunk);
                    m.checkpoint(first);
                    m
                },
                |mut m| m.checkpoint(second),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    // Full is chunk-size independent; one reference point.
    group.bench_function("full", |b| {
        let mut m = FullCheckpointer::new(Device::a100(), 128);
        b.iter(|| m.checkpoint(second))
    });
    group.finish();
}

criterion_group!(benches, bench_chunk_sizes);
criterion_main!(benches);
