//! Criterion bench for Figure 6: multi-rank checkpointing through the
//! asynchronous runtime, Tree vs Full, as the rank count grows.

use ckpt_bench::workload::scaling_snapshots;
use ckpt_runtime::{run_scaling, AsyncRuntime, RebasePolicy, ScalingConfig, ScalingMethod};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_scaling(c: &mut Criterion) {
    // Small per-rank partitions; workloads pre-generated outside the timer.
    let max_ranks = 8usize;
    let snapshots: Vec<Vec<Vec<u8>>> = (0..max_ranks as u32)
        .map(|r| scaling_snapshots(r, 1_200, 5, 42))
        .collect();

    let mut group = c.benchmark_group("fig6_scaling");
    group.sample_size(10);
    for n_ranks in [1usize, 2, 4, 8] {
        for method in [ScalingMethod::Tree, ScalingMethod::Full] {
            group.bench_with_input(
                BenchmarkId::new(method.name(), n_ranks),
                &n_ranks,
                |b, &n_ranks| {
                    b.iter(|| {
                        let rt = std::sync::Arc::new(AsyncRuntime::new());
                        let cfg = ScalingConfig {
                            method,
                            n_ranks,
                            gpus_per_node: 8,
                            chunk_size: 128,
                            rebase: RebasePolicy::Never,
                        };
                        run_scaling(cfg, &rt, |rank| snapshots[rank as usize].clone())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
