//! Criterion benches for the ablations of `DESIGN.md`:
//!
//! * A1 — hash function throughput (Murmur3 vs MD5, §2.4);
//! * A2 — metadata compaction cost (Tree's extra passes vs List);
//! * A3 — two-stage wave ordering vs the naive fused sweep;
//! * kernel-fusion — fused vs unfused launch accounting (§2.1).

use ckpt_bench::workload::gdv_snapshots;
use ckpt_dedup::prelude::*;
use ckpt_graph::PaperGraph;
use ckpt_hash::{Hasher128, Md5, Murmur3, Sha256};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::Device;

fn bench_hashing(c: &mut Criterion) {
    let data: Vec<u8> = (0..4u32 << 20).map(|i| (i % 251) as u8).collect();
    let mut group = c.benchmark_group("a1_hashing");
    group.throughput(Throughput::Bytes(data.len() as u64));
    for chunk in [64usize, 128, 512] {
        group.bench_with_input(BenchmarkId::new("murmur3", chunk), &chunk, |b, &chunk| {
            b.iter(|| {
                let mut acc = 0u64;
                for piece in data.chunks(chunk) {
                    acc ^= Murmur3.hash(piece).h1;
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("md5", chunk), &chunk, |b, &chunk| {
            b.iter(|| {
                let mut acc = 0u64;
                for piece in data.chunks(chunk) {
                    acc ^= Md5.hash(piece).h1;
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("sha256", chunk), &chunk, |b, &chunk| {
            b.iter(|| {
                let mut acc = 0u64;
                for piece in data.chunks(chunk) {
                    acc ^= Sha256.hash(piece).h1;
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_metadata_compaction(c: &mut Criterion) {
    let w = gdv_snapshots(PaperGraph::Hugebubbles, 3_000, 2, 42, true);
    let (first, second) = (&w.snapshots[0], &w.snapshots[1]);
    let mut group = c.benchmark_group("a2_metadata");
    group.throughput(Throughput::Bytes(second.len() as u64));
    group.bench_function("tree_compacted", |b| {
        b.iter_batched(
            || {
                let mut m = TreeCheckpointer::new(Device::a100(), TreeConfig::new(64));
                m.checkpoint(first);
                m
            },
            |mut m| m.checkpoint(second),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("list_naive", |b| {
        b.iter_batched(
            || {
                let mut m = ListCheckpointer::new(Device::a100(), TreeConfig::new(64));
                m.checkpoint(first);
                m
            },
            |mut m| m.checkpoint(second),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_wave_ordering(c: &mut Criterion) {
    let w = gdv_snapshots(PaperGraph::MessageRace, 3_000, 2, 42, true);
    let (first, second) = (&w.snapshots[0], &w.snapshots[1]);
    let mut group = c.benchmark_group("a3_waves");
    group.bench_function("two_stage", |b| {
        b.iter_batched(
            || {
                let mut m = TreeCheckpointer::new(Device::a100(), TreeConfig::new(64));
                m.checkpoint(first);
                m
            },
            |mut m| m.checkpoint(second),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("naive_fused_sweep", |b| {
        b.iter_batched(
            || {
                let mut m = NaiveTreeCheckpointer::new(Device::a100(), TreeConfig::new(64));
                m.checkpoint(first);
                m
            },
            |mut m| m.checkpoint(second),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_kernel_fusion(c: &mut Criterion) {
    // Modeled launch-latency comparison is in the figures binary; here we
    // measure the measured-side overhead of the fused-vs-unfused paths.
    let w = gdv_snapshots(PaperGraph::MessageRace, 3_000, 2, 42, true);
    let (first, second) = (&w.snapshots[0], &w.snapshots[1]);
    let mut group = c.benchmark_group("kernel_fusion");
    for fused in [true, false] {
        group.bench_with_input(
            BenchmarkId::new("tree", if fused { "fused" } else { "unfused" }),
            &fused,
            |b, &fused| {
                b.iter_batched(
                    || {
                        let cfg = TreeConfig {
                            fused,
                            ..TreeConfig::new(64)
                        };
                        let mut m = TreeCheckpointer::new(Device::a100(), cfg);
                        m.checkpoint(first);
                        m
                    },
                    |mut m| m.checkpoint(second),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hashing,
    bench_metadata_compaction,
    bench_wave_ordering,
    bench_kernel_fusion
);
criterion_main!(benches);
