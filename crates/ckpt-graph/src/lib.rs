//! Graph substrate for the ORANGES driver application.
//!
//! Provides everything the paper's evaluation needs on the graph side:
//!
//! * [`CsrGraph`] — compact undirected graphs with sorted adjacency;
//! * [`generators`] — synthetic stand-ins for the five Table 1 inputs
//!   (HPC event traces and SuiteSparse graphs are not redistributable), each
//!   reproducing its class's arcs-per-vertex ratio and structure;
//! * [`mod@gorder`] — the Gorder cache-locality reordering pass the paper
//!   applies to every input before running ORANGES;
//! * [`ordering`] — BFS / RCM / degree orderings as comparison points;
//! * [`io`] — Matrix Market / edge-list parsing, so real SuiteSparse files
//!   can be substituted back in when available;
//! * [`stats`] — Table 1 style reporting;
//! * [`table1::PaperGraph`] — the named inputs with their published sizes.

pub mod csr;
pub mod generators;
pub mod gorder;
pub mod io;
pub mod ordering;
pub mod stats;
pub mod table1;

pub use csr::CsrGraph;
pub use gorder::{gorder, reorder};
pub use ordering::{bfs_order, degree_order, rcm_order};
pub use stats::GraphStats;
pub use table1::PaperGraph;
