//! Gorder-style graph reordering (Wei et al., SIGMOD'16).
//!
//! "Gorder uses an approximate greedy algorithm with a priority queue to
//! find a graph ordering where connected vertices are stored close together"
//! (§3.2). The paper pre-processes every input with it before running
//! ORANGES; the locality it creates is also what concentrates GDV updates
//! into contiguous checkpoint regions (ablation A4).
//!
//! This is the standard windowed greedy: vertices are emitted one at a time,
//! each chosen to maximize its Gorder score against the last `W` placed
//! vertices — the number of direct edges plus the number of shared
//! neighbors. Scores are maintained incrementally and the argmax uses a
//! lazy binary heap.

use crate::csr::CsrGraph;
use std::collections::BinaryHeap;

/// Window size used by the reference Gorder implementation.
pub const DEFAULT_WINDOW: usize = 5;

/// Cap on per-vertex sibling updates; hubs beyond this degree contribute
/// only direct-edge score (the hub-skipping optimization of the original).
const HUB_CAP: usize = 512;

/// Compute a Gorder permutation: `perm[v]` is the new label of vertex `v`.
pub fn gorder(g: &CsrGraph, window: usize) -> Vec<u32> {
    let n = g.n_vertices();
    let mut perm = vec![0u32; n];
    if n == 0 {
        return perm;
    }

    let mut placed = vec![false; n];
    let mut score = vec![0i64; n];
    let mut heap: BinaryHeap<(i64, u32)> = BinaryHeap::new();
    // Start from the max-degree vertex (as the reference does).
    let start = (0..n as u32).max_by_key(|&v| g.degree(v)).unwrap();
    heap.push((0, start));

    // Ring buffer of the current window.
    let mut recent: Vec<u32> = Vec::with_capacity(window.max(1));
    let mut next_label = 0u32;

    // Every score change re-pushes the vertex: the heap holds stale entries
    // that the pop loop discards by comparing against the live score. A
    // decrement must also push, otherwise the vertex's only live entry may
    // be the stale higher one and it silently drops out of the queue.
    let bump = |score: &mut [i64],
                heap: &mut BinaryHeap<(i64, u32)>,
                placed: &[bool],
                g: &CsrGraph,
                v: u32,
                delta: i64| {
        for &u in g.neighbors(v) {
            if !placed[u as usize] {
                score[u as usize] += delta;
                heap.push((score[u as usize], u));
            }
            // Shared-neighbor (sibling) score, hub-capped.
            if g.degree(u) <= HUB_CAP {
                for &t in g.neighbors(u) {
                    if t != v && !placed[t as usize] {
                        score[t as usize] += delta;
                        heap.push((score[t as usize], t));
                    }
                }
            }
        }
    };

    let mut emitted = 0usize;
    let mut scan_from = 0usize; // for components unreachable from `start`
    while emitted < n {
        // Pop the best live entry; fall back to the next unplaced vertex if
        // the heap drained (disconnected component).
        let v = loop {
            match heap.pop() {
                Some((s, v)) => {
                    if !placed[v as usize] && s == score[v as usize] {
                        break Some(v);
                    }
                }
                None => break None,
            }
        };
        let v = v.unwrap_or_else(|| {
            while placed[scan_from] {
                scan_from += 1;
            }
            scan_from as u32
        });

        placed[v as usize] = true;
        perm[v as usize] = next_label;
        next_label += 1;
        emitted += 1;

        if window > 0 {
            if recent.len() == window {
                let leaving = recent.remove(0);
                bump(&mut score, &mut heap, &placed, g, leaving, -1);
            }
            recent.push(v);
            bump(&mut score, &mut heap, &placed, g, v, 1);
        }
    }
    perm
}

/// Reorder a graph with Gorder at [`DEFAULT_WINDOW`].
pub fn reorder(g: &CsrGraph) -> CsrGraph {
    g.permute(&gorder(g, DEFAULT_WINDOW))
}

/// Mean |new_label(a) − new_label(b)| over all edges — the locality metric
/// Gorder minimizes (lower = neighbors closer in memory).
pub fn edge_locality(g: &CsrGraph, perm: &[u32]) -> f64 {
    let mut total = 0u64;
    let mut count = 0u64;
    for (a, b) in g.edges() {
        total += (perm[a as usize] as i64 - perm[b as usize] as i64).unsigned_abs();
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::{seq::SliceRandom, SeedableRng};

    fn is_permutation(perm: &[u32]) -> bool {
        let mut seen = vec![false; perm.len()];
        perm.iter().all(|&p| {
            let ok = (p as usize) < seen.len() && !seen[p as usize];
            if ok {
                seen[p as usize] = true;
            }
            ok
        })
    }

    #[test]
    fn produces_valid_permutation() {
        for g in [
            generators::road_network(2000, 1),
            generators::message_race(2000, 1),
            generators::delaunay(2000, 1),
        ] {
            let perm = gorder(&g, DEFAULT_WINDOW);
            assert!(is_permutation(&perm));
        }
    }

    #[test]
    fn handles_disconnected_graphs() {
        // Two cliques with no connection.
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in a + 1..5 {
                edges.push((a, b));
                edges.push((a + 5, b + 5));
            }
        }
        let g = CsrGraph::from_edges(10, &edges);
        let perm = gorder(&g, DEFAULT_WINDOW);
        assert!(is_permutation(&perm));
    }

    #[test]
    fn handles_isolated_vertices_and_empty() {
        let g = CsrGraph::from_edges(4, &[]);
        assert!(is_permutation(&gorder(&g, DEFAULT_WINDOW)));
        let g0 = CsrGraph::from_edges(1, &[]);
        assert_eq!(gorder(&g0, DEFAULT_WINDOW), vec![0]);
    }

    #[test]
    fn improves_locality_over_random_order() {
        let g = generators::road_network(4000, 3);
        let n = g.n_vertices();
        let mut rng = StdRng::seed_from_u64(9);
        let mut random: Vec<u32> = (0..n as u32).collect();
        random.shuffle(&mut rng);
        // Scramble first so Gorder cannot just inherit the generator's
        // already-local labeling.
        let scrambled = g.permute(&random);
        let gperm = gorder(&scrambled, DEFAULT_WINDOW);

        let identity: Vec<u32> = (0..n as u32).collect();
        let before = edge_locality(&scrambled, &identity);
        let after = edge_locality(&scrambled, &gperm);
        assert!(
            after < before / 4.0,
            "gorder locality {after:.1} should beat scrambled {before:.1}"
        );
    }

    #[test]
    fn reorder_preserves_graph_structure() {
        let g = generators::hugebubbles(1500, 2);
        let h = reorder(&g);
        assert_eq!(h.n_edges(), g.n_edges());
        let mut dg: Vec<usize> = (0..g.n_vertices() as u32).map(|v| g.degree(v)).collect();
        let mut dh: Vec<usize> = (0..h.n_vertices() as u32).map(|v| h.degree(v)).collect();
        dg.sort_unstable();
        dh.sort_unstable();
        assert_eq!(dg, dh);
    }
}
