//! Synthetic generators for the paper's five input-graph classes (Table 1).
//!
//! The originals (HPC event traces and SuiteSparse graphs of 11–18 M
//! vertices) are not redistributable here, so each generator reproduces the
//! *structural class* at a configurable vertex count with the same
//! arcs-per-vertex ratio as Table 1 and the qualitative properties the paper
//! leans on: event graphs are sparse and fragmented with few dense
//! subgraphs (easy to de-duplicate); road/bubble graphs are near-planar with
//! low, uniform degrees (harder); Delaunay is a dense planar triangulation
//! (used for the scaling test). All generators are deterministic in
//! `(n_target, seed)`.

use crate::csr::CsrGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// "Message Race"-class event graph: processes with fragmented event chains
/// plus sparse cross-process message edges. Arcs/vertex ≈ 1.5.
pub fn message_race(n_target: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4d52);
    let n = n_target.max(16);
    let p = (n / 64).clamp(2, 4096); // processes
    let l = n / p; // events per process
    let n = p * l;
    let mut edges = Vec::with_capacity(n * 3 / 4);
    for proc in 0..p {
        let base = (proc * l) as u32;
        // Fragmented happens-before chains with *variable* segment lengths
        // (2–12 events): trace-derived event graphs have no isolated events
        // but also no two identical causal neighborhoods for long stretches —
        // the structural diversity is what makes fresh GDV rows unique
        // (first occurrences) rather than copies of each other.
        let mut e = 0usize;
        while e < l - 1 {
            let seg = rng.gen_range(2..=5usize).min(l - e);
            for k in 0..seg - 1 {
                edges.push((base + (e + k) as u32, base + (e + k) as u32 + 1));
            }
            e += seg;
        }
    }
    // Message edges: bursty sends to racing events of other processes at
    // nearby logical times (~8% of events send 1–3 messages).
    for proc in 0..p {
        let base = (proc * l) as u32;
        for e in 0..l {
            if rng.gen_bool(0.04) {
                for _ in 0..rng.gen_range(1..=3usize) {
                    let other = (proc + rng.gen_range(1..p)) % p;
                    let jitter = rng.gen_range(0..l.min(8));
                    let te = (e + jitter) % l;
                    edges.push((base + e as u32, (other * l + te) as u32));
                }
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// "Unstructured Mesh"-class event graph: processes laid out on a jittered
/// 2D mesh, messages follow fixed mesh neighborhoods (repeated communication
/// substructure). Arcs/vertex ≈ 1.5.
pub fn unstructured_mesh(n_target: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x554d);
    let n = n_target.max(64);
    let p = (n / 64).clamp(4, 4096);
    let side = (p as f64).sqrt() as usize;
    let p = side * side;
    let l = n / p;
    let n = p * l;
    let mut edges = Vec::with_capacity(n * 3 / 4);
    for proc in 0..p {
        let base = (proc * l) as u32;
        // Variable-length timeline segments (2–5 events; no isolated events,
        // diverse causal neighborhoods — see `message_race`).
        let mut e = 0usize;
        while e < l - 1 {
            let seg = rng.gen_range(2..=5usize).min(l - e);
            for k in 0..seg - 1 {
                edges.push((base + (e + k) as u32, base + (e + k) as u32 + 1));
            }
            e += seg;
        }
    }
    // Mesh-neighbor exchanges: each process talks to its 4-neighborhood in
    // regular rounds (every ~12 events), creating repeated patterns.
    for py in 0..side {
        for px in 0..side {
            let proc = py * side + px;
            let nbrs = [
                (px.wrapping_sub(1), py),
                (px + 1, py),
                (px, py.wrapping_sub(1)),
                (px, py + 1),
            ];
            for e in (0..l).step_by(12) {
                for &(nx, ny) in &nbrs {
                    if nx < side && ny < side && rng.gen_bool(0.25) {
                        let other = ny * side + nx;
                        let te = (e + rng.gen_range(0..3)) % l;
                        edges.push(((proc * l + e) as u32, (other * l + te) as u32));
                    }
                }
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// "Asia OSM"-class road network: junction grid whose links are subdivided
/// into long degree-2 chains, with a few missing links. Arcs/vertex ≈ 2.1.
pub fn road_network(n_target: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4f534d);
    const SUBDIV: usize = 8; // intermediate vertices per road segment
                             // V = J + E_j * SUBDIV where E_j ≈ 2J (grid) → V ≈ J(1 + 2*SUBDIV).
    let j_side = (((n_target as f64) / (1.0 + 2.0 * SUBDIV as f64)).sqrt() as usize).max(2);
    let n_junctions = j_side * j_side;

    // Junction-level grid with 6% of links removed (dead ends, coastline).
    let mut junction_edges = Vec::new();
    for y in 0..j_side {
        for x in 0..j_side {
            let v = (y * j_side + x) as u32;
            if x + 1 < j_side && rng.gen_bool(0.94) {
                junction_edges.push((v, v + 1));
            }
            if y + 1 < j_side && rng.gen_bool(0.94) {
                junction_edges.push((v, v + j_side as u32));
            }
        }
    }

    // Subdivide every junction link into a chain of SUBDIV inner vertices.
    let mut edges = Vec::new();
    let mut next = n_junctions as u32;
    for &(a, b) in &junction_edges {
        let mut prev = a;
        for _ in 0..SUBDIV {
            edges.push((prev, next));
            prev = next;
            next += 1;
        }
        edges.push((prev, b));
    }
    CsrGraph::from_edges(next as usize, &edges)
}

/// "Hugebubbles"-class foam: a honeycomb lattice (degree-3 bubbles) with a
/// few popped walls. Arcs/vertex ≈ 3.
pub fn hugebubbles(n_target: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4842);
    // Brick-wall representation of a honeycomb: grid where each vertex
    // links to its horizontal neighbors and to the row below on alternating
    // parity (degree ≤ 3).
    let side = ((n_target as f64).sqrt() as usize).max(4);
    let n = side * side;
    let mut edges = Vec::with_capacity(n * 3 / 2);
    for y in 0..side {
        for x in 0..side {
            let v = (y * side + x) as u32;
            // Horizontal walls, with 4% popped (merged bubbles).
            if x + 1 < side && rng.gen_bool(0.96) {
                edges.push((v, v + 1));
            }
            // Vertical wall on alternating parity (honeycomb pattern), with
            // 10% popped — real foams have irregular bubble sizes, which is
            // what makes neighboring cells structurally distinct.
            if y + 1 < side && (x + y) % 2 == 0 && rng.gen_bool(0.90) {
                edges.push((v, v + side as u32));
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// "Delaunay"-class planar triangulation: jittered grid with randomly
/// oriented cell diagonals. Arcs/vertex ≈ 6 (the SuiteSparse `delaunay_n24`
/// ratio), mean degree ≈ 6 like a true Delaunay triangulation.
pub fn delaunay(n_target: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x444e);
    let side = ((n_target as f64).sqrt() as usize).max(2);
    let n = side * side;
    let mut edges = Vec::with_capacity(n * 3);
    for y in 0..side {
        for x in 0..side {
            let v = (y * side + x) as u32;
            if x + 1 < side {
                edges.push((v, v + 1));
            }
            if y + 1 < side {
                edges.push((v, v + side as u32));
            }
            // One diagonal per cell, random orientation — the two possible
            // Delaunay flips of the quad.
            if x + 1 < side && y + 1 < side {
                if rng.gen_bool(0.5) {
                    edges.push((v, v + side as u32 + 1));
                } else {
                    edges.push((v + 1, v + side as u32));
                }
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ratio(g: &CsrGraph) -> f64 {
        g.n_arcs() as f64 / g.n_vertices() as f64
    }

    #[test]
    fn message_race_matches_table1_ratio() {
        let g = message_race(20_000, 1);
        // Table 1: 16.76M arcs / 11.17M vertices = 1.50.
        assert!((ratio(&g) - 1.5).abs() < 0.25, "ratio {}", ratio(&g));
    }

    #[test]
    fn unstructured_mesh_matches_table1_ratio() {
        let g = unstructured_mesh(20_000, 1);
        // Table 1: 21.6M / 14.4M = 1.50.
        assert!((ratio(&g) - 1.5).abs() < 0.3, "ratio {}", ratio(&g));
    }

    #[test]
    fn road_network_matches_table1_ratio() {
        let g = road_network(20_000, 1);
        // Table 1: 25.4M / 11.95M = 2.13.
        assert!((ratio(&g) - 2.13).abs() < 0.25, "ratio {}", ratio(&g));
        // Roads are chain-dominated: most vertices have degree 2.
        let deg2 = (0..g.n_vertices() as u32)
            .filter(|&v| g.degree(v) == 2)
            .count();
        assert!(deg2 as f64 > 0.8 * g.n_vertices() as f64);
    }

    #[test]
    fn hugebubbles_matches_table1_ratio() {
        let g = hugebubbles(20_000, 1);
        // Table 1: 54.9M / 18.3M = 3.0.
        assert!((ratio(&g) - 3.0).abs() < 0.35, "ratio {}", ratio(&g));
        assert!(g.max_degree() <= 4);
    }

    #[test]
    fn delaunay_matches_table1_ratio() {
        let g = delaunay(20_000, 1);
        // Table 1: 100.7M / 16.8M = 6.0.
        assert!((ratio(&g) - 6.0).abs() < 0.5, "ratio {}", ratio(&g));
        // Triangulation: interior degree ~6.
        assert!(g.max_degree() <= 8);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(message_race(5000, 7), message_race(5000, 7));
        assert_ne!(message_race(5000, 7), message_race(5000, 8));
        assert_eq!(delaunay(5000, 3), delaunay(5000, 3));
    }

    #[test]
    fn generators_hit_requested_scale() {
        for (name, g) in [
            ("mr", message_race(30_000, 0)),
            ("um", unstructured_mesh(30_000, 0)),
            ("road", road_network(30_000, 0)),
            ("hb", hugebubbles(30_000, 0)),
            ("del", delaunay(30_000, 0)),
        ] {
            let n = g.n_vertices() as f64;
            assert!(
                (n - 30_000.0).abs() / 30_000.0 < 0.2,
                "{name}: {} vertices for target 30000",
                g.n_vertices()
            );
        }
    }

    #[test]
    fn event_graphs_have_fewer_triangles_than_delaunay() {
        // The paper: "The event graphs are more sparse than the graphs from
        // SuiteSparse, with fewer dense subgraphs."
        fn triangles(g: &CsrGraph) -> usize {
            let mut t = 0;
            for (a, b) in g.edges() {
                let (na, nb) = (g.neighbors(a), g.neighbors(b));
                let (mut i, mut j) = (0, 0);
                while i < na.len() && j < nb.len() {
                    match na[i].cmp(&nb[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            t += 1;
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
            t / 3
        }
        let ev = triangles(&message_race(10_000, 2));
        let del = triangles(&delaunay(10_000, 2));
        assert!(del > 10 * (ev + 1), "delaunay {del} vs event {ev}");
    }
}
