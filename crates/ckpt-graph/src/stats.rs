//! Summary statistics for graphs (Table 1 style reporting).

use crate::csr::CsrGraph;

/// Degree and size summary of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    pub n_vertices: usize,
    pub n_edges: usize,
    pub n_arcs: usize,
    pub min_degree: usize,
    pub max_degree: usize,
    pub mean_degree: f64,
    /// Exact triangle count (merge-based; fine at bench scales).
    pub n_triangles: usize,
}

impl GraphStats {
    pub fn compute(g: &CsrGraph) -> GraphStats {
        let n = g.n_vertices();
        let mut min_degree = usize::MAX;
        let mut max_degree = 0;
        for v in 0..n as u32 {
            let d = g.degree(v);
            min_degree = min_degree.min(d);
            max_degree = max_degree.max(d);
        }
        if n == 0 {
            min_degree = 0;
        }
        GraphStats {
            n_vertices: n,
            n_edges: g.n_edges(),
            n_arcs: g.n_arcs(),
            min_degree,
            max_degree,
            mean_degree: g.mean_degree(),
            n_triangles: count_triangles(g),
        }
    }
}

/// Exact triangle count via sorted-adjacency intersection per edge.
pub fn count_triangles(g: &CsrGraph) -> usize {
    let mut t = 0usize;
    for (a, b) in g.edges() {
        let (na, nb) = (g.neighbors(a), g.neighbors(b));
        let (mut i, mut j) = (0, 0);
        while i < na.len() && j < nb.len() {
            match na[i].cmp(&nb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    t += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    t / 3
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} (arcs {}) deg[min {}, mean {:.2}, max {}] triangles={}",
            self.n_vertices,
            self.n_edges,
            self.n_arcs,
            self.min_degree,
            self.mean_degree,
            self.max_degree,
            self.n_triangles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_counts() {
        // K4 has 4 triangles.
        let k4 = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(count_triangles(&k4), 4);
        // A path has none.
        let path = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(count_triangles(&path), 0);
        // One triangle plus a pendant.
        let tri = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(count_triangles(&tri), 1);
    }

    #[test]
    fn stats_of_known_graph() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.n_vertices, 5);
        assert_eq!(s.n_edges, 4);
        assert_eq!(s.min_degree, 0); // vertex 4 isolated
        assert_eq!(s.max_degree, 3);
        assert_eq!(s.n_triangles, 1);
        let rendered = s.to_string();
        assert!(rendered.contains("|V|=5"));
    }

    #[test]
    fn empty_graph() {
        let s = GraphStats::compute(&CsrGraph::from_edges(1, &[]));
        assert_eq!(s.max_degree, 0);
        assert_eq!(s.n_triangles, 0);
    }
}
