//! The paper's input-graph inventory (Table 1) and scaled synthetic stand-ins.

use crate::csr::CsrGraph;
use crate::generators;

/// One of the paper's five input graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperGraph {
    MessageRace,
    UnstructuredMesh,
    AsiaOsm,
    Hugebubbles,
    DelaunayN24,
}

impl PaperGraph {
    /// All graphs, Table 1 order.
    pub fn all() -> [PaperGraph; 5] {
        [
            PaperGraph::MessageRace,
            PaperGraph::UnstructuredMesh,
            PaperGraph::AsiaOsm,
            PaperGraph::Hugebubbles,
            PaperGraph::DelaunayN24,
        ]
    }

    /// The four single-process graphs of Figures 4 and 5.
    pub fn single_process() -> [PaperGraph; 4] {
        [
            PaperGraph::MessageRace,
            PaperGraph::UnstructuredMesh,
            PaperGraph::AsiaOsm,
            PaperGraph::Hugebubbles,
        ]
    }

    pub fn name(&self) -> &'static str {
        match self {
            PaperGraph::MessageRace => "Message Race",
            PaperGraph::UnstructuredMesh => "Unstructured Mesh",
            PaperGraph::AsiaOsm => "Asia OSM",
            PaperGraph::Hugebubbles => "Hugebubbles",
            PaperGraph::DelaunayN24 => "Delaunay N24",
        }
    }

    /// Table 1's published `(|V|, nonzeros, GDV bytes)` for the original
    /// full-scale graph.
    pub fn table1_row(&self) -> (u64, u64, u64) {
        match self {
            PaperGraph::MessageRace => (11_174_336, 16_761_248, 3_260_000_000),
            PaperGraph::UnstructuredMesh => (14_418_368, 21_627_296, 4_210_000_000),
            PaperGraph::AsiaOsm => (11_950_757, 25_423_206, 3_490_000_000),
            PaperGraph::Hugebubbles => (18_318_143, 54_940_162, 5_350_000_000),
            PaperGraph::DelaunayN24 => (16_777_216, 100_663_202, 4_900_000_000),
        }
    }

    /// Generate the scaled synthetic stand-in with `n_target` vertices.
    pub fn generate(&self, n_target: usize, seed: u64) -> CsrGraph {
        match self {
            PaperGraph::MessageRace => generators::message_race(n_target, seed),
            PaperGraph::UnstructuredMesh => generators::unstructured_mesh(n_target, seed),
            PaperGraph::AsiaOsm => generators::road_network(n_target, seed),
            PaperGraph::Hugebubbles => generators::hugebubbles(n_target, seed),
            PaperGraph::DelaunayN24 => generators::delaunay(n_target, seed),
        }
    }
}

impl std::fmt::Display for PaperGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_ratio_tracks_table1() {
        for pg in PaperGraph::all() {
            let (v, nnz, _) = pg.table1_row();
            let target_ratio = nnz as f64 / v as f64;
            let g = pg.generate(25_000, 11);
            let got = g.n_arcs() as f64 / g.n_vertices() as f64;
            assert!(
                (got - target_ratio).abs() / target_ratio < 0.18,
                "{pg}: generated ratio {got:.2} vs Table 1 {target_ratio:.2}"
            );
        }
    }

    #[test]
    fn table1_gdv_size_is_consistent() {
        // GDV size ≈ |V| × 73 orbits × 4 bytes (the paper reports GB-scale
        // sizes consistent with a ~292-byte per-vertex record).
        for pg in PaperGraph::all() {
            let (v, _, gdv) = pg.table1_row();
            let per_vertex = gdv as f64 / v as f64;
            assert!(
                (250.0..350.0).contains(&per_vertex),
                "{pg}: {per_vertex:.0} bytes/vertex"
            );
        }
    }
}
