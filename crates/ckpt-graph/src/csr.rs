//! Compressed-sparse-row graphs.
//!
//! Undirected simple graphs stored as sorted adjacency in CSR form — the
//! representation both the generators and the ORANGES graphlet enumerator
//! operate on. Vertices are `u32`; "edges" in reports follow the paper's
//! Table 1 convention of counting nonzeros (directed arcs), which is twice
//! the undirected edge count.

/// An undirected simple graph in CSR form with sorted neighbor lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<u64>,
    neighbors: Vec<u32>,
}

impl CsrGraph {
    /// Build from an undirected edge list. Self-loops are dropped and
    /// duplicate edges collapsed. `n` is the vertex count; any endpoint
    /// `≥ n` panics.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(
                (a as usize) < n && (b as usize) < n,
                "edge ({a},{b}) out of range"
            );
            if a == b {
                continue;
            }
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        for list in adj.iter_mut() {
            list.sort_unstable();
            list.dedup();
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len() as u64);
        }
        CsrGraph { offsets, neighbors }
    }

    /// Number of vertices.
    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored arcs (nonzeros) — twice the undirected edge count.
    #[inline]
    pub fn n_arcs(&self) -> usize {
        self.neighbors.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Sorted neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let a = self.offsets[v as usize] as usize;
        let b = self.offsets[v as usize + 1] as usize;
        &self.neighbors[a..b]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }

    /// Whether the undirected edge `{a, b}` exists (binary search).
    #[inline]
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.n_vertices() as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Mean degree (arcs per vertex).
    pub fn mean_degree(&self) -> f64 {
        if self.n_vertices() == 0 {
            0.0
        } else {
            self.n_arcs() as f64 / self.n_vertices() as f64
        }
    }

    /// Iterate all undirected edges `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.n_vertices() as u32).flat_map(move |v| {
            self.neighbors(v)
                .iter()
                .copied()
                .filter(move |&u| v < u)
                .map(move |u| (v, u))
        })
    }

    /// Relabel vertices: vertex `v` becomes `perm[v]`. `perm` must be a
    /// permutation of `0..n`.
    pub fn permute(&self, perm: &[u32]) -> CsrGraph {
        let n = self.n_vertices();
        assert_eq!(perm.len(), n, "permutation length mismatch");
        debug_assert!({
            let mut seen = vec![false; n];
            perm.iter().all(|&p| {
                let fresh = !seen[p as usize];
                seen[p as usize] = true;
                fresh
            })
        });
        let edges: Vec<(u32, u32)> = self
            .edges()
            .map(|(a, b)| (perm[a as usize], perm[b as usize]))
            .collect();
        CsrGraph::from_edges(n, &edges)
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * 8 + self.neighbors.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn diamond() -> CsrGraph {
        // 0-1, 0-2, 1-2, 1-3, 2-3
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn basic_accessors() {
        let g = diamond();
        assert_eq!(g.n_vertices(), 4);
        assert_eq!(g.n_edges(), 5);
        assert_eq!(g.n_arcs(), 10);
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
        assert_eq!(g.degree(0), 2);
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn self_loops_and_duplicates_dropped() {
        let g = CsrGraph::from_edges(3, &[(0, 0), (0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn empty_and_isolated() {
        let g = CsrGraph::from_edges(5, &[]);
        assert_eq!(g.n_vertices(), 5);
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn permute_preserves_structure() {
        let g = diamond();
        let perm = [3u32, 1, 0, 2];
        let h = g.permute(&perm);
        assert_eq!(h.n_edges(), g.n_edges());
        for (a, b) in g.edges() {
            assert!(h.has_edge(perm[a as usize], perm[b as usize]));
        }
    }

    proptest! {
        #[test]
        fn csr_invariants_hold(
            n in 1usize..60,
            raw in prop::collection::vec((0u32..60, 0u32..60), 0..300)
        ) {
            let edges: Vec<(u32, u32)> =
                raw.into_iter().map(|(a, b)| (a % n as u32, b % n as u32)).collect();
            let g = CsrGraph::from_edges(n, &edges);
            // Sorted unique neighbor lists, symmetric adjacency.
            for v in 0..n as u32 {
                let ns = g.neighbors(v);
                prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
                for &u in ns {
                    prop_assert!(g.has_edge(u, v));
                    prop_assert_ne!(u, v);
                }
            }
            prop_assert_eq!(g.n_arcs() % 2, 0);
        }

        #[test]
        fn permutation_is_isomorphism(
            n in 2usize..40,
            raw in prop::collection::vec((0u32..40, 0u32..40), 0..200),
            seed in any::<u64>(),
        ) {
            let edges: Vec<(u32, u32)> =
                raw.into_iter().map(|(a, b)| (a % n as u32, b % n as u32)).collect();
            let g = CsrGraph::from_edges(n, &edges);
            // Deterministic pseudo-random permutation.
            let mut perm: Vec<u32> = (0..n as u32).collect();
            let mut state = seed | 1;
            for i in (1..n).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let j = (state >> 33) as usize % (i + 1);
                perm.swap(i, j);
            }
            let h = g.permute(&perm);
            prop_assert_eq!(h.n_edges(), g.n_edges());
            let mut degs_g: Vec<usize> = (0..n as u32).map(|v| g.degree(v)).collect();
            let mut degs_h: Vec<usize> = (0..n as u32).map(|v| h.degree(v)).collect();
            degs_g.sort_unstable();
            degs_h.sort_unstable();
            prop_assert_eq!(degs_g, degs_h);
        }
    }
}
