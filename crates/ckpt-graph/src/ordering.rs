//! Classic locality-oriented vertex orderings, as comparison points for
//! Gorder (the orderings Wei et al. evaluate against).
//!
//! All functions return a permutation in the same convention as
//! [`crate::gorder::gorder`]: `perm[v]` is the new label of vertex `v`.

use crate::csr::CsrGraph;
use std::collections::VecDeque;

/// Plain breadth-first order from the minimum-degree vertex, components in
/// ascending first-vertex order.
pub fn bfs_order(g: &CsrGraph) -> Vec<u32> {
    let n = g.n_vertices();
    let mut perm = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();

    let mut seed_order: Vec<u32> = (0..n as u32).collect();
    seed_order.sort_unstable_by_key(|&v| g.degree(v));
    for &seed in &seed_order {
        if perm[seed as usize] != u32::MAX {
            continue;
        }
        perm[seed as usize] = next;
        next += 1;
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if perm[u as usize] == u32::MAX {
                    perm[u as usize] = next;
                    next += 1;
                    queue.push_back(u);
                }
            }
        }
    }
    perm
}

/// Reverse Cuthill–McKee: BFS from a pseudo-peripheral low-degree vertex,
/// visiting each frontier in ascending-degree order, then reversing the
/// numbering — the classic bandwidth-reduction ordering.
pub fn rcm_order(g: &CsrGraph) -> Vec<u32> {
    let n = g.n_vertices();
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();

    let mut seed_order: Vec<u32> = (0..n as u32).collect();
    seed_order.sort_unstable_by_key(|&v| g.degree(v));
    let mut nbrs: Vec<u32> = Vec::new();
    for &seed in &seed_order {
        if visited[seed as usize] {
            continue;
        }
        visited[seed as usize] = true;
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            nbrs.clear();
            nbrs.extend(
                g.neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&u| !visited[u as usize]),
            );
            nbrs.sort_unstable_by_key(|&u| g.degree(u));
            for &u in &nbrs {
                visited[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    // Reverse: the last-visited vertex gets label 0.
    let mut perm = vec![0u32; n];
    for (pos, &v) in order.iter().rev().enumerate() {
        perm[v as usize] = pos as u32;
    }
    perm
}

/// Descending-degree order (hubs first) — a cache-hostile baseline.
pub fn degree_order(g: &CsrGraph) -> Vec<u32> {
    let n = g.n_vertices();
    let mut by_degree: Vec<u32> = (0..n as u32).collect();
    by_degree.sort_unstable_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    let mut perm = vec![0u32; n];
    for (pos, &v) in by_degree.iter().enumerate() {
        perm[v as usize] = pos as u32;
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::gorder::{edge_locality, gorder};

    fn is_permutation(perm: &[u32]) -> bool {
        let mut seen = vec![false; perm.len()];
        perm.iter().all(|&p| {
            let ok = (p as usize) < seen.len() && !seen[p as usize];
            if ok {
                seen[p as usize] = true;
            }
            ok
        })
    }

    #[test]
    fn all_orderings_are_permutations() {
        for g in [
            generators::road_network(1500, 1),
            generators::message_race(1500, 1),
            generators::delaunay(1500, 1),
        ] {
            assert!(is_permutation(&bfs_order(&g)));
            assert!(is_permutation(&rcm_order(&g)));
            assert!(is_permutation(&degree_order(&g)));
        }
    }

    #[test]
    fn handles_disconnected_and_isolated() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (3, 4)]);
        for perm in [bfs_order(&g), rcm_order(&g), degree_order(&g)] {
            assert!(is_permutation(&perm));
        }
    }

    #[test]
    fn rcm_reduces_bandwidth_on_chains() {
        // A scrambled path graph: RCM should recover near-perfect locality.
        let n = 500u32;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        // Scramble deterministically.
        let mut perm: Vec<u32> = (0..n).collect();
        let mut state = 12345u64;
        for i in (1..n as usize).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let scrambled = g.permute(&perm);
        let identity: Vec<u32> = (0..n).collect();
        let before = edge_locality(&scrambled, &identity);
        let after = edge_locality(&scrambled, &rcm_order(&scrambled));
        assert!(
            after < 1.5,
            "rcm locality on a path should be ~1, got {after}"
        );
        assert!(before > 10.0 * after);
    }

    #[test]
    fn locality_ordering_quality_on_road_graphs() {
        // Expected quality ordering on a near-planar graph:
        // gorder ≈ rcm ≈ bfs ≪ degree-sort.
        let g = generators::road_network(3000, 2);
        let mut perm: Vec<u32> = (0..g.n_vertices() as u32).collect();
        let mut state = 99u64;
        for i in (1..perm.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let scrambled = g.permute(&perm);

        let loc = |p: &[u32]| edge_locality(&scrambled, p);
        let l_bfs = loc(&bfs_order(&scrambled));
        let l_rcm = loc(&rcm_order(&scrambled));
        let l_gorder = loc(&gorder(&scrambled, crate::gorder::DEFAULT_WINDOW));
        let l_degree = loc(&degree_order(&scrambled));

        assert!(l_rcm < l_degree / 4.0, "rcm {l_rcm} vs degree {l_degree}");
        assert!(l_bfs < l_degree / 2.0, "bfs {l_bfs} vs degree {l_degree}");
        assert!(
            l_gorder < l_degree / 2.0,
            "gorder {l_gorder} vs degree {l_degree}"
        );
    }
}
