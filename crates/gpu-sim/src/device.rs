//! The simulated device: kernel launches, fused regions, transfers.

use crate::arena::DeviceArena;
use crate::buffer::DeviceBuffer;
use crate::collectives;
use crate::metrics::DeviceMetrics;
use crate::perf::{DeviceConfig, PerfModel};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Work description for one kernel, used by the performance model.
///
/// Callers state how many bytes the kernel streams through device memory and
/// roughly how many ALU-op-equivalents it executes; the model takes the
/// roofline max. Overstating flops on a bandwidth-bound kernel is harmless.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCost {
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub flops: u64,
}

impl KernelCost {
    /// A kernel that streams `bytes` once through memory with ~1 op/byte
    /// (hashing, copying, comparing).
    pub fn stream(bytes: u64) -> Self {
        KernelCost {
            bytes_read: bytes,
            bytes_written: 0,
            flops: bytes,
        }
    }

    /// A kernel that reads and writes `bytes` (gather/serialize).
    pub fn copy(bytes: u64) -> Self {
        KernelCost {
            bytes_read: bytes,
            bytes_written: bytes,
            flops: bytes / 8,
        }
    }

    pub fn with_writes(mut self, bytes: u64) -> Self {
        self.bytes_written = bytes;
        self
    }
}

struct DeviceInner {
    perf: PerfModel,
    metrics: DeviceMetrics,
    /// Depth of nested fused regions; launches inside a fused region skip the
    /// per-launch latency (one latency is paid by the region itself).
    fused_depth: AtomicU32,
    /// Co-located devices contending for the host link (Fig. 6 model).
    contenders: AtomicU32,
    /// Persistent buffer pool for per-checkpoint scratch (steady-state
    /// zero-allocation; see the `arena` module).
    arena: DeviceArena,
}

/// A simulated GPU. Cheap to clone (shared handle).
///
/// Kernels launched through a `Device` execute data-parallel on the rayon
/// thread pool while the device accrues *modeled* A100 time in its
/// [`DeviceMetrics`]. See the crate docs for the fidelity argument.
#[derive(Clone)]
pub struct Device {
    inner: Arc<DeviceInner>,
}

impl Device {
    pub fn new(config: DeviceConfig) -> Self {
        Device {
            inner: Arc::new(DeviceInner {
                perf: PerfModel::new(config),
                metrics: DeviceMetrics::new(),
                fused_depth: AtomicU32::new(0),
                contenders: AtomicU32::new(1),
                arena: DeviceArena::new(),
            }),
        }
    }

    /// An A100-like device (the paper's testbed GPU).
    pub fn a100() -> Self {
        Self::new(DeviceConfig::a100())
    }

    /// Activity counters.
    pub fn metrics(&self) -> &DeviceMetrics {
        &self.inner.metrics
    }

    /// The performance model in use.
    pub fn perf(&self) -> &PerfModel {
        &self.inner.perf
    }

    /// The device's persistent scratch-buffer pool. One arena per device,
    /// shared by every pipeline running on it.
    pub fn arena(&self) -> &DeviceArena {
        &self.inner.arena
    }

    /// Set how many co-located devices share this device's host link
    /// (PCIe contention in multi-GPU nodes; 8 per ThetaGPU node).
    pub fn set_contenders(&self, n: u32) {
        self.inner.contenders.store(n.max(1), Ordering::Relaxed);
    }

    pub fn contenders(&self) -> u32 {
        self.inner.contenders.load(Ordering::Relaxed)
    }

    fn account_launch(&self, cost: KernelCost) {
        let m = &self.inner.metrics;
        if self.inner.fused_depth.load(Ordering::Relaxed) == 0 {
            m.record_launch_latency(self.inner.perf.launch_sec());
        } else {
            m.record_fused();
        }
        let sec = self
            .inner
            .perf
            .kernel_sec(cost.bytes_read, cost.bytes_written, cost.flops);
        m.record_kernel(cost.bytes_read, cost.bytes_written, sec);
    }

    /// Launch a grid of `n` independent work items: `body(i)` for `i in 0..n`,
    /// executed in parallel. `_name` documents the kernel at call sites and in
    /// traces.
    pub fn parallel_for<F>(&self, _name: &str, n: usize, cost: KernelCost, body: F)
    where
        F: Fn(usize) + Sync + Send,
    {
        self.account_launch(cost);
        // Small grids are not worth the fork-join overhead — same reasoning
        // as launching a single block on a real GPU.
        if n < 1024 {
            for i in 0..n {
                body(i);
            }
        } else {
            (0..n).into_par_iter().for_each(body);
        }
    }

    /// Like [`parallel_for`](Self::parallel_for), but each executor chunk
    /// first builds private state with `init` — the hook kernels use for
    /// per-chunk scratch buffers and batched-atomic accumulators (shared
    /// memory / registers in GPU terms). State granularity is per chunk,
    /// never per item, and chunking is thread-count-independent, so kernels
    /// whose state carries side effects (e.g. batched map inserts) stay
    /// deterministic.
    pub fn parallel_for_init<T, INIT, F>(
        &self,
        _name: &str,
        n: usize,
        cost: KernelCost,
        init: INIT,
        body: F,
    ) where
        INIT: Fn() -> T + Sync + Send,
        F: Fn(&mut T, usize) + Sync + Send,
    {
        self.account_launch(cost);
        if n < 1024 {
            let mut state = init();
            for i in 0..n {
                body(&mut state, i);
            }
        } else {
            (0..n).into_par_iter().for_each_init(init, body);
        }
    }

    /// Launch a parallel map-reduce over `0..n`.
    pub fn parallel_reduce<T, M, R>(
        &self,
        _name: &str,
        n: usize,
        cost: KernelCost,
        identity: T,
        map: M,
        reduce: R,
    ) -> T
    where
        T: Send + Sync + Clone,
        M: Fn(usize) -> T + Sync + Send,
        R: Fn(T, T) -> T + Sync + Send,
    {
        self.account_launch(cost);
        if n < 1024 {
            let mut acc = identity;
            for i in 0..n {
                acc = reduce(acc, map(i));
            }
            acc
        } else {
            (0..n)
                .into_par_iter()
                .map(map)
                .reduce(|| identity.clone(), reduce)
        }
    }

    /// Exclusive prefix sum on the device (used to pre-compute serialization
    /// offsets). Returns the total.
    pub fn exclusive_scan(&self, name: &str, input: &[u64], out: &mut [u64]) -> u64 {
        self.account_launch(KernelCost::copy(8 * input.len() as u64));
        let _ = name;
        collectives::exclusive_scan(input, out)
    }

    /// Stream compaction on the device: indices of non-zero `flags`, in
    /// ascending order (flag → scan → scatter; the lock-free way GPU
    /// pipelines build output lists).
    pub fn compact_indices(&self, _name: &str, flags: &[u8]) -> Vec<u32> {
        self.account_launch(KernelCost::stream(2 * flags.len() as u64));
        collectives::compact_indices(flags)
    }

    /// Stream compaction over a predicate: indices `i in 0..n` where
    /// `pred(i)`, ascending, with no intermediate flag buffer — the fused
    /// form of [`compact_indices`](Self::compact_indices) used to emit
    /// region lists straight from settled label arrays. Same modeled cost
    /// (the flag read is replaced by the predicate's source read).
    pub fn compact_where<P>(&self, _name: &str, n: usize, pred: P) -> Vec<u32>
    where
        P: Fn(usize) -> bool + Sync + Send,
    {
        self.account_launch(KernelCost::stream(2 * n as u64));
        collectives::compact_where(n, pred)
    }

    /// Stable stream partition over a predicate: `(matches, rest)` index
    /// lists for `0..n`, both ascending, built in one device wave (per-block
    /// counts → scan → disjoint writes of both lists). The restore engine's
    /// resolution-table split: chunks finalized at the current record versus
    /// chunks carried to the next-older one. Same modeled cost as a
    /// compaction — the extra output list writes the same `n` indices.
    pub fn partition_where<P>(&self, _name: &str, n: usize, pred: P) -> (Vec<u32>, Vec<u32>)
    where
        P: Fn(usize) -> bool + Sync + Send,
    {
        self.account_launch(KernelCost::stream(2 * n as u64));
        collectives::partition_where(n, pred)
    }

    /// Team-cooperative gather of scattered `segments` of `src` into `dst`
    /// (the consolidation step of §2.1, one team per region so memory accesses
    /// coalesce). Returns bytes gathered.
    pub fn team_gather(
        &self,
        _name: &str,
        src: &[u8],
        segments: &[collectives::Segment],
        dst: &mut [u8],
    ) -> usize {
        let bytes: u64 = segments.iter().map(|&(_, l)| l as u64).sum();
        self.account_launch(KernelCost::copy(bytes));
        collectives::segmented_gather(src, segments, dst)
    }

    /// Run `f` as one *fused kernel*: every launch inside accrues kernel
    /// execution time but only this region pays launch latency. This models
    /// the paper's single-fused-kernel design (§2.1: "a naive method would
    /// introduce unacceptable latencies associated with submitting and
    /// executing new kernels").
    pub fn fused<R>(&self, _name: &str, f: impl FnOnce() -> R) -> R {
        self.inner
            .metrics
            .record_launch_latency(self.inner.perf.launch_sec());
        self.inner.fused_depth.fetch_add(1, Ordering::Relaxed);
        let out = f();
        self.inner.fused_depth.fetch_sub(1, Ordering::Relaxed);
        out
    }

    /// Allocate a device buffer of `len` default-initialized elements.
    pub fn alloc<T: Clone + Default + Send + Sync>(&self, len: usize) -> DeviceBuffer<T> {
        DeviceBuffer::new(self.clone(), vec![T::default(); len])
    }

    /// Allocate a device buffer initialized from host data, accounting the
    /// host→device transfer.
    pub fn alloc_from_host<T: Clone + Send + Sync>(&self, host: &[T]) -> DeviceBuffer<T> {
        let bytes = std::mem::size_of_val(host) as u64;
        let sec = self.inner.perf.transfer_sec(bytes, self.contenders());
        self.inner.metrics.record_h2d(bytes, sec);
        self.inner.metrics.record_alloc(bytes);
        DeviceBuffer::new(self.clone(), host.to_vec())
    }

    pub(crate) fn account_alloc(&self, bytes: u64) {
        self.inner.metrics.record_alloc(bytes);
    }

    pub(crate) fn account_d2h(&self, bytes: u64) {
        let sec = self.inner.perf.transfer_sec(bytes, self.contenders());
        self.inner.metrics.record_d2h(bytes, sec);
    }

    pub(crate) fn account_h2d(&self, bytes: u64) {
        let sec = self.inner.perf.transfer_sec(bytes, self.contenders());
        self.inner.metrics.record_h2d(bytes, sec);
    }

    /// Account a device→host transfer of `bytes` that rides along with (or
    /// happens outside) a buffer copy — e.g. the metadata tables that travel
    /// in the same consolidated diff transfer.
    pub fn account_d2h_bytes(&self, bytes: u64) {
        self.account_d2h(bytes);
    }

    /// Account a *scattered* device→host transfer of `n_segments` pieces
    /// (what the naive per-chunk flush would cost; used by the serialization
    /// ablation).
    pub fn account_scattered_d2h(&self, bytes: u64, n_segments: u64) {
        let sec = self
            .inner
            .perf
            .scattered_transfer_sec(bytes, n_segments, self.contenders());
        self.inner.metrics.record_d2h(bytes, sec);
    }

    /// Gather scattered `segments` into host memory as a *streamed* pipeline:
    /// the gather kernel and the device→host DMA run concurrently over
    /// `n_slices` slices (§5's "streaming methods that overlap de-duplication
    /// with transfers to host memory"). Functionally identical to a
    /// [`team_gather`](Self::team_gather) followed by a transfer; only the
    /// modeled time differs (the slower of the two stages instead of their
    /// sum).
    pub fn streamed_gather_to_host(
        &self,
        _name: &str,
        src: &[u8],
        segments: &[collectives::Segment],
        n_slices: u32,
    ) -> Vec<u8> {
        let bytes: u64 = segments.iter().map(|&(_, l)| l as u64).sum();
        let mut out = vec![0u8; bytes as usize];
        collectives::segmented_gather(src, segments, &mut out);

        let perf = &self.inner.perf;
        let kernel_sec = perf.kernel_sec(bytes, bytes, bytes / 8);
        let share_sec =
            bytes as f64 / (perf.config().pcie_bytes_per_sec / self.contenders().max(1) as f64);
        let pipelined = perf.streamed_pipeline_sec(kernel_sec, share_sec, n_slices);
        // Book the whole pipeline as one fused launch + one transfer whose
        // combined modeled time is the pipelined duration (kernel part under
        // "kernel", remainder under "transfer").
        let m = &self.inner.metrics;
        if self.inner.fused_depth.load(Ordering::Relaxed) == 0 {
            m.record_launch_latency(perf.launch_sec());
        } else {
            m.record_fused();
        }
        m.record_kernel(bytes, bytes, kernel_sec.min(pipelined));
        m.record_d2h(bytes, (pipelined - kernel_sec.min(pipelined)).max(0.0));
        out
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("config", self.inner.perf.config())
            .field("metrics", &self.inner.metrics.snapshot())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_covers_every_index_once() {
        let dev = Device::a100();
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        dev.parallel_for("touch", n, KernelCost::stream(n as u64), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(dev.metrics().kernels_launched(), 1);
    }

    #[test]
    fn small_grid_runs_sequential_path() {
        let dev = Device::a100();
        let hits = AtomicU64::new(0);
        dev.parallel_for("small", 10, KernelCost::stream(10), |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn parallel_reduce_sums() {
        let dev = Device::a100();
        let n = 100_000usize;
        let total = dev.parallel_reduce(
            "sum",
            n,
            KernelCost::stream(n as u64),
            0u64,
            |i| i as u64,
            |a, b| a + b,
        );
        assert_eq!(total, (n as u64 - 1) * n as u64 / 2);
    }

    #[test]
    fn fused_region_pays_one_launch_latency() {
        let dev = Device::a100();
        let unfused = Device::a100();

        dev.fused("combined", || {
            for _ in 0..10 {
                dev.parallel_for("inner", 1, KernelCost::stream(1), |_| {});
            }
        });
        for _ in 0..10 {
            unfused.parallel_for("inner", 1, KernelCost::stream(1), |_| {});
        }

        // Fused: 1 launch latency; unfused: 10.
        let fused_launch = dev.metrics().modeled_launch_sec();
        let unfused_launch = unfused.metrics().modeled_launch_sec();
        assert!((unfused_launch / fused_launch - 10.0).abs() < 1e-6);
        assert_eq!(dev.metrics().fused_kernels(), 10);
        // Kernel execution time is identical either way.
        assert!(
            (dev.metrics().modeled_kernel_sec() - unfused.metrics().modeled_kernel_sec()).abs()
                < 1e-15
        );
    }

    #[test]
    fn transfers_account_modeled_time_and_bytes() {
        let dev = Device::a100();
        let buf = dev.alloc_from_host(&vec![0u8; 1 << 20]);
        let mut host = vec![0u8; 1 << 20];
        buf.copy_to_host(&mut host);
        assert_eq!(dev.metrics().h2d_bytes(), 1 << 20);
        assert_eq!(dev.metrics().d2h_bytes(), 1 << 20);
        assert!(dev.metrics().modeled_transfer_sec() > 0.0);
    }

    #[test]
    fn contention_slows_modeled_transfers() {
        let solo = Device::a100();
        let crowded = Device::a100();
        crowded.set_contenders(8);
        let data = vec![0u8; 4 << 20];
        solo.alloc_from_host(&data);
        crowded.alloc_from_host(&data);
        assert!(
            crowded.metrics().modeled_transfer_sec() > 5.0 * solo.metrics().modeled_transfer_sec()
        );
    }

    #[test]
    fn exclusive_scan_on_device() {
        let dev = Device::a100();
        let input = vec![2u64; 100];
        let mut out = vec![0u64; 100];
        let total = dev.exclusive_scan("offsets", &input, &mut out);
        assert_eq!(total, 200);
        assert_eq!(out[0], 0);
        assert_eq!(out[99], 198);
    }
}
