//! Persistent device-memory arenas: lease/return buffer pooling for the
//! per-checkpoint scratch the de-duplication pipeline needs.
//!
//! The paper keeps its working set (hash record, label arrays, scratch
//! buffers) GPU-resident across checkpoints; a naive reproduction that
//! `cudaMalloc`s per checkpoint would serialize on the allocator and the
//! zero-fill DMA. [`DeviceArena`] gives the same steady-state behavior the
//! paper relies on: named buffers are leased per checkpoint, returned on
//! drop, and reused — sized to their high-water mark, shrinking only on an
//! explicit [`trim`](DeviceArena::trim).
//!
//! A lease is keyed by a `&'static str` name (one name per call site). The
//! first lease of a name may pre-reserve a *floor* capacity (the worst-case
//! size the call site can ever need, e.g. the full snapshot length for the
//! serialize staging buffer), so every subsequent lease of that name is a
//! pool **hit** no matter how the per-checkpoint size fluctuates. The
//! steady-state invariant the tests pin down is exactly that: after one
//! warm-up checkpoint, `misses` stays flat.
//!
//! Leased buffers are **not** cleared: contents are whatever the previous
//! lease left behind (device memory semantics). Call sites that need zeroed
//! memory clear explicitly — and must do so on the fresh-allocation path
//! too, so pooled and unpooled runs stay bit-identical.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Point-in-time arena counters (all monotonic except `outstanding`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Total bytes handed out across all leases (hits and misses).
    pub bytes_leased: u64,
    /// Bytes of fresh backing storage allocated (misses and growth only).
    pub bytes_allocated: u64,
    /// Leases satisfied from the pool without allocating.
    pub hits: u64,
    /// Leases that had to allocate or grow backing storage.
    pub misses: u64,
    /// Leases currently held (not yet returned to the pool).
    pub outstanding: u64,
}

#[derive(Default)]
struct Counters {
    bytes_leased: AtomicU64,
    bytes_allocated: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    outstanding: AtomicU64,
}

#[derive(Default)]
struct Inner {
    /// Returned buffers by name. A name usually holds one buffer; pipelined
    /// call sites (a lease in flight while the next checkpoint leases the
    /// same name) rotate through two.
    pools: Mutex<HashMap<&'static str, Vec<Box<dyn Any + Send>>>>,
    counters: Counters,
}

/// A pool of reusable device buffers. Cheap to clone (shared handle);
/// every [`crate::Device`] owns one, shared by everything running on it.
#[derive(Clone, Default)]
pub struct DeviceArena {
    inner: Arc<Inner>,
}

impl DeviceArena {
    pub fn new() -> Self {
        Self::default()
    }

    /// Lease a buffer of `len` elements under `name`. Equivalent to
    /// [`lease_with_floor`](Self::lease_with_floor) with `floor == len`.
    pub fn lease<T: Default + Send + 'static>(
        &self,
        name: &'static str,
        len: usize,
    ) -> ArenaLease<T> {
        self.lease_with_floor(name, len, len)
    }

    /// Lease a buffer of `len` elements under `name`, pre-reserving at least
    /// `floor` elements of capacity on the first (miss) allocation. Choosing
    /// `floor` as the call site's worst case makes every later lease a hit.
    pub fn lease_with_floor<T: Default + Send + 'static>(
        &self,
        name: &'static str,
        len: usize,
        floor: usize,
    ) -> ArenaLease<T> {
        let c = &self.inner.counters;
        c.bytes_leased
            .fetch_add((len * std::mem::size_of::<T>()) as u64, Ordering::Relaxed);
        c.outstanding.fetch_add(1, Ordering::Relaxed);

        let recycled: Option<Vec<T>> = {
            let mut pools = self.inner.pools.lock().unwrap_or_else(|e| e.into_inner());
            pools
                .get_mut(name)
                .and_then(|v| v.pop())
                .and_then(|b| b.downcast::<Vec<T>>().ok())
                .map(|b| *b)
        };

        let vec = match recycled {
            Some(mut vec) if vec.capacity() >= len => {
                c.hits.fetch_add(1, Ordering::Relaxed);
                vec.truncate(len);
                vec.resize_with(len, T::default);
                vec
            }
            other => {
                // Miss (or a pooled buffer too small — grow it in place so
                // its new high-water capacity is what returns to the pool).
                c.misses.fetch_add(1, Ordering::Relaxed);
                let reserve = floor.max(len);
                let mut vec = other.unwrap_or_default();
                let grown = reserve.saturating_sub(vec.capacity());
                c.bytes_allocated
                    .fetch_add((grown * std::mem::size_of::<T>()) as u64, Ordering::Relaxed);
                vec.reserve_exact(reserve - vec.len().min(reserve));
                vec.truncate(len);
                vec.resize_with(len, T::default);
                vec
            }
        };

        ArenaLease {
            vec: Some(vec),
            name,
            inner: Arc::clone(&self.inner),
        }
    }

    /// Drop all pooled (returned) storage. Outstanding leases are unaffected
    /// and will repopulate the pool when they return. This is the only way
    /// arena memory shrinks.
    pub fn trim(&self) {
        self.inner
            .pools
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> ArenaStats {
        let c = &self.inner.counters;
        ArenaStats {
            bytes_leased: c.bytes_leased.load(Ordering::Relaxed),
            bytes_allocated: c.bytes_allocated.load(Ordering::Relaxed),
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            outstanding: c.outstanding.load(Ordering::Relaxed),
        }
    }

    /// Leases currently held. Zero once every pipeline stage has drained —
    /// the no-leak invariant the crash tests assert across `kill()`.
    pub fn outstanding(&self) -> u64 {
        self.inner.counters.outstanding.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for DeviceArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceArena")
            .field("stats", &self.stats())
            .finish()
    }
}

/// An exclusive lease on an arena buffer; returns its storage to the pool on
/// drop. `Send + 'static`, so a lease can ride a pipeline stage across
/// threads (the double-buffered submit tail holds one per in-flight
/// checkpoint) and still finds its way home when dropped.
pub struct ArenaLease<T: Send + 'static> {
    vec: Option<Vec<T>>,
    name: &'static str,
    inner: Arc<Inner>,
}

impl<T: Send + 'static> ArenaLease<T> {
    pub fn len(&self) -> usize {
        self.vec.as_ref().map_or(0, |v| v.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[T] {
        self.vec.as_deref().unwrap_or(&[])
    }

    pub fn as_mut_slice(&mut self) -> &mut [T] {
        self.vec.as_deref_mut().unwrap_or(&mut [])
    }
}

impl<T: Send + 'static> std::ops::Deref for ArenaLease<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Send + 'static> std::ops::DerefMut for ArenaLease<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Send + 'static> Drop for ArenaLease<T> {
    fn drop(&mut self) {
        if let Some(vec) = self.vec.take() {
            let mut pools = self.inner.pools.lock().unwrap_or_else(|e| e.into_inner());
            pools.entry(self.name).or_default().push(Box::new(vec));
        }
        self.inner
            .counters
            .outstanding
            .fetch_sub(1, Ordering::Relaxed);
    }
}

impl<T: Send + 'static> std::fmt::Debug for ArenaLease<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ArenaLease({}, len={})", self.name, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_lease_misses_then_hits() {
        let arena = DeviceArena::new();
        {
            let l: ArenaLease<u8> = arena.lease("buf", 100);
            assert_eq!(l.len(), 100);
        }
        assert_eq!(arena.stats().misses, 1);
        {
            let _l: ArenaLease<u8> = arena.lease("buf", 60);
        }
        let s = arena.stats();
        assert_eq!(s.misses, 1, "smaller re-lease must hit");
        assert_eq!(s.hits, 1);
        assert_eq!(s.bytes_leased, 160);
        assert_eq!(s.bytes_allocated, 100);
        assert_eq!(s.outstanding, 0);
    }

    #[test]
    fn floor_reservation_prevents_growth_misses() {
        let arena = DeviceArena::new();
        drop(arena.lease_with_floor::<u64>("f", 10, 1000));
        for len in [500, 1000, 3] {
            drop(arena.lease_with_floor::<u64>("f", len, 1000));
        }
        let s = arena.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 3);
        assert_eq!(s.bytes_allocated, 1000 * 8);
    }

    #[test]
    fn growth_beyond_capacity_counts_a_miss_and_high_waters() {
        let arena = DeviceArena::new();
        drop(arena.lease::<u8>("g", 100));
        drop(arena.lease::<u8>("g", 400)); // grow: miss
        drop(arena.lease::<u8>("g", 250)); // under new high water: hit
        let s = arena.stats();
        assert_eq!(s.misses, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.bytes_allocated, 400);
    }

    #[test]
    fn distinct_names_do_not_share_buffers() {
        let arena = DeviceArena::new();
        drop(arena.lease::<u8>("a", 10));
        drop(arena.lease::<u8>("b", 10));
        assert_eq!(arena.stats().misses, 2);
    }

    #[test]
    fn concurrent_leases_of_one_name_get_distinct_buffers() {
        let arena = DeviceArena::new();
        let l1 = arena.lease::<u8>("dbl", 10);
        let l2 = arena.lease::<u8>("dbl", 10); // pool empty: second buffer
        assert_eq!(arena.stats().misses, 2);
        assert_eq!(arena.outstanding(), 2);
        drop(l1);
        drop(l2);
        assert_eq!(arena.outstanding(), 0);
        // Steady state with depth-2 rotation: all hits from here on.
        drop(arena.lease::<u8>("dbl", 10));
        drop(arena.lease::<u8>("dbl", 10));
        assert_eq!(arena.stats().misses, 2);
        assert_eq!(arena.stats().hits, 2);
    }

    #[test]
    fn trim_releases_pooled_storage() {
        let arena = DeviceArena::new();
        drop(arena.lease::<u8>("t", 100));
        arena.trim();
        drop(arena.lease::<u8>("t", 100));
        assert_eq!(arena.stats().misses, 2, "post-trim lease must re-allocate");
    }

    #[test]
    fn lease_contents_are_reused_not_cleared() {
        let arena = DeviceArena::new();
        {
            let mut l = arena.lease::<u8>("c", 4);
            l.as_mut_slice().copy_from_slice(&[1, 2, 3, 4]);
        }
        let l = arena.lease::<u8>("c", 4);
        assert_eq!(l.as_slice(), &[1, 2, 3, 4], "stale contents are visible");
    }

    #[test]
    fn lease_crosses_threads_and_returns_home() {
        let arena = DeviceArena::new();
        let lease = arena.lease::<u8>("x", 64);
        let h = std::thread::spawn(move || drop(lease));
        h.join().unwrap();
        assert_eq!(arena.outstanding(), 0);
        drop(arena.lease::<u8>("x", 64));
        assert_eq!(arena.stats().hits, 1);
    }
}
