//! Device-wide collective primitives: exclusive scan and segmented gather.
//!
//! The paper's serialization step "pre-calculates offsets in the consolidated
//! difference and assigns GPU threads to parallelize the data transfers"
//! (§2.1). Pre-calculating offsets is an exclusive prefix sum over region
//! lengths; the data movement is a segmented gather where a *team* of threads
//! cooperates on each region so accesses coalesce (§2.4). Both are implemented
//! here as two-pass blocked parallel algorithms, the same decomposition a GPU
//! implementation uses across thread blocks.

use rayon::prelude::*;

/// Minimum elements per parallel block; below this, sequential is faster.
const SCAN_BLOCK: usize = 16 * 1024;

/// Exclusive prefix sum: `out[i] = sum(input[..i])`. Returns the grand total.
///
/// Two-pass blocked scan: (1) per-block sums in parallel, (2) sequential scan
/// of the (few) block sums, (3) per-block exclusive scans seeded with the
/// block offsets, in parallel. This mirrors the standard GPU scan
/// decomposition (block-local scan + block-offset fix-up).
pub fn exclusive_scan(input: &[u64], out: &mut [u64]) -> u64 {
    assert_eq!(input.len(), out.len(), "scan input/output length mismatch");
    let n = input.len();
    if n == 0 {
        return 0;
    }
    if n <= SCAN_BLOCK {
        let mut acc = 0u64;
        for i in 0..n {
            out[i] = acc;
            acc += input[i];
        }
        return acc;
    }

    let n_blocks = n.div_ceil(SCAN_BLOCK);
    // Pass 1: block sums.
    let mut block_sums: Vec<u64> = input
        .par_chunks(SCAN_BLOCK)
        .map(|chunk| chunk.iter().sum())
        .collect();
    debug_assert_eq!(block_sums.len(), n_blocks);

    // Pass 2: exclusive scan of block sums (cheap, sequential).
    let mut acc = 0u64;
    for s in block_sums.iter_mut() {
        let v = *s;
        *s = acc;
        acc += v;
    }
    let total = acc;

    // Pass 3: block-local exclusive scans with offsets.
    out.par_chunks_mut(SCAN_BLOCK)
        .zip(input.par_chunks(SCAN_BLOCK))
        .zip(block_sums.par_iter())
        .for_each(|((out_chunk, in_chunk), &offset)| {
            let mut acc = offset;
            for (o, &v) in out_chunk.iter_mut().zip(in_chunk) {
                *o = acc;
                acc += v;
            }
        });
    total
}

/// Stream compaction: collect the indices `i` where `flags[i] != 0`, in
/// ascending order — the standard GPU pattern for building output lists
/// without locks (flag kernel → exclusive scan → scatter kernel). This is
/// how the de-duplication pipeline emits its region lists.
pub fn compact_indices(flags: &[u8]) -> Vec<u32> {
    let ones: Vec<u64> = flags.iter().map(|&f| (f != 0) as u64).collect();
    let mut offsets = vec![0u64; flags.len()];
    let total = exclusive_scan(&ones, &mut offsets) as usize;

    let mut out = vec![0u32; total];
    {
        let slots = &mut out[..];
        // Scatter in parallel: each flagged index writes its own slot.
        use std::sync::atomic::{AtomicU32, Ordering};
        // SAFETY: AtomicU32 has the same layout as u32; each slot is written
        // by exactly one flagged index (offsets are unique).
        let atomic_slots = unsafe {
            std::slice::from_raw_parts(slots.as_mut_ptr() as *const AtomicU32, slots.len())
        };
        flags.par_iter().enumerate().for_each(|(i, &f)| {
            if f != 0 {
                atomic_slots[offsets[i] as usize].store(i as u32, Ordering::Relaxed);
            }
        });
    }
    out
}

/// Stream compaction over a predicate: collect the indices `i in 0..n` where
/// `pred(i)`, in ascending order, without materializing a flag array.
///
/// Blocked three-pass structure (per-block count → scan of block counts →
/// per-block writes into disjoint output ranges), the same decomposition as
/// [`compact_indices`] but with the predicate evaluated in-register — the
/// fused form the de-duplication pipeline uses to emit region lists straight
/// from settled label arrays.
pub fn compact_where<P>(n: usize, pred: P) -> Vec<u32>
where
    P: Fn(usize) -> bool + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    if n <= SCAN_BLOCK {
        return (0..n).filter(|&i| pred(i)).map(|i| i as u32).collect();
    }

    let n_blocks = n.div_ceil(SCAN_BLOCK);
    // Pass 1: per-block survivor counts.
    let counts: Vec<u64> = (0..n_blocks)
        .into_par_iter()
        .map(|b| {
            let lo = b * SCAN_BLOCK;
            let hi = (lo + SCAN_BLOCK).min(n);
            (lo..hi).filter(|&i| pred(i)).count() as u64
        })
        .collect();

    // Pass 2: block output offsets (cheap, sequential).
    let mut offsets = vec![0u64; n_blocks];
    let total = exclusive_scan(&counts, &mut offsets) as usize;

    // Pass 3: each block writes its own disjoint output range.
    let mut out = vec![0u32; total];
    let mut parts: Vec<&mut [u32]> = Vec::with_capacity(n_blocks);
    let mut rest = &mut out[..];
    for &c in &counts {
        let (head, tail) = rest.split_at_mut(c as usize);
        parts.push(head);
        rest = tail;
    }
    parts.into_par_iter().enumerate().for_each(|(b, part)| {
        let lo = b * SCAN_BLOCK;
        let hi = (lo + SCAN_BLOCK).min(n);
        let mut k = 0usize;
        for i in lo..hi {
            if pred(i) {
                part[k] = i as u32;
                k += 1;
            }
        }
        debug_assert_eq!(k, part.len());
    });
    out
}

/// Stable stream partition over a predicate: split `0..n` into the indices
/// where `pred(i)` holds and those where it does not, each in ascending
/// order.
///
/// One predicate evaluation pass per block (the counts pass re-evaluates like
/// [`compact_where`]'s), then both output lists are written in the same
/// per-block sweep into disjoint ranges: a block's matches go at
/// `true_offsets[b]`, its non-matches at `block_lo - true_offsets[b]` of the
/// false list. This is the restore engine's resolution-table split — one wave
/// separates the chunks finalized at the current record from the ones carried
/// to the next-older record.
pub fn partition_where<P>(n: usize, pred: P) -> (Vec<u32>, Vec<u32>)
where
    P: Fn(usize) -> bool + Sync,
{
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    if n <= SCAN_BLOCK {
        let mut yes = Vec::new();
        let mut no = Vec::new();
        for i in 0..n {
            if pred(i) {
                yes.push(i as u32);
            } else {
                no.push(i as u32);
            }
        }
        return (yes, no);
    }

    let n_blocks = n.div_ceil(SCAN_BLOCK);
    // Pass 1: per-block match counts.
    let counts: Vec<u64> = (0..n_blocks)
        .into_par_iter()
        .map(|b| {
            let lo = b * SCAN_BLOCK;
            let hi = (lo + SCAN_BLOCK).min(n);
            (lo..hi).filter(|&i| pred(i)).count() as u64
        })
        .collect();

    // Pass 2: block output offsets. A block's false-list offset is its start
    // index minus the matches preceding it.
    let mut yes_offsets = vec![0u64; n_blocks];
    let total_yes = exclusive_scan(&counts, &mut yes_offsets) as usize;

    // Pass 3: per-block writes into disjoint ranges of both outputs.
    let mut yes = vec![0u32; total_yes];
    let mut no = vec![0u32; n - total_yes];
    let mut yes_parts: Vec<&mut [u32]> = Vec::with_capacity(n_blocks);
    let mut no_parts: Vec<&mut [u32]> = Vec::with_capacity(n_blocks);
    let (mut yes_rest, mut no_rest) = (&mut yes[..], &mut no[..]);
    for (b, &c) in counts.iter().enumerate() {
        let lo = b * SCAN_BLOCK;
        let hi = (lo + SCAN_BLOCK).min(n);
        let (head, tail) = yes_rest.split_at_mut(c as usize);
        yes_parts.push(head);
        yes_rest = tail;
        let (head, tail) = no_rest.split_at_mut(hi - lo - c as usize);
        no_parts.push(head);
        no_rest = tail;
    }
    yes_parts
        .into_par_iter()
        .zip(no_parts)
        .enumerate()
        .for_each(|(b, (yes_part, no_part))| {
            let lo = b * SCAN_BLOCK;
            let hi = (lo + SCAN_BLOCK).min(n);
            let (mut y, mut f) = (0usize, 0usize);
            for i in lo..hi {
                if pred(i) {
                    yes_part[y] = i as u32;
                    y += 1;
                } else {
                    no_part[f] = i as u32;
                    f += 1;
                }
            }
            debug_assert_eq!(y, yes_part.len());
            debug_assert_eq!(f, no_part.len());
        });
    (yes, no)
}

/// A source region to gather: `(offset, len)` into the source buffer.
pub type Segment = (usize, usize);

/// Gather scattered `segments` of `src` into `dst` contiguously, in segment
/// order. Returns the number of bytes written. `dst` must be at least the sum
/// of segment lengths.
///
/// Each segment is copied by its own task ("team"), so a large region's copy
/// is one streaming memcpy — the coalesced-team-copy optimization from §2.4.
pub fn segmented_gather(src: &[u8], segments: &[Segment], dst: &mut [u8]) -> usize {
    // Pre-compute destination offsets (the scan the paper describes).
    let lens: Vec<u64> = segments.iter().map(|&(_, len)| len as u64).collect();
    let mut offsets = vec![0u64; segments.len()];
    let total = exclusive_scan(&lens, &mut offsets) as usize;
    assert!(
        dst.len() >= total,
        "gather destination too small: {} < {total}",
        dst.len()
    );

    // Partition `dst` into one disjoint mutable slice per segment.
    let mut parts: Vec<&mut [u8]> = Vec::with_capacity(segments.len());
    let mut rest = &mut dst[..total];
    for &len in lens.iter() {
        let (head, tail) = rest.split_at_mut(len as usize);
        parts.push(head);
        rest = tail;
    }

    parts
        .into_par_iter()
        .zip(segments.par_iter())
        .for_each(|(part, &(off, len))| {
            part.copy_from_slice(&src[off..off + len]);
        });
    total
}

/// Scatter `src` (contiguous, in segment order) back out to `segments` of
/// `dst` — the inverse of [`segmented_gather`], used on restore.
pub fn segmented_scatter(src: &[u8], segments: &[Segment], dst: &mut [u8]) -> usize {
    let total: usize = segments.iter().map(|&(_, len)| len).sum();
    assert!(
        src.len() >= total,
        "scatter source too small: {} < {total}",
        src.len()
    );

    // Destination segments may be arbitrary; to stay safe we sort an index by
    // offset and verify disjointness, then split `dst` into disjoint parts.
    let mut order: Vec<usize> = (0..segments.len()).collect();
    order.sort_unstable_by_key(|&i| segments[i].0);
    for w in order.windows(2) {
        let (a_off, a_len) = segments[w[0]];
        let (b_off, _) = segments[w[1]];
        assert!(a_off + a_len <= b_off, "scatter segments overlap");
    }

    // Compute source offsets per segment (in original order).
    let lens: Vec<u64> = segments.iter().map(|&(_, len)| len as u64).collect();
    let mut src_offsets = vec![0u64; segments.len()];
    exclusive_scan(&lens, &mut src_offsets);

    // Split dst by ascending offset.
    let mut parts: Vec<(usize, &mut [u8])> = Vec::with_capacity(segments.len());
    let mut consumed = 0usize;
    let mut rest = dst;
    for &i in &order {
        let (off, len) = segments[i];
        let (_, tail) = rest.split_at_mut(off - consumed);
        let (head, tail) = tail.split_at_mut(len);
        parts.push((i, head));
        consumed = off + len;
        rest = tail;
    }

    parts.into_par_iter().for_each(|(i, part)| {
        let s = src_offsets[i] as usize;
        part.copy_from_slice(&src[s..s + part.len()]);
    });
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_empty() {
        let mut out = [];
        assert_eq!(exclusive_scan(&[], &mut out), 0);
    }

    #[test]
    fn scan_small_matches_reference() {
        let input = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let mut out = [0u64; 8];
        let total = exclusive_scan(&input, &mut out);
        assert_eq!(out, [0, 3, 4, 8, 9, 14, 23, 25]);
        assert_eq!(total, 31);
    }

    #[test]
    fn scan_large_matches_sequential() {
        let n = SCAN_BLOCK * 3 + 17;
        let input: Vec<u64> = (0..n as u64).map(|i| i % 7).collect();
        let mut par = vec![0u64; n];
        let total = exclusive_scan(&input, &mut par);

        let mut acc = 0u64;
        for i in 0..n {
            assert_eq!(par[i], acc, "mismatch at {i}");
            acc += input[i];
        }
        assert_eq!(total, acc);
    }

    #[test]
    fn compact_collects_flagged_indices_in_order() {
        let mut flags = vec![0u8; 10_000];
        let expect: Vec<u32> = (0..10_000).filter(|i| i % 7 == 3 || i % 113 == 0).collect();
        for &i in &expect {
            flags[i as usize] = 1;
        }
        assert_eq!(compact_indices(&flags), expect);
    }

    #[test]
    fn compact_edge_cases() {
        assert!(compact_indices(&[]).is_empty());
        assert!(compact_indices(&[0, 0, 0]).is_empty());
        assert_eq!(compact_indices(&[1, 1, 1]), vec![0, 1, 2]);
        assert_eq!(compact_indices(&[0, 2, 0, 255]), vec![1, 3]);
    }

    #[test]
    fn compact_where_matches_compact_indices() {
        let n = SCAN_BLOCK * 2 + 31;
        let flags: Vec<u8> = (0..n).map(|i| (i % 5 == 0 || i % 977 == 3) as u8).collect();
        assert_eq!(compact_where(n, |i| flags[i] != 0), compact_indices(&flags));
    }

    #[test]
    fn compact_where_edge_cases() {
        assert!(compact_where(0, |_| true).is_empty());
        assert!(compact_where(100, |_| false).is_empty());
        assert_eq!(compact_where(3, |_| true), vec![0, 1, 2]);
        let n = SCAN_BLOCK + 1;
        assert_eq!(compact_where(n, |i| i == n - 1), vec![(n - 1) as u32]);
    }

    #[test]
    fn partition_where_splits_stably() {
        let n = SCAN_BLOCK * 2 + 31;
        let (yes, no) = partition_where(n, |i| i % 3 == 1);
        let expect_yes: Vec<u32> = (0..n as u32).filter(|i| i % 3 == 1).collect();
        let expect_no: Vec<u32> = (0..n as u32).filter(|i| i % 3 != 1).collect();
        assert_eq!(yes, expect_yes);
        assert_eq!(no, expect_no);
    }

    #[test]
    fn partition_where_edge_cases() {
        assert_eq!(partition_where(0, |_| true), (vec![], vec![]));
        let (yes, no) = partition_where(4, |_| true);
        assert_eq!(yes, vec![0, 1, 2, 3]);
        assert!(no.is_empty());
        let (yes, no) = partition_where(SCAN_BLOCK + 5, |_| false);
        assert!(yes.is_empty());
        assert_eq!(no.len(), SCAN_BLOCK + 5);
    }

    #[test]
    fn partition_agrees_with_compact() {
        let n = SCAN_BLOCK + 1234;
        let pred = |i: usize| i.is_multiple_of(7) || i % 977 == 3;
        let (yes, no) = partition_where(n, pred);
        assert_eq!(yes, compact_where(n, pred));
        assert_eq!(yes.len() + no.len(), n);
    }

    #[test]
    fn gather_reassembles_in_order() {
        let src: Vec<u8> = (0..=255u8).collect();
        let segments = [(10usize, 3usize), (0, 2), (200, 5)];
        let mut dst = vec![0u8; 10];
        let n = segmented_gather(&src, &segments, &mut dst);
        assert_eq!(n, 10);
        assert_eq!(&dst[..10], &[10, 11, 12, 0, 1, 200, 201, 202, 203, 204]);
    }

    #[test]
    fn gather_empty_segments() {
        let src = [1u8, 2, 3];
        let mut dst = vec![0u8; 0];
        assert_eq!(segmented_gather(&src, &[], &mut dst), 0);
    }

    #[test]
    fn scatter_inverts_gather() {
        let src: Vec<u8> = (0..100u8).collect();
        let segments = [(5usize, 10usize), (40, 7), (80, 20)];
        let total: usize = segments.iter().map(|s| s.1).sum();
        let mut packed = vec![0u8; total];
        segmented_gather(&src, &segments, &mut packed);

        let mut restored = vec![0u8; 100];
        segmented_scatter(&packed, &segments, &mut restored);
        for &(off, len) in &segments {
            assert_eq!(&restored[off..off + len], &src[off..off + len]);
        }
    }

    #[test]
    fn scatter_unsorted_segments() {
        // Segment order in the diff need not be ascending by offset.
        let packed = [9u8, 8, 7, 6];
        let segments = [(6usize, 2usize), (0, 2)]; // out of order
        let mut dst = vec![0u8; 8];
        segmented_scatter(&packed, &segments, &mut dst);
        assert_eq!(dst, [7, 6, 0, 0, 0, 0, 9, 8]);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn scatter_rejects_overlap() {
        let packed = [0u8; 4];
        let segments = [(0usize, 3usize), (2, 1)];
        let mut dst = vec![0u8; 8];
        segmented_scatter(&packed, &segments, &mut dst);
    }

    #[test]
    fn gather_large_parallel_path() {
        let src: Vec<u8> = (0..(SCAN_BLOCK * 2)).map(|i| i as u8).collect();
        let segments: Vec<Segment> = (0..1000).map(|i| (i * 17, 13)).collect();
        let total: usize = 1000 * 13;
        let mut dst = vec![0u8; total];
        segmented_gather(&src, &segments, &mut dst);
        for (k, &(off, len)) in segments.iter().enumerate() {
            assert_eq!(&dst[k * 13..k * 13 + len], &src[off..off + len]);
        }
    }
}
