//! Device activity counters.
//!
//! Every kernel launch and transfer on a [`crate::Device`] updates these
//! counters. Modeled times are kept as integer femtoseconds internally so the
//! counters can be plain atomics (no locks on the kernel hot path).

use std::sync::atomic::{AtomicU64, Ordering};

const FEMTOS_PER_SEC: f64 = 1e15;

/// Atomic activity counters for one simulated device.
#[derive(Debug, Default)]
pub struct DeviceMetrics {
    kernels_launched: AtomicU64,
    fused_kernels: AtomicU64,
    device_bytes_read: AtomicU64,
    device_bytes_written: AtomicU64,
    d2h_bytes: AtomicU64,
    h2d_bytes: AtomicU64,
    /// Modeled kernel execution time, femtoseconds.
    kernel_femtos: AtomicU64,
    /// Modeled launch latency, femtoseconds.
    launch_femtos: AtomicU64,
    /// Modeled transfer time, femtoseconds.
    transfer_femtos: AtomicU64,
    alloc_bytes: AtomicU64,
}

fn to_femtos(sec: f64) -> u64 {
    debug_assert!(sec >= 0.0);
    (sec * FEMTOS_PER_SEC) as u64
}

impl DeviceMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_kernel(&self, bytes_read: u64, bytes_written: u64, modeled_sec: f64) {
        self.kernels_launched.fetch_add(1, Ordering::Relaxed);
        self.device_bytes_read
            .fetch_add(bytes_read, Ordering::Relaxed);
        self.device_bytes_written
            .fetch_add(bytes_written, Ordering::Relaxed);
        self.kernel_femtos
            .fetch_add(to_femtos(modeled_sec), Ordering::Relaxed);
    }

    pub(crate) fn record_launch_latency(&self, modeled_sec: f64) {
        self.launch_femtos
            .fetch_add(to_femtos(modeled_sec), Ordering::Relaxed);
    }

    pub(crate) fn record_fused(&self) {
        self.fused_kernels.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_d2h(&self, bytes: u64, modeled_sec: f64) {
        self.d2h_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.transfer_femtos
            .fetch_add(to_femtos(modeled_sec), Ordering::Relaxed);
    }

    pub(crate) fn record_h2d(&self, bytes: u64, modeled_sec: f64) {
        self.h2d_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.transfer_femtos
            .fetch_add(to_femtos(modeled_sec), Ordering::Relaxed);
    }

    pub(crate) fn record_alloc(&self, bytes: u64) {
        self.alloc_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Number of kernel launches issued (a fused region counts once).
    pub fn kernels_launched(&self) -> u64 {
        self.kernels_launched.load(Ordering::Relaxed)
    }

    /// Number of logical kernels that were folded into fused regions.
    pub fn fused_kernels(&self) -> u64 {
        self.fused_kernels.load(Ordering::Relaxed)
    }

    /// Bytes read from simulated device memory by kernels.
    pub fn device_bytes_read(&self) -> u64 {
        self.device_bytes_read.load(Ordering::Relaxed)
    }

    /// Bytes written to simulated device memory by kernels.
    pub fn device_bytes_written(&self) -> u64 {
        self.device_bytes_written.load(Ordering::Relaxed)
    }

    /// Device→host bytes transferred.
    pub fn d2h_bytes(&self) -> u64 {
        self.d2h_bytes.load(Ordering::Relaxed)
    }

    /// Host→device bytes transferred.
    pub fn h2d_bytes(&self) -> u64 {
        self.h2d_bytes.load(Ordering::Relaxed)
    }

    /// Total bytes allocated on the device over its lifetime.
    pub fn alloc_bytes(&self) -> u64 {
        self.alloc_bytes.load(Ordering::Relaxed)
    }

    /// Total modeled device time in seconds (kernels + launch latency +
    /// transfers).
    pub fn modeled_sec(&self) -> f64 {
        (self.kernel_femtos.load(Ordering::Relaxed)
            + self.launch_femtos.load(Ordering::Relaxed)
            + self.transfer_femtos.load(Ordering::Relaxed)) as f64
            / FEMTOS_PER_SEC
    }

    /// Modeled kernel execution seconds only.
    pub fn modeled_kernel_sec(&self) -> f64 {
        self.kernel_femtos.load(Ordering::Relaxed) as f64 / FEMTOS_PER_SEC
    }

    /// Modeled launch-latency seconds only.
    pub fn modeled_launch_sec(&self) -> f64 {
        self.launch_femtos.load(Ordering::Relaxed) as f64 / FEMTOS_PER_SEC
    }

    /// Modeled transfer seconds only.
    pub fn modeled_transfer_sec(&self) -> f64 {
        self.transfer_femtos.load(Ordering::Relaxed) as f64 / FEMTOS_PER_SEC
    }

    /// Snapshot all counters into a plain struct (for reports).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            kernels_launched: self.kernels_launched(),
            fused_kernels: self.fused_kernels(),
            device_bytes_read: self.device_bytes_read(),
            device_bytes_written: self.device_bytes_written(),
            d2h_bytes: self.d2h_bytes(),
            h2d_bytes: self.h2d_bytes(),
            modeled_sec: self.modeled_sec(),
            modeled_kernel_sec: self.modeled_kernel_sec(),
            modeled_launch_sec: self.modeled_launch_sec(),
            modeled_transfer_sec: self.modeled_transfer_sec(),
        }
    }

    /// Reset all counters to zero (between benchmark iterations).
    pub fn reset(&self) {
        self.kernels_launched.store(0, Ordering::Relaxed);
        self.fused_kernels.store(0, Ordering::Relaxed);
        self.device_bytes_read.store(0, Ordering::Relaxed);
        self.device_bytes_written.store(0, Ordering::Relaxed);
        self.d2h_bytes.store(0, Ordering::Relaxed);
        self.h2d_bytes.store(0, Ordering::Relaxed);
        self.kernel_femtos.store(0, Ordering::Relaxed);
        self.launch_femtos.store(0, Ordering::Relaxed);
        self.transfer_femtos.store(0, Ordering::Relaxed);
        self.alloc_bytes.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`DeviceMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub kernels_launched: u64,
    pub fused_kernels: u64,
    pub device_bytes_read: u64,
    pub device_bytes_written: u64,
    pub d2h_bytes: u64,
    pub h2d_bytes: u64,
    pub modeled_sec: f64,
    pub modeled_kernel_sec: f64,
    pub modeled_launch_sec: f64,
    pub modeled_transfer_sec: f64,
}

impl MetricsSnapshot {
    /// Modeled time elapsed between two snapshots (self taken after `earlier`).
    pub fn modeled_sec_since(&self, earlier: &MetricsSnapshot) -> f64 {
        self.modeled_sec - earlier.modeled_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = DeviceMetrics::new();
        m.record_kernel(100, 50, 1e-6);
        m.record_kernel(100, 50, 1e-6);
        m.record_d2h(1000, 2e-6);
        assert_eq!(m.kernels_launched(), 2);
        assert_eq!(m.device_bytes_read(), 200);
        assert_eq!(m.device_bytes_written(), 100);
        assert_eq!(m.d2h_bytes(), 1000);
        assert!((m.modeled_sec() - 4e-6).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_everything() {
        let m = DeviceMetrics::new();
        m.record_kernel(1, 1, 1.0);
        m.record_launch_latency(1.0);
        m.record_h2d(5, 0.5);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn snapshot_delta() {
        let m = DeviceMetrics::new();
        m.record_kernel(1, 1, 1.0);
        let s1 = m.snapshot();
        m.record_kernel(1, 1, 0.5);
        let s2 = m.snapshot();
        assert!((s2.modeled_sec_since(&s1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn femtosecond_resolution_preserves_microsecond_costs() {
        let m = DeviceMetrics::new();
        for _ in 0..1000 {
            m.record_launch_latency(5e-6);
        }
        assert!((m.modeled_launch_sec() - 5e-3).abs() < 1e-9);
    }
}
