//! A simulated GPU execution substrate.
//!
//! The paper implements its de-duplication method with Kokkos on NVIDIA A100
//! GPUs. No GPU is available in this environment, so this crate provides the
//! closest synthetic equivalent that exercises the same code paths:
//!
//! * [`Device`] — a simulated accelerator. Kernels launched on it run
//!   data-parallel on a CPU thread pool (rayon), with the same structure the
//!   paper's fused Kokkos kernels have: grid launches (`parallel_for`),
//!   reductions, exclusive scans (used to pre-compute serialization offsets)
//!   and team-cooperative gather copies (`team_gather`).
//! * [`DistinctMap`] — a lock-free, insert-only open-addressing hash table
//!   equivalent to `Kokkos::UnorderedMap`: thousands of concurrent
//!   `insert-if-absent` operations with no locks on the fast path. This holds
//!   the paper's *historical record of unique hashes*.
//! * [`PerfModel`] — an analytical performance model calibrated to A100
//!   figures (HBM bandwidth, PCIe gen4 bandwidth, kernel launch latency).
//!   Every launch and transfer accrues *modeled device time* next to measured
//!   CPU wall time, so benchmarks can report throughput curves whose shape
//!   matches the paper's testbed even though the executor is a CPU.
//!
//! # Fidelity notes
//!
//! The algorithms running on this substrate are identical in structure to
//! their GPU versions: level-by-level parallelism over Merkle-tree nodes,
//! two-stage wave ordering, lock-free hash-table probes and coalesced team
//! copies. The only simulated parts are the clock (the analytical model) and
//! the executor (a thread pool instead of warps).

pub mod arena;
pub mod buffer;
pub mod collectives;
pub mod content_cache;
pub mod device;
pub mod distinct_map;
pub mod metrics;
pub mod perf;

pub use arena::{ArenaLease, ArenaStats, DeviceArena};
pub use buffer::DeviceBuffer;
pub use content_cache::{ContentCache, Verification};
pub use device::{Device, KernelCost};
pub use distinct_map::{BatchedInserts, DistinctMap, InsertResult, MapEntry};
pub use metrics::DeviceMetrics;
pub use perf::{DeviceConfig, PerfModel};
