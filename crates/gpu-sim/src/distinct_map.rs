//! The *historical record of unique hashes*: a lock-free, insert-only hash
//! table equivalent to `Kokkos::UnorderedMap`.
//!
//! Algorithm 1 in the paper performs one `Map.insert(digest, entry)` per
//! modified chunk from thousands of GPU threads concurrently, and relies on
//! insert-if-absent semantics: exactly one inserting thread wins, every other
//! thread observes the winner's entry. This implementation provides that with
//! an open-addressing table of fixed capacity whose slots are claimed with a
//! single compare-and-swap on a state byte (EMPTY → BUSY), published with a
//! release store (BUSY → FULL), and probed linearly. There are no locks; the
//! only waiting is a bounded spin while a concurrently-claimed slot finishes
//! publishing its key.
//!
//! The table is sized once (like the paper's per-process GPU-resident record,
//! bounded by 2× the number of leaf chunks) and never rehashes; `insert`
//! reports exhaustion instead, which callers treat as "de-duplication
//! deactivated" exactly as §2.4 describes for fully-changed checkpoints.

use ckpt_hash::Digest128;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};

const EMPTY: u8 = 0;
const BUSY: u8 = 1;
const FULL: u8 = 2;

/// Value stored per unique digest: where it first occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MapEntry {
    /// Merkle-tree node index (leaf or interior) of the first occurrence.
    pub node: u32,
    /// Checkpoint id of the first occurrence.
    pub ckpt: u32,
}

impl MapEntry {
    pub fn new(node: u32, ckpt: u32) -> Self {
        MapEntry { node, ckpt }
    }

    #[inline]
    fn pack(self) -> u64 {
        (self.ckpt as u64) << 32 | self.node as u64
    }

    #[inline]
    fn unpack(v: u64) -> Self {
        MapEntry {
            node: v as u32,
            ckpt: (v >> 32) as u32,
        }
    }
}

/// Result of [`DistinctMap::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertResult {
    /// The digest was not present; this call inserted it.
    Inserted,
    /// The digest was already present with this entry.
    Exists(MapEntry),
    /// The table is full; the digest could not be inserted.
    OutOfCapacity,
}

impl InsertResult {
    /// `true` when this call performed the insertion (Algorithm 1's
    /// `success` flag).
    pub fn inserted(&self) -> bool {
        matches!(self, InsertResult::Inserted)
    }
}

struct Slot {
    state: AtomicU8,
    value: AtomicU64,
    key: UnsafeCell<Digest128>,
}

// SAFETY: `key` is written exactly once, by the unique thread that won the
// EMPTY→BUSY CAS, strictly before the release store of FULL; it is read only
// after an acquire load observes FULL. The release/acquire pair on `state`
// makes the key write happen-before every read.
unsafe impl Sync for Slot {}

impl Slot {
    fn new() -> Self {
        Slot {
            state: AtomicU8::new(EMPTY),
            value: AtomicU64::new(0),
            key: UnsafeCell::new(Digest128::ZERO),
        }
    }
}

/// Lock-free insert-only hash map from [`Digest128`] to [`MapEntry`].
pub struct DistinctMap {
    slots: Box<[Slot]>,
    mask: usize,
    len: AtomicUsize,
}

impl DistinctMap {
    /// Create a map able to hold at least `capacity` digests. The backing
    /// table is the next power of two of `2 * capacity`, keeping the load
    /// factor ≤ 0.5 so linear probing stays short.
    pub fn with_capacity(capacity: usize) -> Self {
        let table = (capacity.max(1) * 2).next_power_of_two();
        let slots = (0..table)
            .map(|_| Slot::new())
            .collect::<Vec<_>>()
            .into_boxed_slice();
        DistinctMap {
            slots,
            mask: table - 1,
            len: AtomicUsize::new(0),
        }
    }

    /// Number of digests stored.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of slots in the backing table.
    pub fn table_size(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn start_index(&self, digest: &Digest128) -> usize {
        // The digest is already a high-quality hash; fold the halves and mask.
        (digest.h1 ^ digest.h2.rotate_left(32)) as usize & self.mask
    }

    /// Insert `digest → entry` if absent.
    ///
    /// Concurrent inserts of the same digest race benignly: exactly one
    /// returns [`InsertResult::Inserted`], the rest return
    /// [`InsertResult::Exists`] with the winner's entry.
    pub fn insert(&self, digest: &Digest128, entry: MapEntry) -> InsertResult {
        let r = self.insert_unaccounted(digest, entry);
        if r.inserted() {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    /// [`insert`](Self::insert) without bumping the shared length counter;
    /// the caller owes one `len` increment per `Inserted` result. This is
    /// the primitive under [`BatchedInserts`], which pays the shared-counter
    /// atomic once per kernel chunk instead of once per inserted digest.
    fn insert_unaccounted(&self, digest: &Digest128, entry: MapEntry) -> InsertResult {
        let start = self.start_index(digest);
        for probe in 0..self.slots.len() {
            let slot = &self.slots[(start + probe) & self.mask];
            let mut state = slot.state.load(Ordering::Acquire);
            if state == EMPTY {
                match slot
                    .state
                    .compare_exchange(EMPTY, BUSY, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => {
                        // We own the slot: publish key+value, then FULL.
                        // SAFETY: unique writer (won the CAS), no reader
                        // touches `key` until FULL is visible.
                        unsafe { *slot.key.get() = *digest };
                        slot.value.store(entry.pack(), Ordering::Relaxed);
                        slot.state.store(FULL, Ordering::Release);
                        return InsertResult::Inserted;
                    }
                    Err(observed) => state = observed,
                }
            }
            // Somebody claimed this slot; wait until its key is readable.
            while state == BUSY {
                std::hint::spin_loop();
                state = slot.state.load(Ordering::Acquire);
            }
            debug_assert_eq!(state, FULL);
            // SAFETY: acquire load of FULL synchronizes with the release
            // store after the key write.
            let key = unsafe { *slot.key.get() };
            if key == *digest {
                return InsertResult::Exists(MapEntry::unpack(slot.value.load(Ordering::Relaxed)));
            }
        }
        InsertResult::OutOfCapacity
    }

    /// Start a batch of inserts that amortizes the shared length counter:
    /// successful inserts are tallied locally and folded into `len` with a
    /// single atomic when the batch flushes (explicitly or on drop). One
    /// batch per kernel chunk turns O(inserted digests) contended
    /// `fetch_add`s per wave into O(chunks).
    ///
    /// Insert-if-absent semantics are untouched — only `len` lags until the
    /// flush, so concurrent readers of `len` during a wave may observe an
    /// undercount. The pipeline only reads `len` between kernels, where all
    /// batches have flushed.
    pub fn batch(&self) -> BatchedInserts<'_> {
        BatchedInserts {
            map: self,
            pending: 0,
        }
    }

    /// Look up a digest.
    pub fn get(&self, digest: &Digest128) -> Option<MapEntry> {
        let start = self.start_index(digest);
        for probe in 0..self.slots.len() {
            let slot = &self.slots[(start + probe) & self.mask];
            let mut state = slot.state.load(Ordering::Acquire);
            if state == EMPTY {
                return None;
            }
            while state == BUSY {
                std::hint::spin_loop();
                state = slot.state.load(Ordering::Acquire);
            }
            // SAFETY: as in `insert`.
            let key = unsafe { *slot.key.get() };
            if key == *digest {
                return Some(MapEntry::unpack(slot.value.load(Ordering::Relaxed)));
            }
        }
        None
    }

    /// Whether the digest is present.
    pub fn contains(&self, digest: &Digest128) -> bool {
        self.get(digest).is_some()
    }

    /// Atomically update the entry stored for `digest`, if present.
    ///
    /// `f` maps the current entry to `Some(new_entry)` to attempt a
    /// compare-and-swap (retried until it sticks or `f` declines) or `None`
    /// to leave the entry unchanged. Returns `(before, after)`: the entry
    /// observed when the operation settled and the entry in place afterwards
    /// (equal when `f` declined). Returns `None` if the digest is absent.
    ///
    /// Algorithm 1 (lines 13–16) uses this to keep the *earliest* leaf of the
    /// current checkpoint as the canonical first occurrence when concurrent
    /// leaf threads insert the same digest out of order; `before` tells the
    /// displacing thread which node it displaced so it can relabel it.
    pub fn update_with(
        &self,
        digest: &Digest128,
        f: impl Fn(MapEntry) -> Option<MapEntry>,
    ) -> Option<(MapEntry, MapEntry)> {
        let start = self.start_index(digest);
        for probe in 0..self.slots.len() {
            let slot = &self.slots[(start + probe) & self.mask];
            let mut state = slot.state.load(Ordering::Acquire);
            if state == EMPTY {
                return None;
            }
            while state == BUSY {
                std::hint::spin_loop();
                state = slot.state.load(Ordering::Acquire);
            }
            // SAFETY: as in `insert`.
            let key = unsafe { *slot.key.get() };
            if key == *digest {
                let mut cur = slot.value.load(Ordering::Relaxed);
                loop {
                    match f(MapEntry::unpack(cur)) {
                        None => {
                            let e = MapEntry::unpack(cur);
                            return Some((e, e));
                        }
                        Some(new) => {
                            match slot.value.compare_exchange_weak(
                                cur,
                                new.pack(),
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            ) {
                                Ok(_) => return Some((MapEntry::unpack(cur), new)),
                                Err(observed) => cur = observed,
                            }
                        }
                    }
                }
            }
        }
        None
    }

    /// Reset the map to empty. Requires exclusive access, so no concurrent
    /// protocol is needed.
    pub fn clear(&mut self) {
        for slot in self.slots.iter_mut() {
            *slot.state.get_mut() = EMPTY;
            *slot.value.get_mut() = 0;
            *slot.key.get_mut() = Digest128::ZERO;
        }
        *self.len.get_mut() = 0;
    }

    /// Approximate bytes of device memory this record occupies (for the
    /// space-accounting reports; the paper keeps this structure GPU-resident).
    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Slot>()
    }
}

/// Chunk-local insert handle from [`DistinctMap::batch`]; see there.
pub struct BatchedInserts<'m> {
    map: &'m DistinctMap,
    pending: usize,
}

impl BatchedInserts<'_> {
    /// Insert with the same semantics as [`DistinctMap::insert`], deferring
    /// the shared length-counter update to the next [`flush`](Self::flush).
    pub fn insert(&mut self, digest: &Digest128, entry: MapEntry) -> InsertResult {
        let r = self.map.insert_unaccounted(digest, entry);
        if r.inserted() {
            self.pending += 1;
        }
        r
    }

    /// Fold the locally tallied insert count into the map's `len`.
    pub fn flush(&mut self) {
        if self.pending > 0 {
            self.map.len.fetch_add(self.pending, Ordering::Relaxed);
            self.pending = 0;
        }
    }
}

impl Drop for BatchedInserts<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

impl std::fmt::Debug for DistinctMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistinctMap")
            .field("len", &self.len())
            .field("table_size", &self.table_size())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_hash::{Hasher128, Murmur3};
    use std::sync::Arc;

    fn digest(i: u64) -> Digest128 {
        Murmur3.hash(&i.to_le_bytes())
    }

    #[test]
    fn insert_then_get() {
        let map = DistinctMap::with_capacity(16);
        let d = digest(1);
        assert!(map.insert(&d, MapEntry::new(7, 3)).inserted());
        assert_eq!(map.get(&d), Some(MapEntry::new(7, 3)));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn duplicate_insert_returns_first_entry() {
        let map = DistinctMap::with_capacity(16);
        let d = digest(2);
        assert!(map.insert(&d, MapEntry::new(1, 0)).inserted());
        assert_eq!(
            map.insert(&d, MapEntry::new(99, 9)),
            InsertResult::Exists(MapEntry::new(1, 0))
        );
        assert_eq!(map.get(&d), Some(MapEntry::new(1, 0)));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn missing_key_returns_none() {
        let map = DistinctMap::with_capacity(16);
        map.insert(&digest(1), MapEntry::new(0, 0));
        assert_eq!(map.get(&digest(42)), None);
        assert!(!map.contains(&digest(42)));
    }

    #[test]
    fn zero_digest_is_a_legal_key() {
        let map = DistinctMap::with_capacity(16);
        assert!(map.insert(&Digest128::ZERO, MapEntry::new(5, 1)).inserted());
        assert_eq!(map.get(&Digest128::ZERO), Some(MapEntry::new(5, 1)));
    }

    #[test]
    fn fills_to_capacity_then_reports_exhaustion() {
        let map = DistinctMap::with_capacity(8); // table = 16 slots
        let table = map.table_size();
        let mut inserted = 0;
        let mut i = 0u64;
        loop {
            match map.insert(&digest(i), MapEntry::new(i as u32, 0)) {
                InsertResult::Inserted => inserted += 1,
                InsertResult::OutOfCapacity => break,
                InsertResult::Exists(_) => panic!("unexpected duplicate"),
            }
            i += 1;
        }
        assert_eq!(inserted, table);
        // Everything inserted before exhaustion is still retrievable.
        for j in 0..inserted as u64 {
            assert_eq!(map.get(&digest(j)), Some(MapEntry::new(j as u32, 0)));
        }
    }

    #[test]
    fn clear_resets() {
        let mut map = DistinctMap::with_capacity(8);
        for i in 0..8 {
            map.insert(&digest(i), MapEntry::new(i as u32, 0));
        }
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.get(&digest(0)), None);
        assert!(map.insert(&digest(0), MapEntry::new(1, 1)).inserted());
    }

    #[test]
    fn concurrent_distinct_inserts_all_land() {
        let map = Arc::new(DistinctMap::with_capacity(10_000));
        let threads = 8;
        let per_thread = 1000;
        std::thread::scope(|s| {
            for t in 0..threads {
                let map = Arc::clone(&map);
                s.spawn(move || {
                    for i in 0..per_thread {
                        let d = digest((t * per_thread + i) as u64);
                        assert!(map.insert(&d, MapEntry::new(i as u32, t as u32)).inserted());
                    }
                });
            }
        });
        assert_eq!(map.len(), threads * per_thread);
        for k in 0..(threads * per_thread) as u64 {
            assert!(map.contains(&digest(k)));
        }
    }

    #[test]
    fn concurrent_same_key_has_exactly_one_winner() {
        for _round in 0..50 {
            let map = Arc::new(DistinctMap::with_capacity(64));
            let d = digest(77);
            let winners = Arc::new(AtomicUsize::new(0));
            std::thread::scope(|s| {
                for t in 0..8u32 {
                    let map = Arc::clone(&map);
                    let winners = Arc::clone(&winners);
                    s.spawn(move || {
                        if map.insert(&d, MapEntry::new(t, t)).inserted() {
                            winners.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            assert_eq!(winners.load(Ordering::Relaxed), 1);
            assert_eq!(map.len(), 1);
            // The stored entry is the winner's own (node == ckpt here), i.e.
            // a consistent pair, never a torn mix of two threads' writes.
            let e = map.get(&d).unwrap();
            assert_eq!(e.node, e.ckpt);
        }
    }

    #[test]
    fn update_with_applies_cas() {
        let map = DistinctMap::with_capacity(16);
        let d = digest(5);
        map.insert(&d, MapEntry::new(10, 2));
        // Decline: entry unchanged, before == after.
        let seen = map.update_with(&d, |_| None);
        assert_eq!(seen, Some((MapEntry::new(10, 2), MapEntry::new(10, 2))));
        // Replace when the new node is smaller; `before` is the displaced entry.
        let new = map.update_with(&d, |e| (3 < e.node).then_some(MapEntry::new(3, 2)));
        assert_eq!(new, Some((MapEntry::new(10, 2), MapEntry::new(3, 2))));
        assert_eq!(map.get(&d), Some(MapEntry::new(3, 2)));
        // Absent key.
        assert_eq!(map.update_with(&digest(999), |_| None), None);
    }

    #[test]
    fn concurrent_update_with_converges_to_minimum() {
        let map = Arc::new(DistinctMap::with_capacity(64));
        let d = digest(9);
        map.insert(&d, MapEntry::new(u32::MAX, 1));
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let map = Arc::clone(&map);
                s.spawn(move || {
                    for node in (t * 100)..(t * 100 + 100) {
                        map.update_with(&d, |e| (node < e.node).then_some(MapEntry::new(node, 1)));
                    }
                });
            }
        });
        assert_eq!(map.get(&d), Some(MapEntry::new(0, 1)));
    }

    #[test]
    fn batched_inserts_flush_len_once() {
        let map = DistinctMap::with_capacity(64);
        {
            let mut batch = map.batch();
            for i in 0..10 {
                assert!(batch
                    .insert(&digest(i), MapEntry::new(i as u32, 0))
                    .inserted());
            }
            // Duplicates don't count toward the batch tally.
            assert!(!batch.insert(&digest(0), MapEntry::new(9, 9)).inserted());
            batch.flush();
            assert_eq!(map.len(), 10);
            // A drop after an explicit flush must not double-count.
        }
        assert_eq!(map.len(), 10);
        // Drop without explicit flush also settles the counter.
        {
            let mut batch = map.batch();
            assert!(batch.insert(&digest(100), MapEntry::new(1, 1)).inserted());
        }
        assert_eq!(map.len(), 11);
    }

    #[test]
    fn concurrent_batched_inserts_settle_to_exact_len() {
        let map = Arc::new(DistinctMap::with_capacity(10_000));
        std::thread::scope(|s| {
            for t in 0..8usize {
                let map = Arc::clone(&map);
                s.spawn(move || {
                    let mut batch = map.batch();
                    for i in 0..1000 {
                        batch.insert(&digest((t * 1000 + i) as u64), MapEntry::new(i as u32, 0));
                    }
                });
            }
        });
        assert_eq!(map.len(), 8000);
    }

    #[test]
    fn entry_packing_round_trip() {
        let e = MapEntry::new(u32::MAX - 1, 12345);
        assert_eq!(MapEntry::unpack(e.pack()), e);
    }
}
