//! The *historical record of unique hashes*: a lock-free, insert-only hash
//! table equivalent to `Kokkos::UnorderedMap`.
//!
//! Algorithm 1 in the paper performs one `Map.insert(digest, entry)` per
//! modified chunk from thousands of GPU threads concurrently, and relies on
//! insert-if-absent semantics: exactly one inserting thread wins, every other
//! thread observes the winner's entry. This implementation provides that with
//! an open-addressing table whose slots are claimed with a single
//! compare-and-swap on a tag word (effective-EMPTY → BUSY), published with a
//! release store (BUSY → FULL), and probed linearly. There are no locks; the
//! only waiting is a bounded spin while a concurrently-claimed slot finishes
//! publishing its key.
//!
//! Slots are **generation-tagged**: each tag word packs the table generation
//! with the slot state, and a slot whose generation differs from the map's
//! current one reads as EMPTY. [`reset`](DistinctMap::reset) is therefore an
//! O(1) generation bump — no table-sized clear on the per-record hot path —
//! and leaves probe behavior structurally identical to a freshly-zeroed
//! table. Capacity is normally sized once (like the paper's per-process
//! GPU-resident record, bounded by 2× the number of leaf chunks); `insert`
//! reports exhaustion instead of growing, which callers treat as
//! "de-duplication deactivated" exactly as §2.4 describes for fully-changed
//! checkpoints. Callers that *want* growth between records use
//! [`ensure_capacity`](DistinctMap::ensure_capacity), which rebuilds (and
//! counts the rebuild) only when the requested capacity exceeds the table.

use ckpt_hash::Digest128;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

const EMPTY: u64 = 0;
const BUSY: u64 = 1;
const FULL: u64 = 2;
const STATE_BITS: u32 = 2;
const STATE_MASK: u64 = (1 << STATE_BITS) - 1;
/// Generations live in the tag's upper 62 bits; past this the map falls back
/// to one physical clear and restarts the epoch counter.
const MAX_GENERATION: u64 = (1 << (64 - STATE_BITS)) - 1;

#[inline]
fn tag(generation: u64, state: u64) -> u64 {
    (generation << STATE_BITS) | state
}

/// Value stored per unique digest: where it first occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MapEntry {
    /// Merkle-tree node index (leaf or interior) of the first occurrence.
    pub node: u32,
    /// Checkpoint id of the first occurrence.
    pub ckpt: u32,
}

impl MapEntry {
    pub fn new(node: u32, ckpt: u32) -> Self {
        MapEntry { node, ckpt }
    }

    #[inline]
    fn pack(self) -> u64 {
        (self.ckpt as u64) << 32 | self.node as u64
    }

    #[inline]
    fn unpack(v: u64) -> Self {
        MapEntry {
            node: v as u32,
            ckpt: (v >> 32) as u32,
        }
    }
}

/// Result of [`DistinctMap::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertResult {
    /// The digest was not present; this call inserted it.
    Inserted,
    /// The digest was already present with this entry.
    Exists(MapEntry),
    /// The table is full; the digest could not be inserted.
    OutOfCapacity,
}

impl InsertResult {
    /// `true` when this call performed the insertion (Algorithm 1's
    /// `success` flag).
    pub fn inserted(&self) -> bool {
        matches!(self, InsertResult::Inserted)
    }
}

struct Slot {
    /// `(generation << 2) | state`. A slot tagged with a stale generation is
    /// effectively EMPTY regardless of its state bits.
    tag: AtomicU64,
    value: AtomicU64,
    key: UnsafeCell<Digest128>,
}

// SAFETY: `key` is written exactly once per generation, by the unique thread
// that won the effective-EMPTY→BUSY CAS on `tag`, strictly before the release
// store of FULL; it is read only after an acquire load observes the current
// generation's FULL. The release/acquire pair on `tag` makes the key write
// happen-before every read. Generation bumps require `&mut self`, so no
// concurrent access straddles an epoch change.
unsafe impl Sync for Slot {}

impl Slot {
    fn new() -> Self {
        Slot {
            tag: AtomicU64::new(tag(0, EMPTY)),
            value: AtomicU64::new(0),
            key: UnsafeCell::new(Digest128::ZERO),
        }
    }
}

/// Lock-free insert-only hash map from [`Digest128`] to [`MapEntry`].
pub struct DistinctMap {
    slots: Box<[Slot]>,
    mask: usize,
    len: AtomicUsize,
    /// Current epoch. Only mutated under `&mut self` (reset / rebuild), so
    /// every shared-access operation sees it frozen.
    generation: u64,
    generation_bumps: u64,
    rehash_rebuilds: u64,
}

impl DistinctMap {
    /// Create a map able to hold at least `capacity` digests. The backing
    /// table is the next power of two of `2 * capacity`, keeping the load
    /// factor ≤ 0.5 so linear probing stays short.
    pub fn with_capacity(capacity: usize) -> Self {
        let table = (capacity.max(1) * 2).next_power_of_two();
        let slots = (0..table)
            .map(|_| Slot::new())
            .collect::<Vec<_>>()
            .into_boxed_slice();
        DistinctMap {
            slots,
            mask: table - 1,
            len: AtomicUsize::new(0),
            generation: 0,
            generation_bumps: 0,
            rehash_rebuilds: 0,
        }
    }

    /// Number of digests stored.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of slots in the backing table.
    pub fn table_size(&self) -> usize {
        self.slots.len()
    }

    /// O(1) resets performed so far (epoch bumps, including the rare
    /// physical fallback at generation wrap).
    pub fn generation_bumps(&self) -> u64 {
        self.generation_bumps
    }

    /// Table rebuilds performed by [`ensure_capacity`](Self::ensure_capacity).
    /// Zero in steady state — the invariant the zero-allocation tests pin.
    pub fn rehash_rebuilds(&self) -> u64 {
        self.rehash_rebuilds
    }

    #[inline]
    fn start_index(&self, digest: &Digest128) -> usize {
        // The digest is already a high-quality hash; fold the halves and mask.
        (digest.h1 ^ digest.h2.rotate_left(32)) as usize & self.mask
    }

    /// Whether `t` reads as EMPTY under the current generation: either truly
    /// unclaimed or left over from a previous epoch.
    #[inline]
    fn is_effective_empty(&self, t: u64) -> bool {
        (t >> STATE_BITS) != self.generation || (t & STATE_MASK) == EMPTY
    }

    /// Insert `digest → entry` if absent.
    ///
    /// Concurrent inserts of the same digest race benignly: exactly one
    /// returns [`InsertResult::Inserted`], the rest return
    /// [`InsertResult::Exists`] with the winner's entry.
    pub fn insert(&self, digest: &Digest128, entry: MapEntry) -> InsertResult {
        let r = self.insert_unaccounted(digest, entry);
        if r.inserted() {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    /// [`insert`](Self::insert) without bumping the shared length counter;
    /// the caller owes one `len` increment per `Inserted` result. This is
    /// the primitive under [`BatchedInserts`], which pays the shared-counter
    /// atomic once per kernel chunk instead of once per inserted digest.
    fn insert_unaccounted(&self, digest: &Digest128, entry: MapEntry) -> InsertResult {
        let busy = tag(self.generation, BUSY);
        let full = tag(self.generation, FULL);
        let start = self.start_index(digest);
        for probe in 0..self.slots.len() {
            let slot = &self.slots[(start + probe) & self.mask];
            let mut t = slot.tag.load(Ordering::Acquire);
            if self.is_effective_empty(t) {
                match slot
                    .tag
                    .compare_exchange(t, busy, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => {
                        // We own the slot: publish key+value, then FULL.
                        // SAFETY: unique writer (won the CAS), no reader
                        // touches `key` until this generation's FULL is
                        // visible.
                        unsafe { *slot.key.get() = *digest };
                        slot.value.store(entry.pack(), Ordering::Relaxed);
                        slot.tag.store(full, Ordering::Release);
                        return InsertResult::Inserted;
                    }
                    // The only shared-access transitions are effective-EMPTY
                    // → BUSY → FULL, so a failed CAS observed a live claim.
                    Err(observed) => t = observed,
                }
            }
            // Somebody claimed this slot; wait until its key is readable.
            while t == busy {
                std::hint::spin_loop();
                t = slot.tag.load(Ordering::Acquire);
            }
            debug_assert_eq!(t, full);
            // SAFETY: acquire load of FULL synchronizes with the release
            // store after the key write.
            let key = unsafe { *slot.key.get() };
            if key == *digest {
                return InsertResult::Exists(MapEntry::unpack(slot.value.load(Ordering::Relaxed)));
            }
        }
        InsertResult::OutOfCapacity
    }

    /// Start a batch of inserts that amortizes the shared length counter:
    /// successful inserts are tallied locally and folded into `len` with a
    /// single atomic when the batch flushes (explicitly or on drop). One
    /// batch per kernel chunk turns O(inserted digests) contended
    /// `fetch_add`s per wave into O(chunks).
    ///
    /// Insert-if-absent semantics are untouched — only `len` lags until the
    /// flush, so concurrent readers of `len` during a wave may observe an
    /// undercount. The pipeline only reads `len` between kernels, where all
    /// batches have flushed.
    pub fn batch(&self) -> BatchedInserts<'_> {
        BatchedInserts {
            map: self,
            pending: 0,
        }
    }

    /// Look up a digest.
    pub fn get(&self, digest: &Digest128) -> Option<MapEntry> {
        let busy = tag(self.generation, BUSY);
        let start = self.start_index(digest);
        for probe in 0..self.slots.len() {
            let slot = &self.slots[(start + probe) & self.mask];
            let mut t = slot.tag.load(Ordering::Acquire);
            if self.is_effective_empty(t) {
                return None;
            }
            while t == busy {
                std::hint::spin_loop();
                t = slot.tag.load(Ordering::Acquire);
            }
            // SAFETY: as in `insert`.
            let key = unsafe { *slot.key.get() };
            if key == *digest {
                return Some(MapEntry::unpack(slot.value.load(Ordering::Relaxed)));
            }
        }
        None
    }

    /// Whether the digest is present.
    pub fn contains(&self, digest: &Digest128) -> bool {
        self.get(digest).is_some()
    }

    /// Atomically update the entry stored for `digest`, if present.
    ///
    /// `f` maps the current entry to `Some(new_entry)` to attempt a
    /// compare-and-swap (retried until it sticks or `f` declines) or `None`
    /// to leave the entry unchanged. Returns `(before, after)`: the entry
    /// observed when the operation settled and the entry in place afterwards
    /// (equal when `f` declined). Returns `None` if the digest is absent.
    ///
    /// Algorithm 1 (lines 13–16) uses this to keep the *earliest* leaf of the
    /// current checkpoint as the canonical first occurrence when concurrent
    /// leaf threads insert the same digest out of order; `before` tells the
    /// displacing thread which node it displaced so it can relabel it.
    pub fn update_with(
        &self,
        digest: &Digest128,
        f: impl Fn(MapEntry) -> Option<MapEntry>,
    ) -> Option<(MapEntry, MapEntry)> {
        let busy = tag(self.generation, BUSY);
        let start = self.start_index(digest);
        for probe in 0..self.slots.len() {
            let slot = &self.slots[(start + probe) & self.mask];
            let mut t = slot.tag.load(Ordering::Acquire);
            if self.is_effective_empty(t) {
                return None;
            }
            while t == busy {
                std::hint::spin_loop();
                t = slot.tag.load(Ordering::Acquire);
            }
            // SAFETY: as in `insert`.
            let key = unsafe { *slot.key.get() };
            if key == *digest {
                let mut cur = slot.value.load(Ordering::Relaxed);
                loop {
                    match f(MapEntry::unpack(cur)) {
                        None => {
                            let e = MapEntry::unpack(cur);
                            return Some((e, e));
                        }
                        Some(new) => {
                            match slot.value.compare_exchange_weak(
                                cur,
                                new.pack(),
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            ) {
                                Ok(_) => return Some((MapEntry::unpack(cur), new)),
                                Err(observed) => cur = observed,
                            }
                        }
                    }
                }
            }
        }
        None
    }

    /// Reset the map to empty in O(1): bump the generation so every slot
    /// reads as EMPTY. Requires exclusive access, so no concurrent protocol
    /// is needed. Probe behavior afterwards is structurally identical to a
    /// freshly-allocated table — the determinism tests rely on that.
    pub fn reset(&mut self) {
        self.generation_bumps += 1;
        if self.generation == MAX_GENERATION {
            // Epoch counter exhausted (2^62 resets): fall back to one
            // physical clear and restart the epochs.
            for slot in self.slots.iter_mut() {
                *slot.tag.get_mut() = tag(0, EMPTY);
                *slot.value.get_mut() = 0;
                *slot.key.get_mut() = Digest128::ZERO;
            }
            self.generation = 0;
        } else {
            self.generation += 1;
        }
        *self.len.get_mut() = 0;
    }

    /// Reset the map to empty. Alias of [`reset`](Self::reset), kept for the
    /// original API; no longer a table-sized wipe.
    pub fn clear(&mut self) {
        self.reset();
    }

    /// Grow the backing table to hold at least `capacity` digests at load
    /// factor ≤ 0.5, rehashing live entries. No-op (and not counted) when the
    /// table already suffices; otherwise one `rehash_rebuilds` is recorded.
    pub fn ensure_capacity(&mut self, capacity: usize) {
        let want = (capacity.max(1) * 2).next_power_of_two();
        if want <= self.slots.len() {
            return;
        }
        self.rehash_rebuilds += 1;
        let gen_full = tag(self.generation, FULL);
        let live: Vec<(Digest128, MapEntry)> = self
            .slots
            .iter_mut()
            .filter_map(|s| {
                (*s.tag.get_mut() == gen_full)
                    .then(|| (*s.key.get_mut(), MapEntry::unpack(*s.value.get_mut())))
            })
            .collect();
        self.slots = (0..want)
            .map(|_| Slot::new())
            .collect::<Vec<_>>()
            .into_boxed_slice();
        self.mask = want - 1;
        self.generation = 0;
        *self.len.get_mut() = 0;
        for (key, entry) in live {
            self.insert(&key, entry);
        }
    }

    /// Record-boundary reset: O(1) epoch bump plus a capacity pre-size from
    /// the previous record's observed occupancy (`hint`). In steady state the
    /// hint never exceeds the table, so this stays allocation-free.
    pub fn reset_with_hint(&mut self, hint: usize) {
        self.reset();
        self.ensure_capacity(hint);
    }

    /// Approximate bytes of device memory this record occupies (for the
    /// space-accounting reports; the paper keeps this structure GPU-resident).
    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Slot>()
    }
}

/// Chunk-local insert handle from [`DistinctMap::batch`]; see there.
pub struct BatchedInserts<'m> {
    map: &'m DistinctMap,
    pending: usize,
}

impl BatchedInserts<'_> {
    /// Insert with the same semantics as [`DistinctMap::insert`], deferring
    /// the shared length-counter update to the next [`flush`](Self::flush).
    pub fn insert(&mut self, digest: &Digest128, entry: MapEntry) -> InsertResult {
        let r = self.map.insert_unaccounted(digest, entry);
        if r.inserted() {
            self.pending += 1;
        }
        r
    }

    /// Fold the locally tallied insert count into the map's `len`.
    pub fn flush(&mut self) {
        if self.pending > 0 {
            self.map.len.fetch_add(self.pending, Ordering::Relaxed);
            self.pending = 0;
        }
    }
}

impl Drop for BatchedInserts<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

impl std::fmt::Debug for DistinctMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistinctMap")
            .field("len", &self.len())
            .field("table_size", &self.table_size())
            .field("generation", &self.generation)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_hash::{Hasher128, Murmur3};
    use std::sync::Arc;

    fn digest(i: u64) -> Digest128 {
        Murmur3.hash(&i.to_le_bytes())
    }

    #[test]
    fn insert_then_get() {
        let map = DistinctMap::with_capacity(16);
        let d = digest(1);
        assert!(map.insert(&d, MapEntry::new(7, 3)).inserted());
        assert_eq!(map.get(&d), Some(MapEntry::new(7, 3)));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn duplicate_insert_returns_first_entry() {
        let map = DistinctMap::with_capacity(16);
        let d = digest(2);
        assert!(map.insert(&d, MapEntry::new(1, 0)).inserted());
        assert_eq!(
            map.insert(&d, MapEntry::new(99, 9)),
            InsertResult::Exists(MapEntry::new(1, 0))
        );
        assert_eq!(map.get(&d), Some(MapEntry::new(1, 0)));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn missing_key_returns_none() {
        let map = DistinctMap::with_capacity(16);
        map.insert(&digest(1), MapEntry::new(0, 0));
        assert_eq!(map.get(&digest(42)), None);
        assert!(!map.contains(&digest(42)));
    }

    #[test]
    fn zero_digest_is_a_legal_key() {
        let map = DistinctMap::with_capacity(16);
        assert!(map.insert(&Digest128::ZERO, MapEntry::new(5, 1)).inserted());
        assert_eq!(map.get(&Digest128::ZERO), Some(MapEntry::new(5, 1)));
    }

    #[test]
    fn fills_to_capacity_then_reports_exhaustion() {
        let map = DistinctMap::with_capacity(8); // table = 16 slots
        let table = map.table_size();
        let mut inserted = 0;
        let mut i = 0u64;
        loop {
            match map.insert(&digest(i), MapEntry::new(i as u32, 0)) {
                InsertResult::Inserted => inserted += 1,
                InsertResult::OutOfCapacity => break,
                InsertResult::Exists(_) => panic!("unexpected duplicate"),
            }
            i += 1;
        }
        assert_eq!(inserted, table);
        // Everything inserted before exhaustion is still retrievable.
        for j in 0..inserted as u64 {
            assert_eq!(map.get(&digest(j)), Some(MapEntry::new(j as u32, 0)));
        }
    }

    #[test]
    fn clear_resets() {
        let mut map = DistinctMap::with_capacity(8);
        for i in 0..8 {
            map.insert(&digest(i), MapEntry::new(i as u32, 0));
        }
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.get(&digest(0)), None);
        assert!(map.insert(&digest(0), MapEntry::new(1, 1)).inserted());
    }

    #[test]
    fn reset_is_a_generation_bump_not_a_wipe() {
        let mut map = DistinctMap::with_capacity(8);
        for i in 0..8 {
            map.insert(&digest(i), MapEntry::new(i as u32, 0));
        }
        assert_eq!(map.generation_bumps(), 0);
        map.reset();
        assert_eq!(map.generation_bumps(), 1);
        assert!(map.is_empty());
        for i in 0..8u64 {
            assert_eq!(map.get(&digest(i)), None, "stale entries must be gone");
        }
        // Fresh epoch accepts re-inserts of the same keys with new values.
        for i in 0..8 {
            assert!(map
                .insert(&digest(i), MapEntry::new(100 + i as u32, 7))
                .inserted());
        }
        assert_eq!(map.get(&digest(3)), Some(MapEntry::new(103, 7)));
        assert_eq!(map.rehash_rebuilds(), 0);
    }

    #[test]
    fn repeated_resets_behave_like_fresh_tables() {
        let mut map = DistinctMap::with_capacity(32);
        for round in 0..100u64 {
            for i in 0..20 {
                assert!(map
                    .insert(
                        &digest(round * 1000 + i),
                        MapEntry::new(i as u32, round as u32)
                    )
                    .inserted());
            }
            assert_eq!(map.len(), 20);
            // Previous round's keys are invisible.
            if round > 0 {
                assert_eq!(map.get(&digest((round - 1) * 1000)), None);
            }
            map.reset();
        }
        assert_eq!(map.generation_bumps(), 100);
    }

    #[test]
    fn ensure_capacity_noop_within_table_grows_beyond() {
        let mut map = DistinctMap::with_capacity(8); // table = 16
        for i in 0..10 {
            map.insert(&digest(i), MapEntry::new(i as u32, 2));
        }
        map.ensure_capacity(8); // fits: not a rebuild
        assert_eq!(map.rehash_rebuilds(), 0);
        assert_eq!(map.table_size(), 16);

        map.ensure_capacity(100); // must grow and rehash live entries
        assert_eq!(map.rehash_rebuilds(), 1);
        assert!(map.table_size() >= 200);
        assert_eq!(map.len(), 10);
        for i in 0..10u64 {
            assert_eq!(map.get(&digest(i)), Some(MapEntry::new(i as u32, 2)));
        }
    }

    #[test]
    fn reset_with_hint_presizes_without_steady_state_rebuilds() {
        let mut map = DistinctMap::with_capacity(64);
        for i in 0..50 {
            map.insert(&digest(i), MapEntry::new(i as u32, 0));
        }
        let occupancy = map.len();
        map.reset_with_hint(occupancy);
        assert!(map.is_empty());
        assert_eq!(map.rehash_rebuilds(), 0, "hint within capacity: no rebuild");
        assert_eq!(map.generation_bumps(), 1);
    }

    #[test]
    fn concurrent_distinct_inserts_all_land() {
        let map = Arc::new(DistinctMap::with_capacity(10_000));
        let threads = 8;
        let per_thread = 1000;
        std::thread::scope(|s| {
            for t in 0..threads {
                let map = Arc::clone(&map);
                s.spawn(move || {
                    for i in 0..per_thread {
                        let d = digest((t * per_thread + i) as u64);
                        assert!(map.insert(&d, MapEntry::new(i as u32, t as u32)).inserted());
                    }
                });
            }
        });
        assert_eq!(map.len(), threads * per_thread);
        for k in 0..(threads * per_thread) as u64 {
            assert!(map.contains(&digest(k)));
        }
    }

    #[test]
    fn concurrent_inserts_after_reset_see_no_ghosts() {
        let mut owned = DistinctMap::with_capacity(10_000);
        for i in 0..5000u64 {
            owned.insert(&digest(i), MapEntry::new(i as u32, 0));
        }
        owned.reset();
        let map = Arc::new(owned);
        std::thread::scope(|s| {
            for t in 0..8usize {
                let map = Arc::clone(&map);
                s.spawn(move || {
                    for i in 0..625 {
                        let k = (t * 625 + i) as u64;
                        // Same keys as the stale epoch: every insert must win.
                        assert!(map
                            .insert(&digest(k), MapEntry::new(k as u32, 1))
                            .inserted());
                    }
                });
            }
        });
        assert_eq!(map.len(), 5000);
    }

    #[test]
    fn concurrent_same_key_has_exactly_one_winner() {
        for _round in 0..50 {
            let map = Arc::new(DistinctMap::with_capacity(64));
            let d = digest(77);
            let winners = Arc::new(AtomicUsize::new(0));
            std::thread::scope(|s| {
                for t in 0..8u32 {
                    let map = Arc::clone(&map);
                    let winners = Arc::clone(&winners);
                    s.spawn(move || {
                        if map.insert(&d, MapEntry::new(t, t)).inserted() {
                            winners.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            assert_eq!(winners.load(Ordering::Relaxed), 1);
            assert_eq!(map.len(), 1);
            // The stored entry is the winner's own (node == ckpt here), i.e.
            // a consistent pair, never a torn mix of two threads' writes.
            let e = map.get(&d).unwrap();
            assert_eq!(e.node, e.ckpt);
        }
    }

    #[test]
    fn update_with_applies_cas() {
        let map = DistinctMap::with_capacity(16);
        let d = digest(5);
        map.insert(&d, MapEntry::new(10, 2));
        // Decline: entry unchanged, before == after.
        let seen = map.update_with(&d, |_| None);
        assert_eq!(seen, Some((MapEntry::new(10, 2), MapEntry::new(10, 2))));
        // Replace when the new node is smaller; `before` is the displaced entry.
        let new = map.update_with(&d, |e| (3 < e.node).then_some(MapEntry::new(3, 2)));
        assert_eq!(new, Some((MapEntry::new(10, 2), MapEntry::new(3, 2))));
        assert_eq!(map.get(&d), Some(MapEntry::new(3, 2)));
        // Absent key.
        assert_eq!(map.update_with(&digest(999), |_| None), None);
    }

    #[test]
    fn concurrent_update_with_converges_to_minimum() {
        let map = Arc::new(DistinctMap::with_capacity(64));
        let d = digest(9);
        map.insert(&d, MapEntry::new(u32::MAX, 1));
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let map = Arc::clone(&map);
                s.spawn(move || {
                    for node in (t * 100)..(t * 100 + 100) {
                        map.update_with(&d, |e| (node < e.node).then_some(MapEntry::new(node, 1)));
                    }
                });
            }
        });
        assert_eq!(map.get(&d), Some(MapEntry::new(0, 1)));
    }

    #[test]
    fn batched_inserts_flush_len_once() {
        let map = DistinctMap::with_capacity(64);
        {
            let mut batch = map.batch();
            for i in 0..10 {
                assert!(batch
                    .insert(&digest(i), MapEntry::new(i as u32, 0))
                    .inserted());
            }
            // Duplicates don't count toward the batch tally.
            assert!(!batch.insert(&digest(0), MapEntry::new(9, 9)).inserted());
            batch.flush();
            assert_eq!(map.len(), 10);
            // A drop after an explicit flush must not double-count.
        }
        assert_eq!(map.len(), 10);
        // Drop without explicit flush also settles the counter.
        {
            let mut batch = map.batch();
            assert!(batch.insert(&digest(100), MapEntry::new(1, 1)).inserted());
        }
        assert_eq!(map.len(), 11);
    }

    #[test]
    fn concurrent_batched_inserts_settle_to_exact_len() {
        let map = Arc::new(DistinctMap::with_capacity(10_000));
        std::thread::scope(|s| {
            for t in 0..8usize {
                let map = Arc::clone(&map);
                s.spawn(move || {
                    let mut batch = map.batch();
                    for i in 0..1000 {
                        batch.insert(&digest((t * 1000 + i) as u64), MapEntry::new(i as u32, 0));
                    }
                });
            }
        });
        assert_eq!(map.len(), 8000);
    }

    #[test]
    fn entry_packing_round_trip() {
        let e = MapEntry::new(u32::MAX - 1, 12345);
        assert_eq!(MapEntry::unpack(e.pack()), e);
    }
}
