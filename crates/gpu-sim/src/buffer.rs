//! Device-resident buffers.
//!
//! A [`DeviceBuffer`] marks data as living in simulated device memory.
//! Movement between it and host slices goes through explicit `copy_to_host` /
//! `copy_from_host` calls that accrue modeled PCIe time on the owning
//! [`Device`] — the same discipline a CUDA/Kokkos program has to follow, which
//! is what makes the paper's "consolidate, then one D2H transfer" design
//! measurable here.

use crate::device::Device;

/// A typed buffer in simulated device memory.
pub struct DeviceBuffer<T> {
    device: Device,
    data: Vec<T>,
}

impl<T: Clone + Send + Sync> DeviceBuffer<T> {
    pub(crate) fn new(device: Device, data: Vec<T>) -> Self {
        device.account_alloc(std::mem::size_of_val(data.as_slice()) as u64);
        DeviceBuffer { device, data }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> u64 {
        std::mem::size_of_val(self.data.as_slice()) as u64
    }

    /// The owning device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Kernel-side view of the data. Reading this from host code is "free" in
    /// the model — use [`copy_to_host`](Self::copy_to_host) when the paper's
    /// pipeline would actually move data over PCIe.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Kernel-side mutable view.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copy the whole buffer to a host slice, accruing one consolidated D2H
    /// transfer.
    pub fn copy_to_host(&self, host: &mut [T]) {
        assert_eq!(host.len(), self.data.len(), "host/device length mismatch");
        self.device.account_d2h(self.size_bytes());
        host.clone_from_slice(&self.data);
    }

    /// Copy a prefix of the buffer to a host vector, accruing one D2H
    /// transfer of exactly `len` elements (the consolidated diff is usually
    /// much shorter than its backing allocation).
    pub fn copy_prefix_to_host(&self, len: usize) -> Vec<T> {
        assert!(len <= self.data.len());
        self.device
            .account_d2h((len * std::mem::size_of::<T>()) as u64);
        self.data[..len].to_vec()
    }

    /// Overwrite the buffer from host data, accruing one H2D transfer.
    pub fn copy_from_host(&mut self, host: &[T]) {
        assert_eq!(host.len(), self.data.len(), "host/device length mismatch");
        self.device.account_h2d(self.size_bytes());
        self.data.clone_from_slice(host);
    }

    /// Consume the buffer, returning the underlying storage *without* a
    /// transfer (device-side hand-off between pipeline stages).
    pub fn into_inner(self) -> Vec<T> {
        self.data
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DeviceBuffer(len={})", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_data() {
        let dev = Device::a100();
        let host: Vec<u32> = (0..1000).collect();
        let mut buf = dev.alloc_from_host(&host);
        buf.as_mut_slice()[0] = 42;
        let mut back = vec![0u32; 1000];
        buf.copy_to_host(&mut back);
        assert_eq!(back[0], 42);
        assert_eq!(&back[1..], &host[1..]);
    }

    #[test]
    fn prefix_copy_accounts_only_prefix_bytes() {
        let dev = Device::a100();
        let buf = dev.alloc_from_host(&vec![7u8; 1000]);
        let before = dev.metrics().d2h_bytes();
        let prefix = buf.copy_prefix_to_host(100);
        assert_eq!(prefix.len(), 100);
        assert_eq!(dev.metrics().d2h_bytes() - before, 100);
    }

    #[test]
    fn alloc_accounts_bytes() {
        let dev = Device::a100();
        let _buf: DeviceBuffer<u64> = dev.alloc(128);
        assert_eq!(dev.metrics().alloc_bytes(), 128 * 8);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_copy_panics() {
        let dev = Device::a100();
        let buf = dev.alloc_from_host(&[1u8, 2, 3]);
        let mut host = vec![0u8; 2];
        buf.copy_to_host(&mut host);
    }
}
