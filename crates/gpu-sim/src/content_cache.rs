//! Device-resident chunk-content cache for hash-collision verification.
//!
//! §2.4: "we did not consider hash collisions. If hash collisions are a
//! concern, they can be mitigated by using a cache of chunks that can be
//! directly compared in parallel with the metadata compaction." This is
//! that cache: a fixed-capacity, insert-only open-addressing table mapping a
//! digest to the chunk bytes that first produced it, with the same
//! EMPTY→BUSY→FULL slot protocol as [`crate::DistinctMap`]. Probing is
//! bounded, there is no eviction, and a full probe window simply reports
//! "not cached" — verification is best-effort by design, trading bounded GPU
//! memory for collision coverage.

use ckpt_hash::Digest128;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

const EMPTY: u8 = 0;
const BUSY: u8 = 1;
const FULL: u8 = 2;

/// Bounded linear-probe window; beyond it an insert/lookup gives up.
const PROBE_WINDOW: usize = 16;

/// Outcome of [`ContentCache::verify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verification {
    /// Cached bytes equal the candidate: the reference is genuine.
    Match,
    /// Cached bytes differ: a hash collision — do not de-duplicate.
    Collision,
    /// Digest not cached (evicted by capacity / never inserted): unverifiable.
    Unknown,
}

struct Slot {
    state: AtomicU8,
    key: UnsafeCell<Digest128>,
    /// Length of the stored chunk (the final chunk of a buffer may be short).
    len: UnsafeCell<u32>,
}

// SAFETY: same protocol as DistinctMap — `key`/`len` (and this slot's span of
// the shared `data` buffer) are written only by the unique BUSY owner before
// the release store of FULL, and read only after an acquire load of FULL.
unsafe impl Sync for Slot {}

/// Fixed-capacity digest → chunk-bytes cache.
pub struct ContentCache {
    slots: Box<[Slot]>,
    /// Flat chunk storage, `chunk_size` bytes per slot. Byte-granular
    /// `UnsafeCell`s so concurrent writers of *different* slots never form
    /// references overlapping each other's spans.
    data: Box<[UnsafeCell<u8>]>,
    chunk_size: usize,
    mask: usize,
    len: AtomicUsize,
}

// SAFETY: `data` is partitioned into per-slot spans governed by the slot
// protocol above.
unsafe impl Sync for ContentCache {}
unsafe impl Send for ContentCache {}

impl ContentCache {
    /// A cache for `capacity` chunks of at most `chunk_size` bytes.
    pub fn new(capacity: usize, chunk_size: usize) -> Self {
        let table = capacity.max(1).next_power_of_two();
        ContentCache {
            slots: (0..table)
                .map(|_| Slot {
                    state: AtomicU8::new(EMPTY),
                    key: UnsafeCell::new(Digest128::ZERO),
                    len: UnsafeCell::new(0),
                })
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            data: (0..table * chunk_size)
                .map(|_| UnsafeCell::new(0u8))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            chunk_size,
            mask: table - 1,
            len: AtomicUsize::new(0),
        }
    }

    /// Number of cached chunks.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Device memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * (std::mem::size_of::<Slot>() + self.chunk_size)
    }

    #[inline]
    fn start_index(&self, digest: &Digest128) -> usize {
        (digest.h1 ^ digest.h2.rotate_left(32)) as usize & self.mask
    }

    /// Cache `bytes` under `digest` (first writer wins). Returns `false` when
    /// the probe window was exhausted (not cached).
    pub fn insert(&self, digest: &Digest128, bytes: &[u8]) -> bool {
        assert!(
            bytes.len() <= self.chunk_size,
            "chunk exceeds cache slot size"
        );
        let start = self.start_index(digest);
        for probe in 0..PROBE_WINDOW.min(self.slots.len()) {
            let idx = (start + probe) & self.mask;
            let slot = &self.slots[idx];
            let mut state = slot.state.load(Ordering::Acquire);
            if state == EMPTY {
                match slot
                    .state
                    .compare_exchange(EMPTY, BUSY, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => {
                        // SAFETY: unique BUSY owner of slot `idx` and its
                        // data span; published by the release store below.
                        unsafe {
                            *slot.key.get() = *digest;
                            *slot.len.get() = bytes.len() as u32;
                            let base = idx * self.chunk_size;
                            let dst = self.data.as_ptr().add(base) as *mut u8;
                            std::ptr::copy_nonoverlapping(bytes.as_ptr(), dst, bytes.len());
                        }
                        slot.state.store(FULL, Ordering::Release);
                        self.len.fetch_add(1, Ordering::Relaxed);
                        return true;
                    }
                    Err(observed) => state = observed,
                }
            }
            while state == BUSY {
                std::hint::spin_loop();
                state = slot.state.load(Ordering::Acquire);
            }
            // SAFETY: FULL observed with acquire ordering.
            if unsafe { *slot.key.get() } == *digest {
                return true; // already cached (first writer won)
            }
        }
        false
    }

    /// Compare `bytes` against the cached content for `digest`.
    pub fn verify(&self, digest: &Digest128, bytes: &[u8]) -> Verification {
        let start = self.start_index(digest);
        for probe in 0..PROBE_WINDOW.min(self.slots.len()) {
            let idx = (start + probe) & self.mask;
            let slot = &self.slots[idx];
            let mut state = slot.state.load(Ordering::Acquire);
            if state == EMPTY {
                return Verification::Unknown;
            }
            while state == BUSY {
                std::hint::spin_loop();
                state = slot.state.load(Ordering::Acquire);
            }
            // SAFETY: FULL observed with acquire ordering.
            let (key, len) = unsafe { (*slot.key.get(), *slot.len.get() as usize) };
            if key == *digest {
                let base = idx * self.chunk_size;
                // SAFETY: this span was fully written before FULL and is
                // never written again (insert-only).
                let cached: &[u8] = unsafe {
                    std::slice::from_raw_parts(self.data.as_ptr().add(base) as *const u8, len)
                };
                return if cached == bytes {
                    Verification::Match
                } else {
                    Verification::Collision
                };
            }
        }
        Verification::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_hash::{Hasher128, Murmur3};
    use std::sync::Arc;

    fn digest(i: u64) -> Digest128 {
        Murmur3.hash(&i.to_le_bytes())
    }

    #[test]
    fn insert_then_verify() {
        let cache = ContentCache::new(64, 32);
        let d = digest(1);
        assert!(cache.insert(&d, b"hello chunk"));
        assert_eq!(cache.verify(&d, b"hello chunk"), Verification::Match);
        assert_eq!(cache.verify(&d, b"other bytes"), Verification::Collision);
        assert_eq!(
            cache.verify(&digest(2), b"hello chunk"),
            Verification::Unknown
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn first_writer_wins() {
        let cache = ContentCache::new(64, 32);
        let d = digest(3);
        assert!(cache.insert(&d, b"first"));
        assert!(cache.insert(&d, b"second")); // reports cached, keeps "first"
        assert_eq!(cache.verify(&d, b"first"), Verification::Match);
        assert_eq!(cache.verify(&d, b"second"), Verification::Collision);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn variable_chunk_lengths() {
        let cache = ContentCache::new(16, 64);
        let d = digest(4);
        cache.insert(&d, b"short");
        assert_eq!(cache.verify(&d, b"short"), Verification::Match);
        assert_eq!(
            cache.verify(&d, b"short but longer"),
            Verification::Collision
        );
    }

    #[test]
    fn bounded_probe_window_degrades_to_unknown() {
        // A 1-slot-window... fill a tiny cache completely; further inserts
        // fail and lookups of uncached digests report Unknown.
        let cache = ContentCache::new(2, 16); // 2 slots
        let mut inserted = 0;
        for i in 0..10u64 {
            if cache.insert(&digest(100 + i), &[i as u8; 8]) {
                inserted += 1;
            }
        }
        assert!(inserted >= 2);
        assert_eq!(cache.len(), 2);
        // Everything else is unverifiable, never wrong.
        for i in 0..10u64 {
            let v = cache.verify(&digest(100 + i), &[i as u8; 8]);
            assert_ne!(v, Verification::Collision);
        }
    }

    #[test]
    fn concurrent_inserts_are_consistent() {
        let cache = Arc::new(ContentCache::new(4096, 16));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..500u64 {
                        let d = digest(i); // all threads insert the same keys
                        cache.insert(&d, &i.to_le_bytes());
                        let _ = t;
                    }
                });
            }
        });
        for i in 0..500u64 {
            assert_eq!(
                cache.verify(&digest(i), &i.to_le_bytes()),
                Verification::Match,
                "key {i}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "exceeds cache slot size")]
    fn oversized_chunk_rejected() {
        let cache = ContentCache::new(4, 8);
        cache.insert(&digest(0), &[0u8; 9]);
    }
}
