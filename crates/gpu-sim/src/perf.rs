//! Analytical device performance model.
//!
//! The model turns the *work* a kernel or transfer performs (bytes moved,
//! flop-equivalents executed, launches issued) into *modeled device time*.
//! It is deliberately simple — a roofline-style bandwidth/latency model — and
//! is calibrated to the NVIDIA A100 that the paper's ThetaGPU/Polaris testbeds
//! use. The goal is not cycle accuracy but preserving the performance *shape*
//! that drives the paper's figures:
//!
//! * hashing and tree passes are HBM-bandwidth bound,
//! * device-to-host flushes are PCIe-bandwidth bound and degrade when several
//!   GPUs on a node contend for the host link (Fig. 6),
//! * every kernel launch pays a fixed latency, which is why the paper fuses
//!   kernels (§2.1) — the model lets us quantify the fusion benefit.

/// Static description of a simulated device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceConfig {
    /// Human-readable name used in reports.
    pub name: &'static str,
    /// Device (HBM) memory bandwidth in bytes/second.
    pub hbm_bytes_per_sec: f64,
    /// Host link (PCIe) bandwidth in bytes/second, per device, uncontended.
    pub pcie_bytes_per_sec: f64,
    /// Fixed latency per kernel launch, in seconds.
    pub kernel_launch_sec: f64,
    /// Fixed latency to set up one DMA transfer, in seconds.
    pub transfer_setup_sec: f64,
    /// Aggregate integer/hash throughput in "flop-equivalents"/second; one
    /// flop-equivalent is one simple ALU op in a kernel body.
    pub flops_per_sec: f64,
    /// Device memory capacity in bytes (alloc accounting only).
    pub memory_bytes: u64,
}

impl DeviceConfig {
    /// NVIDIA A100-SXM-40GB-like configuration (ThetaGPU / Polaris nodes).
    ///
    /// 1555 GB/s HBM2e, ~25 GB/s effective PCIe gen4 per direction, ~5 µs
    /// kernel launch latency, ~10 µs DMA setup.
    pub fn a100() -> Self {
        DeviceConfig {
            name: "sim-a100",
            hbm_bytes_per_sec: 1.555e12,
            pcie_bytes_per_sec: 25.0e9,
            kernel_launch_sec: 5.0e-6,
            transfer_setup_sec: 10.0e-6,
            flops_per_sec: 9.7e12,
            memory_bytes: 40 * (1 << 30),
        }
    }

    /// A deliberately slow "laptop iGPU"-class device, useful in tests to make
    /// modeled-time effects visible with tiny inputs.
    pub fn tiny() -> Self {
        DeviceConfig {
            name: "sim-tiny",
            hbm_bytes_per_sec: 50.0e9,
            pcie_bytes_per_sec: 5.0e9,
            kernel_launch_sec: 20.0e-6,
            transfer_setup_sec: 20.0e-6,
            flops_per_sec: 0.5e12,
            memory_bytes: 2 << 30,
        }
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::a100()
    }
}

/// Turns work descriptions into modeled times for one [`DeviceConfig`].
#[derive(Debug, Clone, Copy)]
pub struct PerfModel {
    config: DeviceConfig,
}

impl PerfModel {
    pub fn new(config: DeviceConfig) -> Self {
        PerfModel { config }
    }

    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Modeled execution time of one kernel: max of the bandwidth roof and
    /// the compute roof (roofline), *excluding* launch latency (accounted
    /// separately so kernel fusion can elide it).
    pub fn kernel_sec(&self, bytes_read: u64, bytes_written: u64, flops: u64) -> f64 {
        let mem = (bytes_read + bytes_written) as f64 / self.config.hbm_bytes_per_sec;
        let alu = flops as f64 / self.config.flops_per_sec;
        mem.max(alu)
    }

    /// Fixed cost of issuing one kernel launch.
    pub fn launch_sec(&self) -> f64 {
        self.config.kernel_launch_sec
    }

    /// Modeled device↔host transfer time for `bytes`, when `contenders`
    /// devices on the same node share the host link. The paper's Fig. 6 setup
    /// has up to 8 GPUs per node sharing PCIe switches; we model fair
    /// bandwidth sharing across the co-located devices.
    pub fn transfer_sec(&self, bytes: u64, contenders: u32) -> f64 {
        let share = self.config.pcie_bytes_per_sec / contenders.max(1) as f64;
        self.config.transfer_setup_sec + bytes as f64 / share
    }

    /// Modeled cost of a *scattered* transfer: `n_segments` independent DMA
    /// setups (the naive strategy the paper's serialization avoids, §2.1).
    pub fn scattered_transfer_sec(&self, bytes: u64, n_segments: u64, contenders: u32) -> f64 {
        let share = self.config.pcie_bytes_per_sec / contenders.max(1) as f64;
        n_segments as f64 * self.config.transfer_setup_sec + bytes as f64 / share
    }

    /// Modeled duration of a two-stage pipeline (a producer stage overlapped
    /// with a DMA stage over `n_slices` slices): the §5 "streaming methods
    /// that overlap de-duplication with transfers" extension. Classic
    /// two-stage pipeline algebra — the slower stage dominates, the faster
    /// one only contributes its first/last slice, and every slice pays one
    /// DMA setup:
    /// `max(K, T + n·setup) + min(K, T)/n`.
    ///
    /// Note the structural consequence at A100 ratios: HBM is ~60× PCIe, so
    /// a *serialization-stage* overlap can only hide the (tiny) gather
    /// kernel, while overlapping at *checkpoint* granularity (transfer of
    /// diff k against the full de-duplication compute of k+1) hides the
    /// whole smaller side.
    pub fn streamed_pipeline_sec(&self, kernel_sec: f64, transfer_sec: f64, n_slices: u32) -> f64 {
        let n = n_slices.max(1) as f64;
        let t_with_setups = transfer_sec + n * self.config.transfer_setup_sec;
        kernel_sec.max(t_with_setups) + kernel_sec.min(transfer_sec) / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_roofline_is_bandwidth_bound_for_hashing() {
        // Hashing reads each byte once and does ~1 flop-equivalent per byte;
        // on an A100 that is bandwidth-bound (1555 GB/s < 9.7 Tflop/s).
        let m = PerfModel::new(DeviceConfig::a100());
        let n = 1u64 << 30;
        let t = m.kernel_sec(n, 0, n);
        assert!((t - n as f64 / 1.555e12).abs() < 1e-9);
    }

    #[test]
    fn compute_bound_kernel_uses_flop_roof() {
        let m = PerfModel::new(DeviceConfig::a100());
        // 1 byte read, lots of flops.
        let t = m.kernel_sec(1, 0, 1 << 40);
        assert!((t - (1u64 << 40) as f64 / 9.7e12).abs() < 1e-6);
    }

    #[test]
    fn transfer_scales_with_contention() {
        let m = PerfModel::new(DeviceConfig::a100());
        let t1 = m.transfer_sec(1 << 30, 1);
        let t8 = m.transfer_sec(1 << 30, 8);
        // 8-way contention ≈ 8x slower modulo the fixed setup cost.
        assert!(t8 > 7.0 * t1 * 0.9 && t8 < 8.5 * t1);
    }

    #[test]
    fn scattered_transfer_pays_per_segment_setup() {
        let m = PerfModel::new(DeviceConfig::a100());
        let consolidated = m.transfer_sec(1 << 20, 1);
        let scattered = m.scattered_transfer_sec(1 << 20, 10_000, 1);
        // 10k segment setups at 10 µs each dominate a 1 MiB payload.
        assert!(scattered > 50.0 * consolidated);
    }

    #[test]
    fn zero_contenders_treated_as_one() {
        let m = PerfModel::new(DeviceConfig::a100());
        assert_eq!(m.transfer_sec(1 << 20, 0), m.transfer_sec(1 << 20, 1));
    }
}
