//! Binomial checkpointing for adjoint computations (Griewank's *revolve*,
//! the "minimal repetition dynamic checkpointing" family the paper cites as
//! \[35\]).
//!
//! An adjoint (backward) sweep needs the forward states in *reverse* order.
//! With only `c` checkpoint slots for `l` forward steps, states must be
//! recomputed from stored ones; the binomial schedule minimizes the total
//! number of re-executed forward steps. This module provides:
//!
//! * [`optimal_cost`] — the textbook dynamic program for the minimal forward
//!   re-execution count (used as the oracle in tests);
//! * [`schedule`] — a recursive treeverse planner emitting an explicit
//!   action list whose cost the tests check against the DP optimum;
//! * [`Action`] — the storage/compute primitive steps a driver executes.

/// One step of a reversal schedule. Steps are numbered `0..l`; *state `i`*
/// is the solver state before step `i` (state `l` is the final state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Store state `state` into a checkpoint slot.
    Store { state: usize },
    /// Restore state `state` from its slot (it stays stored).
    Restore { state: usize },
    /// Release the slot holding `state`.
    Discard { state: usize },
    /// Run forward steps `from..to`, producing state `to` from state `from`.
    Forward { from: usize, to: usize },
    /// Run the adjoint of step `step` (requires state `step` to be current).
    Backward { step: usize },
}

/// Minimal total forward steps re-executed to reverse `l` steps with `c`
/// checkpoint slots (classic DP; the initial state occupies no slot and the
/// current solver state is free). `None` if it cannot be done (c == 0 and
/// l > 1).
pub fn optimal_cost(l: usize, c: usize) -> Option<u64> {
    if l == 0 {
        return Some(0);
    }
    // cost[m][k]: forward steps (beyond the mandatory single initial sweep
    // is *included* here: we count every Forward step executed).
    // Recurrence: reversing m steps with k slots: choose the split s in
    // 1..m: run forward s steps (cost s), store nothing for them, store
    // state s, reverse the right part with k-1 slots, then reverse the left
    // s steps with k slots starting again from the (restorable) base.
    // cost(1, k) = 1 for any k >= 0 (advance once, reverse it).
    // cost(m, 0) = infeasible for m > 1.
    let mut cost = vec![vec![u64::MAX; c + 1]; l + 1];
    cost[0].fill(0);
    if l >= 1 {
        cost[1].fill(1);
    }
    for m in 2..=l {
        for k in 1..=c {
            let mut best = u64::MAX;
            for s in 1..m {
                let right = cost[m - s][k - 1];
                let left = cost[s][k];
                if right != u64::MAX && left != u64::MAX {
                    best = best.min(s as u64 + right + left);
                }
            }
            cost[m][k] = best;
        }
    }
    (cost[l][c] != u64::MAX).then_some(cost[l][c])
}

/// Build a reversal schedule for `l` steps with `c` checkpoint slots.
/// Returns `None` when infeasible (`c == 0 && l > 1`).
pub fn schedule(l: usize, c: usize) -> Option<Vec<Action>> {
    if l == 0 {
        return Some(Vec::new());
    }
    if c == 0 && l > 1 {
        return None;
    }
    let mut actions = Vec::new();
    // The initial state 0 is implicitly available (the caller holds it); the
    // planner stores it first so it can return after excursions.
    actions.push(Action::Store { state: 0 });
    treeverse(0, l, c, &mut actions);
    actions.push(Action::Discard { state: 0 });
    Some(actions)
}

/// Optimal split point via the DP (memo-free per call; schedules are built
/// once, so clarity beats caching here).
fn best_split(m: usize, k: usize) -> usize {
    let mut best_s = 1;
    let mut best = u64::MAX;
    for s in 1..m {
        let right = optimal_cost(m - s, k - 1);
        let left = optimal_cost(s, k);
        if let (Some(r), Some(lft)) = (right, left) {
            let total = s as u64 + r + lft;
            if total < best {
                best = total;
                best_s = s;
            }
        }
    }
    best_s
}

/// Reverse steps `base..end` assuming state `base` is stored (or is state 0)
/// and `slots` further slots are free.
fn treeverse(base: usize, end: usize, slots: usize, actions: &mut Vec<Action>) {
    let m = end - base;
    if m == 1 {
        // State `base` is current (callers arrange this): advance once and
        // run the adjoint step.
        actions.push(Action::Forward {
            from: base,
            to: end,
        });
        actions.push(Action::Backward { step: base });
        return;
    }
    let s = best_split(m, slots);
    let mid = base + s;
    // Advance to the split, store it, reverse the right part with one fewer
    // slot, then come back and reverse the left part.
    actions.push(Action::Forward {
        from: base,
        to: mid,
    });
    actions.push(Action::Store { state: mid });
    treeverse(mid, end, slots - 1, actions);
    actions.push(Action::Discard { state: mid });
    actions.push(Action::Restore { state: base });
    treeverse(base, mid, slots, actions);
}

/// Statistics of a schedule (for tests and the experiment report).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Total forward steps executed (the recompute cost).
    pub forward_steps: u64,
    /// Adjoint steps executed (must equal `l`).
    pub backward_steps: u64,
    /// Peak number of simultaneously stored states.
    pub peak_slots: usize,
}

/// Validate a schedule by symbolic execution and collect its statistics.
///
/// Checks: every `Backward{step}` runs with the current state equal to
/// `step` and steps run in strict reverse order `l-1, l-2, …, 0`; restores
/// only hit stored states; slot usage never exceeds `c + 1` (the planner's
/// base-state slot plus `c` excursion slots).
pub fn validate(l: usize, c: usize, actions: &[Action]) -> Result<ScheduleStats, String> {
    let mut stored = std::collections::HashSet::new();
    let mut current: Option<usize> = Some(0);
    let mut next_backward = l.checked_sub(1);
    let mut forward_steps = 0u64;
    let mut backward_steps = 0u64;
    let mut peak = 0usize;

    for (i, a) in actions.iter().enumerate() {
        match *a {
            Action::Store { state } => {
                if current != Some(state) {
                    return Err(format!("action {i}: store of non-current state {state}"));
                }
                stored.insert(state);
                peak = peak.max(stored.len());
            }
            Action::Restore { state } => {
                if !stored.contains(&state) {
                    return Err(format!("action {i}: restore of unstored state {state}"));
                }
                current = Some(state);
            }
            Action::Discard { state } => {
                if !stored.remove(&state) {
                    return Err(format!("action {i}: discard of unstored state {state}"));
                }
            }
            Action::Forward { from, to } => {
                if current != Some(from) {
                    return Err(format!("action {i}: forward from non-current state {from}"));
                }
                if to <= from || to > l {
                    return Err(format!("action {i}: bad forward range {from}..{to}"));
                }
                forward_steps += (to - from) as u64;
                current = Some(to);
            }
            Action::Backward { step } => {
                if next_backward != Some(step) {
                    return Err(format!(
                        "action {i}: backward {step} out of order (expected {next_backward:?})"
                    ));
                }
                if current != Some(step + 1) {
                    return Err(format!(
                        "action {i}: backward {step} without state {}",
                        step + 1
                    ));
                }
                backward_steps += 1;
                next_backward = step.checked_sub(1);
                current = Some(step);
            }
        }
    }
    if backward_steps != l as u64 {
        return Err(format!("only {backward_steps} of {l} adjoint steps ran"));
    }
    if !stored.is_empty() {
        return Err(format!("{} states leaked in slots", stored.len()));
    }
    if peak > c + 1 {
        return Err(format!("peak slot usage {peak} exceeds {} slots", c + 1));
    }
    Ok(ScheduleStats {
        forward_steps,
        backward_steps,
        peak_slots: peak,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dp_known_values() {
        // Counting convention: total forward steps including the initial
        // sweep. Griewank's closed form t(l,s) = r·l − β(s+1, r−1) counts
        // *re-runs beyond* that sweep, so ours equals l + t. With plenty of
        // slots r = 1 and t = l − 1: total = 2l − 1.
        for l in 1..12u64 {
            assert_eq!(
                optimal_cost(l as usize, l as usize),
                Some(2 * l - 1),
                "l={l}"
            );
            // More slots than steps cannot help further.
            assert_eq!(
                optimal_cost(l as usize, 2 * l as usize),
                Some(2 * l - 1),
                "l={l}"
            );
        }
        // One slot: quadratic behaviour, cost = l(l+1)/2.
        for l in 1..10u64 {
            assert_eq!(optimal_cost(l as usize, 1), Some(l * (l + 1) / 2), "l={l}");
        }
        // Infeasible.
        assert_eq!(optimal_cost(2, 0), None);
        assert_eq!(optimal_cost(0, 0), Some(0));
        assert_eq!(optimal_cost(1, 0), Some(1));
    }

    #[test]
    fn schedules_validate_and_match_dp_cost() {
        for l in 1..=24usize {
            for c in 1..=5usize {
                let actions = schedule(l, c).unwrap();
                let stats = validate(l, c, &actions).unwrap_or_else(|e| panic!("l={l} c={c}: {e}"));
                // The planner's Forward cost must hit the DP optimum: its
                // splits come from the same DP.
                assert_eq!(
                    stats.forward_steps,
                    optimal_cost(l, c).unwrap(),
                    "l={l} c={c}"
                );
            }
        }
    }

    #[test]
    fn infeasible_schedule_is_none() {
        assert!(schedule(5, 0).is_none());
        assert_eq!(schedule(0, 3), Some(vec![]));
    }

    #[test]
    fn plenty_of_slots_degenerates_to_store_all() {
        let l = 10u64;
        let actions = schedule(l as usize, l as usize).unwrap();
        let stats = validate(l as usize, l as usize, &actions).unwrap();
        assert_eq!(stats.forward_steps, 2 * l - 1);
        // All l states pass through a slot exactly once.
        let stores = actions
            .iter()
            .filter(|a| matches!(a, Action::Store { .. }))
            .count();
        assert_eq!(stores as u64, l);
    }

    #[test]
    fn recompute_grows_as_slots_shrink() {
        let l = 64;
        let mut last = 0;
        for c in (1..=8).rev() {
            let cost = optimal_cost(l, c).unwrap();
            assert!(cost >= last, "c={c}");
            last = cost;
        }
        // And meaningfully so: 1 slot is far worse than 8.
        assert!(optimal_cost(l, 1).unwrap() > 10 * optimal_cost(l, 8).unwrap());
    }

    #[test]
    fn validator_rejects_corrupt_schedules() {
        let mut actions = schedule(6, 2).unwrap();
        // Tamper: drop one adjoint step.
        let pos = actions
            .iter()
            .position(|a| matches!(a, Action::Backward { .. }))
            .unwrap();
        actions.remove(pos);
        assert!(validate(6, 2, &actions).is_err());

        // Restore of a never-stored state.
        let bad = vec![Action::Restore { state: 3 }];
        assert!(validate(1, 1, &bad).is_err());
    }
}
