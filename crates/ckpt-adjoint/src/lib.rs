//! Adjoint computations over checkpoint records (the first application class
//! the paper's §5 targets next).
//!
//! Adjoint (reverse-mode) solvers need their forward states in reverse
//! order. The classic answer is Griewank-style binomial checkpointing
//! ([`revolve`]): keep `c` snapshots, re-run forward steps in a provably
//! minimal pattern. The paper's answer is cheaper storage: de-duplicate
//! *every* forward state into an incremental record and read them back
//! directly ([`driver::run_dedup_store`]) with zero recomputation.
//!
//! * [`solver`] — a diffusion PDE with a discrete adjoint whose gradient is
//!   verified against finite differences;
//! * [`revolve`] — the binomial schedule planner, validated against the
//!   dynamic-programming optimum;
//! * [`driver`] — both execution strategies, producing bit-identical
//!   gradients with very different storage/compute profiles.

pub mod driver;
pub mod revolve;
pub mod solver;

pub use driver::{run_dedup_store, run_revolve, AdjointReport};
pub use revolve::{optimal_cost, schedule, validate, Action, ScheduleStats};
pub use solver::{HeatModel, HeatParams, State};
