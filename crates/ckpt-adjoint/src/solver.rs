//! A 1-D diffusion–reaction solver with its discrete adjoint.
//!
//! Forward model (explicit Euler, fixed-point arithmetic-free `f64`):
//!
//! ```text
//! u_{t+1}[i] = u_t[i] + ν (u_t[i-1] - 2 u_t[i] + u_t[i+1]) + dt · s[i]
//! ```
//!
//! with homogeneous Dirichlet boundaries. The objective is
//! `J = ½ Σ_i u_T[i]²`; the discrete adjoint runs the transposed linear
//! operator backwards, producing the exact gradient `dJ/du_0` — which the
//! tests verify against finite differences. Each forward state is exactly
//! the kind of evolving array the checkpointing engine captures; the
//! backward sweep is the consumer that needs them in reverse order.

/// Solver parameters.
#[derive(Debug, Clone, Copy)]
pub struct HeatParams {
    /// Grid points.
    pub n: usize,
    /// Diffusion number ν = κ·dt/dx² (stability requires ν ≤ 0.5).
    pub nu: f64,
}

impl HeatParams {
    pub fn new(n: usize) -> Self {
        HeatParams { n, nu: 0.25 }
    }
}

/// One forward-in-time state.
pub type State = Vec<f64>;

/// The forward/adjoint model.
#[derive(Debug, Clone)]
pub struct HeatModel {
    pub params: HeatParams,
    /// Source term (constant in time).
    pub source: Vec<f64>,
}

impl HeatModel {
    pub fn new(params: HeatParams) -> Self {
        // No source: activity stays inside the pulse's (growing) support,
        // so most of the state is *exactly* zero and unchanged between
        // steps — the sparse-update structure that makes incremental
        // checkpointing of such solvers worthwhile.
        HeatModel {
            params,
            source: vec![0.0; params.n],
        }
    }

    /// A deterministic initial condition: a compact pulse in the middle of
    /// the domain (support width n/16), zero elsewhere.
    pub fn initial_state(&self) -> State {
        let n = self.params.n;
        let half_width = (n / 32).max(2);
        let center = n / 2;
        (0..n)
            .map(|i| {
                let d = i.abs_diff(center);
                if d <= half_width {
                    let x = d as f64 / half_width as f64;
                    (1.0 - x * x).max(0.0)
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// One forward step: `u ← A u + dt s`.
    pub fn step(&self, u: &State) -> State {
        let n = self.params.n;
        let nu = self.params.nu;
        let mut out = vec![0.0; n];
        for i in 0..n {
            let left = if i > 0 { u[i - 1] } else { 0.0 };
            let right = if i + 1 < n { u[i + 1] } else { 0.0 };
            out[i] = u[i] + nu * (left - 2.0 * u[i] + right) + self.source[i];
        }
        out
    }

    /// Advance `steps` forward steps from `u`.
    pub fn advance(&self, u: &State, steps: usize) -> State {
        let mut cur = u.clone();
        for _ in 0..steps {
            cur = self.step(&cur);
        }
        cur
    }

    /// Objective `J(u_T) = ½ Σ u²`.
    pub fn objective(&self, u_final: &State) -> f64 {
        0.5 * u_final.iter().map(|v| v * v).sum::<f64>()
    }

    /// Seed adjoint: `λ_T = ∂J/∂u_T = u_T`.
    pub fn adjoint_seed(&self, u_final: &State) -> State {
        u_final.clone()
    }

    /// One adjoint step: `λ ← Aᵀ λ`. The diffusion stencil is symmetric, so
    /// `Aᵀ = A` minus the source term (constants drop out of the adjoint).
    ///
    /// `_u_before` is the forward state the step linearized around — unused
    /// by this linear model but part of the interface (a nonlinear model
    /// needs it, and the checkpointing machinery exists to supply it).
    pub fn adjoint_step(&self, lambda: &State, _u_before: &State) -> State {
        let n = self.params.n;
        let nu = self.params.nu;
        let mut out = vec![0.0; n];
        for i in 0..n {
            let left = if i > 0 { lambda[i - 1] } else { 0.0 };
            let right = if i + 1 < n { lambda[i + 1] } else { 0.0 };
            out[i] = lambda[i] + nu * (left - 2.0 * lambda[i] + right);
        }
        out
    }

    /// Serialize a state to bytes (the checkpoint payload).
    pub fn state_bytes(u: &State) -> Vec<u8> {
        u.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    /// Deserialize a state.
    pub fn state_from_bytes(bytes: &[u8]) -> Option<State> {
        if !bytes.len().is_multiple_of(8) {
            return None;
        }
        Some(
            bytes
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_is_stable_and_deterministic() {
        let m = HeatModel::new(HeatParams::new(64));
        let u0 = m.initial_state();
        let a = m.advance(&u0, 50);
        let b = m.advance(&u0, 50);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn adjoint_gradient_matches_finite_differences() {
        // dJ/du0 via the adjoint must match (J(u0 + εe_i) - J(u0 - εe_i))/2ε.
        let m = HeatModel::new(HeatParams::new(24));
        let steps = 12;
        let u0 = m.initial_state();

        // Adjoint gradient: forward to the end, then λ back through Aᵀ.
        let u_final = m.advance(&u0, steps);
        let mut lambda = m.adjoint_seed(&u_final);
        for k in (0..steps).rev() {
            let u_before = m.advance(&u0, k);
            lambda = m.adjoint_step(&lambda, &u_before);
        }

        let eps = 1e-6;
        for i in [0usize, 5, 11, 23] {
            let mut up = u0.clone();
            up[i] += eps;
            let mut dn = u0.clone();
            dn[i] -= eps;
            let fd = (m.objective(&m.advance(&up, steps)) - m.objective(&m.advance(&dn, steps)))
                / (2.0 * eps);
            let ad = lambda[i];
            assert!(
                (fd - ad).abs() <= 1e-5 * (1.0 + fd.abs()),
                "grad[{i}]: adjoint {ad} vs fd {fd}"
            );
        }
    }

    #[test]
    fn state_bytes_round_trip() {
        let m = HeatModel::new(HeatParams::new(16));
        let u = m.advance(&m.initial_state(), 7);
        let bytes = HeatModel::state_bytes(&u);
        assert_eq!(HeatModel::state_from_bytes(&bytes).unwrap(), u);
        assert!(HeatModel::state_from_bytes(&bytes[..9]).is_none());
    }
}
