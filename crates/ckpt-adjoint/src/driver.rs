//! Adjoint drivers: revolve-with-slots vs store-everything-deduplicated.
//!
//! Two ways to give the backward sweep its forward states:
//!
//! * [`run_revolve`] — the classic: `c` in-memory snapshot slots and
//!   binomial recomputation (forward steps re-executed many times);
//! * [`run_dedup_store`] — the paper's alternative: checkpoint *every* step
//!   into a de-duplicated record and read states back in reverse order with
//!   zero recomputation. Consecutive solver states differ incrementally, so
//!   the record stays near one state in size instead of `l` states.
//!
//! Both produce bit-identical gradients (asserted by tests); they differ in
//! the resources spent, which [`AdjointReport`] captures and the `adjoint`
//! experiment compares.

use crate::revolve::{schedule, validate, Action};
use crate::solver::{HeatModel, State};
use ckpt_dedup::prelude::*;
use gpu_sim::Device;
use std::collections::HashMap;

/// Resource accounting for one adjoint run.
#[derive(Debug, Clone)]
pub struct AdjointReport {
    /// Gradient with respect to the initial state.
    pub gradient: State,
    /// Forward steps executed in total.
    pub forward_steps: u64,
    /// Adjoint steps executed (always `l`).
    pub backward_steps: u64,
    /// Peak bytes held by the state store.
    pub peak_store_bytes: u64,
}

/// Reverse `l` steps with the binomial schedule and `c` snapshot slots.
pub fn run_revolve(model: &HeatModel, u0: &State, l: usize, c: usize) -> Option<AdjointReport> {
    let actions = schedule(l, c)?;
    debug_assert!(validate(l, c, &actions).is_ok());

    let state_bytes = (model.params.n * 8) as u64;
    let mut slots: HashMap<usize, State> = HashMap::new();
    let mut current: State = u0.clone();
    let mut current_idx = 0usize;
    let mut lambda: Option<State> = None;
    let mut forward_steps = 0u64;
    let mut backward_steps = 0u64;
    let mut peak_slots = 0usize;
    // The state before the most recent unit-length Forward: every Backward
    // in a treeverse schedule is fed by exactly such a Forward, and this is
    // the state the adjoint step linearizes around.
    let mut before_last_step: Option<State> = None;

    for action in &actions {
        match *action {
            Action::Store { state } => {
                debug_assert_eq!(state, current_idx);
                slots.insert(state, current.clone());
                peak_slots = peak_slots.max(slots.len());
            }
            Action::Restore { state } => {
                current = slots.get(&state).expect("validated schedule").clone();
                current_idx = state;
            }
            Action::Discard { state } => {
                slots.remove(&state);
            }
            Action::Forward { from, to } => {
                debug_assert_eq!(from, current_idx);
                before_last_step = (to - from == 1).then(|| current.clone());
                current = model.advance(&current, to - from);
                current_idx = to;
                forward_steps += (to - from) as u64;
            }
            Action::Backward { step } => {
                debug_assert_eq!(step + 1, current_idx);
                let lam = match lambda.take() {
                    Some(l) => l,
                    None => model.adjoint_seed(&current),
                };
                // The adjoint of step `step` linearizes around state `step` —
                // exactly what the preceding unit Forward started from.
                let u_before = before_last_step
                    .take()
                    .expect("treeverse feeds every Backward with a unit Forward");
                lambda = Some(model.adjoint_step(&lam, &u_before));
                backward_steps += 1;
                // The sweep continues from state `step`; the next
                // Restore/Forward re-establishes the concrete data.
                current_idx = step;
            }
        }
    }

    Some(AdjointReport {
        gradient: lambda.expect("l >= 1 schedules run at least one adjoint step"),
        forward_steps,
        backward_steps,
        peak_store_bytes: peak_slots as u64 * state_bytes,
    })
}

/// Reverse `l` steps by checkpointing every forward state into a
/// de-duplicated Tree record and reading them back in reverse. No
/// recomputation; the store cost is the (compacted) record.
pub fn run_dedup_store(
    model: &HeatModel,
    u0: &State,
    l: usize,
    chunk_size: usize,
) -> AdjointReport {
    let device = Device::a100();
    let mut ckpt = TreeCheckpointer::new(device, TreeConfig::new(chunk_size));

    // Forward sweep: checkpoint state 0..=l as versions 0..=l.
    let mut diffs = Vec::with_capacity(l + 1);
    let mut current = u0.clone();
    let mut forward_steps = 0u64;
    diffs.push(ckpt.checkpoint(&HeatModel::state_bytes(&current)).diff);
    for _ in 0..l {
        current = model.step(&current);
        forward_steps += 1;
        diffs.push(ckpt.checkpoint(&HeatModel::state_bytes(&current)).diff);
    }
    let record_bytes: u64 = diffs.iter().map(|d| d.stored_bytes() as u64).sum();

    // Backward sweep: random-access reads in reverse order.
    let reader = RecordReader::build(&diffs).expect("well-formed record");
    let mut lambda = model.adjoint_seed(&current);
    let mut backward_steps = 0u64;
    for step in (0..l).rev() {
        let bytes = reader.read_version(step as u32).expect("version present");
        let u_before = HeatModel::state_from_bytes(&bytes).expect("valid state");
        lambda = model.adjoint_step(&lambda, &u_before);
        backward_steps += 1;
    }

    AdjointReport {
        gradient: lambda,
        forward_steps,
        backward_steps,
        peak_store_bytes: record_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::HeatParams;

    fn model() -> HeatModel {
        // A wide domain keeps the pulse's support — and therefore the dirty
        // chunks — local for the step counts the tests use.
        HeatModel::new(HeatParams::new(512))
    }

    #[test]
    fn revolve_and_dedup_store_agree_exactly() {
        let m = model();
        let u0 = m.initial_state();
        let l = 20;
        let dedup = run_dedup_store(&m, &u0, l, 64);
        for c in [1usize, 2, 4, l] {
            let rev = run_revolve(&m, &u0, l, c).unwrap();
            assert_eq!(rev.gradient, dedup.gradient, "c={c}");
            assert_eq!(rev.backward_steps, l as u64);
        }
    }

    #[test]
    fn revolve_forward_cost_matches_schedule_optimum() {
        let m = model();
        let u0 = m.initial_state();
        let l = 16;
        for c in [1usize, 2, 3, 8] {
            let rev = run_revolve(&m, &u0, l, c).unwrap();
            assert_eq!(
                rev.forward_steps,
                crate::revolve::optimal_cost(l, c).unwrap(),
                "c={c}"
            );
        }
    }

    #[test]
    fn dedup_store_never_recomputes_and_stays_compact() {
        let m = model();
        let u0 = m.initial_state();
        let l = 30;
        let rep = run_dedup_store(&m, &u0, l, 64);
        assert_eq!(rep.forward_steps, l as u64, "no recomputation");
        // The record of l+1 compact-support states must be far smaller than
        // storing them all raw.
        let raw_all = ((l + 1) * m.params.n * 8) as u64;
        assert!(
            rep.peak_store_bytes < raw_all / 2,
            "record {} vs raw {}",
            rep.peak_store_bytes,
            raw_all
        );
    }

    #[test]
    fn gradient_matches_finite_differences_through_the_record() {
        // The full pipeline (checkpoint every state → random-access reverse
        // reads → adjoint) must produce the true gradient.
        let m = HeatModel::new(HeatParams::new(20));
        let u0 = m.initial_state();
        let l = 10;
        let rep = run_dedup_store(&m, &u0, l, 32);
        let eps = 1e-6;
        for i in [0usize, 7, 19] {
            let mut up = u0.clone();
            up[i] += eps;
            let mut dn = u0.clone();
            dn[i] -= eps;
            let fd =
                (m.objective(&m.advance(&up, l)) - m.objective(&m.advance(&dn, l))) / (2.0 * eps);
            assert!(
                (fd - rep.gradient[i]).abs() <= 1e-5 * (1.0 + fd.abs()),
                "grad[{i}]: {} vs fd {fd}",
                rep.gradient[i]
            );
        }
    }
}
