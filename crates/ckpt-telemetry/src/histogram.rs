//! Log₂-bucketed histograms for latencies (nanoseconds) and sizes (bytes).
//!
//! Bucket `k` counts values `v` with `2^(k-1) < v <= 2^k` (bucket 0 counts
//! zeros and ones). 64 buckets cover the full `u64` range, so recording is a
//! single `leading_zeros` plus one relaxed atomic increment.

use std::sync::atomic::{AtomicU64, Ordering};

const N_BUCKETS: usize = 64;

#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); N_BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

fn bucket_index(v: u64) -> usize {
    // 0 and 1 land in bucket 0; otherwise the position of the highest bit
    // of v-1 gives the smallest k with v <= 2^k.
    if v <= 1 {
        0
    } else {
        (64 - (v - 1).leading_zeros() as usize).min(N_BUCKETS - 1)
    }
}

/// Upper bound (inclusive) of bucket `k`.
fn bucket_bound(k: usize) -> u64 {
    if k >= 63 {
        u64::MAX
    } else {
        1u64 << k
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration with nanosecond resolution.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum: self.sum(),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(k, c)| {
                    let c = c.load(Ordering::Relaxed);
                    (c > 0).then_some((bucket_bound(k), c))
                })
                .collect(),
        }
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time view of a histogram; `buckets` holds only occupied buckets
/// as `(inclusive upper bound, count)` pairs in increasing bound order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: Vec<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn snapshot_reports_stats_and_occupied_buckets_only() {
        let h = Histogram::new();
        for v in [1u64, 2, 900, 900, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1 + 2 + 900 + 900 + 1024);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1024);
        // Buckets: 1→b0(le 1), 2→b1(le 2), 900,900,1024→b10(le 1024).
        assert_eq!(s.buckets, vec![(1, 1), (2, 1), (1024, 3)]);
        h.reset();
        let s = h.snapshot();
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        assert!(s.buckets.is_empty());
    }
}
