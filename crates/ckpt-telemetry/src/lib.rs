//! Observability for the GPU de-duplication checkpointing pipeline.
//!
//! The paper's whole evaluation (§3.2, Figs. 4–6) is about *where time
//! goes* — leaf hashing vs. consolidation waves vs. gather/serialize vs.
//! D2H vs. tier flushes. This crate is the measurement substrate all layers
//! share:
//!
//! - [`Counter`] — monotonic event counts (evictions, stalls, kernels);
//! - [`Gauge`] — instantaneous signed levels (queue depth, durable lag);
//! - [`Histogram`] — log₂-bucketed distributions for latencies and sizes;
//! - [`StageClock`] / [`StageBreakdown`] — contiguous per-stage attribution
//!   of both measured wall time and modeled device time for one checkpoint;
//! - [`SpanStats`] + [`Registry::span`] — nestable named spans aggregating
//!   measured/modeled time across calls;
//! - [`Registry`] — owns every metric, resets cleanly, and snapshots to a
//!   stable JSON schema via a hand-rolled writer (no serde).
//!
//! Everything is `Sync`, lock-free on the hot paths (atomics), and
//! dependency-free so any crate in the workspace can use it — including
//! `gpu-sim`, whose modeled clock is *fed into* spans rather than read from
//! here (this crate knows nothing about the simulator).
//!
//! JSON schema (stable keys, alphabetical within each object):
//!
//! ```json
//! {
//!   "counters": { "<name>": 42 },
//!   "gauges": { "<name>": -7 },
//!   "histograms": {
//!     "<name>": { "buckets": [ { "count": 3, "le": 1024 } ],
//!                  "count": 9, "max": 900, "min": 2, "sum": 2048 }
//!   },
//!   "spans": {
//!     "<name>": { "count": 4, "measured_sec": 0.01, "modeled_sec": 0.002 }
//!   }
//! }
//! ```

mod histogram;
mod json;
mod metrics;
mod registry;
mod stage;

pub use histogram::{Histogram, HistogramSnapshot};
pub use json::{collect_keys, JsonWriter};
pub use metrics::{Counter, Gauge};
pub use registry::{Registry, SpanGuard, SpanStats};
pub use stage::{StageBreakdown, StageClock, StageSample};
