//! The metric registry: owns named counters, gauges, histograms, and span
//! aggregates; resets cleanly; snapshots to a stable JSON schema.

use crate::histogram::Histogram;
use crate::json::JsonWriter;
use crate::metrics::{Counter, Gauge};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Aggregate over all executions of a named span: call count plus total
/// measured wall time and total modeled device time.
#[derive(Debug, Default)]
pub struct SpanStats {
    count: AtomicU64,
    measured_ns: AtomicU64,
    /// Modeled time in femtoseconds, matching gpu-sim's resolution so tiny
    /// kernels don't round to zero.
    modeled_fs: AtomicU64,
}

const FS_PER_SEC: f64 = 1e15;

impl SpanStats {
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn measured_sec(&self) -> f64 {
        self.measured_ns.load(Ordering::Relaxed) as f64 * 1e-9
    }

    pub fn modeled_sec(&self) -> f64 {
        self.modeled_fs.load(Ordering::Relaxed) as f64 / FS_PER_SEC
    }

    fn record(&self, measured: std::time::Duration, modeled_sec: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.measured_ns.fetch_add(
            measured.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
        if modeled_sec > 0.0 {
            self.modeled_fs
                .fetch_add((modeled_sec * FS_PER_SEC) as u64, Ordering::Relaxed);
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.measured_ns.store(0, Ordering::Relaxed);
        self.modeled_fs.store(0, Ordering::Relaxed);
    }
}

/// RAII guard for one span execution. Wall time runs from creation to drop;
/// modeled time is fed in with [`SpanGuard::add_modeled_sec`]. Nest spans by
/// opening guards for `parent/child` names while the parent guard is live —
/// names are hierarchical by convention (slash-separated), and aggregation
/// is per-name, so nesting needs no runtime parent tracking.
pub struct SpanGuard {
    stats: Arc<SpanStats>,
    started: Instant,
    modeled_sec: f64,
}

impl SpanGuard {
    pub fn add_modeled_sec(&mut self, sec: f64) {
        self.modeled_sec += sec;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.stats.record(self.started.elapsed(), self.modeled_sec);
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
    spans: BTreeMap<String, Arc<SpanStats>>,
}

/// Owns every metric of one subsystem (a runtime instance, a CLI run, a
/// figure sweep). Handles are `Arc`s, so hot paths never touch the registry
/// lock after acquisition.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Get or create the counter with this name.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.lock();
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.lock();
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    pub fn span_stats(&self, name: &str) -> Arc<SpanStats> {
        let mut inner = self.lock();
        inner.spans.entry(name.to_string()).or_default().clone()
    }

    /// Open a span guard; wall time is measured until the guard drops.
    pub fn span(&self, name: &str) -> SpanGuard {
        SpanGuard {
            stats: self.span_stats(name),
            started: Instant::now(),
            modeled_sec: 0.0,
        }
    }

    /// Zero every registered metric (names stay registered, handles stay
    /// valid). The integration tests rely on this being complete.
    pub fn reset(&self) {
        let inner = self.lock();
        inner.counters.values().for_each(|c| c.reset());
        inner.gauges.values().for_each(|g| g.reset());
        inner.histograms.values().for_each(|h| h.reset());
        inner.spans.values().for_each(|s| s.reset());
    }

    /// Serialize every metric into the stable JSON schema (see crate docs).
    /// Maps iterate in key order, so output is deterministic.
    pub fn snapshot_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    /// Emit the registry as one JSON object onto an existing writer, so
    /// callers can embed it in a larger report.
    pub fn write_json(&self, w: &mut JsonWriter) {
        let inner = self.lock();
        w.begin_object();
        w.key("counters").begin_object();
        for (name, c) in &inner.counters {
            w.key(name).u64(c.get());
        }
        w.end_object();
        w.key("gauges").begin_object();
        for (name, g) in &inner.gauges {
            w.key(name).i64(g.get());
        }
        w.end_object();
        w.key("histograms").begin_object();
        for (name, h) in &inner.histograms {
            let s = h.snapshot();
            w.key(name).begin_object();
            w.key("buckets").begin_array();
            for (le, count) in &s.buckets {
                w.begin_object();
                w.key("count").u64(*count);
                w.key("le").u64(*le);
                w.end_object();
            }
            w.end_array();
            w.key("count").u64(s.count);
            w.key("max").u64(s.max);
            w.key("min").u64(s.min);
            w.key("sum").u64(s.sum);
            w.end_object();
        }
        w.end_object();
        w.key("spans").begin_object();
        for (name, s) in &inner.spans {
            w.key(name).begin_object();
            w.key("count").u64(s.count());
            w.key("measured_sec").f64(s.measured_sec());
            w.key("modeled_sec").f64(s.modeled_sec());
            w.end_object();
        }
        w.end_object();
        w.end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_reset_is_complete() {
        let r = Registry::new();
        let c1 = r.counter("x/events");
        let c2 = r.counter("x/events");
        c1.add(3);
        c2.add(4);
        assert_eq!(r.counter("x/events").get(), 7);
        r.gauge("x/depth").set(-2);
        r.histogram("x/lat_ns").record(100);
        {
            let mut span = r.span("x/work");
            span.add_modeled_sec(0.5);
        }
        r.reset();
        assert_eq!(r.counter("x/events").get(), 0);
        assert_eq!(r.gauge("x/depth").get(), 0);
        assert_eq!(r.histogram("x/lat_ns").snapshot().count, 0);
        assert_eq!(r.span_stats("x/work").count(), 0);
        assert_eq!(r.span_stats("x/work").modeled_sec(), 0.0);
    }

    #[test]
    fn snapshot_json_has_stable_schema_and_key_order() {
        let r = Registry::new();
        r.counter("b").inc();
        r.counter("a").add(2);
        r.gauge("lag").set(5);
        r.histogram("size").record(4096);
        {
            let mut s = r.span("ckpt");
            s.add_modeled_sec(0.001);
        }
        let json = r.snapshot_json();
        // Registered names appear sorted; schema keys are fixed.
        assert!(
            json.starts_with(r#"{"counters":{"a":2,"b":1},"gauges":{"lag":5},"#),
            "{json}"
        );
        assert!(json.contains(r#""histograms":{"size":{"buckets":[{"count":1,"le":4096}],"count":1,"max":4096,"min":4096,"sum":4096}}"#), "{json}");
        assert!(json.contains(r#""spans":{"ckpt":{"count":1,"#), "{json}");
        let keys = crate::json::collect_keys(&json);
        for expect in ["counters", "gauges", "histograms", "spans"] {
            assert!(
                keys.iter().any(|k| k == expect),
                "missing {expect} in {json}"
            );
        }
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let r = Registry::new();
        let c = r.counter("n");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
