//! Per-checkpoint stage attribution.
//!
//! A [`StageClock`] carves one checkpoint into contiguous named stages:
//! every [`StageClock::mark`] closes the stage that began at the previous
//! mark, attributing to it the wall time elapsed since — and the delta of
//! whatever external "modeled" clock the caller samples (for this workspace,
//! `gpu_sim::DeviceMetrics::modeled_sec()`). Because the deltas tile the
//! interval, stage sums equal the totals *by construction*; the 5% tolerance
//! in the acceptance test absorbs only float rounding.

use crate::json::JsonWriter;
use std::time::Instant;

/// One closed stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSample {
    pub name: &'static str,
    pub measured_sec: f64,
    pub modeled_sec: f64,
}

/// Attribution of one checkpoint across pipeline stages.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageBreakdown {
    /// Method name ("Tree", "List", "Basic", ...).
    pub method: String,
    /// Checkpoint id within the record.
    pub ckpt_id: u32,
    pub stages: Vec<StageSample>,
    pub total_measured_sec: f64,
    pub total_modeled_sec: f64,
}

impl StageBreakdown {
    pub fn stage(&self, name: &str) -> Option<&StageSample> {
        self.stages.iter().find(|s| s.name == name)
    }

    pub fn sum_measured_sec(&self) -> f64 {
        self.stages.iter().map(|s| s.measured_sec).sum()
    }

    pub fn sum_modeled_sec(&self) -> f64 {
        self.stages.iter().map(|s| s.modeled_sec).sum()
    }

    /// Merge another breakdown of the same shape (stage-wise addition),
    /// used to aggregate over a record's checkpoints.
    pub fn accumulate(&mut self, other: &StageBreakdown) {
        if self.stages.is_empty() {
            *self = other.clone();
            return;
        }
        for s in &other.stages {
            match self.stages.iter_mut().find(|m| m.name == s.name) {
                Some(m) => {
                    m.measured_sec += s.measured_sec;
                    m.modeled_sec += s.modeled_sec;
                }
                None => self.stages.push(s.clone()),
            }
        }
        self.total_measured_sec += other.total_measured_sec;
        self.total_modeled_sec += other.total_modeled_sec;
    }

    /// Emit as a JSON object onto an existing writer.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("method").string(&self.method);
        w.key("ckpt_id").u64(self.ckpt_id as u64);
        w.key("total_measured_sec").f64(self.total_measured_sec);
        w.key("total_modeled_sec").f64(self.total_modeled_sec);
        w.key("stages").begin_array();
        for s in &self.stages {
            w.begin_object();
            w.key("name").string(s.name);
            w.key("measured_sec").f64(s.measured_sec);
            w.key("modeled_sec").f64(s.modeled_sec);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }

    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

/// Mark-based stage attribution for a single checkpoint.
pub struct StageClock {
    started: Instant,
    last_wall: Instant,
    start_modeled: f64,
    last_modeled: f64,
    stages: Vec<StageSample>,
}

impl StageClock {
    /// Start the clock; `modeled_now` is the external modeled-time reading
    /// at the start of the checkpoint (e.g. device modeled seconds).
    pub fn start(modeled_now: f64) -> Self {
        let now = Instant::now();
        StageClock {
            started: now,
            last_wall: now,
            start_modeled: modeled_now,
            last_modeled: modeled_now,
            stages: Vec::with_capacity(8),
        }
    }

    /// Close the stage running since the previous mark (or since `start`),
    /// attributing elapsed wall time and modeled-clock delta to `name`.
    /// Re-using a stage name accumulates into the existing entry.
    pub fn mark(&mut self, name: &'static str, modeled_now: f64) {
        let now = Instant::now();
        let measured = now.duration_since(self.last_wall).as_secs_f64();
        let modeled = modeled_now - self.last_modeled;
        self.last_wall = now;
        self.last_modeled = modeled_now;
        match self.stages.iter_mut().find(|s| s.name == name) {
            Some(s) => {
                s.measured_sec += measured;
                s.modeled_sec += modeled;
            }
            None => self.stages.push(StageSample {
                name,
                measured_sec: measured,
                modeled_sec: modeled,
            }),
        }
    }

    /// Finish, yielding the breakdown. Totals are taken from the clock
    /// itself, so `sum(stages) == total` up to float rounding — any time
    /// since the last mark is attributed to a trailing `"other"` stage.
    pub fn finish(mut self, method: &str, ckpt_id: u32, modeled_now: f64) -> StageBreakdown {
        // Sweep trailing work into "other" — but only when it is real:
        // modeled time advanced, or more wall time passed than the few
        // microseconds the bookkeeping itself costs.
        let trailing_wall = self.last_wall.elapsed().as_secs_f64();
        if modeled_now > self.last_modeled || trailing_wall > 1e-5 {
            self.mark("other", modeled_now);
        }
        StageBreakdown {
            method: method.to_string(),
            ckpt_id,
            total_measured_sec: self.last_wall.duration_since(self.started).as_secs_f64(),
            total_modeled_sec: self.last_modeled - self.start_modeled,
            stages: self.stages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_tile_the_totals_exactly() {
        let mut clock = StageClock::start(1.0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        clock.mark("leaf_hash", 1.25);
        clock.mark("first_ocur", 1.5);
        std::thread::sleep(std::time::Duration::from_millis(1));
        clock.mark("serialize", 2.0);
        let b = clock.finish("Tree", 7, 2.0);
        assert_eq!(b.method, "Tree");
        assert_eq!(b.ckpt_id, 7);
        assert!((b.sum_modeled_sec() - b.total_modeled_sec).abs() < 1e-12);
        assert!((b.total_modeled_sec - 1.0).abs() < 1e-12);
        assert!((b.sum_measured_sec() - b.total_measured_sec).abs() < 1e-9);
        assert_eq!(b.stage("leaf_hash").unwrap().modeled_sec, 0.25);
    }

    #[test]
    fn repeated_marks_accumulate_into_one_stage() {
        let mut clock = StageClock::start(0.0);
        clock.mark("wave", 1.0);
        clock.mark("meta", 1.5);
        clock.mark("wave", 3.0);
        let b = clock.finish("Tree", 0, 3.0);
        assert_eq!(b.stages.len(), 2);
        assert_eq!(b.stage("wave").unwrap().modeled_sec, 2.5);
        assert!((b.sum_modeled_sec() - b.total_modeled_sec).abs() < 1e-12);
    }

    #[test]
    fn trailing_time_lands_in_other_and_json_is_stable() {
        let mut clock = StageClock::start(0.0);
        clock.mark("a", 1.0);
        let b = clock.finish("List", 3, 1.5);
        assert_eq!(b.stage("other").unwrap().modeled_sec, 0.5);
        let json = b.to_json();
        let keys = crate::json::collect_keys(&json);
        assert_eq!(
            keys,
            [
                "method",
                "ckpt_id",
                "total_measured_sec",
                "total_modeled_sec",
                "stages",
                "name",
                "measured_sec",
                "modeled_sec",
                "name",
                "measured_sec",
                "modeled_sec"
            ]
        );
    }

    #[test]
    fn accumulate_merges_stagewise() {
        let mut clock = StageClock::start(0.0);
        clock.mark("a", 1.0);
        clock.mark("b", 1.5);
        let mut total = StageBreakdown::default();
        let first = clock.finish("Tree", 0, 1.5);
        total.accumulate(&first);
        let mut clock = StageClock::start(10.0);
        clock.mark("a", 10.5);
        clock.mark("b", 12.5);
        total.accumulate(&clock.finish("Tree", 1, 12.5));
        assert_eq!(total.stage("a").unwrap().modeled_sec, 1.5);
        assert_eq!(total.stage("b").unwrap().modeled_sec, 2.5);
        assert!((total.total_modeled_sec - 4.0).abs() < 1e-12);
    }
}
