//! Scalar metrics: monotonic counters and signed gauges.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// An instantaneous level; signed so "lag" metrics can dip below zero
/// transiently without saturating.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Gauge::default()
    }

    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Raise the gauge to `v` if it is below it (high-water marks).
    pub fn max_of(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(5);
        g.sub(8);
        assert_eq!(g.get(), -3);
        g.set(7);
        g.max_of(3);
        assert_eq!(g.get(), 7);
        g.max_of(11);
        assert_eq!(g.get(), 11);
    }
}
