//! A tiny hand-rolled JSON writer — the workspace builds offline, so no
//! serde. Emission order is caller-controlled; the [`crate::Registry`]
//! snapshot always walks its maps in key order, which is what makes the
//! report schema stable and diffable.

/// Incremental JSON writer. Handles commas, string escaping, and non-finite
/// floats (emitted as `null`, which is what JSON has to offer).
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    // True when the next emission at the current nesting level needs a
    // leading comma.
    need_comma: Vec<bool>,
}

impl JsonWriter {
    pub fn new() -> Self {
        JsonWriter::default()
    }

    pub fn finish(self) -> String {
        self.out
    }

    fn pre_value(&mut self) {
        if let Some(need) = self.need_comma.last_mut() {
            if *need {
                self.out.push(',');
            }
            *need = true;
        }
    }

    pub fn begin_object(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('{');
        self.need_comma.push(false);
        self
    }

    pub fn end_object(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.out.push('}');
        self
    }

    pub fn begin_array(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('[');
        self.need_comma.push(false);
        self
    }

    pub fn end_array(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.out.push(']');
        self
    }

    /// Emit `"key":` — must be followed by exactly one value emission.
    pub fn key(&mut self, key: &str) -> &mut Self {
        self.pre_value();
        self.push_escaped(key);
        self.out.push(':');
        // The value after a key must not get its own comma.
        if let Some(need) = self.need_comma.last_mut() {
            *need = false;
        }
        self
    }

    pub fn string(&mut self, v: &str) -> &mut Self {
        self.pre_value();
        self.push_escaped(v);
        self
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.pre_value();
        self.out.push_str(&v.to_string());
        self
    }

    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.pre_value();
        self.out.push_str(&v.to_string());
        self
    }

    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.pre_value();
        if v.is_finite() {
            // Rust's shortest-round-trip formatting; integral values get a
            // ".0" suffix so the value stays typed as a float on re-parse.
            if v == v.trunc() && v.abs() < 1e15 {
                self.out.push_str(&format!("{v:.1}"));
            } else {
                self.out.push_str(&format!("{v}"));
            }
        } else {
            self.out.push_str("null");
        }
        self
    }

    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.pre_value();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    fn push_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

/// Minimal JSON scanner used by tests and the CLI's `--stats` plumbing to
/// check key presence without a full parser: returns every object key seen
/// anywhere in the document, in order of appearance.
pub fn collect_keys(json: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let bytes = json.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] != b'"' {
                if bytes[j] == b'\\' {
                    j += 1;
                }
                j += 1;
            }
            // A string immediately followed by ':' is a key.
            let mut k = j + 1;
            while k < bytes.len() && (bytes[k] == b' ' || bytes[k] == b'\n') {
                k += 1;
            }
            if k < bytes.len() && bytes[k] == b':' {
                keys.push(String::from_utf8_lossy(&bytes[start..j]).into_owned());
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_nested_structures_with_correct_commas() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a").u64(1);
        w.key("b").begin_array();
        w.u64(1);
        w.string("x\"y");
        w.begin_object().key("c").f64(0.5);
        w.end_object();
        w.end_array();
        w.key("d").f64(2.0);
        w.key("e").f64(f64::NAN);
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"a":1,"b":[1,"x\"y",{"c":0.5}],"d":2.0,"e":null}"#
        );
    }

    #[test]
    fn collect_keys_sees_only_keys() {
        let keys = collect_keys(r#"{"a":1,"b":{"c":"not:akey","d":[{"e":2}]}}"#);
        assert_eq!(keys, ["a", "b", "c", "d", "e"]);
    }
}
