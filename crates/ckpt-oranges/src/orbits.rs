//! Graphlet and orbit classification tables for 2–5-vertex graphlets.
//!
//! A *graphlet* is a connected induced subgraph on 2–5 vertices; there are
//! exactly 30 of them up to isomorphism (1 + 2 + 6 + 21 by size). An *orbit*
//! is an automorphism-equivalence class of vertices within a graphlet; there
//! are 73 across all 30 graphlets. The GDV (graphlet degree vector) of a
//! vertex counts, per orbit, how many graphlet instances contain it in that
//! position (Přulj's taxonomy; the paper builds one 73-counter vector per
//! vertex and checkpoints the evolving array).
//!
//! Rather than transcribing the published orbit tables, this module *derives*
//! them: it enumerates every labeled graph on k ≤ 5 vertices (adjacency
//! bitmask over the `k(k-1)/2` vertex pairs), finds canonical forms by
//! minimizing over all `k!` relabelings, and computes automorphism orbits
//! brute-force. Graphlet and orbit ids are assigned in deterministic
//! (size, canonical-mask) order — a relabeling of the published numbering
//! with identical structure (the tests pin the 30/73 counts and spot-check
//! well-known graphlets).

use std::collections::HashMap;
use std::sync::OnceLock;

/// Total number of orbits across all 2–5-vertex graphlets.
pub const N_ORBITS: usize = 73;

/// Total number of graphlets (connected graphs on 2–5 vertices).
pub const N_GRAPHLETS: usize = 30;

/// Bit index of the vertex pair `(i, j)` with `i < j` in an adjacency mask.
#[inline]
pub fn pair_bit(i: usize, j: usize) -> usize {
    debug_assert!(i < j);
    j * (j - 1) / 2 + i
}

/// Whether the masked graph on `k` vertices is connected.
pub fn is_connected(mask: u16, k: usize) -> bool {
    if k == 0 {
        return false;
    }
    let mut seen = 1u8; // bitmask of visited vertices, start at 0
    let mut stack = vec![0usize];
    while let Some(v) = stack.pop() {
        for u in 0..k {
            if u != v && seen & (1 << u) == 0 {
                let (a, b) = if u < v { (u, v) } else { (v, u) };
                if mask & (1 << pair_bit(a, b)) != 0 {
                    seen |= 1 << u;
                    stack.push(u);
                }
            }
        }
    }
    seen.count_ones() as usize == k
}

/// Relabel the masked graph: vertex `v` becomes `perm[v]`.
fn permute_mask(mask: u16, k: usize, perm: &[usize]) -> u16 {
    let mut out = 0u16;
    for j in 1..k {
        for i in 0..j {
            if mask & (1 << pair_bit(i, j)) != 0 {
                let (a, b) = (perm[i].min(perm[j]), perm[i].max(perm[j]));
                out |= 1 << pair_bit(a, b);
            }
        }
    }
    out
}

fn permutations(k: usize) -> Vec<Vec<usize>> {
    fn rec(prefix: &mut Vec<usize>, rest: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if rest.is_empty() {
            out.push(prefix.clone());
            return;
        }
        for i in 0..rest.len() {
            let v = rest.remove(i);
            prefix.push(v);
            rec(prefix, rest, out);
            prefix.pop();
            rest.insert(i, v);
        }
    }
    let mut out = Vec::new();
    rec(&mut Vec::new(), &mut (0..k).collect(), &mut out);
    out
}

/// The derived classification tables.
pub struct OrbitTable {
    /// Per size k (index k-2): `orbit[mask * k + i]` = global orbit id of
    /// vertex `i` in the masked graph, or `u8::MAX` if disconnected.
    orbit: [Vec<u8>; 4],
    /// Per size k (index k-2): `graphlet[mask]` = global graphlet id, or
    /// `u8::MAX` if disconnected.
    graphlet: [Vec<u8>; 4],
    n_graphlets: usize,
    n_orbits: usize,
}

impl OrbitTable {
    fn build() -> OrbitTable {
        let mut orbit: [Vec<u8>; 4] = Default::default();
        let mut graphlet: [Vec<u8>; 4] = Default::default();
        let mut next_graphlet = 0usize;
        let mut next_orbit = 0usize;

        for k in 2..=5usize {
            let n_pairs = k * (k - 1) / 2;
            let n_masks = 1usize << n_pairs;
            let perms = permutations(k);
            let mut orb_k = vec![u8::MAX; n_masks * k];
            let mut gr_k = vec![u8::MAX; n_masks];

            // Canonical class data discovered in ascending mask order: the
            // canonical representative (min over relabelings) is always the
            // first class member encountered.
            let mut class_graphlet: HashMap<u16, u8> = HashMap::new();
            let mut class_orbits: HashMap<u16, Vec<u8>> = HashMap::new();

            for mask in 0..n_masks as u16 {
                if !is_connected(mask, k) {
                    continue;
                }
                let mut canon = mask;
                let mut to_canon: &Vec<usize> = &perms[0];
                for p in &perms {
                    let pm = permute_mask(mask, k, p);
                    if pm < canon {
                        canon = pm;
                        to_canon = p;
                    }
                }
                if canon == mask {
                    // New canonical class: register graphlet + orbits.
                    let gid = next_graphlet as u8;
                    next_graphlet += 1;
                    class_graphlet.insert(mask, gid);

                    // Automorphism orbits of the canonical form: i ~ j iff
                    // some automorphism maps i to j.
                    let mut class_of = vec![usize::MAX; k];
                    let autos: Vec<&Vec<usize>> = perms
                        .iter()
                        .filter(|p| permute_mask(mask, k, p) == mask)
                        .collect();
                    for i in 0..k {
                        if class_of[i] != usize::MAX {
                            continue;
                        }
                        let orbit_id = next_orbit;
                        next_orbit += 1;
                        for p in &autos {
                            class_of[p[i]] = orbit_id;
                        }
                        class_of[i] = orbit_id;
                    }
                    class_orbits.insert(mask, class_of.iter().map(|&o| o as u8).collect());
                }
                // Map this mask's vertices through `to_canon` onto the
                // canonical class's orbits.
                let canon_orbits = &class_orbits[&canon];
                gr_k[mask as usize] = class_graphlet[&canon];
                for i in 0..k {
                    orb_k[mask as usize * k + i] = canon_orbits[to_canon[i]];
                }
            }
            orbit[k - 2] = orb_k;
            graphlet[k - 2] = gr_k;
        }

        OrbitTable {
            orbit,
            graphlet,
            n_graphlets: next_graphlet,
            n_orbits: next_orbit,
        }
    }

    /// The process-wide table (built once, ~12 KiB).
    pub fn global() -> &'static OrbitTable {
        static TABLE: OnceLock<OrbitTable> = OnceLock::new();
        TABLE.get_or_init(OrbitTable::build)
    }

    /// Global orbit id of vertex `i` in the connected masked graph on `k`
    /// vertices. Panics on disconnected masks in debug builds.
    #[inline]
    pub fn orbit_of(&self, k: usize, mask: u16, i: usize) -> u8 {
        let o = self.orbit[k - 2][mask as usize * k + i];
        debug_assert_ne!(o, u8::MAX, "disconnected mask {mask:#b} (k={k})");
        o
    }

    /// Global graphlet id of the connected masked graph.
    #[inline]
    pub fn graphlet_of(&self, k: usize, mask: u16) -> u8 {
        let g = self.graphlet[k - 2][mask as usize];
        debug_assert_ne!(g, u8::MAX, "disconnected mask {mask:#b} (k={k})");
        g
    }

    pub fn n_graphlets(&self) -> usize {
        self.n_graphlets
    }

    pub fn n_orbits(&self) -> usize {
        self.n_orbits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_the_taxonomy() {
        let t = OrbitTable::global();
        assert_eq!(
            t.n_graphlets(),
            N_GRAPHLETS,
            "connected graphs on 2-5 vertices"
        );
        assert_eq!(t.n_orbits(), N_ORBITS, "orbits across all graphlets");
    }

    #[test]
    fn connectivity_oracle() {
        // k=3: edges 01,02,12 are bits 0,1,2.
        assert!(is_connected(0b011, 3)); // path 1-0-2
        assert!(is_connected(0b111, 3)); // triangle
        assert!(!is_connected(0b001, 3)); // edge + isolated vertex
        assert!(!is_connected(0b000, 2));
        assert!(is_connected(0b1, 2));
    }

    #[test]
    fn edge_graphlet_has_one_orbit() {
        let t = OrbitTable::global();
        // k=2, mask 1 = the single edge; both endpoints equivalent.
        assert_eq!(t.orbit_of(2, 1, 0), t.orbit_of(2, 1, 1));
        assert_eq!(t.graphlet_of(2, 1), 0);
        assert_eq!(t.orbit_of(2, 1, 0), 0);
    }

    #[test]
    fn path3_has_two_orbits_triangle_one() {
        let t = OrbitTable::global();
        let path = 0b011u16; // 0-1, 0-2: vertex 0 is the center
        let o_center = t.orbit_of(3, path, 0);
        let o_end = t.orbit_of(3, path, 1);
        assert_ne!(o_center, o_end);
        assert_eq!(t.orbit_of(3, path, 2), o_end);

        let tri = 0b111u16;
        let o = t.orbit_of(3, tri, 0);
        assert_eq!(t.orbit_of(3, tri, 1), o);
        assert_eq!(t.orbit_of(3, tri, 2), o);
        assert_ne!(t.graphlet_of(3, path), t.graphlet_of(3, tri));
    }

    #[test]
    fn isomorphic_masks_share_graphlet_and_orbits() {
        let t = OrbitTable::global();
        // Two labelings of the 3-path with different centers.
        let center0 = 0b011u16; // 01, 02
        let center1 = 0b101u16; // 01, 12
        let center2 = 0b110u16; // 02, 12
        assert_eq!(t.graphlet_of(3, center0), t.graphlet_of(3, center1));
        assert_eq!(t.graphlet_of(3, center1), t.graphlet_of(3, center2));
        assert_eq!(t.orbit_of(3, center0, 0), t.orbit_of(3, center1, 1));
        assert_eq!(t.orbit_of(3, center0, 1), t.orbit_of(3, center1, 0));
        assert_eq!(t.orbit_of(3, center2, 2), t.orbit_of(3, center0, 0));
    }

    #[test]
    fn k5_clique_is_fully_symmetric() {
        let t = OrbitTable::global();
        let k5 = (1u16 << 10) - 1;
        let o = t.orbit_of(5, k5, 0);
        for i in 1..5 {
            assert_eq!(t.orbit_of(5, k5, i), o);
        }
    }

    #[test]
    fn star4_center_differs_from_leaves() {
        let t = OrbitTable::global();
        // k=4 star centered at 0: edges 01, 02, 03 → bits pair(0,1)=0,
        // pair(0,2)=1, pair(0,3)=3.
        let star = (1u16 << pair_bit(0, 1)) | (1 << pair_bit(0, 2)) | (1 << pair_bit(0, 3));
        let center = t.orbit_of(4, star, 0);
        let leaf = t.orbit_of(4, star, 1);
        assert_ne!(center, leaf);
        assert_eq!(t.orbit_of(4, star, 2), leaf);
        assert_eq!(t.orbit_of(4, star, 3), leaf);
    }

    #[test]
    fn orbit_ids_partition_by_graphlet_size() {
        // Size-2 orbits come first, then size-3, etc. (deterministic
        // ordering promised by the module docs).
        let t = OrbitTable::global();
        assert_eq!(t.orbit_of(2, 1, 0), 0);
        // First size-3 graphlet (path, mask 0b011) starts at orbit 1.
        let o3: Vec<u8> = (0..3).map(|i| t.orbit_of(3, 0b011, i)).collect();
        assert!(o3.iter().all(|&o| (1..=3).contains(&o)));
        // Size-5 orbits all ≥ the size-4 maximum.
        let k5 = (1u16 << 10) - 1;
        let max4 = (0..4)
            .map(|i| t.orbit_of(4, (1 << 6) - 1, i))
            .max()
            .unwrap();
        assert!(t.orbit_of(5, k5, 0) > max4);
    }

    #[test]
    fn every_connected_mask_is_classified() {
        let t = OrbitTable::global();
        for k in 2..=5usize {
            let n_pairs = k * (k - 1) / 2;
            for mask in 0..(1u16 << n_pairs) {
                if is_connected(mask, k) {
                    let g = t.graphlet_of(k, mask);
                    assert!((g as usize) < N_GRAPHLETS);
                    for i in 0..k {
                        assert!((t.orbit_of(k, mask, i) as usize) < N_ORBITS);
                    }
                }
            }
        }
    }
}
