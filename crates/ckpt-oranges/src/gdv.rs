//! The graphlet degree vector (GDV) array — the checkpointed data structure.
//!
//! One row of [`crate::orbits::N_ORBITS`] `u32` counters per vertex, stored
//! row-major in one flat allocation so the whole array can be handed to the
//! checkpointing engine as a single byte buffer ("each process produces a
//! checkpoint record ... directly into the GPU memory", §2.1). At the
//! paper's scale this is the multi-GB object of Table 1's last column
//! (≈ 292 B/vertex).

use crate::orbits::N_ORBITS;

/// Flat per-vertex orbit-counter array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gdv {
    counts: Vec<u32>,
    n_vertices: usize,
}

impl Gdv {
    /// All-zero GDV for `n_vertices`.
    pub fn new(n_vertices: usize) -> Self {
        Gdv {
            counts: vec![0u32; n_vertices * N_ORBITS],
            n_vertices,
        }
    }

    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.n_vertices
    }

    /// Total size in bytes (what gets checkpointed).
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.counts.len() * 4
    }

    /// Increment vertex `v`'s counter for `orbit`.
    #[inline]
    pub fn bump(&mut self, v: u32, orbit: u8) {
        self.counts[v as usize * N_ORBITS + orbit as usize] += 1;
    }

    /// The orbit-counter row of vertex `v`.
    #[inline]
    pub fn row(&self, v: u32) -> &[u32] {
        &self.counts[v as usize * N_ORBITS..(v as usize + 1) * N_ORBITS]
    }

    /// Raw little-endian byte view of the whole array — the checkpoint
    /// payload. (`u32` counters are plain old data; on the little-endian
    /// targets this project supports, the in-memory representation *is* the
    /// serialized representation, exactly like a GPU buffer handed to the
    /// de-duplication kernel.)
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: u32 has no padding or invalid bit patterns; the slice
        // covers exactly the Vec's initialized elements.
        unsafe {
            std::slice::from_raw_parts(self.counts.as_ptr() as *const u8, self.counts.len() * 4)
        }
    }

    /// Rebuild a GDV from bytes produced by [`as_bytes`](Self::as_bytes)
    /// (restart path).
    pub fn from_bytes(bytes: &[u8]) -> Option<Gdv> {
        if !bytes.len().is_multiple_of(4 * N_ORBITS) {
            return None;
        }
        let counts: Vec<u32> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let n_vertices = counts.len() / N_ORBITS;
        Some(Gdv { counts, n_vertices })
    }

    /// Atomic view of the counters for parallel enumeration kernels.
    ///
    /// `AtomicU32` is guaranteed to have the same in-memory representation
    /// as `u32`, so a unique borrow of the counter array can be handed to
    /// many threads as atomics for the duration of a parallel pass.
    pub fn as_atomic(&mut self) -> &[std::sync::atomic::AtomicU32] {
        // SAFETY: exclusive borrow + identical layout; all concurrent access
        // goes through atomic operations.
        unsafe {
            std::slice::from_raw_parts(
                self.counts.as_mut_ptr() as *const std::sync::atomic::AtomicU32,
                self.counts.len(),
            )
        }
    }

    /// Sum of all counters (test/metrics helper).
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }

    /// Number of non-zero counters (sparsity metric; the paper notes sparse
    /// graphs yield sparse GDVs).
    pub fn nonzero(&self) -> usize {
        self.counts.iter().filter(|&&c| c != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_row() {
        let mut g = Gdv::new(3);
        g.bump(1, 0);
        g.bump(1, 0);
        g.bump(2, 72);
        assert_eq!(g.row(1)[0], 2);
        assert_eq!(g.row(2)[72], 1);
        assert_eq!(g.row(0).iter().sum::<u32>(), 0);
        assert_eq!(g.total(), 3);
        assert_eq!(g.nonzero(), 2);
    }

    #[test]
    fn byte_view_round_trip() {
        let mut g = Gdv::new(4);
        g.bump(0, 5);
        g.bump(3, 10);
        let bytes = g.as_bytes();
        assert_eq!(bytes.len(), 4 * N_ORBITS * 4);
        let back = Gdv::from_bytes(bytes).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn byte_view_is_little_endian_rows() {
        let mut g = Gdv::new(1);
        g.bump(0, 0);
        assert_eq!(&g.as_bytes()[0..4], &[1, 0, 0, 0]);
    }

    #[test]
    fn from_bytes_rejects_bad_length() {
        assert!(Gdv::from_bytes(&[0u8; 7]).is_none());
    }
}
