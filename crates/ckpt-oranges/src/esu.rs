//! ESU enumeration of connected induced subgraphs (Wernicke's algorithm).
//!
//! `enumerate_from_root` visits every connected induced subgraph of size
//! 2..=`k_max` whose *minimum* vertex is the given root, exactly once. Over
//! all roots this enumerates each graphlet instance in the graph exactly
//! once — the property that makes per-subgraph GDV increments correct.

use ckpt_graph::CsrGraph;

/// Maximum subgraph size supported (5-vertex graphlets).
pub const K_MAX: usize = 5;

/// Visitor callback: the subgraph's vertices (`sub[0]` is the root) and its
/// adjacency bitmask over [`crate::orbits::pair_bit`] pair indexing.
pub type Visit<'a> = &'a mut dyn FnMut(&[u32], u16);

struct Esu<'g, 'v> {
    g: &'g CsrGraph,
    root: u32,
    sub: Vec<u32>,
    ///

    /// Adjacency bitmask of `sub` (pair-indexed like the orbit tables).
    mask: u16,
    /// `stamp[u] == generation` marks u ∈ sub ∪ N(sub) for the current root.
    stamp: &'v mut [u32],
    generation: u32,
    k_max: usize,
    visit: Visit<'v>,
}

impl Esu<'_, '_> {
    fn extend(&mut self, ext: Vec<u32>) {
        if self.sub.len() >= 2 {
            (self.visit)(&self.sub, self.mask);
        }
        if self.sub.len() == self.k_max {
            return;
        }
        let mut ext = ext;
        while let Some(w) = ext.pop() {
            // Build the child's extension: remaining candidates plus the
            // exclusive neighbors of w (not in sub ∪ N(sub)).
            let mut child_ext = ext.clone();
            let mut newly_marked = Vec::new();
            for &u in self.g.neighbors(w) {
                if u > self.root && self.stamp[u as usize] != self.generation {
                    self.stamp[u as usize] = self.generation;
                    newly_marked.push(u);
                    child_ext.push(u);
                }
            }

            // Add w to the subgraph: extend the adjacency mask.
            let wi = self.sub.len();
            let mut mask_add = 0u16;
            for (i, &v) in self.sub.iter().enumerate() {
                if self.g.has_edge(v, w) {
                    mask_add |= 1 << crate::orbits::pair_bit(i, wi);
                }
            }
            self.sub.push(w);
            self.mask |= mask_add;

            self.extend(child_ext);

            self.sub.pop();
            self.mask &= !mask_add;
            // Un-mark w's exclusive neighbors for the sibling branches.
            for u in newly_marked {
                self.stamp[u as usize] = self.generation - 1;
            }
        }
    }
}

/// Enumerate all connected induced subgraphs of size 2..=`k_max` whose
/// minimum vertex is `root`. `stamp` is scratch of length `n_vertices`
/// (reused across roots; callers pass the same buffer with increasing
/// generations via [`EsuScratch`]).
pub struct EsuScratch {
    stamp: Vec<u32>,
    generation: u32,
}

impl EsuScratch {
    pub fn new(n_vertices: usize) -> Self {
        EsuScratch {
            stamp: vec![0; n_vertices],
            generation: 0,
        }
    }

    /// Run ESU from `root`, invoking `visit(sub, mask)` for each subgraph.
    pub fn enumerate_from_root(&mut self, g: &CsrGraph, root: u32, k_max: usize, visit: Visit<'_>) {
        assert!(k_max <= K_MAX, "k_max {k_max} exceeds supported {K_MAX}");
        // Two generations per root: `generation` marks live, generation-1
        // is the "unmarked" value used when backtracking.
        self.generation = self.generation.wrapping_add(2);
        let generation = self.generation;

        let mut ext = Vec::new();
        self.stamp[root as usize] = generation;
        for &u in g.neighbors(root) {
            if u > root {
                self.stamp[u as usize] = generation;
                ext.push(u);
            }
        }
        let mut esu = Esu {
            g,
            root,
            sub: vec![root],
            mask: 0,
            stamp: &mut self.stamp,
            generation,
            k_max,
            visit,
        };
        esu.extend(ext);
    }
}

/// Count all connected induced subgraphs of sizes 2..=k_max (test helper and
/// a cheap graph-complexity metric).
pub fn count_subgraphs(g: &CsrGraph, k_max: usize) -> u64 {
    let mut scratch = EsuScratch::new(g.n_vertices());
    let mut count = 0u64;
    for root in 0..g.n_vertices() as u32 {
        scratch.enumerate_from_root(g, root, k_max, &mut |_, _| count += 1);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orbits::is_connected;
    use ckpt_graph::CsrGraph;

    /// Brute-force: count connected induced subgraphs by subset iteration.
    fn brute_force_count(g: &CsrGraph, k_max: usize) -> u64 {
        let n = g.n_vertices();
        assert!(n <= 20);
        let mut count = 0u64;
        for set in 1u32..(1 << n) {
            let k = set.count_ones() as usize;
            if !(2..=k_max).contains(&k) {
                continue;
            }
            let verts: Vec<u32> = (0..n as u32).filter(|&v| set & (1 << v) != 0).collect();
            let mut mask = 0u16;
            for j in 1..k {
                for i in 0..j {
                    if g.has_edge(verts[i], verts[j]) {
                        mask |= 1 << crate::orbits::pair_bit(i, j);
                    }
                }
            }
            if is_connected(mask, k) {
                count += 1;
            }
        }
        count
    }

    #[test]
    fn triangle_counts() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        // Subgraphs: 3 edges + 1 triangle = 4.
        assert_eq!(count_subgraphs(&g, 5), 4);
    }

    #[test]
    fn path_counts() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        // 3 edges, 2 P3s, 1 P4.
        assert_eq!(count_subgraphs(&g, 5), 6);
        assert_eq!(count_subgraphs(&g, 2), 3);
        assert_eq!(count_subgraphs(&g, 3), 5);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(4..12);
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in a + 1..n as u32 {
                    if rng.gen_bool(0.35) {
                        edges.push((a, b));
                    }
                }
            }
            let g = CsrGraph::from_edges(n, &edges);
            for k_max in 2..=5 {
                assert_eq!(
                    count_subgraphs(&g, k_max),
                    brute_force_count(&g, k_max),
                    "seed {seed} k_max {k_max}"
                );
            }
        }
    }

    #[test]
    fn each_subgraph_visited_exactly_once() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]);
        let mut seen = std::collections::HashSet::new();
        let mut scratch = EsuScratch::new(6);
        for root in 0..6 {
            scratch.enumerate_from_root(&g, root, 5, &mut |sub, _| {
                let mut key: Vec<u32> = sub.to_vec();
                key.sort_unstable();
                assert!(seen.insert(key), "duplicate subgraph {sub:?}");
            });
        }
        assert_eq!(seen.len() as u64, brute_force_count(&g, 5));
    }

    #[test]
    fn masks_passed_to_visitor_are_correct() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let mut scratch = EsuScratch::new(3);
        let mut masks = Vec::new();
        for root in 0..3 {
            scratch.enumerate_from_root(&g, root, 3, &mut |sub, mask| {
                masks.push((sub.to_vec(), mask));
                assert!(
                    is_connected(mask, sub.len()),
                    "visitor got disconnected mask"
                );
            });
        }
        // The triangle itself must appear with the full 3-vertex mask.
        assert!(masks.iter().any(|(s, m)| s.len() == 3 && *m == 0b111));
    }

    #[test]
    fn root_is_always_subgraph_minimum() {
        let g = ckpt_graph::generators::delaunay(200, 5);
        let mut scratch = EsuScratch::new(g.n_vertices());
        for root in 0..g.n_vertices() as u32 {
            scratch.enumerate_from_root(&g, root, 4, &mut |sub, _| {
                assert_eq!(*sub.iter().min().unwrap(), root);
            });
        }
    }
}
