//! Resumable ORANGES execution with checkpoint hooks.
//!
//! ORANGES computes the GDV of every vertex by enumerating all 2–5-vertex
//! graphlet instances. The run proceeds vertex-by-vertex in label order
//! (each step enumerates the subgraphs rooted at — i.e. whose minimum is —
//! the next vertex and bumps the counters of *all* member vertices). The
//! partially-filled GDV array between steps is exactly the evolving data
//! structure the paper checkpoints at high frequency: updates are sparse and
//! concentrated around the current root's neighborhood, which Gorder's
//! locality turns into contiguous dirty regions.

use crate::esu::EsuScratch;
use crate::gdv::Gdv;
use crate::orbits::OrbitTable;
use ckpt_graph::CsrGraph;

/// A resumable ORANGES computation over one graph.
pub struct OrangesRun<'g> {
    graph: &'g CsrGraph,
    gdv: Gdv,
    scratch: EsuScratch,
    next_root: u32,
    subgraphs_seen: u64,
}

impl<'g> OrangesRun<'g> {
    pub fn new(graph: &'g CsrGraph) -> Self {
        OrangesRun {
            graph,
            gdv: Gdv::new(graph.n_vertices()),
            scratch: EsuScratch::new(graph.n_vertices()),
            next_root: 0,
            subgraphs_seen: 0,
        }
    }

    /// Resume from a restored GDV byte buffer and a known progress point
    /// (the restart path after a failure).
    pub fn resume(graph: &'g CsrGraph, gdv_bytes: &[u8], next_root: u32) -> Option<Self> {
        let gdv = Gdv::from_bytes(gdv_bytes)?;
        if gdv.n_vertices() != graph.n_vertices() {
            return None;
        }
        Some(OrangesRun {
            graph,
            gdv,
            scratch: EsuScratch::new(graph.n_vertices()),
            next_root,
            subgraphs_seen: 0,
        })
    }

    /// The evolving GDV array (the checkpoint payload).
    pub fn gdv(&self) -> &Gdv {
        &self.gdv
    }

    /// Next unprocessed root vertex.
    pub fn next_root(&self) -> u32 {
        self.next_root
    }

    /// Fraction of roots processed, in [0, 1].
    pub fn progress(&self) -> f64 {
        self.next_root as f64 / self.graph.n_vertices().max(1) as f64
    }

    pub fn is_done(&self) -> bool {
        self.next_root as usize >= self.graph.n_vertices()
    }

    /// Total graphlet instances enumerated so far (this session).
    pub fn subgraphs_seen(&self) -> u64 {
        self.subgraphs_seen
    }

    /// Process up to `batch` root vertices; returns how many were processed
    /// (0 when done).
    pub fn step(&mut self, batch: usize) -> usize {
        let table = OrbitTable::global();
        let n = self.graph.n_vertices() as u32;
        let end = (self.next_root + batch as u32).min(n);
        let mut seen = 0u64;
        for root in self.next_root..end {
            let gdv = &mut self.gdv;
            self.scratch
                .enumerate_from_root(self.graph, root, 5, &mut |sub, mask| {
                    seen += 1;
                    for (i, &v) in sub.iter().enumerate() {
                        gdv.bump(v, table.orbit_of(sub.len(), mask, i));
                    }
                });
        }
        let processed = (end - self.next_root) as usize;
        self.next_root = end;
        self.subgraphs_seen += seen;
        processed
    }

    /// Process up to `batch` root vertices in parallel (the application is
    /// GPU-parallel in the paper; here roots fan out across a thread pool
    /// and counter bumps are atomic). Produces exactly the same GDV as the
    /// sequential [`step`](Self::step) — counter addition commutes — which
    /// the tests assert.
    pub fn step_par(&mut self, batch: usize) -> usize {
        use rayon::prelude::*;
        use std::sync::atomic::{AtomicU64, Ordering};

        let table = OrbitTable::global();
        let n = self.graph.n_vertices() as u32;
        let end = (self.next_root + batch as u32).min(n);
        let start = self.next_root;
        if start >= end {
            return 0;
        }
        let graph = self.graph;
        let seen = AtomicU64::new(0);
        let counts = self.gdv.as_atomic();
        (start..end).into_par_iter().for_each_init(
            || EsuScratch::new(graph.n_vertices()),
            |scratch, root| {
                let mut local = 0u64;
                scratch.enumerate_from_root(graph, root, 5, &mut |sub, mask| {
                    local += 1;
                    for (i, &v) in sub.iter().enumerate() {
                        let orbit = table.orbit_of(sub.len(), mask, i) as usize;
                        counts[v as usize * crate::orbits::N_ORBITS + orbit]
                            .fetch_add(1, Ordering::Relaxed);
                    }
                });
                seen.fetch_add(local, Ordering::Relaxed);
            },
        );
        self.next_root = end;
        self.subgraphs_seen += seen.load(Ordering::Relaxed);
        (end - start) as usize
    }

    /// Run to completion.
    pub fn run_to_completion(&mut self) {
        while !self.is_done() {
            self.step(1024);
        }
    }

    /// Run to completion using the parallel enumerator.
    pub fn run_to_completion_par(&mut self) {
        let n = self.graph.n_vertices();
        while !self.is_done() {
            self.step_par(n);
        }
    }

    /// [`run_with_checkpoints`](Self::run_with_checkpoints) using the
    /// parallel enumerator between checkpoints.
    pub fn run_with_checkpoints_par(
        &mut self,
        n_checkpoints: usize,
        mut on_checkpoint: impl FnMut(&[u8], u32),
    ) {
        assert!(n_checkpoints >= 1);
        let n = self.graph.n_vertices() as u32;
        for k in 1..=n_checkpoints as u32 {
            let target = (n as u64 * k as u64 / n_checkpoints as u64) as u32;
            while self.next_root < target {
                let batch = (target - self.next_root) as usize;
                self.step_par(batch);
            }
            on_checkpoint(self.gdv.as_bytes(), self.next_root);
        }
    }

    /// Evenly spaced checkpoint schedule: process the whole graph while
    /// calling `on_checkpoint(gdv_bytes, completed_roots)` `n_checkpoints`
    /// times, evenly distributed over the run (the paper's frequency
    /// scenario: one initial full checkpoint is the first call; the run ends
    /// at the last).
    pub fn run_with_checkpoints(
        &mut self,
        n_checkpoints: usize,
        mut on_checkpoint: impl FnMut(&[u8], u32),
    ) {
        assert!(n_checkpoints >= 1);
        let n = self.graph.n_vertices() as u32;
        for k in 1..=n_checkpoints as u32 {
            let target = (n as u64 * k as u64 / n_checkpoints as u64) as u32;
            while self.next_root < target {
                let batch = (target - self.next_root).min(1024) as usize;
                self.step(batch);
            }
            on_checkpoint(self.gdv.as_bytes(), self.next_root);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orbits::N_ORBITS;

    #[test]
    fn triangle_gdv() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let mut run = OrangesRun::new(&g);
        run.run_to_completion();
        // Each vertex: 2 edge-orbits (orbit 0), 1 triangle membership.
        let table = OrbitTable::global();
        let tri_orbit = table.orbit_of(3, 0b111, 0) as usize;
        for v in 0..3 {
            assert_eq!(run.gdv().row(v)[0], 2, "vertex {v} edge count");
            assert_eq!(run.gdv().row(v)[tri_orbit], 1, "vertex {v} triangle count");
        }
        assert_eq!(run.subgraphs_seen(), 4);
    }

    #[test]
    fn path4_center_vs_end_orbits() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut run = OrangesRun::new(&g);
        run.run_to_completion();
        // Orbit 0 (edge) counts are the degrees.
        assert_eq!(run.gdv().row(0)[0], 1);
        assert_eq!(run.gdv().row(1)[0], 2);
        // Symmetry of the path: rows of 0 and 3 match, rows of 1 and 2 match.
        assert_eq!(run.gdv().row(0), run.gdv().row(3));
        assert_eq!(run.gdv().row(1), run.gdv().row(2));
        assert_ne!(run.gdv().row(0), run.gdv().row(1));
    }

    #[test]
    fn orbit0_equals_degree_everywhere() {
        let g = ckpt_graph::generators::message_race(2000, 3);
        let mut run = OrangesRun::new(&g);
        run.run_to_completion();
        for v in 0..g.n_vertices() as u32 {
            assert_eq!(run.gdv().row(v)[0] as usize, g.degree(v), "vertex {v}");
        }
    }

    #[test]
    fn stepped_run_equals_single_run() {
        let g = ckpt_graph::generators::delaunay(400, 1);
        let mut a = OrangesRun::new(&g);
        a.run_to_completion();
        let mut b = OrangesRun::new(&g);
        while b.step(37) > 0 {}
        assert_eq!(a.gdv(), b.gdv());
    }

    #[test]
    fn gdv_total_counts_subgraph_memberships() {
        // Σ_v Σ_o GDV[v][o] = Σ_k k · (#connected induced k-subgraphs).
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let mut run = OrangesRun::new(&g);
        run.run_to_completion();
        let mut weighted = 0u64;
        let mut scratch = EsuScratch::new(5);
        for root in 0..5 {
            scratch.enumerate_from_root(&g, root, 5, &mut |sub, _| weighted += sub.len() as u64);
        }
        assert_eq!(run.gdv().total(), weighted);
    }

    #[test]
    fn checkpoint_schedule_is_even_and_monotonic() {
        let g = ckpt_graph::generators::hugebubbles(900, 2);
        let n = g.n_vertices() as u32;
        let mut run = OrangesRun::new(&g);
        let mut marks = Vec::new();
        run.run_with_checkpoints(10, |bytes, done| {
            assert_eq!(bytes.len(), g.n_vertices() * N_ORBITS * 4);
            marks.push(done);
        });
        assert_eq!(marks.len(), 10);
        assert!(marks.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*marks.last().unwrap(), n);
        assert!(run.is_done());
    }

    #[test]
    fn parallel_run_equals_serial() {
        let g = ckpt_graph::generators::delaunay(1200, 6);
        let mut serial = OrangesRun::new(&g);
        serial.run_to_completion();
        let mut par = OrangesRun::new(&g);
        par.run_to_completion_par();
        assert_eq!(par.gdv(), serial.gdv());
        assert_eq!(par.subgraphs_seen(), serial.subgraphs_seen());
    }

    #[test]
    fn parallel_checkpoint_snapshots_equal_serial() {
        let g = ckpt_graph::generators::message_race(1500, 8);
        let mut a = Vec::new();
        let mut b = Vec::new();
        OrangesRun::new(&g).run_with_checkpoints(6, |bytes, _| a.push(bytes.to_vec()));
        OrangesRun::new(&g).run_with_checkpoints_par(6, |bytes, _| b.push(bytes.to_vec()));
        assert_eq!(a, b);
    }

    #[test]
    fn resume_reproduces_uninterrupted_run() {
        let g = ckpt_graph::generators::unstructured_mesh(600, 4);
        // Uninterrupted.
        let mut full = OrangesRun::new(&g);
        full.run_to_completion();
        // Interrupted at ~half, checkpointed, resumed.
        let mut first = OrangesRun::new(&g);
        let half = (g.n_vertices() / 2) as u32;
        while first.next_root() < half {
            first.step(64);
        }
        let snapshot = first.gdv().as_bytes().to_vec();
        let mut resumed = OrangesRun::resume(&g, &snapshot, first.next_root()).unwrap();
        resumed.run_to_completion();
        assert_eq!(resumed.gdv(), full.gdv());
    }

    #[test]
    fn resume_rejects_wrong_graph() {
        let g = ckpt_graph::generators::delaunay(100, 0);
        let other = ckpt_graph::generators::delaunay(400, 0);
        let run = OrangesRun::new(&g);
        assert!(OrangesRun::resume(&other, run.gdv().as_bytes(), 0).is_none());
        assert!(OrangesRun::resume(&g, &[1, 2, 3], 0).is_none());
    }

    #[test]
    fn updates_between_checkpoints_are_sparse() {
        // The property the whole paper rests on: between consecutive
        // checkpoints only a small fraction of the GDV array changes.
        let g = ckpt_graph::generators::message_race(3000, 5);
        let mut run = OrangesRun::new(&g);
        let mut prev: Option<Vec<u8>> = None;
        let mut min_unchanged = f64::MAX;
        run.run_with_checkpoints(10, |bytes, _| {
            if let Some(p) = &prev {
                let same = bytes.iter().zip(p).filter(|(a, b)| a == b).count();
                min_unchanged = min_unchanged.min(same as f64 / bytes.len() as f64);
            }
            prev = Some(bytes.to_vec());
        });
        assert!(
            min_unchanged > 0.7,
            "expected sparse updates, worst checkpoint changed {:.0}%",
            (1.0 - min_unchanged) * 100.0
        );
    }
}
