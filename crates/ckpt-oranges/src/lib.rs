//! ORANGES — ORbit ANd Graphlet Enumeration at Scale.
//!
//! The paper's driver application: for every vertex of an input graph,
//! compute its graphlet degree vector (GDV) over all 2–5-vertex graphlets
//! (30 graphlets, 73 orbits). The evolving per-vertex counter array is the
//! data structure the checkpointing engine captures at high frequency.
//!
//! * [`orbits`] — derived graphlet/orbit classification tables;
//! * [`esu`] — exact-once enumeration of connected induced subgraphs
//!   (Wernicke's ESU);
//! * [`gdv`] — the flat GDV counter array with a zero-copy byte view;
//! * [`runner`] — resumable vertex-ordered execution with evenly spaced
//!   checkpoint hooks and a restart path.
//!
//! ```
//! use ckpt_oranges::OrangesRun;
//! let g = ckpt_graph::generators::delaunay(500, 1);
//! let mut run = OrangesRun::new(&g);
//! run.run_with_checkpoints(5, |gdv_bytes, done_roots| {
//!     // hand `gdv_bytes` to the checkpointing engine
//!     assert!(done_roots as usize <= g.n_vertices());
//!     assert_eq!(gdv_bytes.len(), g.n_vertices() * 73 * 4);
//! });
//! ```

pub mod esu;
pub mod gdv;
pub mod orbits;
pub mod runner;

pub use gdv::Gdv;
pub use orbits::{OrbitTable, N_GRAPHLETS, N_ORBITS};
pub use runner::OrangesRun;
