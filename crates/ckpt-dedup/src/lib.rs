//! Merkle-tree based GPU-accelerated de-duplication for incremental
//! checkpointing — the core contribution of Tan et al., ICPP'23.
//!
//! High-frequency checkpointing workloads (adjoint computations,
//! reproducibility capture, lineage stores) must persist an entire record of
//! checkpoints, not just the latest. This crate de-duplicates each new
//! checkpoint against everything seen so far, at chunk granularity, directly
//! on the (simulated) GPU where the data lives:
//!
//! * chunks are hashed and classified as **first occurrences**, **fixed
//!   duplicates** (unchanged in place) or **shifted duplicates** (seen
//!   elsewhere in the record) — Algorithm 1 of the paper;
//! * contiguous runs with the same classification are consolidated bottom-up
//!   through a Merkle tree into a near-minimal set of regions, shrinking
//!   metadata by orders of magnitude versus per-chunk lists;
//! * the surviving metadata and unique chunks are serialized into one
//!   contiguous buffer and moved host-side with a single transfer.
//!
//! # Quick start
//!
//! ```
//! use ckpt_dedup::prelude::*;
//!
//! let device = gpu_sim::Device::a100();
//! let mut ckpt = TreeCheckpointer::new(device, TreeConfig::new(64));
//!
//! let mut data: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
//! let out0 = ckpt.checkpoint(&data);          // initial checkpoint: full
//! data[100] ^= 1;                             // sparse update
//! let out1 = ckpt.checkpoint(&data);          // tiny incremental diff
//! assert!(out1.diff.stored_bytes() < out0.diff.stored_bytes() / 10);
//!
//! // Reconstruct any version from the record.
//! let versions = restore_record(&[out0.diff, out1.diff]).unwrap();
//! assert_eq!(versions[1], data);
//! ```

pub mod chunking;
pub mod diff;
pub mod frame;
pub mod labels;
pub mod methods;
pub mod random_access;
pub mod record;
pub mod restart;
pub mod restore;
pub mod stats;
pub mod tree;
pub(crate) mod util;

pub use chunking::Chunking;
pub use ckpt_telemetry::{StageBreakdown, StageSample};
pub use diff::{Diff, MethodKind, ShiftRegion};
pub use frame::{
    decode_frame, decode_frame_expecting, decode_payload, encode_frame, encode_frame_compressed,
    looks_framed, looks_parity, looks_rankdedup, verify_frame, FrameError, FrameHeader,
    ParityMember, ParityRecord, RankDedupEntry, RankDedupRecord, RemoteRef, FRAME_EXT_LEN,
    FRAME_HEADER_LEN, FRAME_MAGIC, FRAME_VERSION,
};
pub use labels::Label;
pub use methods::basic::BasicCheckpointer;
pub use methods::full::FullCheckpointer;
pub use methods::list::ListCheckpointer;
pub use methods::tree::{TreeCheckpointer, TreeConfig};
pub use methods::tree_naive::NaiveTreeCheckpointer;
pub use methods::tree_serial::SerialTreeCheckpointer;
pub use methods::{CheckpointOutput, Checkpointer};
pub use random_access::RecordReader;
pub use record::{run_record, CheckpointRecord};
pub use restart::{
    is_self_contained, restore_latest_single_pass, restore_version_single_pass, RestartStats,
    SinglePassRestore,
};
pub use restore::{restore_latest, restore_record, restore_record_from, RestoreError, Restorer};
pub use stats::{CheckpointStats, RecordStats};
pub use tree::{MerkleTree, TreeShape};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::methods::basic::BasicCheckpointer;
    pub use crate::methods::full::FullCheckpointer;
    pub use crate::methods::list::ListCheckpointer;
    pub use crate::methods::tree::{TreeCheckpointer, TreeConfig};
    pub use crate::methods::tree_naive::NaiveTreeCheckpointer;
    pub use crate::methods::tree_serial::SerialTreeCheckpointer;
    pub use crate::methods::{CheckpointOutput, Checkpointer};
    pub use crate::random_access::RecordReader;
    pub use crate::record::{run_record, CheckpointRecord};
    pub use crate::restart::{
        is_self_contained, restore_latest_single_pass, restore_version_single_pass,
        SinglePassRestore,
    };
    pub use crate::restore::{restore_latest, restore_record, restore_record_from, Restorer};
    pub use crate::stats::{CheckpointStats, RecordStats};
    pub use crate::MethodKind;
}
