//! Small utilities for parallel kernels.

use std::cell::UnsafeCell;

/// A mutable slice shareable across the threads of one parallel kernel.
///
/// Rust's borrow rules (correctly) forbid `&mut [T]` from being captured by a
/// `Fn(usize)` kernel body running on many threads. GPU code has no such
/// guard: every thread writes disjoint elements and the kernel boundary is
/// the synchronization point. This wrapper encodes that contract.
///
/// # Safety contract
///
/// * During a kernel, each index is either **owned by a single thread** (which
///   may read and write it freely) or **read-only** for every thread.
/// * The kernel's fork-join boundary (the `parallel_for` call returning) is a
///   happens-before edge, so reads after the kernel see all writes.
pub struct SharedSliceMut<'a, T> {
    data: &'a [UnsafeCell<T>],
}

// SAFETY: see the struct-level contract; all aliasing is managed by callers
// obeying the one-writer-per-index rule within a kernel.
unsafe impl<T: Send + Sync> Sync for SharedSliceMut<'_, T> {}
unsafe impl<T: Send + Sync> Send for SharedSliceMut<'_, T> {}

impl<'a, T> SharedSliceMut<'a, T> {
    /// Wrap an exclusive slice for the duration of a kernel.
    pub fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: `UnsafeCell<T>` has the same layout as `T`; we hold the
        // unique borrow, so reinterpreting it as a shared slice of cells is
        // sound.
        let data = unsafe {
            std::slice::from_raw_parts(slice.as_ptr() as *const UnsafeCell<T>, slice.len())
        };
        SharedSliceMut { data }
    }

    #[inline]
    #[allow(dead_code)] // part of the wrapper's API; exercised by tests
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Write `value` at `index`.
    ///
    /// # Safety
    /// No other thread may access `index` during this kernel.
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        *self.data[index].get() = value;
    }

    /// Read the value at `index`.
    ///
    /// # Safety
    /// No thread may be writing `index` during this kernel.
    #[inline]
    pub unsafe fn read(&self, index: usize) -> T
    where
        T: Copy,
    {
        *self.data[index].get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn parallel_disjoint_writes() {
        let mut v = vec![0u64; 10_000];
        {
            let shared = SharedSliceMut::new(&mut v);
            (0..shared.len()).into_par_iter().for_each(|i| {
                // SAFETY: each index written exactly once.
                unsafe { shared.write(i, i as u64 * 3) };
            });
        }
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 * 3));
    }

    #[test]
    fn read_back_within_later_kernel() {
        let mut v: Vec<u32> = (0..1000).collect();
        let shared = SharedSliceMut::new(&mut v);
        let sum: u64 = (0..shared.len())
            .into_par_iter()
            // SAFETY: read-only kernel, no writers.
            .map(|i| unsafe { shared.read(i) } as u64)
            .sum();
        assert_eq!(sum, 999 * 1000 / 2);
    }
}
