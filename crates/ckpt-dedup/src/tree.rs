//! Flattened complete-binary Merkle tree over the checkpoint's chunks.
//!
//! The paper stores Merkle trees "in a flattened array and identif\[ies\]
//! parent-child relationships using simple formulas based on the offset in
//! the array" (§2.4). For `n` leaf chunks the tree has exactly `2n - 1` nodes
//! in heap layout: children of node `i` are `2i + 1` and `2i + 2`. Because
//! `2n - 1` is odd, every interior node has exactly two children — the tree is
//! *complete*: all levels full except the deepest, which is filled
//! left-to-right.
//!
//! Chunks are numbered in data order. For non-power-of-two `n` the deepest
//! level holds the first chunks and the tail of chunks sits one level up, so
//! the mapping between chunk index and heap index needs the usual wrap-around
//! formulas, all implemented (and property-tested) here.

use ckpt_hash::Digest128;

/// Index algebra for a complete binary tree over `n_chunks` leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeShape {
    n_chunks: usize,
    /// Heap index of the first node on the deepest (possibly partial) level:
    /// `2^h - 1` where `h = ceil(log2(n_chunks))`.
    deep_start: usize,
    /// Number of leaves on the deepest level.
    deep_leaves: usize,
}

impl TreeShape {
    /// Shape of the tree over `n_chunks ≥ 1` leaves.
    pub fn new(n_chunks: usize) -> Self {
        assert!(n_chunks >= 1, "a Merkle tree needs at least one chunk");
        // h = ceil(log2(n_chunks)), with h = 0 for the single-chunk tree.
        let h = if n_chunks == 1 {
            0
        } else {
            usize::BITS - (n_chunks - 1).leading_zeros()
        };
        let deep_start = (1usize << h) - 1;
        let deep_leaves = (2 * n_chunks - 1) - deep_start;
        TreeShape {
            n_chunks,
            deep_start,
            deep_leaves,
        }
    }

    /// Number of leaf chunks.
    #[inline]
    pub fn n_chunks(&self) -> usize {
        self.n_chunks
    }

    /// Total nodes in the flattened array (`2n - 1`).
    #[inline]
    pub fn n_nodes(&self) -> usize {
        2 * self.n_chunks - 1
    }

    /// Number of interior nodes (`n - 1`).
    #[inline]
    pub fn n_interior(&self) -> usize {
        self.n_chunks - 1
    }

    /// Parent of node `i` (`i > 0`).
    #[inline]
    pub fn parent(&self, i: usize) -> usize {
        debug_assert!(i > 0 && i < self.n_nodes());
        (i - 1) / 2
    }

    /// Left child of interior node `i`.
    #[inline]
    pub fn left(&self, i: usize) -> usize {
        2 * i + 1
    }

    /// Right child of interior node `i`.
    #[inline]
    pub fn right(&self, i: usize) -> usize {
        2 * i + 2
    }

    /// Whether node `i` is a leaf. Leaves occupy the last `n` heap slots.
    #[inline]
    pub fn is_leaf(&self, i: usize) -> bool {
        i >= self.n_interior()
    }

    /// Heap index of the leaf holding chunk `c` (data order).
    #[inline]
    pub fn leaf_of_chunk(&self, c: usize) -> usize {
        debug_assert!(c < self.n_chunks);
        let i = self.deep_start + c;
        if i < self.n_nodes() {
            i
        } else {
            i - self.n_chunks
        }
    }

    /// Chunk index (data order) of leaf node `i`.
    #[inline]
    pub fn chunk_of_leaf(&self, i: usize) -> usize {
        debug_assert!(self.is_leaf(i), "node {i} is interior");
        if i >= self.deep_start {
            i - self.deep_start
        } else {
            i + self.n_chunks - self.deep_start
        }
    }

    /// The contiguous chunk range `[start, end)` covered by node `i`.
    ///
    /// Left-to-right tree order equals data order, so every subtree covers a
    /// contiguous run of chunks. O(depth).
    pub fn chunk_range(&self, i: usize) -> (usize, usize) {
        let mut lo = i;
        while !self.is_leaf(lo) {
            lo = self.left(lo);
        }
        let mut hi = i;
        while !self.is_leaf(hi) {
            hi = self.right(hi);
        }
        (self.chunk_of_leaf(lo), self.chunk_of_leaf(hi) + 1)
    }

    /// Number of chunks covered by node `i`.
    pub fn span(&self, i: usize) -> usize {
        let (lo, hi) = self.chunk_range(i);
        hi - lo
    }

    /// Interior-node levels from the bottom up: each item is the heap-index
    /// range `[start, end)` of one level, deepest interior level first, root
    /// level (`[0, 1)`) last. Level-by-level iteration is how both the
    /// consolidation passes of Algorithm 1 parallelize.
    pub fn interior_levels_bottom_up(&self) -> Vec<(usize, usize)> {
        let n_int = self.n_interior();
        if n_int == 0 {
            return Vec::new();
        }
        let mut levels = Vec::new();
        let mut depth_start = 0usize; // level d starts at 2^d - 1
        let mut width = 1usize;
        while depth_start < n_int {
            let end = (depth_start + width).min(n_int);
            levels.push((depth_start, end));
            depth_start += width;
            width *= 2;
        }
        levels.reverse();
        levels
    }

    /// Depth of node `i` (root = 0).
    pub fn depth(&self, i: usize) -> u32 {
        (usize::BITS - 1) - (i + 1).leading_zeros()
    }
}

/// A Merkle tree: shape plus the per-node digest array, retained across
/// checkpoints so leaf hashes from the previous checkpoint are available for
/// the fixed-duplicate test (Algorithm 1, line 3).
#[derive(Debug, Clone)]
pub struct MerkleTree {
    shape: TreeShape,
    digests: Vec<Digest128>,
}

impl MerkleTree {
    /// An all-zero tree over `n_chunks` leaves.
    pub fn new(n_chunks: usize) -> Self {
        let shape = TreeShape::new(n_chunks);
        MerkleTree {
            shape,
            digests: vec![Digest128::ZERO; shape.n_nodes()],
        }
    }

    #[inline]
    pub fn shape(&self) -> &TreeShape {
        &self.shape
    }

    #[inline]
    pub fn get(&self, node: usize) -> Digest128 {
        self.digests[node]
    }

    #[inline]
    pub fn set(&mut self, node: usize, d: Digest128) {
        self.digests[node] = d;
    }

    /// Raw digest storage (device-side view for parallel kernels).
    pub fn digests(&self) -> &[Digest128] {
        &self.digests
    }

    pub fn digests_mut(&mut self) -> &mut [Digest128] {
        &mut self.digests
    }

    /// Bytes of device memory the tree occupies.
    pub fn memory_bytes(&self) -> usize {
        self.digests.len() * std::mem::size_of::<Digest128>()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop, clippy::explicit_counter_loop)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_chunk_tree() {
        let s = TreeShape::new(1);
        assert_eq!(s.n_nodes(), 1);
        assert_eq!(s.n_interior(), 0);
        assert!(s.is_leaf(0));
        assert_eq!(s.leaf_of_chunk(0), 0);
        assert_eq!(s.chunk_of_leaf(0), 0);
        assert_eq!(s.chunk_range(0), (0, 1));
        assert!(s.interior_levels_bottom_up().is_empty());
    }

    #[test]
    fn power_of_two_layout() {
        // n = 8: classic heap, leaves at 7..=14 in data order.
        let s = TreeShape::new(8);
        assert_eq!(s.n_nodes(), 15);
        for c in 0..8 {
            assert_eq!(s.leaf_of_chunk(c), 7 + c);
            assert_eq!(s.chunk_of_leaf(7 + c), c);
        }
        assert_eq!(s.chunk_range(0), (0, 8));
        assert_eq!(s.chunk_range(1), (0, 4));
        assert_eq!(s.chunk_range(2), (4, 8));
        assert_eq!(s.chunk_range(6), (6, 8));
    }

    #[test]
    fn non_power_of_two_layout() {
        // n = 6: 11 nodes; deepest level starts at 7 with 4 leaves
        // (chunks 0..4), then chunks 4,5 are nodes 5,6 one level up.
        let s = TreeShape::new(6);
        assert_eq!(s.n_nodes(), 11);
        assert_eq!(s.leaf_of_chunk(0), 7);
        assert_eq!(s.leaf_of_chunk(3), 10);
        assert_eq!(s.leaf_of_chunk(4), 5);
        assert_eq!(s.leaf_of_chunk(5), 6);
        // Interior nodes: 0..=4.
        for i in 0..5 {
            assert!(!s.is_leaf(i), "node {i}");
        }
        for i in 5..11 {
            assert!(s.is_leaf(i), "node {i}");
        }
        assert_eq!(s.chunk_range(0), (0, 6));
        assert_eq!(s.chunk_range(1), (0, 4));
        assert_eq!(s.chunk_range(2), (4, 6));
        assert_eq!(s.chunk_range(3), (0, 2));
        assert_eq!(s.chunk_range(4), (2, 4));
    }

    #[test]
    fn levels_bottom_up_cover_all_interior_nodes_once() {
        for n in [2usize, 3, 5, 6, 8, 13, 64, 100] {
            let s = TreeShape::new(n);
            let levels = s.interior_levels_bottom_up();
            let mut seen = vec![false; s.n_interior()];
            for (a, b) in levels {
                for i in a..b {
                    assert!(!seen[i], "node {i} visited twice (n={n})");
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&x| x), "missing interior nodes (n={n})");
        }
    }

    #[test]
    fn levels_visit_children_before_parents() {
        for n in [3usize, 6, 17, 100] {
            let s = TreeShape::new(n);
            let mut order = vec![usize::MAX; s.n_interior()];
            let mut step = 0;
            for (a, b) in s.interior_levels_bottom_up() {
                for i in a..b {
                    order[i] = step;
                }
                step += 1;
            }
            for i in 0..s.n_interior() {
                for child in [s.left(i), s.right(i)] {
                    if !s.is_leaf(child) {
                        assert!(order[child] < order[i], "n={n}, parent {i}, child {child}");
                    }
                }
            }
        }
    }

    #[test]
    fn depth_formula() {
        let s = TreeShape::new(8);
        assert_eq!(s.depth(0), 0);
        assert_eq!(s.depth(1), 1);
        assert_eq!(s.depth(2), 1);
        assert_eq!(s.depth(3), 2);
        assert_eq!(s.depth(7), 3);
        assert_eq!(s.depth(14), 3);
    }

    #[test]
    fn merkle_tree_storage() {
        let mut t = MerkleTree::new(4);
        assert_eq!(t.digests().len(), 7);
        t.set(3, Digest128::new(1, 2));
        assert_eq!(t.get(3), Digest128::new(1, 2));
        assert_eq!(t.memory_bytes(), 7 * 16);
    }

    proptest! {
        #[test]
        fn leaf_chunk_mapping_is_a_bijection(n in 1usize..2000) {
            let s = TreeShape::new(n);
            let mut seen = vec![false; s.n_nodes()];
            for c in 0..n {
                let leaf = s.leaf_of_chunk(c);
                prop_assert!(s.is_leaf(leaf));
                prop_assert!(!seen[leaf]);
                seen[leaf] = true;
                prop_assert_eq!(s.chunk_of_leaf(leaf), c);
            }
            // Exactly the leaves were hit.
            for i in 0..s.n_nodes() {
                prop_assert_eq!(seen[i], s.is_leaf(i));
            }
        }

        #[test]
        fn chunk_ranges_partition_at_every_node(n in 2usize..1000) {
            let s = TreeShape::new(n);
            for i in 0..s.n_interior() {
                let (lo, hi) = s.chunk_range(i);
                let (llo, lhi) = s.chunk_range(s.left(i));
                let (rlo, rhi) = s.chunk_range(s.right(i));
                // Children partition the parent's range, left before right.
                prop_assert_eq!(lo, llo);
                prop_assert_eq!(lhi, rlo);
                prop_assert_eq!(rhi, hi);
            }
            prop_assert_eq!(s.chunk_range(0), (0, n));
        }

        #[test]
        fn parent_child_inverse(n in 2usize..1000, node in 1usize..1999) {
            let s = TreeShape::new(n);
            prop_assume!(node < s.n_nodes());
            let p = s.parent(node);
            prop_assert!(s.left(p) == node || s.right(p) == node);
        }
    }
}
