//! Random-access reconstruction: read any byte range of any checkpoint
//! version directly from the diff record, without materializing whole
//! checkpoints.
//!
//! The paper's §5 lists "scalable reconstruction techniques that efficiently
//! collect scattered compact regions from multiple previous checkpoints" as
//! future work. This module implements one: a per-version interval index
//! over the diff's regions. A read of `(version, byte range)` walks the
//! region that covers each position —
//!
//! * **first occurrence** → the bytes come from that diff's payload;
//! * **shifted duplicate** → the read is redirected to the referenced
//!   checkpoint at the referenced node's range;
//! * **not covered by any region (fixed duplicate)** → the read is
//!   redirected to the same range of the previous version —
//!
//! recursing until every sub-range lands in payload bytes. Cost is
//! proportional to the bytes read times the redirection depth, never to the
//! checkpoint size, which is what makes selective restarts and lineage
//! queries cheap on multi-gigabyte records.

use crate::chunking::Chunking;
use crate::diff::{Diff, MethodKind};
use crate::restore::RestoreError;
use crate::tree::TreeShape;

/// Where one contiguous region of a version's bytes comes from.
#[derive(Debug, Clone, Copy)]
enum Source {
    /// Offset into this diff's (decoded) payload.
    Payload { payload_off: usize },
    /// Redirect to `(ckpt, byte offset)`.
    Redirect { ckpt: u32, src_off: usize },
}

/// One indexed region: bytes `[start, start + len)` of the version.
#[derive(Debug, Clone, Copy)]
struct Region {
    start: usize,
    len: usize,
    source: Source,
}

/// Interval index over one version's diff.
struct VersionIndex {
    /// Regions sorted by `start`, non-overlapping.
    regions: Vec<Region>,
    /// Decoded payload (decompressed once at index build).
    payload: Vec<u8>,
}

impl VersionIndex {
    /// Binary-search the region covering `pos`, if any.
    fn covering(&self, pos: usize) -> Option<&Region> {
        let idx = self.regions.partition_point(|r| r.start <= pos);
        let r = &self.regions[..idx].last()?;
        (pos < r.start + r.len).then_some(r)
    }

    /// The next region start after `pos` (bounds gap scans).
    fn next_start_after(&self, pos: usize) -> Option<usize> {
        let idx = self.regions.partition_point(|r| r.start <= pos);
        self.regions.get(idx).map(|r| r.start)
    }
}

/// Random-access reader over an ordered record of diffs.
pub struct RecordReader {
    data_len: usize,
    versions: Vec<VersionIndex>,
    /// Defensive bound on redirect depth (see [`Self::read_at`]).
    max_fuel: usize,
}

impl RecordReader {
    /// Build the index from an ordered record (same validation rules as
    /// [`crate::restore::restore_record`]). Supports the region-based
    /// methods (`Tree`, `List`) and `Full`; `Basic` records are expressible
    /// too (each changed chunk becomes a payload region).
    pub fn build(diffs: &[Diff]) -> Result<RecordReader, RestoreError> {
        let mut versions = Vec::with_capacity(diffs.len());
        let mut geometry: Option<(usize, usize, MethodKind)> = None;
        for (index, diff) in diffs.iter().enumerate() {
            if diff.ckpt_id as usize != index {
                return Err(RestoreError::OutOfOrder {
                    index,
                    ckpt_id: diff.ckpt_id,
                });
            }
            match geometry {
                None => {
                    geometry = Some((diff.data_len as usize, diff.chunk_size as usize, diff.kind))
                }
                Some((len, cs, kind)) => {
                    if kind != diff.kind {
                        return Err(RestoreError::MixedKinds {
                            expected: kind,
                            found: diff.kind,
                        });
                    }
                    if len != diff.data_len as usize || cs != diff.chunk_size as usize {
                        return Err(RestoreError::GeometryChanged);
                    }
                }
            }
            versions.push(Self::index_one(diff)?);
        }
        let data_len = geometry.map(|(l, _, _)| l).unwrap_or(0);
        // Redirect chains are acyclic on well-formed records; their depth is
        // bounded by the versions traversed times the tree height (nested
        // same-checkpoint twins resolve one level at a time — highly
        // self-similar data genuinely reaches that bound).
        let n_chunks = geometry
            .map(|(l, cs, _)| l.div_ceil(cs.max(1)).max(1))
            .unwrap_or(1);
        let height = usize::BITS as usize - n_chunks.leading_zeros() as usize + 1;
        let max_fuel = (diffs.len() + 1) * (2 * height + 6);
        Ok(RecordReader {
            data_len,
            versions,
            max_fuel,
        })
    }

    fn index_one(diff: &Diff) -> Result<VersionIndex, RestoreError> {
        let payload = crate::restore::decoded_payload(diff)?.into_owned();
        let data_len = diff.data_len as usize;
        let ck = Chunking::new(data_len, diff.chunk_size as usize);
        let mut regions = Vec::new();

        match diff.kind {
            MethodKind::Full => {
                if payload.len() != data_len {
                    return Err(RestoreError::PayloadTruncated {
                        ckpt_id: diff.ckpt_id,
                    });
                }
                regions.push(Region {
                    start: 0,
                    len: data_len,
                    source: Source::Payload { payload_off: 0 },
                });
            }
            MethodKind::Basic => {
                let mut payload_off = 0usize;
                for c in 0..ck.n_chunks() {
                    if crate::diff::bitmap::get(&diff.bitmap, c) {
                        let (a, b) = ck.byte_range(c);
                        if payload_off + (b - a) > payload.len() {
                            return Err(RestoreError::PayloadTruncated {
                                ckpt_id: diff.ckpt_id,
                            });
                        }
                        regions.push(Region {
                            start: a,
                            len: b - a,
                            source: Source::Payload { payload_off },
                        });
                        payload_off += b - a;
                    }
                }
            }
            MethodKind::List | MethodKind::Tree => {
                let shape = TreeShape::new(ck.n_chunks());
                let mut payload_off = 0usize;
                for &node in &diff.first_regions {
                    let (clo, chi) = shape.chunk_range(node as usize);
                    let (a, b) = ck.byte_range_of_chunks(clo, chi);
                    if payload_off + (b - a) > payload.len() {
                        return Err(RestoreError::PayloadTruncated {
                            ckpt_id: diff.ckpt_id,
                        });
                    }
                    regions.push(Region {
                        start: a,
                        len: b - a,
                        source: Source::Payload { payload_off },
                    });
                    payload_off += b - a;
                }
                for s in &diff.shift_regions {
                    let (dlo, dhi) = shape.chunk_range(s.node as usize);
                    let (da, db) = ck.byte_range_of_chunks(dlo, dhi);
                    let (slo, shi) = shape.chunk_range(s.ref_node as usize);
                    let (sa, sb) = ck.byte_range_of_chunks(slo, shi);
                    if db - da != sb - sa {
                        return Err(RestoreError::SpanMismatch {
                            node: s.node,
                            ref_node: s.ref_node,
                        });
                    }
                    regions.push(Region {
                        start: da,
                        len: db - da,
                        source: Source::Redirect {
                            ckpt: s.ref_ckpt,
                            src_off: sa,
                        },
                    });
                }
            }
        }
        regions.sort_unstable_by_key(|r| r.start);
        for w in regions.windows(2) {
            if w[0].start + w[0].len > w[1].start {
                return Err(RestoreError::UnresolvableShifts {
                    ckpt_id: diff.ckpt_id,
                    remaining: 0,
                });
            }
        }
        Ok(VersionIndex { regions, payload })
    }

    /// Number of indexed versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Length of every version's buffer.
    pub fn data_len(&self) -> usize {
        self.data_len
    }

    /// Read `version`'s bytes `[offset, offset + out.len())` into `out`.
    pub fn read_at(&self, version: u32, offset: usize, out: &mut [u8]) -> Result<(), RestoreError> {
        if version as usize >= self.versions.len() {
            return Err(RestoreError::ForwardReference {
                ckpt_id: version,
                ref_ckpt: version,
            });
        }
        if offset + out.len() > self.data_len {
            return Err(RestoreError::PayloadTruncated { ckpt_id: version });
        }
        // Redirection depth is bounded by the acyclicity of references, but a
        // corrupt record could loop; cap defensively.
        self.read_inner(version, offset, out, self.max_fuel)
    }

    /// Convenience: read a whole version.
    pub fn read_version(&self, version: u32) -> Result<Vec<u8>, RestoreError> {
        let mut out = vec![0u8; self.data_len];
        self.read_at(version, 0, &mut out)?;
        Ok(out)
    }

    fn read_inner(
        &self,
        version: u32,
        offset: usize,
        out: &mut [u8],
        fuel: usize,
    ) -> Result<(), RestoreError> {
        if fuel == 0 {
            return Err(RestoreError::UnresolvableShifts {
                ckpt_id: version,
                remaining: 1,
            });
        }
        let vi = &self.versions[version as usize];
        let mut pos = offset;
        let end = offset + out.len();
        while pos < end {
            let (run_len, action) = match vi.covering(pos) {
                Some(r) => {
                    let run = (r.start + r.len - pos).min(end - pos);
                    (run, Some((*r, pos - r.start)))
                }
                None => {
                    // A gap: fixed-duplicate bytes from the previous version.
                    let gap_end = vi.next_start_after(pos).unwrap_or(self.data_len).min(end);
                    (gap_end - pos, None)
                }
            };
            let dst = &mut out[pos - offset..pos - offset + run_len];
            match action {
                Some((r, into)) => match r.source {
                    Source::Payload { payload_off } => {
                        dst.copy_from_slice(
                            &vi.payload[payload_off + into..payload_off + into + run_len],
                        );
                    }
                    Source::Redirect { ckpt, src_off } => {
                        if ckpt as usize >= self.versions.len() {
                            return Err(RestoreError::ForwardReference {
                                ckpt_id: version,
                                ref_ckpt: ckpt,
                            });
                        }
                        self.read_inner(ckpt, src_off + into, dst, fuel - 1)?;
                    }
                },
                None => {
                    if version == 0 {
                        // Gaps in version 0 are zero bytes (the initial
                        // buffer before any region wrote it).
                        dst.fill(0);
                    } else {
                        self.read_inner(version - 1, pos, dst, fuel - 1)?;
                    }
                }
            }
            pos += run_len;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::tree::{TreeCheckpointer, TreeConfig};
    use crate::methods::Checkpointer;
    use crate::restore::restore_record;
    use gpu_sim::Device;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn record(seed: u64, n_versions: usize) -> (Vec<Vec<u8>>, Vec<Diff>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = 96 * 64;
        let mut data: Vec<u8> = (0..len).map(|_| rng.gen_range(0..9u8)).collect();
        let mut m = TreeCheckpointer::new(Device::a100(), TreeConfig::new(64));
        let mut snaps = Vec::new();
        let mut diffs = Vec::new();
        for _ in 0..n_versions {
            snaps.push(data.clone());
            diffs.push(m.checkpoint(&data).diff);
            // Sparse writes + a block move.
            for _ in 0..20 {
                let at = rng.gen_range(0..len);
                data[at] = rng.gen_range(0..9u8);
            }
            let src = rng.gen_range(0..len / 64 - 4) * 64;
            let dst = rng.gen_range(0..len / 64 - 4) * 64;
            let tmp = data[src..src + 4 * 64].to_vec();
            data[dst..dst + 4 * 64].copy_from_slice(&tmp);
        }
        (snaps, diffs)
    }

    #[test]
    fn whole_version_reads_match_full_restore() {
        let (snaps, diffs) = record(1, 6);
        let reader = RecordReader::build(&diffs).unwrap();
        let full = restore_record(&diffs).unwrap();
        for v in 0..diffs.len() as u32 {
            assert_eq!(reader.read_version(v).unwrap(), full[v as usize]);
            assert_eq!(full[v as usize], snaps[v as usize]);
        }
    }

    #[test]
    fn random_range_reads_match() {
        let (snaps, diffs) = record(2, 5);
        let reader = RecordReader::build(&diffs).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..300 {
            let v = rng.gen_range(0..diffs.len()) as u32;
            let off = rng.gen_range(0..reader.data_len());
            let len = rng.gen_range(0..=(reader.data_len() - off).min(500));
            let mut out = vec![0u8; len];
            reader.read_at(v, off, &mut out).unwrap();
            assert_eq!(
                out,
                &snaps[v as usize][off..off + len],
                "v{v} off {off} len {len}"
            );
        }
    }

    #[test]
    fn out_of_bounds_read_rejected() {
        let (_, diffs) = record(3, 2);
        let reader = RecordReader::build(&diffs).unwrap();
        let mut out = vec![0u8; 16];
        assert!(reader.read_at(5, 0, &mut out).is_err()); // no such version
        assert!(reader.read_at(0, reader.data_len() - 8, &mut out).is_err()); // past end
    }

    #[test]
    fn works_for_full_and_basic_records() {
        use crate::methods::basic::BasicCheckpointer;
        use crate::methods::full::FullCheckpointer;
        let (snaps, _) = record(4, 4);
        for kind in 0..2 {
            let mut m: Box<dyn Checkpointer> = if kind == 0 {
                Box::new(FullCheckpointer::new(Device::a100(), 64))
            } else {
                Box::new(BasicCheckpointer::new(Device::a100(), 64))
            };
            let diffs: Vec<_> = snaps.iter().map(|s| m.checkpoint(s).diff).collect();
            let reader = RecordReader::build(&diffs).unwrap();
            for (v, snap) in snaps.iter().enumerate() {
                assert_eq!(
                    &reader.read_version(v as u32).unwrap(),
                    snap,
                    "kind {kind} v{v}"
                );
            }
        }
    }

    #[test]
    fn works_with_compressed_payloads() {
        let mut data = vec![7u8; 64 * 64];
        let cfg = TreeConfig::new(64).with_payload_codec("zstd");
        let mut m = TreeCheckpointer::new(Device::a100(), cfg);
        let d0 = m.checkpoint(&data).diff;
        data[100] = 1;
        let d1 = m.checkpoint(&data).diff;
        let reader = RecordReader::build(&[d0, d1]).unwrap();
        assert_eq!(reader.read_version(1).unwrap(), data);
        let mut byte = [0u8; 1];
        reader.read_at(1, 100, &mut byte).unwrap();
        assert_eq!(byte[0], 1);
    }

    #[test]
    fn corrupt_cyclic_record_exhausts_fuel_instead_of_hanging() {
        use crate::diff::ShiftRegion;
        // Hand-built degenerate record: version 0 where node 1 references
        // node 2 and node 2 references node 1 (cycle).
        let d = Diff {
            kind: MethodKind::Tree,
            ckpt_id: 0,
            data_len: 128,
            chunk_size: 64,
            first_regions: vec![],
            shift_regions: vec![
                ShiftRegion {
                    node: 1,
                    ref_node: 2,
                    ref_ckpt: 0,
                },
                ShiftRegion {
                    node: 2,
                    ref_node: 1,
                    ref_ckpt: 0,
                },
            ],
            bitmap: vec![],
            payload_codec: 0,
            payload: vec![],
        };
        let reader = RecordReader::build(&[d]).unwrap();
        let mut out = vec![0u8; 128];
        assert!(matches!(
            reader.read_at(0, 0, &mut out),
            Err(RestoreError::UnresolvableShifts { .. })
        ));
    }
}
