//! Fixed-size chunking of checkpoint buffers.
//!
//! The paper splits each checkpoint into fine-grain chunks of tens to
//! hundreds of bytes (32–512 B in the evaluation) and hashes each chunk. The
//! final chunk may be shorter when the data length is not a multiple of the
//! chunk size.

/// Chunking geometry for a checkpoint buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunking {
    data_len: usize,
    chunk_size: usize,
}

impl Chunking {
    /// The paper requires the chunk size to exceed twice the 16-byte digest
    /// size, "so long as the chunk size exceeds 32 bytes, the cost of
    /// computing an inner node is lower than that of a leaf node" (§2.4).
    pub const MIN_CHUNK_SIZE: usize = 32;

    /// Create a chunking of `data_len > 0` bytes into chunks of `chunk_size`.
    ///
    /// # Panics
    /// If `data_len == 0` or `chunk_size < MIN_CHUNK_SIZE`.
    pub fn new(data_len: usize, chunk_size: usize) -> Self {
        assert!(data_len > 0, "cannot checkpoint an empty buffer");
        assert!(
            chunk_size >= Self::MIN_CHUNK_SIZE,
            "chunk size {chunk_size} below minimum {}",
            Self::MIN_CHUNK_SIZE
        );
        Chunking {
            data_len,
            chunk_size,
        }
    }

    #[inline]
    pub fn data_len(&self) -> usize {
        self.data_len
    }

    #[inline]
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Number of chunks (last one possibly partial).
    #[inline]
    pub fn n_chunks(&self) -> usize {
        self.data_len.div_ceil(self.chunk_size)
    }

    /// Byte range `[start, end)` of chunk `c`.
    #[inline]
    pub fn byte_range(&self, c: usize) -> (usize, usize) {
        debug_assert!(c < self.n_chunks());
        let start = c * self.chunk_size;
        let end = (start + self.chunk_size).min(self.data_len);
        (start, end)
    }

    /// Byte range `[start, end)` of the chunk run `[c_lo, c_hi)`.
    #[inline]
    pub fn byte_range_of_chunks(&self, c_lo: usize, c_hi: usize) -> (usize, usize) {
        debug_assert!(c_lo < c_hi && c_hi <= self.n_chunks());
        (
            c_lo * self.chunk_size,
            (c_hi * self.chunk_size).min(self.data_len),
        )
    }

    /// The bytes of chunk `c` within `data`.
    #[inline]
    pub fn chunk<'d>(&self, data: &'d [u8], c: usize) -> &'d [u8] {
        let (a, b) = self.byte_range(c);
        &data[a..b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_multiple() {
        let ck = Chunking::new(256, 64);
        assert_eq!(ck.n_chunks(), 4);
        assert_eq!(ck.byte_range(0), (0, 64));
        assert_eq!(ck.byte_range(3), (192, 256));
    }

    #[test]
    fn trailing_partial_chunk() {
        let ck = Chunking::new(100, 64);
        assert_eq!(ck.n_chunks(), 2);
        assert_eq!(ck.byte_range(1), (64, 100));
    }

    #[test]
    fn buffer_smaller_than_one_chunk() {
        let ck = Chunking::new(10, 32);
        assert_eq!(ck.n_chunks(), 1);
        assert_eq!(ck.byte_range(0), (0, 10));
    }

    #[test]
    #[should_panic(expected = "below minimum")]
    fn rejects_tiny_chunks() {
        Chunking::new(100, 16);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_buffer() {
        Chunking::new(0, 64);
    }

    #[test]
    fn chunk_slicing() {
        let data: Vec<u8> = (0..100u8).collect();
        let ck = Chunking::new(100, 32);
        assert_eq!(ck.chunk(&data, 0), &data[0..32]);
        assert_eq!(ck.chunk(&data, 3), &data[96..100]);
    }

    proptest! {
        #[test]
        fn ranges_tile_the_buffer(len in 1usize..100_000, cs in 32usize..512) {
            let ck = Chunking::new(len, cs);
            let mut cursor = 0;
            for c in 0..ck.n_chunks() {
                let (a, b) = ck.byte_range(c);
                prop_assert_eq!(a, cursor);
                prop_assert!(b > a);
                prop_assert!(b - a <= cs);
                cursor = b;
            }
            prop_assert_eq!(cursor, len);
        }

        #[test]
        fn run_range_matches_individual_ranges(len in 1usize..50_000, cs in 32usize..256) {
            let ck = Chunking::new(len, cs);
            let n = ck.n_chunks();
            let lo = 0;
            let hi = n;
            let (a, b) = ck.byte_range_of_chunks(lo, hi);
            prop_assert_eq!(a, ck.byte_range(lo).0);
            prop_assert_eq!(b, ck.byte_range(hi - 1).1);
        }
    }
}
