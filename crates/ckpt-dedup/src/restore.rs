//! Checkpoint reconstruction from a record of incremental diffs.
//!
//! "To restore a checkpoint from the differences, it is enough to start from
//! the first-time occurrences, then fill the fixed duplicates and finally
//! assemble the shifted duplicates from the corresponding checkpoint ID
//! (which can be a previous checkpoint or the current checkpoint to be
//! restored)" (§2.2).
//!
//! Concretely, version `k` is materialized as: clone version `k-1` (this
//! realizes every fixed duplicate), write the first-occurrence payload into
//! its regions, then resolve shifted duplicates by copying from the
//! referenced checkpoint's materialized buffer. Shifted duplicates that
//! reference the *current* checkpoint may depend on one another (a region
//! can duplicate data that itself sits under another shifted region), so
//! they are applied with a chunk-granularity readiness fixpoint; the
//! emission rules guarantee the dependency graph is acyclic, so the loop
//! always makes progress on well-formed diffs.

use crate::chunking::Chunking;
use crate::diff::{bitmap, Diff, MethodKind};
use crate::tree::TreeShape;
use std::borrow::Cow;

/// Errors surfaced while reconstructing checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// Diff `ckpt_id`s must be 0, 1, 2, … in order.
    OutOfOrder { index: usize, ckpt_id: u32 },
    /// All diffs in a record must come from one method.
    MixedKinds {
        expected: MethodKind,
        found: MethodKind,
    },
    /// Geometry (data length / chunk size) changed mid-record.
    GeometryChanged,
    /// A payload was shorter than its region table requires.
    PayloadTruncated { ckpt_id: u32 },
    /// A shifted duplicate referenced a checkpoint that does not exist yet.
    ForwardReference { ckpt_id: u32, ref_ckpt: u32 },
    /// A shifted duplicate referenced a checkpoint below the record's base —
    /// the chain was compacted (rebased) but a record still points into the
    /// garbage-collected region, so the reference cannot be materialized.
    RefBelowBase {
        ckpt_id: u32,
        ref_ckpt: u32,
        base: u32,
    },
    /// A shifted duplicate's source span does not match its target span.
    SpanMismatch { node: u32, ref_node: u32 },
    /// Same-checkpoint shifted duplicates could not be resolved (cycle or
    /// corrupt reference).
    UnresolvableShifts { ckpt_id: u32, remaining: usize },
    /// The payload claims a compression codec this build does not know.
    UnknownCodec { ckpt_id: u32, codec: u8 },
    /// The compressed payload failed to decompress.
    PayloadCorrupt { ckpt_id: u32 },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::OutOfOrder { index, ckpt_id } => {
                write!(f, "diff at position {index} has ckpt_id {ckpt_id}")
            }
            RestoreError::MixedKinds { expected, found } => {
                write!(
                    f,
                    "record mixes methods: {} vs {}",
                    expected.name(),
                    found.name()
                )
            }
            RestoreError::GeometryChanged => write!(f, "data length or chunk size changed"),
            RestoreError::PayloadTruncated { ckpt_id } => {
                write!(f, "payload truncated in checkpoint {ckpt_id}")
            }
            RestoreError::ForwardReference { ckpt_id, ref_ckpt } => {
                write!(
                    f,
                    "checkpoint {ckpt_id} references future checkpoint {ref_ckpt}"
                )
            }
            RestoreError::RefBelowBase {
                ckpt_id,
                ref_ckpt,
                base,
            } => {
                write!(
                    f,
                    "checkpoint {ckpt_id} references checkpoint {ref_ckpt} below the \
                     record base {base} (compacted away)"
                )
            }
            RestoreError::SpanMismatch { node, ref_node } => {
                write!(f, "shift region {node} has mismatched source {ref_node}")
            }
            RestoreError::UnresolvableShifts { ckpt_id, remaining } => {
                write!(
                    f,
                    "{remaining} unresolvable shifted duplicates in checkpoint {ckpt_id}"
                )
            }
            RestoreError::UnknownCodec { ckpt_id, codec } => {
                write!(f, "checkpoint {ckpt_id} uses unknown payload codec {codec}")
            }
            RestoreError::PayloadCorrupt { ckpt_id } => {
                write!(f, "checkpoint {ckpt_id} payload failed to decompress")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// Incrementally materializes a checkpoint record.
///
/// Keeps every restored version in memory because shifted duplicates may
/// reference any previous checkpoint (the paper keeps the record on storage
/// tiers; random access there is the runtime crate's concern).
pub struct Restorer {
    kind: Option<MethodKind>,
    data_len: usize,
    chunk_size: usize,
    /// First checkpoint id of the record. Non-zero for compacted chains
    /// whose records below a rebase point were garbage-collected: the first
    /// diff applied must carry `ckpt_id == base` and be self-contained.
    base: u32,
    versions: Vec<Vec<u8>>,
}

impl Restorer {
    pub fn new() -> Self {
        Self::with_base(0)
    }

    /// A restorer for a compacted record whose first surviving checkpoint id
    /// is `base` (a rebase point). Version `k` of the record is checkpoint
    /// `base + k`; references below `base` are rejected as
    /// [`RestoreError::RefBelowBase`].
    pub fn with_base(base: u32) -> Self {
        Restorer {
            kind: None,
            data_len: 0,
            chunk_size: 0,
            base,
            versions: Vec::new(),
        }
    }

    /// Number of versions materialized so far.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Materialized bytes of version `k`.
    pub fn version(&self, k: usize) -> Option<&[u8]> {
        self.versions.get(k).map(|v| v.as_slice())
    }

    /// The most recently applied version.
    pub fn latest(&self) -> Option<&[u8]> {
        self.versions.last().map(|v| v.as_slice())
    }

    /// Apply the next diff in sequence, materializing its version.
    pub fn apply(&mut self, diff: &Diff) -> Result<&[u8], RestoreError> {
        let index = self.versions.len();
        if diff.ckpt_id as usize != self.base as usize + index {
            return Err(RestoreError::OutOfOrder {
                index,
                ckpt_id: diff.ckpt_id,
            });
        }
        match self.kind {
            None => {
                self.kind = Some(diff.kind);
                self.data_len = diff.data_len as usize;
                self.chunk_size = diff.chunk_size as usize;
            }
            Some(k) => {
                if k != diff.kind {
                    return Err(RestoreError::MixedKinds {
                        expected: k,
                        found: diff.kind,
                    });
                }
                if self.data_len != diff.data_len as usize
                    || self.chunk_size != diff.chunk_size as usize
                {
                    return Err(RestoreError::GeometryChanged);
                }
            }
        }

        let prev: Option<&[u8]> = index.checked_sub(1).map(|i| self.versions[i].as_slice());
        let buf = match diff.kind {
            MethodKind::Full => restore_full(diff)?,
            MethodKind::Basic => restore_basic(diff, prev)?,
            MethodKind::List | MethodKind::Tree => {
                restore_regions(diff, prev, &self.versions, self.base)?
            }
        };
        self.versions.push(buf);
        Ok(self.versions.last().unwrap())
    }
}

impl Default for Restorer {
    fn default() -> Self {
        Self::new()
    }
}

/// Materialize every version of a record.
pub fn restore_record(diffs: &[Diff]) -> Result<Vec<Vec<u8>>, RestoreError> {
    restore_record_from(0, diffs)
}

/// Materialize every version of a compacted record whose first surviving
/// checkpoint id is `base`.
pub fn restore_record_from(base: u32, diffs: &[Diff]) -> Result<Vec<Vec<u8>>, RestoreError> {
    let mut r = Restorer::with_base(base);
    for d in diffs {
        r.apply(d)?;
    }
    Ok(r.versions)
}

/// Materialize only the final version of a record.
pub fn restore_latest(diffs: &[Diff]) -> Result<Vec<u8>, RestoreError> {
    let mut versions = restore_record(diffs)?;
    versions.pop().ok_or(RestoreError::UnresolvableShifts {
        ckpt_id: 0,
        remaining: 0,
    })
}

/// The diff's payload with any §5 hybrid compression undone.
pub(crate) fn decoded_payload(diff: &Diff) -> Result<Cow<'_, [u8]>, RestoreError> {
    if diff.payload_codec == 0 {
        return Ok(Cow::Borrowed(&diff.payload));
    }
    let codec =
        ckpt_compress::codec_by_id(diff.payload_codec).ok_or(RestoreError::UnknownCodec {
            ckpt_id: diff.ckpt_id,
            codec: diff.payload_codec,
        })?;
    codec
        .decompress(&diff.payload)
        .map(Cow::Owned)
        .map_err(|_| RestoreError::PayloadCorrupt {
            ckpt_id: diff.ckpt_id,
        })
}

/// Copy `regions` — `(dst_offset, len, payload_offset)` triples, already
/// bounds-checked by the caller — from `payload` into `buf`.
///
/// When the destinations are pairwise disjoint (every region from a
/// well-formed diff is), the buffer is split into one mutable slice per
/// region and the copies run on the thread pool; each region is a single
/// streaming memcpy, mirroring the serializer's team-gather. Overlapping
/// destinations (only reachable with corrupt input) fall back to the
/// sequential in-table-order copy, preserving the old last-writer-wins
/// behavior.
pub(crate) fn copy_regions(buf: &mut [u8], payload: &[u8], regions: &[(usize, usize, usize)]) {
    use rayon::prelude::*;
    /// Below this many payload bytes the split/scheduling overhead wins.
    const PAR_MIN_BYTES: usize = 64 * 1024;

    let total: usize = regions.iter().map(|r| r.1).sum();
    let mut order: Vec<usize> = (0..regions.len()).collect();
    order.sort_unstable_by_key(|&i| regions[i].0);
    let disjoint = order.windows(2).all(|w| {
        let (a_off, a_len, _) = regions[w[0]];
        a_off + a_len <= regions[w[1]].0
    });
    if total < PAR_MIN_BYTES || !disjoint {
        for &(d, len, s) in regions {
            buf[d..d + len].copy_from_slice(&payload[s..s + len]);
        }
        return;
    }

    // Split the buffer into disjoint parts in ascending destination order.
    let mut parts: Vec<(&mut [u8], usize)> = Vec::with_capacity(regions.len());
    let mut consumed = 0usize;
    let mut rest = buf;
    for &i in &order {
        let (d, len, s) = regions[i];
        let (_, tail) = rest.split_at_mut(d - consumed);
        let (head, tail) = tail.split_at_mut(len);
        parts.push((head, s));
        consumed = d + len;
        rest = tail;
    }
    parts.into_par_iter().for_each(|(part, s)| {
        let len = part.len();
        part.copy_from_slice(&payload[s..s + len]);
    });
}

fn restore_full(diff: &Diff) -> Result<Vec<u8>, RestoreError> {
    let payload = decoded_payload(diff)?;
    if payload.len() != diff.data_len as usize {
        return Err(RestoreError::PayloadTruncated {
            ckpt_id: diff.ckpt_id,
        });
    }
    Ok(payload.into_owned())
}

fn restore_basic(diff: &Diff, prev: Option<&[u8]>) -> Result<Vec<u8>, RestoreError> {
    let payload = decoded_payload(diff)?;
    let ck = Chunking::new(diff.data_len as usize, diff.chunk_size as usize);
    let mut buf = match prev {
        Some(p) => p.to_vec(),
        None => vec![0u8; diff.data_len as usize],
    };
    let mut regions: Vec<(usize, usize, usize)> = Vec::new();
    let mut cursor = 0usize;
    for c in 0..ck.n_chunks() {
        if bitmap::get(&diff.bitmap, c) {
            let (a, b) = ck.byte_range(c);
            let len = b - a;
            if cursor + len > payload.len() {
                return Err(RestoreError::PayloadTruncated {
                    ckpt_id: diff.ckpt_id,
                });
            }
            regions.push((a, len, cursor));
            cursor += len;
        }
    }
    copy_regions(&mut buf, &payload, &regions);
    Ok(buf)
}

fn restore_regions(
    diff: &Diff,
    prev: Option<&[u8]>,
    versions: &[Vec<u8>],
    base: u32,
) -> Result<Vec<u8>, RestoreError> {
    let data_len = diff.data_len as usize;
    let ck = Chunking::new(data_len, diff.chunk_size as usize);
    let shape = TreeShape::new(ck.n_chunks());

    // Fixed duplicates: everything not covered by a region keeps the
    // previous checkpoint's content.
    let mut buf = match prev {
        Some(p) => p.to_vec(),
        None => vec![0u8; data_len],
    };

    // First occurrences: payload slices in region-table order. Validate the
    // whole table first, then copy all regions in parallel.
    let payload = decoded_payload(diff)?;
    let mut regions: Vec<(usize, usize, usize)> = Vec::with_capacity(diff.first_regions.len());
    let mut cursor = 0usize;
    for &node in &diff.first_regions {
        let (clo, chi) = shape.chunk_range(node as usize);
        let (a, b) = ck.byte_range_of_chunks(clo, chi);
        let len = b - a;
        if cursor + len > payload.len() {
            return Err(RestoreError::PayloadTruncated {
                ckpt_id: diff.ckpt_id,
            });
        }
        regions.push((a, len, cursor));
        cursor += len;
    }
    copy_regions(&mut buf, &payload, &regions);

    // Shifted duplicates. Chunk-granularity readiness: chunks under a
    // not-yet-applied same-checkpoint shift region are stale until that
    // region is copied in.
    let mut ready = vec![true; ck.n_chunks()];
    for s in &diff.shift_regions {
        let (clo, chi) = shape.chunk_range(s.node as usize);
        ready[clo..chi].fill(false);
    }

    let mut pending: Vec<&crate::diff::ShiftRegion> = diff.shift_regions.iter().collect();
    while !pending.is_empty() {
        let before = pending.len();
        pending.retain(|s| {
            let (dlo, dhi) = shape.chunk_range(s.node as usize);
            let (slo, shi) = shape.chunk_range(s.ref_node as usize);
            if s.ref_ckpt == diff.ckpt_id {
                // Same-checkpoint source: wait until its chunks are ready.
                if !ready[slo..shi].iter().all(|&r| r) {
                    return true; // keep pending
                }
                let (sa, sb) = ck.byte_range_of_chunks(slo, shi);
                let (da, db) = ck.byte_range_of_chunks(dlo, dhi);
                if sb - sa != db - da {
                    return true; // reported below as span mismatch
                }
                let src = buf[sa..sb].to_vec();
                buf[da..db].copy_from_slice(&src);
            } else {
                // Historical source: the referenced version is materialized
                // (indexed relative to the record base for compacted chains).
                let Some(src_ver) = s
                    .ref_ckpt
                    .checked_sub(base)
                    .and_then(|i| versions.get(i as usize))
                else {
                    return true; // reported below as unresolvable/forward
                };
                let (sa, sb) = ck.byte_range_of_chunks(slo, shi);
                let (da, db) = ck.byte_range_of_chunks(dlo, dhi);
                if sb - sa != db - da {
                    return true;
                }
                buf[da..db].copy_from_slice(&src_ver[sa..sb]);
            }
            ready[dlo..dhi].fill(true);
            false // applied
        });
        if pending.len() == before {
            // Distinguish error causes for the first stuck region.
            let s = pending[0];
            if s.ref_ckpt > diff.ckpt_id {
                return Err(RestoreError::ForwardReference {
                    ckpt_id: diff.ckpt_id,
                    ref_ckpt: s.ref_ckpt,
                });
            }
            if s.ref_ckpt < base {
                return Err(RestoreError::RefBelowBase {
                    ckpt_id: diff.ckpt_id,
                    ref_ckpt: s.ref_ckpt,
                    base,
                });
            }
            let (dlo, dhi) = shape.chunk_range(s.node as usize);
            let (slo, shi) = shape.chunk_range(s.ref_node as usize);
            if dhi - dlo != shi - slo {
                return Err(RestoreError::SpanMismatch {
                    node: s.node,
                    ref_node: s.ref_node,
                });
            }
            return Err(RestoreError::UnresolvableShifts {
                ckpt_id: diff.ckpt_id,
                remaining: pending.len(),
            });
        }
    }
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::ShiftRegion;

    fn tree_diff(ckpt_id: u32, data_len: u64) -> Diff {
        Diff {
            kind: MethodKind::Tree,
            ckpt_id,
            data_len,
            chunk_size: 32,
            first_regions: Vec::new(),
            shift_regions: Vec::new(),
            bitmap: Vec::new(),
            payload_codec: 0,
            payload: Vec::new(),
        }
    }

    #[test]
    fn full_record_restores() {
        let mk = |id: u32, fill: u8| Diff {
            kind: MethodKind::Full,
            ckpt_id: id,
            data_len: 64,
            chunk_size: 32,
            first_regions: Vec::new(),
            shift_regions: Vec::new(),
            bitmap: Vec::new(),
            payload_codec: 0,
            payload: vec![fill; 64],
        };
        let versions = restore_record(&[mk(0, 1), mk(1, 2)]).unwrap();
        assert_eq!(versions[0], vec![1u8; 64]);
        assert_eq!(versions[1], vec![2u8; 64]);
    }

    #[test]
    fn rejects_out_of_order() {
        let mut d = tree_diff(5, 64);
        d.first_regions = vec![0];
        d.payload = vec![0; 64];
        let err = restore_record(&[d]).unwrap_err();
        assert!(matches!(err, RestoreError::OutOfOrder { ckpt_id: 5, .. }));
    }

    #[test]
    fn rejects_mixed_kinds() {
        let d0 = Diff {
            kind: MethodKind::Full,
            ckpt_id: 0,
            data_len: 64,
            chunk_size: 32,
            first_regions: Vec::new(),
            shift_regions: Vec::new(),
            bitmap: Vec::new(),
            payload_codec: 0,
            payload: vec![0; 64],
        };
        let d1 = tree_diff(1, 64);
        let err = restore_record(&[d0, d1]).unwrap_err();
        assert!(matches!(err, RestoreError::MixedKinds { .. }));
    }

    #[test]
    fn rejects_truncated_payload() {
        // Root region of a 2-chunk tree claims 64 bytes, payload has 10.
        let mut d = tree_diff(0, 64);
        d.first_regions = vec![0];
        d.payload = vec![0; 10];
        let err = restore_record(&[d]).unwrap_err();
        assert!(matches!(err, RestoreError::PayloadTruncated { ckpt_id: 0 }));
    }

    #[test]
    fn same_ckpt_shift_chain_resolves() {
        // 4 chunks; region table: chunk 0 (leaf 3) first-occurrence;
        // leaf 4 shifts from leaf 3; leaf 5 shifts from leaf 4's data —
        // but references must target the map's canonical node (leaf 3);
        // instead build a genuine chain: 5 references 4, 4 references 3.
        // The fixpoint must order them correctly even though 5 precedes 4
        // in the table.
        let mut d = tree_diff(0, 128);
        d.first_regions = vec![3, 6]; // leaf 3 = chunk 0; leaf 6 = chunk 3
        d.shift_regions = vec![
            ShiftRegion {
                node: 5,
                ref_node: 4,
                ref_ckpt: 0,
            }, // chunk 2 <- chunk 1
            ShiftRegion {
                node: 4,
                ref_node: 3,
                ref_ckpt: 0,
            }, // chunk 1 <- chunk 0
        ];
        d.payload = [[7u8; 32], [9u8; 32]].concat();
        let v = restore_record(std::slice::from_ref(&d)).unwrap();
        assert_eq!(&v[0][0..32], &[7u8; 32]);
        assert_eq!(&v[0][32..64], &[7u8; 32]);
        assert_eq!(&v[0][64..96], &[7u8; 32]);
        assert_eq!(&v[0][96..128], &[9u8; 32]);
    }

    #[test]
    fn detects_unresolvable_cycle() {
        let mut d = tree_diff(0, 128);
        d.first_regions = vec![3, 6];
        d.payload = vec![0; 64];
        d.shift_regions = vec![
            ShiftRegion {
                node: 4,
                ref_node: 5,
                ref_ckpt: 0,
            },
            ShiftRegion {
                node: 5,
                ref_node: 4,
                ref_ckpt: 0,
            },
        ];
        let err = restore_record(&[d]).unwrap_err();
        assert!(matches!(
            err,
            RestoreError::UnresolvableShifts { remaining: 2, .. }
        ));
    }

    #[test]
    fn cross_ckpt_shift_reads_old_version() {
        // ckpt 0: full content via root region; ckpt 1: chunk 0 becomes
        // ckpt 0's chunk 3 content, rest fixed.
        let mut d0 = tree_diff(0, 128);
        d0.first_regions = vec![0];
        d0.payload = (0..128u8).map(|i| i / 32).collect(); // chunks 0,1,2,3
        let mut d1 = tree_diff(1, 128);
        d1.shift_regions = vec![ShiftRegion {
            node: 3,
            ref_node: 6,
            ref_ckpt: 0,
        }];
        let versions = restore_record(&[d0, d1]).unwrap();
        assert_eq!(&versions[1][0..32], &[3u8; 32]);
        assert_eq!(&versions[1][32..], &versions[0][32..]);
    }

    #[test]
    fn forward_reference_rejected() {
        let mut d = tree_diff(0, 64);
        d.first_regions = vec![1]; // chunk 0
        d.payload = vec![0; 32];
        d.shift_regions = vec![ShiftRegion {
            node: 2,
            ref_node: 1,
            ref_ckpt: 9,
        }];
        let err = restore_record(&[d]).unwrap_err();
        assert!(matches!(
            err,
            RestoreError::ForwardReference { ref_ckpt: 9, .. }
        ));
    }
}
