//! Node labels for Algorithm 1.
//!
//! Each Merkle-tree node carries a label describing the region its subtree
//! covers. Leaves are labeled during the hashing pass; interior nodes during
//! the two consolidation passes. Labels live in an atomic array so thousands
//! of simulated GPU threads can publish them concurrently.

use std::sync::atomic::{AtomicU8, Ordering};

/// Classification of the region covered by a tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Label {
    /// Not yet visited / not applicable.
    None = 0,
    /// First-time occurrence: this data was never seen in the checkpoint
    /// record; its chunks are part of the diff payload.
    FirstOcur = 1,
    /// Fixed duplicate: identical to the *same position* in the previous
    /// checkpoint; omitted from the diff entirely.
    FixedDupl = 2,
    /// Shifted duplicate: identical to data stored at a *different* position
    /// (same or earlier checkpoint); the diff stores only a reference.
    ShiftDupl = 3,
    /// Interior node whose children could not be consolidated into one
    /// region (different labels, or an unmatched shifted pair).
    Mixed = 4,
}

impl Label {
    #[inline]
    pub fn from_u8(v: u8) -> Label {
        match v {
            1 => Label::FirstOcur,
            2 => Label::FixedDupl,
            3 => Label::ShiftDupl,
            4 => Label::Mixed,
            _ => Label::None,
        }
    }

    /// Whether a region with this label appears in the diff output.
    /// Fixed duplicates and untouched nodes are omitted; mixed nodes emit
    /// their children instead of themselves.
    pub fn emits_region(&self) -> bool {
        matches!(self, Label::FirstOcur | Label::ShiftDupl)
    }
}

/// A shared array of per-node labels with relaxed atomic access.
///
/// Relaxed is sufficient: every pass that reads labels is separated from the
/// pass that wrote them by a parallel-for join (a full barrier), and within a
/// pass each node's label is written by exactly one thread — except the
/// earliest-leaf relabeling of Algorithm 1 lines 13-16, which is an
/// idempotent store of the same value and benign in any interleaving.
pub struct LabelArray {
    labels: Vec<AtomicU8>,
}

impl LabelArray {
    pub fn new(n_nodes: usize) -> Self {
        LabelArray {
            labels: (0..n_nodes).map(|_| AtomicU8::new(0)).collect(),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    #[inline]
    pub fn get(&self, node: usize) -> Label {
        Label::from_u8(self.labels[node].load(Ordering::Relaxed))
    }

    #[inline]
    pub fn set(&self, node: usize, label: Label) {
        self.labels[node].store(label as u8, Ordering::Relaxed);
    }

    /// Reset all labels to [`Label::None`]. Runs as a blocked parallel
    /// fill (a device-side memset): the label array is persistent state on
    /// the per-checkpoint hot path, so its reset must not serialize it.
    pub fn clear(&mut self) {
        use rayon::prelude::*;
        self.labels.par_chunks_mut(16 * 1024).for_each(|chunk| {
            for l in chunk {
                *l.get_mut() = 0;
            }
        });
    }

    /// Count nodes carrying `label` (test/metrics helper).
    pub fn count(&self, label: Label) -> usize {
        self.labels
            .iter()
            .filter(|l| l.load(Ordering::Relaxed) == label as u8)
            .count()
    }
}

impl std::fmt::Debug for LabelArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LabelArray(n={}, first={}, fixed={}, shift={}, mixed={})",
            self.len(),
            self.count(Label::FirstOcur),
            self.count(Label::FixedDupl),
            self.count(Label::ShiftDupl),
            self.count(Label::Mixed)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_labels() {
        for l in [
            Label::None,
            Label::FirstOcur,
            Label::FixedDupl,
            Label::ShiftDupl,
            Label::Mixed,
        ] {
            assert_eq!(Label::from_u8(l as u8), l);
        }
        assert_eq!(Label::from_u8(255), Label::None);
    }

    #[test]
    fn array_set_get() {
        let arr = LabelArray::new(8);
        assert_eq!(arr.get(3), Label::None);
        arr.set(3, Label::ShiftDupl);
        assert_eq!(arr.get(3), Label::ShiftDupl);
        assert_eq!(arr.count(Label::ShiftDupl), 1);
        assert_eq!(arr.count(Label::None), 7);
    }

    #[test]
    fn clear_resets() {
        let mut arr = LabelArray::new(4);
        arr.set(0, Label::FirstOcur);
        arr.set(1, Label::Mixed);
        arr.clear();
        assert_eq!(arr.count(Label::None), 4);
    }

    #[test]
    fn emits_region() {
        assert!(Label::FirstOcur.emits_region());
        assert!(Label::ShiftDupl.emits_region());
        assert!(!Label::FixedDupl.emits_region());
        assert!(!Label::Mixed.emits_region());
        assert!(!Label::None.emits_region());
    }
}
