//! The paper's contribution: Merkle-tree de-duplication with compact
//! metadata (the **Tree** method, Algorithm 1).
//!
//! Pipeline per checkpoint, all inside one fused device kernel:
//!
//! 1. **Leaf pass** (lines 1–23): hash + classify every chunk
//!    ([`super::leaf_pass`]).
//! 2. **First-occurrence consolidation** (lines 24–32): level-by-level
//!    bottom-up, consolidate adjacent first-occurrence subtrees, inserting
//!    each consolidated region's digest into the historical record.
//! 3. **Shifted-duplicate consolidation and region collection** (lines
//!    33–46): level-by-level bottom-up over the remaining nodes, consolidate
//!    adjacent shifted duplicates when their combined digest is already
//!    recorded, propagate fixed duplicates, and emit the roots of maximal
//!    uniform regions.
//!
//! Stages 2 and 3 are strictly ordered ("we process the sub-trees
//! corresponding to the first-time occurrences, then ... the shifted
//! duplicates") so a shifted-duplicate lookup never races with the
//! first-occurrence insert it should match — the missed-dedup hazard §2.2
//! calls out. The ablation benchmark `waves` quantifies what a fused
//! single-stage pass would lose.
//!
//! 4. **Serialization**: region tables plus a team-cooperative gather of
//!    first-occurrence bytes into one contiguous device buffer, then a single
//!    device-to-host transfer (§2.1, §2.4).

use crate::chunking::Chunking;
use crate::diff::{Diff, MethodKind, ShiftRegion};
use crate::labels::{Label, LabelArray};
use crate::methods::{leaf_pass, CheckpointOutput, Checkpointer, Timer};
use crate::stats::CheckpointStats;
use crate::tree::{MerkleTree, TreeShape};
use crate::util::SharedSliceMut;
use ckpt_hash::{Hasher128, Murmur3};
use gpu_sim::{Device, DistinctMap, InsertResult, KernelCost, MapEntry};
use std::sync::atomic::{AtomicU8, Ordering as AtomicOrdering};

/// Configuration for [`TreeCheckpointer`] (and [`super::list::ListCheckpointer`]).
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// De-duplication granularity in bytes (32–512 in the paper's sweeps).
    pub chunk_size: usize,
    /// Capacity of the historical record of unique hashes. `None` sizes it
    /// to `4 × (2·n_chunks − 1)` digests at the first checkpoint, enough for
    /// several checkpoints of fully-new data before graceful degradation.
    pub map_capacity: Option<usize>,
    /// Run the whole pipeline as one fused kernel (§2.1). Disable to measure
    /// the per-launch latency a naive multi-kernel implementation pays.
    pub fused: bool,
    /// Compress the first-occurrence payload with this codec before the
    /// device-to-host transfer (`ckpt_compress::codec_id`) — the paper's §5
    /// dedup+compression hybrid. `None` ships raw bytes.
    pub payload_codec: Option<u8>,
    /// Overlap payload serialization with the device-to-host transfer as an
    /// `n`-slice pipeline (§5's streaming extension). `None` serializes then
    /// transfers sequentially. Mutually exclusive with `payload_codec`
    /// (compression needs the whole payload before the transfer).
    pub streamed_slices: Option<u32>,
    /// §2.4's hash-collision mitigation: keep a device-resident cache of
    /// first-occurrence chunk contents and verify candidate duplicates
    /// against it; detected collisions are stored instead of referenced.
    pub verify_collisions: bool,
}

impl TreeConfig {
    pub fn new(chunk_size: usize) -> Self {
        TreeConfig {
            chunk_size,
            map_capacity: None,
            fused: true,
            payload_codec: None,
            streamed_slices: None,
            verify_collisions: false,
        }
    }

    /// Enable the §5 hybrid with the named codec ("zstd", "lz4", …).
    pub fn with_payload_codec(mut self, name: &str) -> Self {
        assert!(
            self.streamed_slices.is_none(),
            "streaming and compression are exclusive"
        );
        self.payload_codec =
            Some(ckpt_compress::codec_id(name).unwrap_or_else(|| panic!("unknown codec {name}")));
        self
    }

    /// Enable §5's streaming extension: overlap serialization with the
    /// transfer as an `n`-slice pipeline.
    pub fn with_streaming(mut self, n_slices: u32) -> Self {
        assert!(
            self.payload_codec.is_none(),
            "streaming and compression are exclusive"
        );
        self.streamed_slices = Some(n_slices.max(1));
        self
    }

    /// Enable §2.4's collision verification via a chunk-content cache.
    pub fn with_collision_verification(mut self) -> Self {
        self.verify_collisions = true;
        self
    }
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self::new(128)
    }
}

/// The Tree method's persistent state across a checkpoint record.
pub struct TreeCheckpointer {
    device: Device,
    hasher: Box<dyn Hasher128>,
    config: TreeConfig,
    codec: Option<(u8, Box<dyn ckpt_compress::Codec>)>,
    state: Option<State>,
    ckpt_id: u32,
    buffer_reuse: bool,
    /// Rebase mode for the current checkpoint: no fixed-duplicate shortcut,
    /// so every reference resolves inside this checkpoint.
    force_all: bool,
}

struct State {
    chunking: Chunking,
    tree: MerkleTree,
    labels: LabelArray,
    map: DistinctMap,
    cache: Option<gpu_sim::ContentCache>,
}

impl TreeCheckpointer {
    pub fn new(device: Device, config: TreeConfig) -> Self {
        Self::with_hasher(device, config, Box::new(Murmur3))
    }

    /// Use a custom hash function (the A1 ablation swaps in MD5).
    pub fn with_hasher(device: Device, config: TreeConfig, hasher: Box<dyn Hasher128>) -> Self {
        let codec = config.payload_codec.map(|id| {
            (
                id,
                ckpt_compress::codec_by_id(id).expect("validated by TreeConfig"),
            )
        });
        TreeCheckpointer {
            device,
            hasher,
            config,
            codec,
            state: None,
            ckpt_id: 0,
            buffer_reuse: true,
            force_all: false,
        }
    }

    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Number of checkpoints taken so far.
    pub fn checkpoints_taken(&self) -> u32 {
        self.ckpt_id
    }

    /// Unique digests in the historical record.
    pub fn record_len(&self) -> usize {
        self.state.as_ref().map_or(0, |s| s.map.len())
    }

    fn init_state(&mut self, data_len: usize) -> &mut State {
        let chunking = Chunking::new(data_len, self.config.chunk_size);
        let shape = TreeShape::new(chunking.n_chunks());
        let map_cap = self.config.map_capacity.unwrap_or(4 * shape.n_nodes());
        let cache = self
            .config
            .verify_collisions
            .then(|| gpu_sim::ContentCache::new(2 * shape.n_chunks(), self.config.chunk_size));
        self.state = Some(State {
            chunking,
            tree: MerkleTree::new(chunking.n_chunks()),
            labels: LabelArray::new(shape.n_nodes()),
            map: DistinctMap::with_capacity(map_cap),
            cache,
        });
        self.state.as_mut().unwrap()
    }
}

/// Regions emitted by the collection pass, before payload gathering.
#[derive(Debug, Default)]
pub(crate) struct EmittedRegions {
    pub first: Vec<u32>,
    pub shift_nodes: Vec<u32>,
}

/// Pass 2: consolidate first-occurrence subtrees bottom-up (lines 24–32).
pub(crate) fn first_ocur_pass(
    device: &Device,
    shape: &TreeShape,
    hasher: &dyn Hasher128,
    digests: &mut [ckpt_hash::Digest128],
    labels: &LabelArray,
    map: &DistinctMap,
    ckpt_id: u32,
) {
    let tree = SharedSliceMut::new(digests);
    for (lo, hi) in shape.interior_levels_bottom_up() {
        let width = hi - lo;
        let cost = KernelCost::stream((width * 2 * 16) as u64).with_writes((width * 16) as u64);
        let state = || (map.batch(), [0u8; 32]);
        device.parallel_for_init("consolidate_first_ocur", width, cost, state, |state, k| {
            let (batch, scratch) = state;
            let node = lo + k;
            let (cl, cr) = (shape.left(node), shape.right(node));
            if labels.get(cl) == Label::FirstOcur && labels.get(cr) == Label::FirstOcur {
                // SAFETY: children were finalized by the previous level's
                // kernel (fork-join barrier); `node` is owned by this thread.
                let (dl, dr) = unsafe { (tree.read(cl), tree.read(cr)) };
                let combined = hasher.combine_with(&dl, &dr, scratch);
                unsafe { tree.write(node, combined) };
                let me = MapEntry::new(node as u32, ckpt_id);
                match batch.insert(&combined, me) {
                    InsertResult::Inserted => {
                        labels.set(node, Label::FirstOcur);
                        // See the leaf pass: demote ourselves if an earlier
                        // twin displaced us concurrently.
                        if map.get(&combined).is_some_and(|e| e != me) {
                            labels.set(node, Label::ShiftDupl);
                        }
                    }
                    // A twin subtree elsewhere already registered this
                    // digest: this whole region is a shifted duplicate. Keep
                    // the record pointing at the leftmost twin (nodes within
                    // a level are in data order) so the outcome matches the
                    // sequential reference. Displacement is restricted to
                    // twins on the *same level* — a twin on a deeper level
                    // was finalized by an earlier kernel and its parent may
                    // be consuming its label concurrently with ours, so
                    // relabeling it here would race.
                    InsertResult::Exists(e)
                        if e.ckpt == ckpt_id
                            && (node as u32) < e.node
                            && shape.depth(node) == shape.depth(e.node as usize) =>
                    {
                        let (before, after) = map
                            .update_with(&combined, |cur| {
                                (cur.ckpt == ckpt_id && (node as u32) < cur.node).then_some(me)
                            })
                            .expect("digest just observed must be present");
                        if after == me {
                            labels.set(node, Label::FirstOcur);
                            if before.ckpt == ckpt_id && before.node != node as u32 {
                                labels.set(before.node as usize, Label::ShiftDupl);
                            }
                            if map.get(&combined).is_some_and(|e2| e2 != me) {
                                labels.set(node, Label::ShiftDupl);
                            }
                        } else {
                            labels.set(node, Label::ShiftDupl);
                        }
                    }
                    InsertResult::Exists(_) => labels.set(node, Label::ShiftDupl),
                    InsertResult::OutOfCapacity => labels.set(node, Label::FirstOcur),
                }
            }
        });
    }
}

/// Pass 3: consolidate shifted duplicates, propagate fixed duplicates, and
/// collect maximal region roots (lines 33–46).
///
/// Per §2.2, a consolidated region "is added to the historical record of
/// unique hashes" even when its combined digest is *new*: the first
/// occurrence of a shifted-pair pattern registers itself so that every later
/// twin — in this checkpoint or any future one — consolidates against it.
/// This is what collapses constant regions (a page of zero chunks needs
/// O(log) metadata entries instead of one per chunk) and recurring
/// multi-chunk patterns. Each level therefore runs in two sub-kernels:
/// first publish combined digests into the record (with the same
/// earliest-twin canonicalization as the other passes, so the outcome is
/// deterministic), then decide labels and emit regions.
pub(crate) fn collect_pass(
    device: &Device,
    shape: &TreeShape,
    hasher: &dyn Hasher128,
    digests: &mut [ckpt_hash::Digest128],
    labels: &LabelArray,
    map: &DistinctMap,
    ckpt_id: u32,
) -> gpu_sim::ArenaLease<AtomicU8> {
    let tree = SharedSliceMut::new(digests);
    // Lock-free emission, GPU style: kernels set a per-node flag (1 = first
    // occurrence region, 2 = shifted region) and the lists are built
    // afterwards by stream compaction — no mutex exists in a real kernel.
    // The flag buffer is leased from the device arena (steady-state
    // zero-allocation) and cleared explicitly: arena contents are whatever
    // the previous checkpoint left, and a fresh allocation is zeroed the
    // same way, so pooled and unpooled runs stay bit-identical.
    let mut emit_flags = device
        .arena()
        .lease::<AtomicU8>("dedup/emit_flags", shape.n_nodes());
    {
        use rayon::prelude::*;
        emit_flags
            .as_mut_slice()
            .par_chunks_mut(16 * 1024)
            .for_each(|chunk| {
                for f in chunk {
                    *f.get_mut() = 0;
                }
            });
    }
    let emit_flags = emit_flags;
    let emit = |node: usize| match labels.get(node) {
        Label::FirstOcur => emit_flags[node].store(1, AtomicOrdering::Relaxed),
        Label::ShiftDupl => emit_flags[node].store(2, AtomicOrdering::Relaxed),
        // Fixed duplicates are omitted; Mixed children already emitted
        // their own regions at a deeper level.
        Label::FixedDupl | Label::Mixed => {}
        Label::None => unreachable!("unlabeled child below current level"),
    };

    for (lo, hi) in shape.interior_levels_bottom_up() {
        let width = hi - lo;
        let cost = KernelCost::stream((width * 2 * 16) as u64);

        // Sub-kernel 1: combine shifted pairs and publish their digests.
        let state = || (map.batch(), [0u8; 32]);
        device.parallel_for_init(
            "consolidate_shift_publish",
            width,
            cost,
            state,
            |state, k| {
                let (batch, scratch) = state;
                let node = lo + k;
                if labels.get(node) != Label::None {
                    return; // consolidated in the first-occurrence pass
                }
                let (cl, cr) = (shape.left(node), shape.right(node));
                if labels.get(cl) == Label::ShiftDupl && labels.get(cr) == Label::ShiftDupl {
                    // SAFETY: children finalized by previous levels; `node`
                    // owned by this thread.
                    let (dl, dr) = unsafe { (tree.read(cl), tree.read(cr)) };
                    let combined = hasher.combine_with(&dl, &dr, scratch);
                    unsafe { tree.write(node, combined) };
                    let me = MapEntry::new(node as u32, ckpt_id);
                    match batch.insert(&combined, me) {
                        InsertResult::Inserted | InsertResult::OutOfCapacity => {}
                        // Keep the record pointing at the leftmost same-level
                        // twin so the decision sub-kernel is deterministic (the
                        // sequential reference processes nodes in ascending
                        // order). Cross-level twins keep the deeper entry:
                        // referencing it consolidates better than re-publishing.
                        InsertResult::Exists(e)
                            if e.ckpt == ckpt_id
                                && (node as u32) < e.node
                                && shape.depth(node) == shape.depth(e.node as usize) =>
                        {
                            map.update_with(&combined, |cur| {
                                (cur.ckpt == ckpt_id
                                    && (node as u32) < cur.node
                                    && shape.depth(node) == shape.depth(cur.node as usize))
                                .then_some(me)
                            });
                        }
                        InsertResult::Exists(_) => {}
                    }
                }
            },
        );

        // Sub-kernel 2: decide labels and emit the regions that cannot
        // consolidate further.
        device.parallel_for("consolidate_shift_decide", width, cost, |k| {
            let node = lo + k;
            if labels.get(node) != Label::None {
                return;
            }
            let (cl, cr) = (shape.left(node), shape.right(node));
            match (labels.get(cl), labels.get(cr)) {
                (Label::FixedDupl, Label::FixedDupl) => labels.set(node, Label::FixedDupl),
                (Label::ShiftDupl, Label::ShiftDupl) => {
                    // SAFETY: written by sub-kernel 1 (fork-join barrier).
                    let combined = unsafe { tree.read(node) };
                    match map.get(&combined) {
                        Some(e) if !(e.node == node as u32 && e.ckpt == ckpt_id) => {
                            // A prior occurrence exists: this whole region
                            // is a shifted duplicate of it.
                            labels.set(node, Label::ShiftDupl);
                        }
                        // We are the canonical first occurrence of this
                        // pattern (or the record is full): the children are
                        // the maximal representable regions.
                        _ => {
                            labels.set(node, Label::Mixed);
                            emit(cl);
                            emit(cr);
                        }
                    }
                }
                _ => {
                    labels.set(node, Label::Mixed);
                    emit(cl);
                    emit(cr);
                }
            }
        });
    }

    // The root of a fully-uniform tree never had a parent to emit it.
    emit(0);

    // Callers run `compact_emissions` on the returned flags; keeping the
    // compaction outside lets the stage clock attribute the consolidation
    // waves and the metadata compaction separately.
    emit_flags
}

/// Build the sorted region lists from per-node emission flags with two
/// device compactions. The compaction predicate reads the settled flags
/// directly — no intermediate flag vectors, no scratch allocation.
pub(crate) fn compact_emissions(device: &Device, emit_flags: &[AtomicU8]) -> EmittedRegions {
    let n = emit_flags.len();
    EmittedRegions {
        first: device.compact_where("compact_first_regions", n, |i| {
            emit_flags[i].load(AtomicOrdering::Relaxed) == 1
        }),
        shift_nodes: device.compact_where("compact_shift_regions", n, |i| {
            emit_flags[i].load(AtomicOrdering::Relaxed) == 2
        }),
    }
}

/// Resolve each emitted shifted-duplicate node to its historical reference.
pub(crate) fn resolve_shift_refs(
    digests: &[ckpt_hash::Digest128],
    map: &DistinctMap,
    ckpt_id: u32,
    shift_nodes: &[u32],
    first: &mut Vec<u32>,
) -> Vec<ShiftRegion> {
    use rayon::prelude::*;
    // The map probes are the expensive part; do them in parallel into
    // position-indexed results, then partition sequentially so both output
    // lists keep the order the sequential reference produces.
    let resolved: Vec<Result<ShiftRegion, u32>> = shift_nodes
        .par_iter()
        .map(|&node| {
            let digest = digests[node as usize];
            match map.get(&digest) {
                Some(e) if !(e.node == node && e.ckpt == ckpt_id) => Ok(ShiftRegion {
                    node,
                    ref_node: e.node,
                    ref_ckpt: e.ckpt,
                }),
                // Defensive: a self-reference or vanished entry would make
                // the diff unrestorable — store the data instead.
                // Unreachable under the algorithm's invariants, cheap to
                // keep as a safety net.
                _ => Err(node),
            }
        })
        .collect();
    let mut out = Vec::with_capacity(shift_nodes.len());
    for r in resolved {
        match r {
            Ok(region) => out.push(region),
            Err(node) => first.push(node),
        }
    }
    first.sort_unstable();
    out
}

/// Gather the payload for the first-occurrence regions and build the diff.
#[allow(clippy::too_many_arguments)]
pub(crate) fn serialize_diff(
    device: &Device,
    shape: &TreeShape,
    chunking: &Chunking,
    data: &[u8],
    ckpt_id: u32,
    kind: MethodKind,
    first: Vec<u32>,
    shift: Vec<ShiftRegion>,
    codec: Option<&(u8, Box<dyn ckpt_compress::Codec>)>,
    streamed_slices: Option<u32>,
    mut stages: Option<&mut super::StageRecorder<'_>>,
) -> Diff {
    // Scratch comes from the device arena with worst-case floors (regions
    // are disjoint chunk ranges, so there are at most `n_chunks` segments
    // covering at most the whole snapshot): after the warm-up checkpoint
    // every lease is a pool hit regardless of how the diff size fluctuates.
    let arena = device.arena();
    let mut segments = arena.lease_with_floor::<(usize, usize)>(
        "dedup/segments",
        first.len(),
        chunking.n_chunks(),
    );
    for (seg, &node) in segments.as_mut_slice().iter_mut().zip(first.iter()) {
        let (clo, chi) = shape.chunk_range(node as usize);
        let (a, b) = chunking.byte_range_of_chunks(clo, chi);
        *seg = (a, b - a);
    }
    let payload_len: usize = segments.iter().map(|s| s.1).sum();

    if let Some(n_slices) = streamed_slices {
        // §5 streaming extension: gather and transfer overlap as a pipeline;
        // the overlapped work is attributed to the gather stage, leaving only
        // the metadata ride-along under "d2h".
        let payload =
            device.streamed_gather_to_host("serialize_streamed", data, &segments, n_slices);
        if let Some(rec) = stages.as_deref_mut() {
            rec.mark("gather_serialize");
        }
        device.account_d2h_bytes((first.len() * 4 + shift.len() * 12) as u64);
        if let Some(rec) = stages.as_deref_mut() {
            rec.mark("d2h");
        }
        return Diff {
            kind,
            ckpt_id,
            data_len: chunking.data_len() as u64,
            chunk_size: chunking.chunk_size() as u32,
            first_regions: first,
            shift_regions: shift,
            bitmap: Vec::new(),
            payload_codec: 0,
            payload,
        };
    }

    // Consolidate scattered regions into one contiguous device buffer with
    // team-cooperative copies, then one device-to-host transfer (§2.1). The
    // staging buffer is an arena lease floored at the full snapshot size;
    // the gather overwrites exactly the prefix the transfer reads, so stale
    // pool contents are never observable.
    let mut staging = arena.lease_with_floor::<u8>("dedup/staging", payload_len, data.len());
    device.team_gather("serialize_payload", data, &segments, staging.as_mut_slice());

    // Optional §5 hybrid: compress the consolidated first occurrences on the
    // device before the transfer (modeled as one more kernel over the
    // payload), shipping whichever representation is smaller.
    let compressed = match codec {
        Some((id, codec)) if payload_len > 0 => {
            let packed = codec.compress(staging.as_slice());
            device.parallel_for(
                "compress_payload",
                0,
                KernelCost {
                    bytes_read: payload_len as u64,
                    bytes_written: packed.len() as u64,
                    flops: (payload_len as f64 * codec.flops_per_byte()) as u64,
                },
                |_| {},
            );
            (packed.len() < payload_len).then_some((*id, packed))
        }
        _ => None,
    };
    if let Some(rec) = stages.as_deref_mut() {
        rec.mark("gather_serialize");
    }
    let (payload_codec, payload) = match compressed {
        Some((id, packed)) => {
            device.account_d2h_bytes(packed.len() as u64);
            (id, packed)
        }
        None => {
            device.account_d2h_bytes(payload_len as u64);
            (0, staging[..payload_len].to_vec())
        }
    };
    // The metadata tables ride along in the same consolidated transfer.
    device.account_d2h_bytes((first.len() * 4 + shift.len() * 12) as u64);
    if let Some(rec) = stages {
        rec.mark("d2h");
    }

    Diff {
        kind,
        ckpt_id,
        data_len: chunking.data_len() as u64,
        chunk_size: chunking.chunk_size() as u32,
        first_regions: first,
        shift_regions: shift,
        bitmap: Vec::new(),
        payload_codec,
        payload,
    }
}

impl Checkpointer for TreeCheckpointer {
    fn kind(&self) -> MethodKind {
        MethodKind::Tree
    }

    fn checkpoint(&mut self, data: &[u8]) -> CheckpointOutput {
        let device = self.device.clone();
        let ckpt_id = self.ckpt_id;
        let timer = Timer::start(&device);
        if !self.buffer_reuse {
            // Unpooled reference path: every lease below allocates fresh.
            device.arena().trim();
        }
        if self.state.is_none() {
            self.init_state(data.len());
        }
        let hasher = &*self.hasher;
        let fused = self.config.fused;
        let codec = self.codec.as_ref();
        let streamed = self.config.streamed_slices;
        let force_all = self.force_all;
        let state = self.state.as_mut().unwrap();
        assert_eq!(
            data.len(),
            state.chunking.data_len(),
            "checkpoint size changed mid-record"
        );
        let shape = *state.tree.shape();
        let chunking = state.chunking;
        state.labels.clear();

        let mut recorder = super::StageRecorder::start(&device);
        let run = |state: &mut State, rec: &mut super::StageRecorder<'_>| {
            leaf_pass::run(
                &device,
                &shape,
                &chunking,
                hasher,
                data,
                state.tree.digests_mut(),
                &state.labels,
                &state.map,
                ckpt_id,
                state.cache.as_ref(),
                force_all,
            );
            rec.mark("leaf_hash");
            first_ocur_pass(
                &device,
                &shape,
                hasher,
                state.tree.digests_mut(),
                &state.labels,
                &state.map,
                ckpt_id,
            );
            rec.mark("first_ocur_wave");
            let emit_flags = collect_pass(
                &device,
                &shape,
                hasher,
                state.tree.digests_mut(),
                &state.labels,
                &state.map,
                ckpt_id,
            );
            rec.mark("shift_dupl_wave");
            let mut regions = compact_emissions(&device, &emit_flags);
            let shift = resolve_shift_refs(
                state.tree.digests(),
                &state.map,
                ckpt_id,
                &regions.shift_nodes,
                &mut regions.first,
            );
            rec.mark("metadata_compact");
            serialize_diff(
                &device,
                &shape,
                &chunking,
                data,
                ckpt_id,
                MethodKind::Tree,
                regions.first,
                shift,
                codec,
                streamed,
                Some(rec),
            )
        };

        let diff = if fused {
            device.fused("tree_dedup_checkpoint", || run(state, &mut recorder))
        } else {
            run(state, &mut recorder)
        };

        let breakdown = recorder.finish(MethodKind::Tree, ckpt_id);
        let (measured_sec, modeled_sec) = timer.stop(&device);
        let (_, fixed, _) = leaf_pass::leaf_label_counts(&shape, &state.labels);
        let stats = CheckpointStats {
            method: MethodKind::Tree,
            ckpt_id,
            uncompressed_bytes: data.len() as u64,
            stored_bytes: diff.stored_bytes() as u64,
            metadata_bytes: diff.metadata_bytes() as u64,
            payload_bytes: diff.payload.len() as u64,
            n_first: diff.first_regions.len() as u64,
            n_shift: diff.shift_regions.len() as u64,
            n_fixed_chunks: fixed,
            measured_sec,
            modeled_sec,
        };
        self.ckpt_id += 1;
        CheckpointOutput {
            diff,
            stats,
            breakdown,
        }
    }

    /// Rebase: reset the historical record (O(1) generation bump) and take
    /// one checkpoint with the fixed-duplicate shortcut disabled, so every
    /// chunk re-registers and every emitted reference points inside this
    /// checkpoint. The record afterwards holds exactly this checkpoint's
    /// digests, so subsequent incremental checkpoints de-duplicate against
    /// the rebase content — checkpoint ids stay consecutive.
    fn rebase_checkpoint(&mut self, data: &[u8]) -> CheckpointOutput {
        if let Some(state) = self.state.as_mut() {
            let occupancy = state.map.len();
            state.map.reset_with_hint(occupancy);
        }
        self.force_all = true;
        let out = self.checkpoint(data);
        self.force_all = false;
        out
    }

    fn device_state_bytes(&self) -> usize {
        self.state.as_ref().map_or(0, |s| {
            s.tree.memory_bytes() + s.labels.len() + s.map.memory_bytes()
        })
    }

    /// Start a new record with warm device state. Checkpoint ids restart at
    /// 0 and the historical record resets via an O(1) generation bump,
    /// pre-sized from the outgoing record's occupancy. Stale Merkle digests
    /// are safe to keep: every digest read in a checkpoint was written
    /// earlier in the *same* checkpoint (leaves are always rewritten at
    /// `ckpt_id == 0` since the fixed-duplicate shortcut requires
    /// `ckpt_id > 0`, and interior digests are only read after the wave that
    /// wrote them), so no pass can observe a previous record's tree.
    fn reset_record(&mut self) {
        self.ckpt_id = 0;
        if let Some(state) = self.state.as_mut() {
            state.labels.clear();
            let occupancy = state.map.len();
            state.map.reset_with_hint(occupancy);
            if let Some(cache) = state.cache.as_mut() {
                *cache = gpu_sim::ContentCache::new(
                    2 * state.chunking.n_chunks(),
                    self.config.chunk_size,
                );
            }
        }
    }

    fn set_buffer_reuse(&mut self, on: bool) {
        self.buffer_reuse = on;
    }

    fn memory_stats(&self) -> super::MemoryStats {
        let a = self.device.arena().stats();
        let (bumps, rebuilds) = self.state.as_ref().map_or((0, 0), |s| {
            (s.map.generation_bumps(), s.map.rehash_rebuilds())
        });
        super::MemoryStats {
            device_bytes_leased: a.bytes_leased,
            device_bytes_allocated: a.bytes_allocated,
            arena_hits: a.hits,
            arena_misses: a.misses,
            map_generation_bumps: bumps,
            map_rehash_rebuilds: rebuilds,
        }
    }
}
