//! Ablation A3: the Tree method *without* the two-stage wave ordering.
//!
//! §2.2: "to avoid a situation where shifted duplicates are hashed faster
//! than first-time occurrences (which leads to a missing entry in the
//! historical record of unique hashes and therefore missed de-duplication
//! opportunities), we perform the parallelization in two stages."
//!
//! This variant deliberately runs the naive single sweep: at each tree
//! level, shifted-duplicate consolidation executes concurrently with the
//! first-occurrence consolidation of the *same* level, so its historical-
//! record lookups can only see entries from strictly deeper levels — the
//! worst-case interleaving of a fused one-pass kernel, made deterministic.
//! The result is still correct (diffs restore exactly) but consolidation
//! opportunities are missed, inflating the metadata — which the `waves`
//! ablation benchmark quantifies against the proper two-stage method.

use crate::chunking::Chunking;
use crate::diff::MethodKind;
use crate::labels::{Label, LabelArray};
use crate::methods::tree::{resolve_shift_refs, serialize_diff, EmittedRegions, TreeConfig};
use crate::methods::{leaf_pass, CheckpointOutput, Checkpointer, Timer};
use crate::stats::CheckpointStats;
use crate::tree::{MerkleTree, TreeShape};
use crate::util::SharedSliceMut;
use ckpt_hash::{Hasher128, Murmur3};
use gpu_sim::{Device, DistinctMap, InsertResult, KernelCost, MapEntry};
use std::sync::atomic::{AtomicU8, Ordering as AtomicOrdering};

/// Tree method with naive single-stage consolidation (ablation only).
pub struct NaiveTreeCheckpointer {
    device: Device,
    hasher: Box<dyn Hasher128>,
    config: TreeConfig,
    state: Option<State>,
    ckpt_id: u32,
}

struct State {
    chunking: Chunking,
    tree: MerkleTree,
    labels: LabelArray,
    map: DistinctMap,
}

impl NaiveTreeCheckpointer {
    pub fn new(device: Device, config: TreeConfig) -> Self {
        NaiveTreeCheckpointer {
            device,
            hasher: Box::new(Murmur3),
            config,
            state: None,
            ckpt_id: 0,
        }
    }
}

/// One interleaved sweep over the interior levels: per level, the
/// shifted-duplicate phase runs against the pre-level record, then the
/// first-occurrence phase inserts that level's digests.
#[allow(clippy::too_many_arguments)]
fn naive_sweep(
    device: &Device,
    shape: &TreeShape,
    hasher: &dyn Hasher128,
    digests: &mut [ckpt_hash::Digest128],
    labels: &LabelArray,
    map: &DistinctMap,
    ckpt_id: u32,
) -> EmittedRegions {
    let tree = SharedSliceMut::new(digests);
    // Lock-free emission via flags + compaction, as in the two-stage method.
    let emit_flags: Vec<AtomicU8> = (0..shape.n_nodes()).map(|_| AtomicU8::new(0)).collect();
    let emit = |node: usize| match labels.get(node) {
        Label::FirstOcur => emit_flags[node].store(1, AtomicOrdering::Relaxed),
        Label::ShiftDupl => emit_flags[node].store(2, AtomicOrdering::Relaxed),
        Label::FixedDupl | Label::Mixed => {}
        Label::None => unreachable!("unlabeled child below current level"),
    };

    for (lo, hi) in shape.interior_levels_bottom_up() {
        let width = hi - lo;
        let cost = KernelCost::stream((width * 2 * 16) as u64);

        // Phase 1a (the "shifted duplicates racing ahead" half of the fused
        // kernel): combine shifted pairs and publish new patterns. Lookups
        // and inserts here cannot see this level's first-occurrence inserts
        // — the naive ordering's defect.
        device.parallel_for("naive_consolidate_shift_publish", width, cost, |k| {
            let node = lo + k;
            let (cl, cr) = (shape.left(node), shape.right(node));
            if labels.get(cl) == Label::ShiftDupl && labels.get(cr) == Label::ShiftDupl {
                // SAFETY: children finalized by the previous level; `node`
                // owned by this thread.
                let (dl, dr) = unsafe { (tree.read(cl), tree.read(cr)) };
                let combined = hasher.combine(&dl, &dr);
                unsafe { tree.write(node, combined) };
                let me = MapEntry::new(node as u32, ckpt_id);
                match map.insert(&combined, me) {
                    InsertResult::Exists(e)
                        if e.ckpt == ckpt_id
                            && (node as u32) < e.node
                            && shape.depth(node) == shape.depth(e.node as usize) =>
                    {
                        map.update_with(&combined, |cur| {
                            (cur.ckpt == ckpt_id
                                && (node as u32) < cur.node
                                && shape.depth(node) == shape.depth(cur.node as usize))
                            .then_some(me)
                        });
                    }
                    _ => {}
                }
            }
        });

        // Phase 1b: decide shifted/fixed/mixed labels and emit.
        device.parallel_for("naive_consolidate_shift_decide", width, cost, |k| {
            let node = lo + k;
            let (cl, cr) = (shape.left(node), shape.right(node));
            match (labels.get(cl), labels.get(cr)) {
                (Label::FirstOcur, Label::FirstOcur) => {} // phase 2's job
                (Label::FixedDupl, Label::FixedDupl) => labels.set(node, Label::FixedDupl),
                (Label::ShiftDupl, Label::ShiftDupl) => {
                    // SAFETY: written by phase 1a (fork-join barrier).
                    let combined = unsafe { tree.read(node) };
                    match map.get(&combined) {
                        Some(e) if !(e.node == node as u32 && e.ckpt == ckpt_id) => {
                            labels.set(node, Label::ShiftDupl);
                        }
                        _ => {
                            // Twin of a same-level first occurrence is
                            // invisible here: missed dedup.
                            labels.set(node, Label::Mixed);
                            emit(cl);
                            emit(cr);
                        }
                    }
                }
                _ => {
                    labels.set(node, Label::Mixed);
                    emit(cl);
                    emit(cr);
                }
            }
        });

        // Phase 2: first-occurrence consolidation for this level.
        device.parallel_for("naive_consolidate_first", width, cost, |k| {
            let node = lo + k;
            if labels.get(node) != Label::None {
                return;
            }
            let (cl, cr) = (shape.left(node), shape.right(node));
            debug_assert_eq!(labels.get(cl), Label::FirstOcur);
            debug_assert_eq!(labels.get(cr), Label::FirstOcur);
            let (dl, dr) = unsafe { (tree.read(cl), tree.read(cr)) };
            let combined = hasher.combine(&dl, &dr);
            unsafe { tree.write(node, combined) };
            match map.insert(&combined, MapEntry::new(node as u32, ckpt_id)) {
                InsertResult::Inserted => labels.set(node, Label::FirstOcur),
                // A same-checkpoint twin got into the record first — in this
                // naive ordering that twin is a *shifted* region published by
                // phase 1a, and referencing it can create a cycle (its
                // content may resolve through leaves of this very subtree).
                // The fused sweep therefore has to store the data: the
                // missed-dedup penalty §2.2's two-stage ordering avoids.
                InsertResult::Exists(e) if e.ckpt == ckpt_id => labels.set(node, Label::FirstOcur),
                InsertResult::Exists(_) => labels.set(node, Label::ShiftDupl),
                InsertResult::OutOfCapacity => labels.set(node, Label::FirstOcur),
            }
        });
    }

    emit(0);
    crate::methods::tree::compact_emissions(device, &emit_flags)
}

impl Checkpointer for NaiveTreeCheckpointer {
    fn kind(&self) -> MethodKind {
        MethodKind::Tree
    }

    fn name(&self) -> &'static str {
        "Tree(naive-waves)"
    }

    fn checkpoint(&mut self, data: &[u8]) -> CheckpointOutput {
        let device = self.device.clone();
        let ckpt_id = self.ckpt_id;
        let timer = Timer::start(&device);
        if self.state.is_none() {
            let chunking = Chunking::new(data.len(), self.config.chunk_size);
            let shape = TreeShape::new(chunking.n_chunks());
            let map_cap = self.config.map_capacity.unwrap_or(4 * shape.n_nodes());
            self.state = Some(State {
                chunking,
                tree: MerkleTree::new(chunking.n_chunks()),
                labels: LabelArray::new(shape.n_nodes()),
                map: DistinctMap::with_capacity(map_cap),
            });
        }
        let hasher = &*self.hasher;
        let state = self.state.as_mut().unwrap();
        assert_eq!(
            data.len(),
            state.chunking.data_len(),
            "checkpoint size changed mid-record"
        );
        let shape = *state.tree.shape();
        let chunking = state.chunking;
        state.labels.clear();

        let diff = device.fused("naive_tree_checkpoint", || {
            leaf_pass::run(
                &device,
                &shape,
                &chunking,
                hasher,
                data,
                state.tree.digests_mut(),
                &state.labels,
                &state.map,
                ckpt_id,
                None,
                false,
            );
            let mut regions = naive_sweep(
                &device,
                &shape,
                hasher,
                state.tree.digests_mut(),
                &state.labels,
                &state.map,
                ckpt_id,
            );
            let shift = resolve_shift_refs(
                state.tree.digests(),
                &state.map,
                ckpt_id,
                &regions.shift_nodes,
                &mut regions.first,
            );
            serialize_diff(
                &device,
                &shape,
                &chunking,
                data,
                ckpt_id,
                MethodKind::Tree,
                regions.first,
                shift,
                None,
                None,
                None,
            )
        });

        let (measured_sec, modeled_sec) = timer.stop(&device);
        let (_, fixed, _) = leaf_pass::leaf_label_counts(&shape, &state.labels);
        let stats = CheckpointStats {
            method: MethodKind::Tree,
            ckpt_id,
            uncompressed_bytes: data.len() as u64,
            stored_bytes: diff.stored_bytes() as u64,
            metadata_bytes: diff.metadata_bytes() as u64,
            payload_bytes: diff.payload.len() as u64,
            n_first: diff.first_regions.len() as u64,
            n_shift: diff.shift_regions.len() as u64,
            n_fixed_chunks: fixed,
            measured_sec,
            modeled_sec,
        };
        self.ckpt_id += 1;
        CheckpointOutput::with_total_breakdown(diff, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::tree::TreeCheckpointer;
    use crate::restore::restore_record;

    const CS: usize = 32;

    fn chunks(tags: &[u8]) -> Vec<u8> {
        let mut v = Vec::with_capacity(tags.len() * CS);
        for &t in tags {
            v.extend((0..CS).map(|i| t.wrapping_mul(31).wrapping_add(i as u8)));
        }
        v
    }

    #[test]
    fn naive_still_restores_exactly() {
        let snaps = vec![
            chunks(&[1, 2, 3, 4, 5, 6, 7, 8]),
            chunks(&[9, 10, 11, 12, 5, 1, 9, 10]),
            chunks(&[9, 10, 11, 12, 5, 1, 9, 10]),
        ];
        let mut m = NaiveTreeCheckpointer::new(Device::a100(), TreeConfig::new(CS));
        let diffs: Vec<_> = snaps.iter().map(|s| m.checkpoint(s).diff).collect();
        let versions = restore_record(&diffs).unwrap();
        assert_eq!(versions, snaps);
    }

    /// The Figure 2 scenario: two-stage consolidates leaves 13,14 into node
    /// 6 (a shifted duplicate of the same-level node 3); the naive sweep
    /// cannot see node 3's insert and must emit the leaves separately.
    #[test]
    fn naive_misses_same_level_consolidation() {
        let v0 = chunks(b"ABCDEFGH");
        let v1 = chunks(b"IJKLEAIJ");

        let mut two_stage = TreeCheckpointer::new(Device::a100(), TreeConfig::new(CS));
        two_stage.checkpoint(&v0);
        let ts = two_stage.checkpoint(&v1);

        let mut naive = NaiveTreeCheckpointer::new(Device::a100(), TreeConfig::new(CS));
        naive.checkpoint(&v0);
        let nv = naive.checkpoint(&v1);

        // Two-stage: 3 regions (1 first + 2 shift). Naive: node 6 stays
        // unconsolidated → leaves 13 and 14 emitted separately → 4 regions.
        assert_eq!(ts.stats.n_first + ts.stats.n_shift, 3);
        assert_eq!(nv.stats.n_first + nv.stats.n_shift, 4);
        assert!(nv.stats.metadata_bytes > ts.stats.metadata_bytes);

        // Both restore identically.
        let mut a = TreeCheckpointer::new(Device::a100(), TreeConfig::new(CS));
        let da: Vec<_> = [&v0, &v1].iter().map(|s| a.checkpoint(s).diff).collect();
        let mut b = NaiveTreeCheckpointer::new(Device::a100(), TreeConfig::new(CS));
        let db: Vec<_> = [&v0, &v1].iter().map(|s| b.checkpoint(s).diff).collect();
        assert_eq!(restore_record(&da).unwrap(), restore_record(&db).unwrap());
    }

    #[test]
    fn naive_never_beats_two_stage_metadata() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n_chunks = 64;
            let mut tags: Vec<u8> = (0..n_chunks).map(|_| rng.gen_range(0..30)).collect();
            let mut ts = TreeCheckpointer::new(Device::a100(), TreeConfig::new(CS));
            let mut nv = NaiveTreeCheckpointer::new(Device::a100(), TreeConfig::new(CS));
            for _ in 0..4 {
                let data = chunks(&tags);
                let a = ts.checkpoint(&data);
                let b = nv.checkpoint(&data);
                assert!(
                    b.stats.metadata_bytes >= a.stats.metadata_bytes,
                    "seed {seed}: naive metadata {} < two-stage {}",
                    b.stats.metadata_bytes,
                    a.stats.metadata_bytes
                );
                for _ in 0..6 {
                    let at = rng.gen_range(0..n_chunks);
                    tags[at] = rng.gen_range(0..30);
                }
            }
        }
    }
}
