//! The shared leaf-hashing pass (Algorithm 1, lines 1–23).
//!
//! Both the `List` and `Tree` methods start identically: hash every chunk in
//! parallel, classify it as a fixed duplicate (same digest at the same
//! position as the previous checkpoint), a first occurrence (digest new to
//! the historical record) or a shifted duplicate (digest already recorded at
//! a different position), and keep the historical record pointing at the
//! *earliest* occurrence within the current checkpoint (lines 13–16).

use crate::chunking::Chunking;
use crate::labels::{Label, LabelArray};
use crate::tree::TreeShape;
use crate::util::SharedSliceMut;
use ckpt_hash::{Digest128, Hasher128};
use gpu_sim::{
    ContentCache, Device, DistinctMap, InsertResult, KernelCost, MapEntry, Verification,
};

/// Run the leaf pass for checkpoint `ckpt_id` of `data`.
///
/// * `digests` — per-node digest array; leaf slots hold the previous
///   checkpoint's digests on entry and the current ones on exit.
/// * `labels` — written with the per-leaf classification.
/// * `map` — the historical record of unique hashes, updated with first
///   occurrences.
/// * `cache` — optional chunk-content cache (§2.4's hash-collision
///   mitigation): first occurrences are cached; candidate duplicates whose
///   cached bytes differ are *collisions* and are stored instead of
///   referenced, under a salted digest so no ancestor consolidates on the
///   colliding value.
/// * `force_all` — rebase mode: disable the fixed-duplicate shortcut so every
///   chunk re-enters the (freshly reset) historical record. With the record
///   reset beforehand, every emitted reference lands inside this checkpoint,
///   making the resulting diff self-contained.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run(
    device: &Device,
    shape: &TreeShape,
    chunking: &Chunking,
    hasher: &dyn Hasher128,
    data: &[u8],
    digests: &mut [Digest128],
    labels: &LabelArray,
    map: &DistinctMap,
    ckpt_id: u32,
    cache: Option<&ContentCache>,
    force_all: bool,
) {
    debug_assert_eq!(data.len(), chunking.data_len());
    debug_assert_eq!(shape.n_chunks(), chunking.n_chunks());
    let tree = SharedSliceMut::new(digests);
    let n = chunking.n_chunks();
    let cost = KernelCost::stream(data.len() as u64)
        .with_writes((n * std::mem::size_of::<Digest128>()) as u64);

    // Per-chunk kernel state: a batched map-insert handle (one shared
    // `len` atomic update per chunk instead of per inserted digest) and a
    // reusable salt-combine scratch buffer (no per-collision allocation).
    let state = || (map.batch(), [0u8; 32]);
    device.parallel_for_init("leaf_hash_and_classify", n, cost, state, |state, c| {
        let (batch, scratch) = state;
        let leaf = shape.leaf_of_chunk(c);
        let chunk = chunking.chunk(data, c);
        let digest = hasher.hash(chunk);
        // A detected collision must not be referenced *or* become
        // referenceable: the chunk is stored as a first occurrence under a
        // digest salted with its position, which no other content hashes to.
        let collide_to_first = |scratch: &mut [u8; 32], digest: &Digest128| {
            let salt = Digest128::new(leaf as u64, ckpt_id as u64 | 1 << 63);
            let salted = hasher.combine_with(digest, &salt, scratch);
            // SAFETY: leaf owned by this thread.
            unsafe { tree.write(leaf, salted) };
            labels.set(leaf, Label::FirstOcur);
        };
        // SAFETY: leaf index owned by this thread for this kernel (the
        // chunk→leaf map is a bijection).
        let prev = unsafe { tree.read(leaf) };
        if !force_all && ckpt_id > 0 && digest == prev {
            // Same digest at the same position. With verification on, guard
            // against the chunk having changed into a colliding value.
            match cache.map_or(Verification::Unknown, |c| c.verify(&digest, chunk)) {
                Verification::Collision => {
                    collide_to_first(scratch, &digest);
                    return;
                }
                _ => {
                    labels.set(leaf, Label::FixedDupl);
                    return;
                }
            }
        }
        unsafe { tree.write(leaf, digest) };

        // "Earlier" between two occurrences in the same checkpoint means
        // smaller *chunk index* (data order), matching the sequential
        // reference implementation exactly.
        let earlier =
            |a: u32, b: u32| shape.chunk_of_leaf(a as usize) < shape.chunk_of_leaf(b as usize);

        // Candidate duplicate paths verify content first when a cache is on.
        let verified_collision = |cache: Option<&ContentCache>| {
            cache.is_some_and(|c| c.verify(&digest, chunk) == Verification::Collision)
        };

        match batch.insert(&digest, MapEntry::new(leaf as u32, ckpt_id)) {
            InsertResult::Inserted => {
                if let Some(c) = cache {
                    c.insert(&digest, chunk);
                }
                labels.set(leaf, Label::FirstOcur);
                // Close the displacement race: if a concurrently-running
                // earlier leaf already displaced us, demote ourselves. Both
                // orders of this re-check and the displacer's relabel
                // converge to ShiftDupl.
                if map
                    .get(&digest)
                    .is_some_and(|e| e != MapEntry::new(leaf as u32, ckpt_id))
                {
                    labels.set(leaf, Label::ShiftDupl);
                }
            }
            InsertResult::Exists(_) if verified_collision(cache) => {
                collide_to_first(scratch, &digest)
            }
            InsertResult::Exists(e) if e.ckpt == ckpt_id && earlier(leaf as u32, e.node) => {
                // This leaf is earlier than the recorded occurrence in the
                // same checkpoint: make it canonical (lines 13–16) and
                // relabel whoever we displaced as a shifted duplicate.
                let (before, after) = map
                    .update_with(&digest, |cur| {
                        (cur.ckpt == ckpt_id && earlier(leaf as u32, cur.node))
                            .then_some(MapEntry::new(leaf as u32, ckpt_id))
                    })
                    .expect("digest just observed must be present");
                if after == MapEntry::new(leaf as u32, ckpt_id) {
                    labels.set(leaf, Label::FirstOcur);
                    if before.ckpt == ckpt_id && before.node != leaf as u32 {
                        labels.set(before.node as usize, Label::ShiftDupl);
                    }
                    if map
                        .get(&digest)
                        .is_some_and(|e2| e2 != MapEntry::new(leaf as u32, ckpt_id))
                    {
                        labels.set(leaf, Label::ShiftDupl);
                    }
                } else {
                    // An even earlier leaf won while we were retrying.
                    labels.set(leaf, Label::ShiftDupl);
                }
            }
            InsertResult::Exists(_) => labels.set(leaf, Label::ShiftDupl),
            InsertResult::OutOfCapacity => {
                // Historical record exhausted: degrade gracefully by storing
                // the chunk as payload (no dedup opportunity recorded).
                labels.set(leaf, Label::FirstOcur)
            }
        }
    });
}

/// Count leaves carrying each label (stats helper): returns
/// `(first, fixed, shift)`.
pub(crate) fn leaf_label_counts(shape: &TreeShape, labels: &LabelArray) -> (u64, u64, u64) {
    use rayon::prelude::*;
    (0..shape.n_chunks())
        .into_par_iter()
        .map(|c| match labels.get(shape.leaf_of_chunk(c)) {
            Label::FirstOcur => (1u64, 0u64, 0u64),
            Label::FixedDupl => (0, 1, 0),
            Label::ShiftDupl => (0, 0, 1),
            other => unreachable!("leaf with label {other:?} after leaf pass"),
        })
        .reduce(|| (0, 0, 0), |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_hash::Murmur3;

    fn setup(data_len: usize, chunk_size: usize) -> (Device, TreeShape, Chunking) {
        let ck = Chunking::new(data_len, chunk_size);
        (Device::a100(), TreeShape::new(ck.n_chunks()), ck)
    }

    #[test]
    fn first_checkpoint_all_first_or_shift() {
        let (dev, shape, ck) = setup(32 * 8, 32);
        // Chunks: A B A B C C D E -> first occurrences A,B,C,D,E; shifts: 2.
        let mut data = vec![0u8; 256];
        for (i, tag) in [0u8, 1, 0, 1, 2, 2, 3, 4].iter().enumerate() {
            data[i * 32..(i + 1) * 32].fill(*tag);
        }
        let mut digests = vec![Digest128::ZERO; shape.n_nodes()];
        let labels = LabelArray::new(shape.n_nodes());
        let map = DistinctMap::with_capacity(64);
        run(
            &dev,
            &shape,
            &ck,
            &Murmur3,
            &data,
            &mut digests,
            &labels,
            &map,
            0,
            None,
            false,
        );

        let (first, fixed, shift) = leaf_label_counts(&shape, &labels);
        assert_eq!(first, 5);
        assert_eq!(fixed, 0);
        assert_eq!(shift, 3);
        assert_eq!(map.len(), 5);
    }

    #[test]
    fn earliest_leaf_is_canonical() {
        let (dev, shape, ck) = setup(32 * 4, 32);
        let data = vec![7u8; 128]; // four identical chunks
        let mut digests = vec![Digest128::ZERO; shape.n_nodes()];
        let labels = LabelArray::new(shape.n_nodes());
        let map = DistinctMap::with_capacity(16);
        run(
            &dev,
            &shape,
            &ck,
            &Murmur3,
            &data,
            &mut digests,
            &labels,
            &map,
            0,
            None,
            false,
        );

        let d = Murmur3.hash(&data[0..32]);
        let entry = map.get(&d).unwrap();
        // Canonical occurrence is the leaf with the smallest node id among
        // the four (all four leaves hold the same digest).
        let min_leaf = (0..4).map(|c| shape.leaf_of_chunk(c)).min().unwrap();
        assert_eq!(entry.node as usize, min_leaf);
        assert_eq!(labels.get(min_leaf), Label::FirstOcur);
    }

    #[test]
    fn second_checkpoint_fixed_duplicates() {
        let (dev, shape, ck) = setup(32 * 4, 32);
        let mut data = vec![0u8; 128];
        for (i, t) in [1u8, 2, 3, 4].iter().enumerate() {
            data[i * 32..(i + 1) * 32].fill(*t);
        }
        let mut digests = vec![Digest128::ZERO; shape.n_nodes()];
        let mut labels = LabelArray::new(shape.n_nodes());
        let map = DistinctMap::with_capacity(64);
        run(
            &dev,
            &shape,
            &ck,
            &Murmur3,
            &data,
            &mut digests,
            &labels,
            &map,
            0,
            None,
            false,
        );

        // Second checkpoint: chunk 2 modified, rest unchanged.
        data[2 * 32..3 * 32].fill(9);
        labels.clear();
        run(
            &dev,
            &shape,
            &ck,
            &Murmur3,
            &data,
            &mut digests,
            &labels,
            &map,
            1,
            None,
            false,
        );
        let (first, fixed, shift) = leaf_label_counts(&shape, &labels);
        assert_eq!(fixed, 3);
        assert_eq!(first, 1);
        assert_eq!(shift, 0);
    }

    #[test]
    fn second_checkpoint_shifted_duplicate_of_old_data() {
        let (dev, shape, ck) = setup(32 * 4, 32);
        let mut data = vec![0u8; 128];
        for (i, t) in [1u8, 2, 3, 4].iter().enumerate() {
            data[i * 32..(i + 1) * 32].fill(*t);
        }
        let mut digests = vec![Digest128::ZERO; shape.n_nodes()];
        let mut labels = LabelArray::new(shape.n_nodes());
        let map = DistinctMap::with_capacity(64);
        run(
            &dev,
            &shape,
            &ck,
            &Murmur3,
            &data,
            &mut digests,
            &labels,
            &map,
            0,
            None,
            false,
        );

        // Chunk 0 now holds chunk 3's old content: shifted duplicate.
        data[0..32].fill(4);
        labels.clear();
        run(
            &dev,
            &shape,
            &ck,
            &Murmur3,
            &data,
            &mut digests,
            &labels,
            &map,
            1,
            None,
            false,
        );
        let leaf0 = shape.leaf_of_chunk(0);
        assert_eq!(labels.get(leaf0), Label::ShiftDupl);
        let entry = map.get(&Murmur3.hash(&data[0..32])).unwrap();
        assert_eq!(entry.ckpt, 0);
        assert_eq!(entry.node as usize, shape.leaf_of_chunk(3));
    }

    #[test]
    fn degrades_to_first_ocur_when_map_full() {
        let (dev, shape, ck) = setup(32 * 8, 32);
        let data: Vec<u8> = (0..256u32)
            .map(|i| (i / 32) as u8 * 17 + (i % 32) as u8)
            .collect();
        let mut digests = vec![Digest128::ZERO; shape.n_nodes()];
        let labels = LabelArray::new(shape.n_nodes());
        let map = DistinctMap::with_capacity(1); // 2-slot table, fills instantly
        run(
            &dev,
            &shape,
            &ck,
            &Murmur3,
            &data,
            &mut digests,
            &labels,
            &map,
            0,
            None,
            false,
        );
        let (first, fixed, shift) = leaf_label_counts(&shape, &labels);
        // All chunks distinct; whatever did not fit became FirstOcur anyway.
        assert_eq!(first, 8);
        assert_eq!(fixed + shift, 0);
    }
}
