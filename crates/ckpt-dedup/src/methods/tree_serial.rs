//! Sequential reference implementation of the Tree method.
//!
//! Same algorithm as [`super::tree::TreeCheckpointer`], executed on one
//! thread with a plain `HashMap` as the historical record. It exists as a
//! correctness oracle: the parallel implementation is engineered to produce
//! *bit-identical diffs* (canonical occurrences resolve to the earliest data
//! position in both), which the cross-implementation tests assert.

use crate::chunking::Chunking;
use crate::diff::{Diff, MethodKind, ShiftRegion};
use crate::labels::Label;
use crate::methods::{CheckpointOutput, Checkpointer};
use crate::stats::CheckpointStats;
use crate::tree::TreeShape;
use ckpt_hash::{Digest128, Hasher128, Murmur3};
use gpu_sim::MapEntry;
use std::collections::HashMap;

/// Sequential Tree-method checkpointer.
pub struct SerialTreeCheckpointer {
    hasher: Box<dyn Hasher128>,
    chunk_size: usize,
    state: Option<State>,
    ckpt_id: u32,
}

struct State {
    chunking: Chunking,
    shape: TreeShape,
    digests: Vec<Digest128>,
    labels: Vec<Label>,
    map: HashMap<Digest128, MapEntry>,
}

impl SerialTreeCheckpointer {
    pub fn new(chunk_size: usize) -> Self {
        SerialTreeCheckpointer {
            hasher: Box::new(Murmur3),
            chunk_size,
            state: None,
            ckpt_id: 0,
        }
    }

    pub fn with_hasher(chunk_size: usize, hasher: Box<dyn Hasher128>) -> Self {
        SerialTreeCheckpointer {
            hasher,
            chunk_size,
            state: None,
            ckpt_id: 0,
        }
    }

    /// Unique digests in the historical record.
    pub fn record_len(&self) -> usize {
        self.state.as_ref().map_or(0, |s| s.map.len())
    }
}

impl Checkpointer for SerialTreeCheckpointer {
    fn kind(&self) -> MethodKind {
        MethodKind::Tree
    }

    fn name(&self) -> &'static str {
        "Tree(serial)"
    }

    fn checkpoint(&mut self, data: &[u8]) -> CheckpointOutput {
        let start = std::time::Instant::now();
        let ckpt_id = self.ckpt_id;
        if self.state.is_none() {
            let chunking = Chunking::new(data.len(), self.chunk_size);
            let shape = TreeShape::new(chunking.n_chunks());
            self.state = Some(State {
                chunking,
                shape,
                digests: vec![Digest128::ZERO; shape.n_nodes()],
                labels: vec![Label::None; shape.n_nodes()],
                map: HashMap::new(),
            });
        }
        let s = self.state.as_mut().unwrap();
        assert_eq!(
            data.len(),
            s.chunking.data_len(),
            "checkpoint size changed mid-record"
        );
        s.labels.fill(Label::None);
        let hasher = &*self.hasher;

        // Leaf pass, in chunk (data) order: the first occurrence of a digest
        // within this checkpoint is automatically the earliest chunk.
        for c in 0..s.chunking.n_chunks() {
            let leaf = s.shape.leaf_of_chunk(c);
            let digest = hasher.hash(s.chunking.chunk(data, c));
            if ckpt_id > 0 && digest == s.digests[leaf] {
                s.labels[leaf] = Label::FixedDupl;
                continue;
            }
            s.digests[leaf] = digest;
            match s.map.entry(digest) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(MapEntry::new(leaf as u32, ckpt_id));
                    s.labels[leaf] = Label::FirstOcur;
                }
                std::collections::hash_map::Entry::Occupied(_) => {
                    s.labels[leaf] = Label::ShiftDupl;
                }
            }
        }

        // First-occurrence consolidation, level by level bottom-up, nodes in
        // ascending order within a level (leftmost twin wins the insert).
        for (lo, hi) in s.shape.interior_levels_bottom_up() {
            for node in lo..hi {
                let (cl, cr) = (s.shape.left(node), s.shape.right(node));
                if s.labels[cl] == Label::FirstOcur && s.labels[cr] == Label::FirstOcur {
                    let combined = hasher.combine(&s.digests[cl], &s.digests[cr]);
                    s.digests[node] = combined;
                    match s.map.entry(combined) {
                        std::collections::hash_map::Entry::Vacant(v) => {
                            v.insert(MapEntry::new(node as u32, ckpt_id));
                            s.labels[node] = Label::FirstOcur;
                        }
                        std::collections::hash_map::Entry::Occupied(_) => {
                            s.labels[node] = Label::ShiftDupl;
                        }
                    }
                }
            }
        }

        // Shifted-duplicate consolidation and region collection.
        let mut first: Vec<u32> = Vec::new();
        let mut shift_nodes: Vec<u32> = Vec::new();
        {
            let mut emit = |labels: &[Label], node: usize| match labels[node] {
                Label::FirstOcur => first.push(node as u32),
                Label::ShiftDupl => shift_nodes.push(node as u32),
                Label::FixedDupl | Label::Mixed => {}
                Label::None => unreachable!("unlabeled child"),
            };
            for (lo, hi) in s.shape.interior_levels_bottom_up() {
                // Sub-pass 1: combine shifted pairs and publish the new
                // patterns into the historical record (§2.2: consolidated
                // regions are added to the record even on first occurrence).
                for node in lo..hi {
                    if s.labels[node] != Label::None {
                        continue;
                    }
                    let (cl, cr) = (s.shape.left(node), s.shape.right(node));
                    if s.labels[cl] == Label::ShiftDupl && s.labels[cr] == Label::ShiftDupl {
                        let combined = hasher.combine(&s.digests[cl], &s.digests[cr]);
                        s.digests[node] = combined;
                        s.map
                            .entry(combined)
                            .or_insert(MapEntry::new(node as u32, ckpt_id));
                    }
                }
                // Sub-pass 2: decide labels and emit.
                for node in lo..hi {
                    if s.labels[node] != Label::None {
                        continue;
                    }
                    let (cl, cr) = (s.shape.left(node), s.shape.right(node));
                    match (s.labels[cl], s.labels[cr]) {
                        (Label::FixedDupl, Label::FixedDupl) => s.labels[node] = Label::FixedDupl,
                        (Label::ShiftDupl, Label::ShiftDupl) => {
                            let e = s.map[&s.digests[node]];
                            if e.node == node as u32 && e.ckpt == ckpt_id {
                                // We are the canonical first occurrence.
                                s.labels[node] = Label::Mixed;
                                emit(&s.labels, cl);
                                emit(&s.labels, cr);
                            } else {
                                s.labels[node] = Label::ShiftDupl;
                            }
                        }
                        _ => {
                            s.labels[node] = Label::Mixed;
                            emit(&s.labels, cl);
                            emit(&s.labels, cr);
                        }
                    }
                }
            }
            emit(&s.labels, 0);
        }
        first.sort_unstable();
        shift_nodes.sort_unstable();

        // Resolve shifted-duplicate references.
        let mut shift = Vec::with_capacity(shift_nodes.len());
        for &node in &shift_nodes {
            let e = s.map[&s.digests[node as usize]];
            if e.node == node && e.ckpt == ckpt_id {
                first.push(node);
            } else {
                shift.push(ShiftRegion {
                    node,
                    ref_node: e.node,
                    ref_ckpt: e.ckpt,
                });
            }
        }
        first.sort_unstable();

        // Serialize.
        let mut payload = Vec::new();
        for &node in &first {
            let (clo, chi) = s.shape.chunk_range(node as usize);
            let (a, b) = s.chunking.byte_range_of_chunks(clo, chi);
            payload.extend_from_slice(&data[a..b]);
        }
        let n_fixed = (0..s.chunking.n_chunks())
            .filter(|&c| s.labels[s.shape.leaf_of_chunk(c)] == Label::FixedDupl)
            .count() as u64;

        let diff = Diff {
            kind: MethodKind::Tree,
            ckpt_id,
            data_len: s.chunking.data_len() as u64,
            chunk_size: s.chunking.chunk_size() as u32,
            first_regions: first,
            shift_regions: shift,
            bitmap: Vec::new(),
            payload_codec: 0,
            payload,
        };
        let measured_sec = start.elapsed().as_secs_f64();
        let stats = CheckpointStats {
            method: MethodKind::Tree,
            ckpt_id,
            uncompressed_bytes: data.len() as u64,
            stored_bytes: diff.stored_bytes() as u64,
            metadata_bytes: diff.metadata_bytes() as u64,
            payload_bytes: diff.payload.len() as u64,
            n_first: diff.first_regions.len() as u64,
            n_shift: diff.shift_regions.len() as u64,
            n_fixed_chunks: n_fixed,
            measured_sec,
            modeled_sec: measured_sec,
        };
        self.ckpt_id += 1;
        CheckpointOutput::with_total_breakdown(diff, stats)
    }
}
