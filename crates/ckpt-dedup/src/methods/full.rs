//! The **Full** baseline: store every checkpoint in its entirety.
//!
//! Its "de-duplication throughput" is simply the device-to-host flush
//! throughput of the whole buffer (§3.2), which is what the other methods
//! must beat after paying their compute overhead.

use crate::chunking::Chunking;
use crate::diff::{Diff, MethodKind};
use crate::methods::{CheckpointOutput, Checkpointer, Timer};
use crate::stats::CheckpointStats;
use gpu_sim::Device;

/// The Full method. Stateless apart from the checkpoint counter.
pub struct FullCheckpointer {
    device: Device,
    chunk_size: usize,
    ckpt_id: u32,
    data_len: Option<usize>,
}

impl FullCheckpointer {
    /// `chunk_size` only annotates the diff header (Full does not chunk).
    pub fn new(device: Device, chunk_size: usize) -> Self {
        FullCheckpointer {
            device,
            chunk_size,
            ckpt_id: 0,
            data_len: None,
        }
    }
}

impl Checkpointer for FullCheckpointer {
    fn kind(&self) -> MethodKind {
        MethodKind::Full
    }

    fn checkpoint(&mut self, data: &[u8]) -> CheckpointOutput {
        let timer = Timer::start(&self.device);
        let ckpt_id = self.ckpt_id;
        match self.data_len {
            None => self.data_len = Some(data.len()),
            Some(l) => assert_eq!(data.len(), l, "checkpoint size changed mid-record"),
        }
        // Validate chunk geometry eagerly (same constraints as the others).
        let chunking = Chunking::new(data.len(), self.chunk_size);

        // One full-size device-to-host flush.
        self.device.account_d2h_bytes(data.len() as u64);
        let payload = data.to_vec();

        let diff = Diff {
            kind: MethodKind::Full,
            ckpt_id,
            data_len: data.len() as u64,
            chunk_size: chunking.chunk_size() as u32,
            first_regions: Vec::new(),
            shift_regions: Vec::new(),
            bitmap: Vec::new(),
            payload_codec: 0,
            payload,
        };
        let (measured_sec, modeled_sec) = timer.stop(&self.device);
        let stats = CheckpointStats {
            method: MethodKind::Full,
            ckpt_id,
            uncompressed_bytes: data.len() as u64,
            stored_bytes: diff.stored_bytes() as u64,
            metadata_bytes: 0,
            payload_bytes: data.len() as u64,
            n_first: 0,
            n_shift: 0,
            n_fixed_chunks: 0,
            measured_sec,
            modeled_sec,
        };
        self.ckpt_id += 1;
        CheckpointOutput::with_total_breakdown(diff, stats)
    }

    fn reset_record(&mut self) {
        self.ckpt_id = 0;
    }
}
