//! The **Basic** baseline: position-wise incremental checkpointing.
//!
//! "A Basic incremental checkpointing method that breaks the checkpoint into
//! chunks, hashes the chunks, then builds a bitmap to indicate what chunks
//! are new and what chunks remain unchanged. It saves the bitmap and the new
//! chunks" (§3.2). It detects *fixed* duplicates only — no spatial
//! de-duplication, no shifted duplicates — but its metadata is a single bit
//! per chunk.

use crate::chunking::Chunking;
use crate::diff::{bitmap, Diff, MethodKind};
use crate::methods::{CheckpointOutput, Checkpointer, Timer};
use crate::stats::CheckpointStats;
use ckpt_hash::{Digest128, Hasher128, Murmur3};
use gpu_sim::{Device, KernelCost};
use std::sync::atomic::{AtomicU8, Ordering};

/// The Basic method's persistent state.
pub struct BasicCheckpointer {
    device: Device,
    hasher: Box<dyn Hasher128>,
    chunk_size: usize,
    fused: bool,
    state: Option<State>,
    ckpt_id: u32,
    buffer_reuse: bool,
    /// Rebase mode for the current checkpoint: mark every chunk changed.
    force_all: bool,
}

struct State {
    chunking: Chunking,
    /// Previous checkpoint's chunk digests, indexed by chunk.
    prev: Vec<Digest128>,
}

impl BasicCheckpointer {
    pub fn new(device: Device, chunk_size: usize) -> Self {
        BasicCheckpointer {
            device,
            hasher: Box::new(Murmur3),
            chunk_size,
            fused: true,
            state: None,
            ckpt_id: 0,
            buffer_reuse: true,
            force_all: false,
        }
    }
}

impl Checkpointer for BasicCheckpointer {
    fn kind(&self) -> MethodKind {
        MethodKind::Basic
    }

    fn checkpoint(&mut self, data: &[u8]) -> CheckpointOutput {
        let device = self.device.clone();
        let ckpt_id = self.ckpt_id;
        let timer = Timer::start(&device);
        if !self.buffer_reuse {
            device.arena().trim();
        }
        if self.state.is_none() {
            let chunking = Chunking::new(data.len(), self.chunk_size);
            self.state = Some(State {
                chunking,
                prev: vec![Digest128::ZERO; chunking.n_chunks()],
            });
        }
        let hasher = &*self.hasher;
        let force_all = self.force_all;
        let state = self.state.as_mut().unwrap();
        assert_eq!(
            data.len(),
            state.chunking.data_len(),
            "checkpoint size changed mid-record"
        );
        let chunking = state.chunking;
        let n = chunking.n_chunks();

        // Per-checkpoint change flags come from the device arena; the lease
        // carries whatever the previous checkpoint left, so clear explicitly
        // (fresh allocations are zeroed the same way — pooled and unpooled
        // runs stay bit-identical).
        let mut changed = device.arena().lease::<AtomicU8>("basic/changed", n);
        {
            use rayon::prelude::*;
            changed
                .as_mut_slice()
                .par_chunks_mut(16 * 1024)
                .for_each(|chunk| {
                    for f in chunk {
                        *f.get_mut() = 0;
                    }
                });
        }
        let changed = changed;
        let prev = crate::util::SharedSliceMut::new(&mut state.prev);

        let mut recorder = super::StageRecorder::start(&device);
        let run = |rec: &mut super::StageRecorder<'_>| {
            device.parallel_for(
                "basic_hash_compare",
                n,
                KernelCost::stream(data.len() as u64),
                |c| {
                    let digest = hasher.hash(chunking.chunk(data, c));
                    // SAFETY: chunk index owned by this thread.
                    let old = unsafe { prev.read(c) };
                    if force_all || ckpt_id == 0 || digest != old {
                        changed[c].store(1, Ordering::Relaxed);
                        unsafe { prev.write(c, digest) };
                    }
                },
            );
            rec.mark("leaf_hash");

            // Build the bitmap and gather changed chunks. The bitmap is this
            // method's (uncompacted) metadata, so its construction is the
            // analogue of the Tree method's compaction stage. Each bitmap
            // byte is owned by one work item (8 chunks), so the build is a
            // data-parallel kernel; the segment list comes from a device
            // stream compaction over the same flags.
            let mut bm = vec![0u8; bitmap::bytes_for(n)];
            {
                use rayon::prelude::*;
                bm.par_iter_mut().enumerate().for_each(|(byte, out)| {
                    let mut v = 0u8;
                    for bit in 0..8 {
                        let c = byte * 8 + bit;
                        if c < n && changed[c].load(Ordering::Relaxed) == 1 {
                            v |= 1 << bit;
                        }
                    }
                    *out = v;
                });
            }
            let changed_idx = device.compact_where("basic_changed_chunks", n, |c| {
                changed[c].load(Ordering::Relaxed) == 1
            });
            let mut segments = device.arena().lease_with_floor::<(usize, usize)>(
                "basic/segments",
                changed_idx.len(),
                n,
            );
            for (seg, &c) in segments.as_mut_slice().iter_mut().zip(changed_idx.iter()) {
                let (a, b) = chunking.byte_range(c as usize);
                *seg = (a, b - a);
            }
            rec.mark("metadata_compact");
            let payload_len: usize = segments.iter().map(|s| s.1).sum();
            let mut staging =
                device
                    .arena()
                    .lease_with_floor::<u8>("basic/staging", payload_len, data.len());
            device.team_gather("basic_serialize", data, &segments, staging.as_mut_slice());
            rec.mark("gather_serialize");
            device.account_d2h_bytes(payload_len as u64);
            let payload = staging[..payload_len].to_vec();
            device.account_d2h_bytes(bm.len() as u64);
            rec.mark("d2h");
            (bm, payload, changed_idx.len())
        };

        let (bm, payload, n_changed) = if self.fused {
            device.fused("basic_checkpoint", || run(&mut recorder))
        } else {
            run(&mut recorder)
        };
        let breakdown = recorder.finish(MethodKind::Basic, ckpt_id);

        let diff = Diff {
            kind: MethodKind::Basic,
            ckpt_id,
            data_len: chunking.data_len() as u64,
            chunk_size: chunking.chunk_size() as u32,
            first_regions: Vec::new(),
            shift_regions: Vec::new(),
            bitmap: bm,
            payload_codec: 0,
            payload,
        };
        let (measured_sec, modeled_sec) = timer.stop(&device);
        let stats = CheckpointStats {
            method: MethodKind::Basic,
            ckpt_id,
            uncompressed_bytes: data.len() as u64,
            stored_bytes: diff.stored_bytes() as u64,
            metadata_bytes: diff.metadata_bytes() as u64,
            payload_bytes: diff.payload.len() as u64,
            n_first: n_changed as u64,
            n_shift: 0,
            n_fixed_chunks: (n - n_changed) as u64,
            measured_sec,
            modeled_sec,
        };
        self.ckpt_id += 1;
        CheckpointOutput {
            diff,
            stats,
            breakdown,
        }
    }

    /// Rebase: one checkpoint with every chunk stored (bitmap all ones).
    /// `prev` is still refreshed by the kernel, so the next incremental
    /// checkpoint diffs against the rebase content as usual.
    fn rebase_checkpoint(&mut self, data: &[u8]) -> CheckpointOutput {
        self.force_all = true;
        let out = self.checkpoint(data);
        self.force_all = false;
        out
    }

    fn device_state_bytes(&self) -> usize {
        self.state.as_ref().map_or(0, |s| s.prev.len() * 16)
    }

    /// Restarting the record only needs the id reset: at `ckpt_id == 0` the
    /// hash-compare kernel marks every chunk changed regardless of `prev`.
    fn reset_record(&mut self) {
        self.ckpt_id = 0;
    }

    fn set_buffer_reuse(&mut self, on: bool) {
        self.buffer_reuse = on;
    }

    fn memory_stats(&self) -> super::MemoryStats {
        let a = self.device.arena().stats();
        // Basic keeps no historical record; the map counters stay zero.
        super::MemoryStats {
            device_bytes_leased: a.bytes_leased,
            device_bytes_allocated: a.bytes_allocated,
            arena_hits: a.hits,
            arena_misses: a.misses,
            map_generation_bumps: 0,
            map_rehash_rebuilds: 0,
        }
    }
}
