//! The **Basic** baseline: position-wise incremental checkpointing.
//!
//! "A Basic incremental checkpointing method that breaks the checkpoint into
//! chunks, hashes the chunks, then builds a bitmap to indicate what chunks
//! are new and what chunks remain unchanged. It saves the bitmap and the new
//! chunks" (§3.2). It detects *fixed* duplicates only — no spatial
//! de-duplication, no shifted duplicates — but its metadata is a single bit
//! per chunk.

use crate::chunking::Chunking;
use crate::diff::{bitmap, Diff, MethodKind};
use crate::methods::{CheckpointOutput, Checkpointer, Timer};
use crate::stats::CheckpointStats;
use ckpt_hash::{Digest128, Hasher128, Murmur3};
use gpu_sim::{Device, KernelCost};
use std::sync::atomic::{AtomicU8, Ordering};

/// The Basic method's persistent state.
pub struct BasicCheckpointer {
    device: Device,
    hasher: Box<dyn Hasher128>,
    chunk_size: usize,
    fused: bool,
    state: Option<State>,
    ckpt_id: u32,
}

struct State {
    chunking: Chunking,
    /// Previous checkpoint's chunk digests, indexed by chunk.
    prev: Vec<Digest128>,
}

impl BasicCheckpointer {
    pub fn new(device: Device, chunk_size: usize) -> Self {
        BasicCheckpointer {
            device,
            hasher: Box::new(Murmur3),
            chunk_size,
            fused: true,
            state: None,
            ckpt_id: 0,
        }
    }
}

impl Checkpointer for BasicCheckpointer {
    fn kind(&self) -> MethodKind {
        MethodKind::Basic
    }

    fn checkpoint(&mut self, data: &[u8]) -> CheckpointOutput {
        let device = self.device.clone();
        let ckpt_id = self.ckpt_id;
        let timer = Timer::start(&device);
        if self.state.is_none() {
            let chunking = Chunking::new(data.len(), self.chunk_size);
            self.state = Some(State {
                chunking,
                prev: vec![Digest128::ZERO; chunking.n_chunks()],
            });
        }
        let hasher = &*self.hasher;
        let state = self.state.as_mut().unwrap();
        assert_eq!(
            data.len(),
            state.chunking.data_len(),
            "checkpoint size changed mid-record"
        );
        let chunking = state.chunking;
        let n = chunking.n_chunks();

        let changed: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(0)).collect();
        let prev = crate::util::SharedSliceMut::new(&mut state.prev);

        let mut recorder = super::StageRecorder::start(&device);
        let run = |rec: &mut super::StageRecorder<'_>| {
            device.parallel_for(
                "basic_hash_compare",
                n,
                KernelCost::stream(data.len() as u64),
                |c| {
                    let digest = hasher.hash(chunking.chunk(data, c));
                    // SAFETY: chunk index owned by this thread.
                    let old = unsafe { prev.read(c) };
                    if ckpt_id == 0 || digest != old {
                        changed[c].store(1, Ordering::Relaxed);
                        unsafe { prev.write(c, digest) };
                    }
                },
            );
            rec.mark("leaf_hash");

            // Build the bitmap and gather changed chunks. The bitmap is this
            // method's (uncompacted) metadata, so its construction is the
            // analogue of the Tree method's compaction stage.
            let mut bm = vec![0u8; bitmap::bytes_for(n)];
            let mut segments = Vec::new();
            for (c, flag) in changed.iter().enumerate() {
                if flag.load(Ordering::Relaxed) == 1 {
                    bitmap::set(&mut bm, c);
                    let (a, b) = chunking.byte_range(c);
                    segments.push((a, b - a));
                }
            }
            rec.mark("metadata_compact");
            let payload_len: usize = segments.iter().map(|s| s.1).sum();
            let mut staging = device.alloc::<u8>(payload_len);
            device.team_gather("basic_serialize", data, &segments, staging.as_mut_slice());
            rec.mark("gather_serialize");
            let payload = staging.copy_prefix_to_host(payload_len);
            device.account_d2h_bytes(bm.len() as u64);
            rec.mark("d2h");
            (bm, payload, segments.len())
        };

        let (bm, payload, n_changed) = if self.fused {
            device.fused("basic_checkpoint", || run(&mut recorder))
        } else {
            run(&mut recorder)
        };
        let breakdown = recorder.finish(MethodKind::Basic, ckpt_id);

        let diff = Diff {
            kind: MethodKind::Basic,
            ckpt_id,
            data_len: chunking.data_len() as u64,
            chunk_size: chunking.chunk_size() as u32,
            first_regions: Vec::new(),
            shift_regions: Vec::new(),
            bitmap: bm,
            payload_codec: 0,
            payload,
        };
        let (measured_sec, modeled_sec) = timer.stop(&device);
        let stats = CheckpointStats {
            method: MethodKind::Basic,
            ckpt_id,
            uncompressed_bytes: data.len() as u64,
            stored_bytes: diff.stored_bytes() as u64,
            metadata_bytes: diff.metadata_bytes() as u64,
            payload_bytes: diff.payload.len() as u64,
            n_first: n_changed as u64,
            n_shift: 0,
            n_fixed_chunks: (n - n_changed) as u64,
            measured_sec,
            modeled_sec,
        };
        self.ckpt_id += 1;
        CheckpointOutput {
            diff,
            stats,
            breakdown,
        }
    }

    fn device_state_bytes(&self) -> usize {
        self.state.as_ref().map_or(0, |s| s.prev.len() * 16)
    }
}
