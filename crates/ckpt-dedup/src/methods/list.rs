//! The **List** baseline: the paper's method without metadata compaction.
//!
//! "We implemented a List method that is identical to our method except for
//! the metadata compaction, which is omitted. Instead, a full list of all
//! first-time occurrences and shifted duplicates is stored along the new
//! chunks" (§3.2). It shares the leaf pass — and therefore the full
//! spatiotemporal de-duplication power — with the Tree method, but emits one
//! metadata entry per non-fixed chunk, which is what the Tree method's
//! hierarchical consolidation compacts away.

use crate::chunking::Chunking;
use crate::diff::MethodKind;
use crate::labels::{Label, LabelArray};
use crate::methods::tree::{resolve_shift_refs, serialize_diff, TreeConfig};
use crate::methods::{leaf_pass, CheckpointOutput, Checkpointer, Timer};
use crate::stats::CheckpointStats;
use crate::tree::{MerkleTree, TreeShape};
use ckpt_hash::{Hasher128, Murmur3};
use gpu_sim::{Device, DistinctMap};

/// The List method's persistent state across a checkpoint record.
pub struct ListCheckpointer {
    device: Device,
    hasher: Box<dyn Hasher128>,
    config: TreeConfig,
    state: Option<State>,
    ckpt_id: u32,
}

struct State {
    chunking: Chunking,
    /// Only the leaf slots are used; sharing [`MerkleTree`] keeps node ids
    /// compatible with the common diff format and restore path.
    tree: MerkleTree,
    labels: LabelArray,
    map: DistinctMap,
}

impl ListCheckpointer {
    pub fn new(device: Device, config: TreeConfig) -> Self {
        ListCheckpointer {
            device,
            hasher: Box::new(Murmur3),
            config,
            state: None,
            ckpt_id: 0,
        }
    }

    pub fn record_len(&self) -> usize {
        self.state.as_ref().map_or(0, |s| s.map.len())
    }
}

impl Checkpointer for ListCheckpointer {
    fn kind(&self) -> MethodKind {
        MethodKind::List
    }

    fn checkpoint(&mut self, data: &[u8]) -> CheckpointOutput {
        let device = self.device.clone();
        let ckpt_id = self.ckpt_id;
        let timer = Timer::start(&device);
        if self.state.is_none() {
            let chunking = Chunking::new(data.len(), self.config.chunk_size);
            let shape = TreeShape::new(chunking.n_chunks());
            // The List record only ever holds leaf digests, so its natural
            // capacity is per-chunk rather than per-node.
            let map_cap = self.config.map_capacity.unwrap_or(4 * shape.n_chunks());
            self.state = Some(State {
                chunking,
                tree: MerkleTree::new(chunking.n_chunks()),
                labels: LabelArray::new(shape.n_nodes()),
                map: DistinctMap::with_capacity(map_cap),
            });
        }
        let hasher = &*self.hasher;
        let fused = self.config.fused;
        let state = self.state.as_mut().unwrap();
        assert_eq!(
            data.len(),
            state.chunking.data_len(),
            "checkpoint size changed mid-record"
        );
        let shape = *state.tree.shape();
        let chunking = state.chunking;
        state.labels.clear();

        let mut recorder = super::StageRecorder::start(&device);
        let run = |state: &mut State, rec: &mut super::StageRecorder<'_>| {
            leaf_pass::run(
                &device,
                &shape,
                &chunking,
                hasher,
                data,
                state.tree.digests_mut(),
                &state.labels,
                &state.map,
                ckpt_id,
                None,
            );
            rec.mark("leaf_hash");
            // No consolidation: every non-fixed leaf is its own region.
            let mut first = Vec::new();
            let mut shift_nodes = Vec::new();
            for c in 0..chunking.n_chunks() {
                let leaf = shape.leaf_of_chunk(c) as u32;
                match state.labels.get(leaf as usize) {
                    Label::FirstOcur => first.push(leaf),
                    Label::ShiftDupl => shift_nodes.push(leaf),
                    Label::FixedDupl => {}
                    other => unreachable!("leaf labeled {other:?} after leaf pass"),
                }
            }
            first.sort_unstable();
            shift_nodes.sort_unstable();
            let shift = resolve_shift_refs(
                state.tree.digests(),
                &state.map,
                ckpt_id,
                &shift_nodes,
                &mut first,
            );
            // The per-leaf list build plays the role the Tree method's
            // compaction waves play: producing the region tables.
            rec.mark("metadata_compact");
            serialize_diff(
                &device,
                &shape,
                &chunking,
                data,
                ckpt_id,
                MethodKind::List,
                first,
                shift,
                None,
                None,
                Some(rec),
            )
        };

        let diff = if fused {
            device.fused("list_dedup_checkpoint", || run(state, &mut recorder))
        } else {
            run(state, &mut recorder)
        };

        let breakdown = recorder.finish(MethodKind::List, ckpt_id);
        let (measured_sec, modeled_sec) = timer.stop(&device);
        let (_, fixed, _) = leaf_pass::leaf_label_counts(&shape, &state.labels);
        let stats = CheckpointStats {
            method: MethodKind::List,
            ckpt_id,
            uncompressed_bytes: data.len() as u64,
            stored_bytes: diff.stored_bytes() as u64,
            metadata_bytes: diff.metadata_bytes() as u64,
            payload_bytes: diff.payload.len() as u64,
            n_first: diff.first_regions.len() as u64,
            n_shift: diff.shift_regions.len() as u64,
            n_fixed_chunks: fixed,
            measured_sec,
            modeled_sec,
        };
        self.ckpt_id += 1;
        CheckpointOutput {
            diff,
            stats,
            breakdown,
        }
    }

    fn device_state_bytes(&self) -> usize {
        self.state.as_ref().map_or(0, |s| {
            // Only leaf digests are live for List.
            s.chunking.n_chunks() * 16 + s.labels.len() + s.map.memory_bytes()
        })
    }
}
