//! The **List** baseline: the paper's method without metadata compaction.
//!
//! "We implemented a List method that is identical to our method except for
//! the metadata compaction, which is omitted. Instead, a full list of all
//! first-time occurrences and shifted duplicates is stored along the new
//! chunks" (§3.2). It shares the leaf pass — and therefore the full
//! spatiotemporal de-duplication power — with the Tree method, but emits one
//! metadata entry per non-fixed chunk, which is what the Tree method's
//! hierarchical consolidation compacts away.

use crate::chunking::Chunking;
use crate::diff::MethodKind;
use crate::labels::{Label, LabelArray};
use crate::methods::tree::{resolve_shift_refs, serialize_diff, TreeConfig};
use crate::methods::{leaf_pass, CheckpointOutput, Checkpointer, Timer};
use crate::stats::CheckpointStats;
use crate::tree::{MerkleTree, TreeShape};
use ckpt_hash::{Hasher128, Murmur3};
use gpu_sim::{Device, DistinctMap};

/// The List method's persistent state across a checkpoint record.
pub struct ListCheckpointer {
    device: Device,
    hasher: Box<dyn Hasher128>,
    config: TreeConfig,
    state: Option<State>,
    ckpt_id: u32,
    buffer_reuse: bool,
    /// Rebase mode for the current checkpoint: no fixed-duplicate shortcut.
    force_all: bool,
}

struct State {
    chunking: Chunking,
    /// Only the leaf slots are used; sharing [`MerkleTree`] keeps node ids
    /// compatible with the common diff format and restore path.
    tree: MerkleTree,
    labels: LabelArray,
    map: DistinctMap,
}

impl ListCheckpointer {
    pub fn new(device: Device, config: TreeConfig) -> Self {
        ListCheckpointer {
            device,
            hasher: Box::new(Murmur3),
            config,
            state: None,
            ckpt_id: 0,
            buffer_reuse: true,
            force_all: false,
        }
    }

    pub fn record_len(&self) -> usize {
        self.state.as_ref().map_or(0, |s| s.map.len())
    }
}

impl Checkpointer for ListCheckpointer {
    fn kind(&self) -> MethodKind {
        MethodKind::List
    }

    fn checkpoint(&mut self, data: &[u8]) -> CheckpointOutput {
        let device = self.device.clone();
        let ckpt_id = self.ckpt_id;
        let timer = Timer::start(&device);
        if !self.buffer_reuse {
            device.arena().trim();
        }
        if self.state.is_none() {
            let chunking = Chunking::new(data.len(), self.config.chunk_size);
            let shape = TreeShape::new(chunking.n_chunks());
            // The List record only ever holds leaf digests, so its natural
            // capacity is per-chunk rather than per-node.
            let map_cap = self.config.map_capacity.unwrap_or(4 * shape.n_chunks());
            self.state = Some(State {
                chunking,
                tree: MerkleTree::new(chunking.n_chunks()),
                labels: LabelArray::new(shape.n_nodes()),
                map: DistinctMap::with_capacity(map_cap),
            });
        }
        let hasher = &*self.hasher;
        let fused = self.config.fused;
        let force_all = self.force_all;
        let state = self.state.as_mut().unwrap();
        assert_eq!(
            data.len(),
            state.chunking.data_len(),
            "checkpoint size changed mid-record"
        );
        let shape = *state.tree.shape();
        let chunking = state.chunking;
        state.labels.clear();

        let mut recorder = super::StageRecorder::start(&device);
        let run = |state: &mut State, rec: &mut super::StageRecorder<'_>| {
            leaf_pass::run(
                &device,
                &shape,
                &chunking,
                hasher,
                data,
                state.tree.digests_mut(),
                &state.labels,
                &state.map,
                ckpt_id,
                None,
                force_all,
            );
            rec.mark("leaf_hash");
            // No consolidation: every non-fixed leaf is its own region. The
            // per-leaf lists are built with device stream compactions over
            // the settled labels (chunk order), mapped to leaf ids and
            // sorted — the same output the sequential per-chunk loop
            // produced, without serializing on the region-list build.
            let labels = &state.labels;
            let n_chunks = chunking.n_chunks();
            let mut first: Vec<u32> = device
                .compact_where("list_first_chunks", n_chunks, |c| {
                    labels.get(shape.leaf_of_chunk(c)) == Label::FirstOcur
                })
                .into_iter()
                .map(|c| shape.leaf_of_chunk(c as usize) as u32)
                .collect();
            let mut shift_nodes: Vec<u32> = device
                .compact_where("list_shift_chunks", n_chunks, |c| {
                    labels.get(shape.leaf_of_chunk(c)) == Label::ShiftDupl
                })
                .into_iter()
                .map(|c| shape.leaf_of_chunk(c as usize) as u32)
                .collect();
            first.sort_unstable();
            shift_nodes.sort_unstable();
            let shift = resolve_shift_refs(
                state.tree.digests(),
                &state.map,
                ckpt_id,
                &shift_nodes,
                &mut first,
            );
            // The per-leaf list build plays the role the Tree method's
            // compaction waves play: producing the region tables.
            rec.mark("metadata_compact");
            serialize_diff(
                &device,
                &shape,
                &chunking,
                data,
                ckpt_id,
                MethodKind::List,
                first,
                shift,
                None,
                None,
                Some(rec),
            )
        };

        let diff = if fused {
            device.fused("list_dedup_checkpoint", || run(state, &mut recorder))
        } else {
            run(state, &mut recorder)
        };

        let breakdown = recorder.finish(MethodKind::List, ckpt_id);
        let (measured_sec, modeled_sec) = timer.stop(&device);
        let (_, fixed, _) = leaf_pass::leaf_label_counts(&shape, &state.labels);
        let stats = CheckpointStats {
            method: MethodKind::List,
            ckpt_id,
            uncompressed_bytes: data.len() as u64,
            stored_bytes: diff.stored_bytes() as u64,
            metadata_bytes: diff.metadata_bytes() as u64,
            payload_bytes: diff.payload.len() as u64,
            n_first: diff.first_regions.len() as u64,
            n_shift: diff.shift_regions.len() as u64,
            n_fixed_chunks: fixed,
            measured_sec,
            modeled_sec,
        };
        self.ckpt_id += 1;
        CheckpointOutput {
            diff,
            stats,
            breakdown,
        }
    }

    /// Rebase: reset the historical record and disable the fixed-duplicate
    /// shortcut for one checkpoint, so every reference lands inside it (see
    /// [`TreeCheckpointer::rebase_checkpoint`]).
    fn rebase_checkpoint(&mut self, data: &[u8]) -> CheckpointOutput {
        if let Some(state) = self.state.as_mut() {
            let occupancy = state.map.len();
            state.map.reset_with_hint(occupancy);
        }
        self.force_all = true;
        let out = self.checkpoint(data);
        self.force_all = false;
        out
    }

    fn device_state_bytes(&self) -> usize {
        self.state.as_ref().map_or(0, |s| {
            // Only leaf digests are live for List.
            s.chunking.n_chunks() * 16 + s.labels.len() + s.map.memory_bytes()
        })
    }

    fn reset_record(&mut self) {
        self.ckpt_id = 0;
        if let Some(state) = self.state.as_mut() {
            state.labels.clear();
            let occupancy = state.map.len();
            state.map.reset_with_hint(occupancy);
        }
    }

    fn set_buffer_reuse(&mut self, on: bool) {
        self.buffer_reuse = on;
    }

    fn memory_stats(&self) -> super::MemoryStats {
        let a = self.device.arena().stats();
        let (bumps, rebuilds) = self.state.as_ref().map_or((0, 0), |s| {
            (s.map.generation_bumps(), s.map.rehash_rebuilds())
        });
        super::MemoryStats {
            device_bytes_leased: a.bytes_leased,
            device_bytes_allocated: a.bytes_allocated,
            arena_hits: a.hits,
            arena_misses: a.misses,
            map_generation_bumps: bumps,
            map_rehash_rebuilds: rebuilds,
        }
    }
}
