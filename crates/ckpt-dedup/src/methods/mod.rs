//! The four compared checkpointing methods.
//!
//! * [`full::FullCheckpointer`] — baseline: always store everything.
//! * [`basic::BasicCheckpointer`] — hash chunks, compare position-wise with
//!   the previous checkpoint, store a bitmap plus changed chunks.
//! * [`list::ListCheckpointer`] — the paper's method *without* metadata
//!   compaction: full per-chunk first-occurrence / shifted-duplicate lists.
//! * [`tree::TreeCheckpointer`] — the paper's contribution: Merkle-tree
//!   compacted metadata (Algorithm 1).
//!
//! All share the [`Checkpointer`] trait so experiments can sweep methods
//! uniformly, and all parallel code paths run through the `gpu-sim` device so
//! their modeled cost is comparable.

pub mod basic;
pub mod full;
pub mod leaf_pass;
pub mod list;
pub mod tree;
pub mod tree_naive;
pub mod tree_serial;

use crate::diff::{Diff, MethodKind};
use crate::stats::CheckpointStats;
use ckpt_telemetry::{StageBreakdown, StageClock, StageSample};

/// One checkpoint's outputs: the encoded diff, its statistics, and the
/// per-stage attribution of where the checkpoint's time went.
#[derive(Debug, Clone)]
pub struct CheckpointOutput {
    pub diff: Diff,
    pub stats: CheckpointStats,
    /// Stage-by-stage measured and modeled time for this checkpoint. The
    /// paper's methods (Tree, List, Basic) report real pipeline stages
    /// (`leaf_hash`, `first_ocur_wave`, `shift_dupl_wave`,
    /// `metadata_compact`, `gather_serialize`, `d2h`); the remaining
    /// baselines report a single `total` stage. Stage modeled times sum to
    /// `total_modeled_sec` by construction.
    pub breakdown: StageBreakdown,
}

impl CheckpointOutput {
    /// Wrap a diff + stats whose method is not stage-instrumented: the
    /// breakdown degenerates to one `total` stage mirroring the stats.
    pub(crate) fn with_total_breakdown(diff: Diff, stats: CheckpointStats) -> Self {
        let breakdown = StageBreakdown {
            method: stats.method.name().to_string(),
            ckpt_id: stats.ckpt_id,
            stages: vec![StageSample {
                name: "total",
                measured_sec: stats.measured_sec,
                modeled_sec: stats.modeled_sec,
            }],
            total_measured_sec: stats.measured_sec,
            total_modeled_sec: stats.modeled_sec,
        };
        CheckpointOutput {
            diff,
            stats,
            breakdown,
        }
    }
}

/// Steady-state memory counters for one checkpointer: the device arena's
/// lease/allocation tallies plus the historical record's reset/rebuild
/// counts. The zero-allocation tests assert that after a warm-up checkpoint
/// `arena_misses` and `map_rehash_rebuilds` stay flat.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Bytes handed out by the device arena (hits and misses).
    pub device_bytes_leased: u64,
    /// Bytes of fresh device backing storage allocated (misses only).
    pub device_bytes_allocated: u64,
    /// Arena leases satisfied without allocating.
    pub arena_hits: u64,
    /// Arena leases that allocated or grew storage.
    pub arena_misses: u64,
    /// O(1) generation-bump resets of the historical record.
    pub map_generation_bumps: u64,
    /// Capacity-growth rebuilds of the historical record.
    pub map_rehash_rebuilds: u64,
}

/// A checkpointing method with internal state accumulated across a record.
///
/// Implementations require every checkpoint in a record to have the same
/// byte length (the paper's workload checkpoints a fixed-size GDV array);
/// they panic otherwise.
pub trait Checkpointer: Send {
    /// Method identifier.
    fn kind(&self) -> MethodKind;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Capture the next checkpoint of `data`, producing its diff and stats.
    fn checkpoint(&mut self, data: &[u8]) -> CheckpointOutput;

    /// Capture the next checkpoint as a **rebase record**: a self-contained
    /// checkpoint that references no earlier checkpoint, while keeping the
    /// record's checkpoint ids consecutive. After a rebase at id *r*, a
    /// restore of any checkpoint ≥ *r* only needs records `r..`, so the
    /// coordinator may garbage-collect everything below *r* (chain
    /// compaction). Methods with historical state suppress fixed-duplicate
    /// detection and reset their hash record for this one checkpoint; the
    /// default is correct for methods whose every checkpoint is already
    /// self-contained (Full).
    fn rebase_checkpoint(&mut self, data: &[u8]) -> CheckpointOutput {
        self.checkpoint(data)
    }

    /// Bytes of device memory held by the method's persistent state (hash
    /// record, trees, label arrays) — the space overhead the paper discusses
    /// in §2.1.
    fn device_state_bytes(&self) -> usize {
        0
    }

    /// Start a new checkpoint record without tearing down device state:
    /// checkpoint ids restart at 0 and the historical record is reset (an
    /// O(1) generation bump, pre-sized from the outgoing record's occupancy)
    /// while arenas, trees and label arrays stay warm. The scaling benchmark
    /// uses this to sweep thread counts over one persistent checkpointer.
    fn reset_record(&mut self) {
        panic!("{} does not support record reset", self.name());
    }

    /// Toggle device-arena buffer reuse. `false` trims the arena before each
    /// checkpoint so every lease allocates fresh — the "unpooled" reference
    /// path the determinism tests compare against. Default: reuse on.
    fn set_buffer_reuse(&mut self, _on: bool) {}

    /// Steady-state memory counters (zeros for methods without device
    /// scratch or a historical record).
    fn memory_stats(&self) -> MemoryStats {
        MemoryStats::default()
    }
}

/// Book-keeping shared by the method implementations: wall-clock and modeled
/// time around one `checkpoint()` call.
pub(crate) struct Timer {
    start: std::time::Instant,
    modeled_before: f64,
}

impl Timer {
    pub(crate) fn start(device: &gpu_sim::Device) -> Self {
        Timer {
            start: std::time::Instant::now(),
            modeled_before: device.metrics().modeled_sec(),
        }
    }

    /// (measured_sec, modeled_sec) elapsed since `start`.
    pub(crate) fn stop(self, device: &gpu_sim::Device) -> (f64, f64) {
        (
            self.start.elapsed().as_secs_f64(),
            device.metrics().modeled_sec() - self.modeled_before,
        )
    }
}

/// A [`StageClock`] bound to a device: each `mark` closes the running stage,
/// attributing wall time plus the delta of the device's modeled clock since
/// the previous mark. Because consecutive deltas tile the checkpoint, the
/// per-stage modeled times sum to the total exactly.
pub(crate) struct StageRecorder<'d> {
    device: &'d gpu_sim::Device,
    clock: StageClock,
}

impl<'d> StageRecorder<'d> {
    pub(crate) fn start(device: &'d gpu_sim::Device) -> Self {
        StageRecorder {
            device,
            clock: StageClock::start(device.metrics().modeled_sec()),
        }
    }

    pub(crate) fn mark(&mut self, stage: &'static str) {
        self.clock.mark(stage, self.device.metrics().modeled_sec());
    }

    pub(crate) fn finish(self, method: MethodKind, ckpt_id: u32) -> StageBreakdown {
        self.clock
            .finish(method.name(), ckpt_id, self.device.metrics().modeled_sec())
    }
}
