//! The four compared checkpointing methods.
//!
//! * [`full::FullCheckpointer`] — baseline: always store everything.
//! * [`basic::BasicCheckpointer`] — hash chunks, compare position-wise with
//!   the previous checkpoint, store a bitmap plus changed chunks.
//! * [`list::ListCheckpointer`] — the paper's method *without* metadata
//!   compaction: full per-chunk first-occurrence / shifted-duplicate lists.
//! * [`tree::TreeCheckpointer`] — the paper's contribution: Merkle-tree
//!   compacted metadata (Algorithm 1).
//!
//! All share the [`Checkpointer`] trait so experiments can sweep methods
//! uniformly, and all parallel code paths run through the `gpu-sim` device so
//! their modeled cost is comparable.

pub mod basic;
pub mod full;
pub mod leaf_pass;
pub mod list;
pub mod tree;
pub mod tree_naive;
pub mod tree_serial;

use crate::diff::{Diff, MethodKind};
use crate::stats::CheckpointStats;

/// One checkpoint's outputs: the encoded diff and its statistics.
#[derive(Debug, Clone)]
pub struct CheckpointOutput {
    pub diff: Diff,
    pub stats: CheckpointStats,
}

/// A checkpointing method with internal state accumulated across a record.
///
/// Implementations require every checkpoint in a record to have the same
/// byte length (the paper's workload checkpoints a fixed-size GDV array);
/// they panic otherwise.
pub trait Checkpointer: Send {
    /// Method identifier.
    fn kind(&self) -> MethodKind;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Capture the next checkpoint of `data`, producing its diff and stats.
    fn checkpoint(&mut self, data: &[u8]) -> CheckpointOutput;

    /// Bytes of device memory held by the method's persistent state (hash
    /// record, trees, label arrays) — the space overhead the paper discusses
    /// in §2.1.
    fn device_state_bytes(&self) -> usize {
        0
    }
}

/// Book-keeping shared by the method implementations: wall-clock and modeled
/// time around one `checkpoint()` call.
pub(crate) struct Timer {
    start: std::time::Instant,
    modeled_before: f64,
}

impl Timer {
    pub(crate) fn start(device: &gpu_sim::Device) -> Self {
        Timer {
            start: std::time::Instant::now(),
            modeled_before: device.metrics().modeled_sec(),
        }
    }

    /// (measured_sec, modeled_sec) elapsed since `start`.
    pub(crate) fn stop(self, device: &gpu_sim::Device) -> (f64, f64) {
        (
            self.start.elapsed().as_secs_f64(),
            device.metrics().modeled_sec() - self.modeled_before,
        )
    }
}
