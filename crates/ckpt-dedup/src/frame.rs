//! Self-describing integrity frames for stored checkpoint objects.
//!
//! Every object handed to a storage tier (and every `NNNN.ckpt` file the
//! CLI writes) is wrapped in a fixed 32-byte header so that torn writes,
//! bit flips and misplaced objects are *detected at read time* instead of
//! silently poisoning a restore chain. This mirrors how VeloC/FTI treat
//! per-level integrity verification as a first-class runtime concern.
//!
//! Layout (all fields little-endian):
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0  | 4 | magic `"CKF1"` |
//! | 4  | 2 | format version (currently 1) |
//! | 6  | 1 | codec id (0 = stored uncompressed; see [`ckpt_compress::codec_by_id`]) |
//! | 7  | 1 | flags high byte (reserved, 0) |
//! | 8  | 4 | rank id |
//! | 12 | 4 | checkpoint id |
//! | 16 | 8 | stored payload length in bytes (post-compression) |
//! | 24 | 8 | checksum (Murmur3 x64-128 of everything after the header, |
//! |    |   | seeded by the ids *and the codec*, halves folded to 64 bits) |
//! | 32 | 8 | **codec ≠ 0 only**: uncompressed payload length |
//!
//! The checksum seed mixes `(rank, ckpt_id)` so a frame copied to the wrong
//! object slot fails verification even if its payload is intact, and the
//! codec id so a flipped codec byte can never route an intact payload
//! through the wrong decompressor. Any strict prefix of a valid frame fails
//! verification (the header announces the payload length), which is exactly
//! the artifact a torn write leaves behind.
//!
//! # Compressed frames
//!
//! When the codec byte is nonzero the payload is a
//! [`ckpt_compress::blocks`] container encoded with that codec, and an
//! 8-byte uncompressed-length field sits between the header and the
//! payload. The checksum covers the *compressed* bytes (plus the length
//! field), so corruption is detected without paying for decompression, and
//! [`decode_payload`] verifies the decompressed size against the recorded
//! one before returning. Legacy frames (flags = 0) are byte-identical to
//! the pre-codec format and keep decoding unchanged — the version stays 1.

use ckpt_hash::{Hasher128, Murmur3};

/// Length of the uncompressed-length extension field present when the
/// codec byte is nonzero.
pub const FRAME_EXT_LEN: usize = 8;

/// Frame magic: "CKF1".
pub const FRAME_MAGIC: [u8; 4] = *b"CKF1";

/// Current frame format version.
pub const FRAME_VERSION: u16 = 1;

/// Fixed header size preceding the payload.
pub const FRAME_HEADER_LEN: usize = 32;

/// Decoded frame header fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    pub rank: u32,
    pub ckpt_id: u32,
    /// Stored (post-compression) payload length.
    pub payload_len: u64,
    pub checksum: u64,
    /// Codec the payload is encoded with (0 = uncompressed).
    pub codec: u8,
    /// Original payload length (equals `payload_len` when `codec == 0`).
    pub uncompressed_len: u64,
}

/// Why a frame failed verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than one header.
    TooShort { len: usize },
    /// Magic bytes did not match.
    BadMagic,
    /// Unknown format version.
    BadVersion { version: u16 },
    /// Reserved flags field was nonzero.
    BadFlags { flags: u16 },
    /// Header promises more payload than is present (torn write).
    Truncated { expected: u64, have: u64 },
    /// More bytes than the header accounts for.
    TrailingBytes { expected: u64, have: u64 },
    /// Checksum over the payload did not match the header.
    ChecksumMismatch { expected: u64, got: u64 },
    /// Frame ids do not match the slot it was read from.
    IdMismatch {
        expected: (u32, u32),
        got: (u32, u32),
    },
    /// Codec byte names no registered codec.
    UnknownCodec { codec: u8 },
    /// The checksummed payload failed to decompress (encoder-side bug; a
    /// transport bit flip is caught by the checksum first).
    Decompress { codec: u8 },
    /// Decompressed payload length disagrees with the recorded one.
    LengthMismatch { expected: u64, got: u64 },
    /// A rank-dedup entry table slot carries an unknown tag (encoder bug;
    /// a transport bit flip is caught by the record checksum first).
    BadEntryTag { index: u32, tag: u8 },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooShort { len } => {
                write!(f, "frame too short: {len} < {FRAME_HEADER_LEN} bytes")
            }
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::BadVersion { version } => write!(f, "unknown frame version {version}"),
            FrameError::BadFlags { flags } => {
                write!(f, "reserved frame flags set: {flags:#06x}")
            }
            FrameError::Truncated { expected, have } => {
                write!(f, "truncated frame: payload {have} of {expected} bytes")
            }
            FrameError::TrailingBytes { expected, have } => {
                write!(f, "frame has trailing bytes: {have} > {expected}")
            }
            FrameError::ChecksumMismatch { expected, got } => {
                write!(
                    f,
                    "checksum mismatch: header {expected:#018x}, payload {got:#018x}"
                )
            }
            FrameError::IdMismatch { expected, got } => {
                write!(f, "frame ids {got:?} do not match slot {expected:?}")
            }
            FrameError::UnknownCodec { codec } => {
                write!(f, "unknown frame codec id {codec}")
            }
            FrameError::Decompress { codec } => {
                write!(f, "frame payload failed to decompress (codec {codec})")
            }
            FrameError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "decompressed length {got} does not match recorded {expected}"
                )
            }
            FrameError::BadEntryTag { index, tag } => {
                write!(f, "rank-dedup entry {index} has unknown tag {tag}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Seed for the payload checksum: mixes both ids so relocated frames fail,
/// and the codec byte so a flipped codec id fails the checksum (not a
/// misdirected decompression). Codec 0 reproduces the legacy seed exactly.
#[inline]
fn checksum_seed(rank: u32, ckpt_id: u32, codec: u8) -> u32 {
    rank.rotate_left(16) ^ ckpt_id ^ 0x9e37_79b9 ^ ((codec as u32) << 24)
}

/// The 64-bit checksum stored in (and verified against) the header, over
/// everything following the fixed header (`region` = extension field +
/// stored payload; for codec 0 that is just the payload).
pub fn checksum64_region(rank: u32, ckpt_id: u32, codec: u8, region: &[u8]) -> u64 {
    let d = Murmur3.hash_seeded(region, checksum_seed(rank, ckpt_id, codec));
    d.h1 ^ d.h2.rotate_left(32)
}

/// The legacy (uncompressed-frame) payload checksum.
pub fn checksum64(rank: u32, ckpt_id: u32, payload: &[u8]) -> u64 {
    checksum64_region(rank, ckpt_id, 0, payload)
}

fn encode_frame_inner(
    rank: u32,
    ckpt_id: u32,
    codec: u8,
    uncompressed_len: u64,
    payload: &[u8],
) -> Vec<u8> {
    let ext = if codec != 0 { FRAME_EXT_LEN } else { 0 };
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + ext + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&FRAME_VERSION.to_le_bytes());
    out.extend_from_slice(&(codec as u16).to_le_bytes());
    out.extend_from_slice(&rank.to_le_bytes());
    out.extend_from_slice(&ckpt_id.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&[0u8; 8]); // checksum patched below
    if codec != 0 {
        out.extend_from_slice(&uncompressed_len.to_le_bytes());
    }
    out.extend_from_slice(payload);
    let sum = checksum64_region(rank, ckpt_id, codec, &out[FRAME_HEADER_LEN..]);
    out[24..32].copy_from_slice(&sum.to_le_bytes());
    out
}

/// Wrap `payload` in a verified frame for object `(rank, ckpt_id)`. The
/// payload bytes follow the 32-byte header verbatim.
pub fn encode_frame(rank: u32, ckpt_id: u32, payload: &[u8]) -> Vec<u8> {
    encode_frame_inner(rank, ckpt_id, 0, payload.len() as u64, payload)
}

/// Wrap an already-compressed payload (a [`ckpt_compress::blocks`]
/// container encoded with `codec`) in a frame carrying the codec id and the
/// original length. The checksum covers the compressed bytes.
pub fn encode_frame_compressed(
    rank: u32,
    ckpt_id: u32,
    codec: u8,
    uncompressed_len: u64,
    compressed: &[u8],
) -> Vec<u8> {
    assert!(codec != 0, "codec 0 is the uncompressed frame format");
    assert!(
        ckpt_compress::codec_by_id(codec).is_some(),
        "unregistered codec id {codec}"
    );
    encode_frame_inner(rank, ckpt_id, codec, uncompressed_len, compressed)
}

/// Whether `bytes` begins with the frame magic (cheap format sniff for
/// legacy/unframed inputs; says nothing about validity).
pub fn looks_framed(bytes: &[u8]) -> bool {
    bytes.len() >= FRAME_MAGIC.len() && bytes[..FRAME_MAGIC.len()] == FRAME_MAGIC
}

/// Parse and fully verify a frame, returning the header and a borrowed
/// *stored* payload slice (still compressed when the codec byte is set).
/// Every integrity property is checked: magic, version, codec id, exact
/// length — validated against the actual remaining buffer before anything
/// is hashed or copied, so a bit-flipped length field can never drive an
/// allocation — and checksum.
pub fn decode_frame(bytes: &[u8]) -> Result<(FrameHeader, &[u8]), FrameError> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(FrameError::TooShort { len: bytes.len() });
    }
    if bytes[0..4] != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != FRAME_VERSION {
        return Err(FrameError::BadVersion { version });
    }
    let flags = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
    if flags & 0xff00 != 0 {
        return Err(FrameError::BadFlags { flags });
    }
    let codec = flags as u8;
    if codec != 0 && ckpt_compress::codec_by_id(codec).is_none() {
        return Err(FrameError::UnknownCodec { codec });
    }
    let rank = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let ckpt_id = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    let payload_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let checksum = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
    let ext = if codec != 0 { FRAME_EXT_LEN as u64 } else { 0 };
    // Length validation happens strictly before the checksum touches any
    // payload byte: the header's claim is checked against what is actually
    // in the buffer.
    let have = (bytes.len() - FRAME_HEADER_LEN) as u64;
    let expected = payload_len.saturating_add(ext);
    if have < expected {
        return Err(FrameError::Truncated { expected, have });
    }
    if have > expected {
        return Err(FrameError::TrailingBytes { expected, have });
    }
    let region = &bytes[FRAME_HEADER_LEN..];
    let got = checksum64_region(rank, ckpt_id, codec, region);
    if got != checksum {
        return Err(FrameError::ChecksumMismatch {
            expected: checksum,
            got,
        });
    }
    let (uncompressed_len, payload) = if codec != 0 {
        let ext_bytes: [u8; FRAME_EXT_LEN] = region[..FRAME_EXT_LEN].try_into().unwrap();
        (u64::from_le_bytes(ext_bytes), &region[FRAME_EXT_LEN..])
    } else {
        (payload_len, region)
    };
    Ok((
        FrameHeader {
            rank,
            ckpt_id,
            payload_len,
            checksum,
            codec,
            uncompressed_len,
        },
        payload,
    ))
}

/// Like [`decode_frame`], but additionally checks the frame belongs to the
/// given object slot.
pub fn decode_frame_expecting(
    bytes: &[u8],
    expect: Option<(u32, u32)>,
) -> Result<(FrameHeader, &[u8]), FrameError> {
    let (header, payload) = decode_frame(bytes)?;
    if let Some(expected) = expect {
        let got = (header.rank, header.ckpt_id);
        if got != expected {
            return Err(FrameError::IdMismatch { expected, got });
        }
    }
    Ok((header, payload))
}

/// Verify a frame and (optionally) that it belongs to the given object
/// slot, returning the stored payload slice.
pub fn verify_frame(bytes: &[u8], expect: Option<(u32, u32)>) -> Result<&[u8], FrameError> {
    decode_frame_expecting(bytes, expect).map(|(_, payload)| payload)
}

/// Fully decode a frame to its original payload: verify, then decompress
/// through the recorded codec when one is set, checking the decompressed
/// size against the recorded uncompressed length.
pub fn decode_payload(
    bytes: &[u8],
    expect: Option<(u32, u32)>,
) -> Result<(FrameHeader, Vec<u8>), FrameError> {
    let (header, stored) = decode_frame_expecting(bytes, expect)?;
    let payload = decompress_payload(header.codec, header.uncompressed_len, stored)?;
    Ok((header, payload))
}

/// Decompress a stored payload extracted from a frame with the given codec
/// byte (0 copies through). Shared by the tier read path, which keeps the
/// encoded bytes around for transcode-free flushing.
pub fn decompress_payload(
    codec: u8,
    uncompressed_len: u64,
    stored: &[u8],
) -> Result<Vec<u8>, FrameError> {
    if codec == 0 {
        return Ok(stored.to_vec());
    }
    let c = ckpt_compress::codec_by_id(codec).ok_or(FrameError::UnknownCodec { codec })?;
    let payload = ckpt_compress::blocks::decompress_blocks(&*c, stored)
        .map_err(|_| FrameError::Decompress { codec })?;
    if payload.len() as u64 != uncompressed_len {
        return Err(FrameError::LengthMismatch {
            expected: uncompressed_len,
            got: payload.len() as u64,
        });
    }
    Ok(payload)
}

// ---- Redundancy-group parity records ------------------------------------
//
// Cross-rank redundancy (partner copies / XOR parity groups) stores *parity
// records* alongside ordinary objects. A parity record is a self-describing
// payload with its own magic — it travels **inside** a standard codec-0
// frame in the group store, so the legacy frame format above is untouched.
//
// Layout (little-endian):
//
// | offset | size | field |
// |---|---|---|
// | 0  | 4 | magic `"CKPX"` |
// | 4  | 2 | record version (currently 1) |
// | 6  | 2 | reserved (0) |
// | 8  | 4 | group id |
// | 12 | 4 | stripe index within the group |
// | 16 | 4 | checkpoint id |
// | 20 | 4 | member count `n` |
// | 24 | 8 | parity length in bytes |
// | 32 | 8 | checksum of everything after offset 40 |
// | 40 | 37·n | member table (rank u32, codec u8, uncompressed_len u64, |
// |    |      | stored_len u64, chunk_len u64, checksum u64) |
// | …  | parity_len | XOR parity bytes |

/// Parity record magic: "CKPX".
pub const PARITY_MAGIC: [u8; 4] = *b"CKPX";

/// Current parity record version.
pub const PARITY_VERSION: u16 = 1;

/// Fixed parity-record header size preceding the member table.
pub const PARITY_HEADER_LEN: usize = 40;

/// Serialized size of one member-table entry.
pub const PARITY_MEMBER_LEN: usize = 37;

/// Metadata a parity record carries for each contributing group member, so
/// a lost member can be reconstructed and verified without any surviving
/// local state of its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParityMember {
    pub rank: u32,
    /// Codec of the member's stored (post-compression) payload.
    pub codec: u8,
    pub uncompressed_len: u64,
    /// Stored payload length the member had when it was encoded.
    pub stored_len: u64,
    /// Chunk length the member's payload was striped with.
    pub chunk_len: u64,
    /// [`checksum64_region`]`(rank, ckpt_id, codec, payload)` of the
    /// member's stored bytes — reconstruction is verified against this, so
    /// a wrong payload can never be returned silently.
    pub checksum: u64,
}

/// One XOR parity stripe of a redundancy group at a given checkpoint id:
/// the running XOR of each contributing member's chunk assigned to this
/// stripe (shorter chunks are implicitly zero-padded), plus every
/// contributor's metadata.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParityRecord {
    pub group: u32,
    pub stripe: u32,
    pub ckpt_id: u32,
    pub members: Vec<ParityMember>,
    pub parity: Vec<u8>,
}

impl ParityRecord {
    /// Serialize to the layout documented above.
    pub fn encode(&self) -> Vec<u8> {
        let body_len = PARITY_MEMBER_LEN * self.members.len() + self.parity.len();
        let mut out = Vec::with_capacity(PARITY_HEADER_LEN + body_len);
        out.extend_from_slice(&PARITY_MAGIC);
        out.extend_from_slice(&PARITY_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&self.group.to_le_bytes());
        out.extend_from_slice(&self.stripe.to_le_bytes());
        out.extend_from_slice(&self.ckpt_id.to_le_bytes());
        out.extend_from_slice(&(self.members.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.parity.len() as u64).to_le_bytes());
        out.extend_from_slice(&[0u8; 8]); // checksum patched below
        for m in &self.members {
            out.extend_from_slice(&m.rank.to_le_bytes());
            out.push(m.codec);
            out.extend_from_slice(&m.uncompressed_len.to_le_bytes());
            out.extend_from_slice(&m.stored_len.to_le_bytes());
            out.extend_from_slice(&m.chunk_len.to_le_bytes());
            out.extend_from_slice(&m.checksum.to_le_bytes());
        }
        out.extend_from_slice(&self.parity);
        let sum = checksum64_region(
            self.group,
            self.stripe ^ self.ckpt_id.rotate_left(8),
            0,
            &out[PARITY_HEADER_LEN..],
        );
        out[32..40].copy_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parse and fully verify a serialized parity record. Lengths are
    /// validated against the actual buffer before anything is hashed, so a
    /// corrupted count field can never drive an allocation.
    pub fn decode(bytes: &[u8]) -> Result<ParityRecord, FrameError> {
        if bytes.len() < PARITY_HEADER_LEN {
            return Err(FrameError::TooShort { len: bytes.len() });
        }
        if bytes[0..4] != PARITY_MAGIC {
            return Err(FrameError::BadMagic);
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
        if version != PARITY_VERSION {
            return Err(FrameError::BadVersion { version });
        }
        let reserved = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
        if reserved != 0 {
            return Err(FrameError::BadFlags { flags: reserved });
        }
        let group = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        let stripe = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let ckpt_id = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
        let n_members = u32::from_le_bytes(bytes[20..24].try_into().unwrap()) as u64;
        let parity_len = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
        let checksum = u64::from_le_bytes(bytes[32..40].try_into().unwrap());
        let have = (bytes.len() - PARITY_HEADER_LEN) as u64;
        let expected = n_members
            .saturating_mul(PARITY_MEMBER_LEN as u64)
            .saturating_add(parity_len);
        if have < expected {
            return Err(FrameError::Truncated { expected, have });
        }
        if have > expected {
            return Err(FrameError::TrailingBytes { expected, have });
        }
        let body = &bytes[PARITY_HEADER_LEN..];
        let got = checksum64_region(group, stripe ^ ckpt_id.rotate_left(8), 0, body);
        if got != checksum {
            return Err(FrameError::ChecksumMismatch {
                expected: checksum,
                got,
            });
        }
        let mut members = Vec::with_capacity(n_members as usize);
        let mut at = 0usize;
        for _ in 0..n_members {
            let m = &body[at..at + PARITY_MEMBER_LEN];
            members.push(ParityMember {
                rank: u32::from_le_bytes(m[0..4].try_into().unwrap()),
                codec: m[4],
                uncompressed_len: u64::from_le_bytes(m[5..13].try_into().unwrap()),
                stored_len: u64::from_le_bytes(m[13..21].try_into().unwrap()),
                chunk_len: u64::from_le_bytes(m[21..29].try_into().unwrap()),
                checksum: u64::from_le_bytes(m[29..37].try_into().unwrap()),
            });
            at += PARITY_MEMBER_LEN;
        }
        Ok(ParityRecord {
            group,
            stripe,
            ckpt_id,
            members,
            parity: body[at..].to_vec(),
        })
    }
}

/// Whether a stored payload is a serialized parity record (cheap format
/// sniff; says nothing about validity).
pub fn looks_parity(bytes: &[u8]) -> bool {
    bytes.len() >= PARITY_MAGIC.len() && bytes[..PARITY_MAGIC.len()] == PARITY_MAGIC
}

// ---- Cluster-wide rank-dedup records ------------------------------------
//
// The cluster dedup index shards the 128-bit chunk-hash space across the
// ranks of a redundancy group; a chunk first seen by *any* rank is stored
// exactly once cluster-wide, and later occurrences are replaced by a
// `RemoteRef` naming the first-occurrence location. A rank-dedup record is
// the payload-level materialization of that: the object's payload is cut on
// a fixed chunk grid, each grid cell becomes either a *local* entry (bytes
// carried inline, in table order) or a *remote* entry (a `RemoteRef`), and
// the original payload's length and checksum ride along so resolution can
// prove a bit-identical reassembly — a dangling or wrong reference is a
// typed loss, never a silently wrong payload.
//
// Like `CKPX`, the record travels **inside** a standard frame (and through
// the compression stage like any other payload), so legacy frames stay
// byte-identical.
//
// Layout (little-endian):
//
// | offset | size | field |
// |---|---|---|
// | 0  | 4 | magic `"CKPR"` |
// | 4  | 2 | record version (currently 1) |
// | 6  | 2 | reserved (0) |
// | 8  | 4 | rank |
// | 12 | 4 | checkpoint id |
// | 16 | 8 | checksum of everything after offset 24, seeded by the ids |
// | 24 | 4 | dedup grid chunk length |
// | 28 | 4 | entry count `n` |
// | 32 | 8 | original payload length |
// | 40 | 8 | original payload checksum ([`checksum64`] under the ids) |
// | 48 | 8 | total local bytes |
// | 56 | 13·n | entry table (tag u8; tag 0 = local: len u32, 8 pad bytes; |
// |    |      | tag 1 = remote: owner_rank u32, ckpt_id u32, chunk u32, pad) |
// | …  | local_len | local entries' bytes, concatenated in table order |
//
// The record checksum covers every header field after itself plus the body,
// and its seed mixes `(rank, ckpt_id)` — any single corrupted bit anywhere
// in a record is detected at decode time.

/// Rank-dedup record magic: "CKPR".
pub const RANKDEDUP_MAGIC: [u8; 4] = *b"CKPR";

/// Current rank-dedup record version.
pub const RANKDEDUP_VERSION: u16 = 1;

/// Fixed rank-dedup header size preceding the entry table.
pub const RANKDEDUP_HEADER_LEN: usize = 56;

/// Offset at which the record checksum's coverage starts.
const RANKDEDUP_CHECK_OFFSET: usize = 24;

/// Serialized size of one entry-table slot.
pub const RANKDEDUP_ENTRY_LEN: usize = 13;

/// A cross-rank first-occurrence reference: the chunk's bytes live in
/// entry `chunk` of the rank-dedup record stored as object
/// `(owner_rank, ckpt_id)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemoteRef {
    pub owner_rank: u32,
    pub ckpt_id: u32,
    /// Entry index inside the referenced record (which must be local
    /// there — references are depth-1 by construction).
    pub chunk: u32,
}

/// One grid cell of a rank-dedup record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankDedupEntry {
    /// The cell's bytes are carried inline (`len` of them, in table order).
    Local { len: u32 },
    /// The cell's bytes are stored once cluster-wide, at the referenced
    /// first-occurrence location.
    Remote(RemoteRef),
}

/// A payload rewritten against the cluster-wide dedup index. See the
/// layout comment above.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankDedupRecord {
    pub rank: u32,
    pub ckpt_id: u32,
    /// Grid chunk length the payload was cut with (entry 0 may be a
    /// variable-length local cell covering the diff metadata prefix).
    pub chunk_len: u32,
    /// Length of the original (pre-dedup) payload.
    pub orig_len: u64,
    /// [`checksum64`]`(rank, ckpt_id, original payload)`: resolution is
    /// verified against this before any payload is returned.
    pub orig_checksum: u64,
    pub entries: Vec<RankDedupEntry>,
    /// Local entries' bytes, concatenated in table order.
    pub local: Vec<u8>,
}

/// Seed mixing for the record checksum: distinct from both the frame and
/// parity seeds so a record can never masquerade as either.
#[inline]
fn rankdedup_sum(rank: u32, ckpt_id: u32, region: &[u8]) -> u64 {
    checksum64_region(rank ^ 0x524b_4452, ckpt_id.rotate_left(16), 0, region)
}

impl RankDedupRecord {
    /// Total bytes of local entries (must equal `local.len()`).
    fn local_len(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| match e {
                RankDedupEntry::Local { len } => *len as u64,
                RankDedupEntry::Remote(_) => 0,
            })
            .sum()
    }

    /// Borrow the inline bytes of local entry `index`. `None` when the
    /// index is out of range or names a remote entry.
    pub fn local_slice(&self, index: u32) -> Option<&[u8]> {
        let mut at = 0usize;
        for (i, e) in self.entries.iter().enumerate() {
            match e {
                RankDedupEntry::Local { len } => {
                    let len = *len as usize;
                    if i as u32 == index {
                        return self.local.get(at..at + len);
                    }
                    at += len;
                }
                RankDedupEntry::Remote(_) => {
                    if i as u32 == index {
                        return None;
                    }
                }
            }
        }
        None
    }

    /// Every remote reference the record carries, in table order.
    pub fn remote_refs(&self) -> impl Iterator<Item = RemoteRef> + '_ {
        self.entries.iter().filter_map(|e| match e {
            RankDedupEntry::Remote(r) => Some(*r),
            RankDedupEntry::Local { .. } => None,
        })
    }

    /// Serialize to the layout documented above.
    pub fn encode(&self) -> Vec<u8> {
        debug_assert_eq!(self.local_len(), self.local.len() as u64);
        let body_len = RANKDEDUP_ENTRY_LEN * self.entries.len() + self.local.len();
        let mut out = Vec::with_capacity(RANKDEDUP_HEADER_LEN + body_len);
        out.extend_from_slice(&RANKDEDUP_MAGIC);
        out.extend_from_slice(&RANKDEDUP_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&self.rank.to_le_bytes());
        out.extend_from_slice(&self.ckpt_id.to_le_bytes());
        out.extend_from_slice(&[0u8; 8]); // checksum patched below
        out.extend_from_slice(&self.chunk_len.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.orig_len.to_le_bytes());
        out.extend_from_slice(&self.orig_checksum.to_le_bytes());
        out.extend_from_slice(&(self.local.len() as u64).to_le_bytes());
        for e in &self.entries {
            match e {
                RankDedupEntry::Local { len } => {
                    out.push(0);
                    out.extend_from_slice(&len.to_le_bytes());
                    out.extend_from_slice(&[0u8; 8]);
                }
                RankDedupEntry::Remote(r) => {
                    out.push(1);
                    out.extend_from_slice(&r.owner_rank.to_le_bytes());
                    out.extend_from_slice(&r.ckpt_id.to_le_bytes());
                    out.extend_from_slice(&r.chunk.to_le_bytes());
                }
            }
        }
        out.extend_from_slice(&self.local);
        let sum = rankdedup_sum(self.rank, self.ckpt_id, &out[RANKDEDUP_CHECK_OFFSET..]);
        out[16..24].copy_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parse and fully verify a serialized rank-dedup record. Lengths are
    /// validated against the actual buffer before anything is hashed, so a
    /// corrupted count field can never drive an allocation.
    pub fn decode(bytes: &[u8]) -> Result<RankDedupRecord, FrameError> {
        if bytes.len() < RANKDEDUP_HEADER_LEN {
            return Err(FrameError::TooShort { len: bytes.len() });
        }
        if bytes[0..4] != RANKDEDUP_MAGIC {
            return Err(FrameError::BadMagic);
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
        if version != RANKDEDUP_VERSION {
            return Err(FrameError::BadVersion { version });
        }
        let reserved = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
        if reserved != 0 {
            return Err(FrameError::BadFlags { flags: reserved });
        }
        let rank = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        let ckpt_id = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let checksum = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let chunk_len = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
        let n_entries = u32::from_le_bytes(bytes[28..32].try_into().unwrap()) as u64;
        let orig_len = u64::from_le_bytes(bytes[32..40].try_into().unwrap());
        let orig_checksum = u64::from_le_bytes(bytes[40..48].try_into().unwrap());
        let local_len = u64::from_le_bytes(bytes[48..56].try_into().unwrap());
        let have = (bytes.len() - RANKDEDUP_CHECK_OFFSET) as u64;
        let expected = ((RANKDEDUP_HEADER_LEN - RANKDEDUP_CHECK_OFFSET) as u64)
            .saturating_add(n_entries.saturating_mul(RANKDEDUP_ENTRY_LEN as u64))
            .saturating_add(local_len);
        if have < expected {
            return Err(FrameError::Truncated { expected, have });
        }
        if have > expected {
            return Err(FrameError::TrailingBytes { expected, have });
        }
        let got = rankdedup_sum(rank, ckpt_id, &bytes[RANKDEDUP_CHECK_OFFSET..]);
        if got != checksum {
            return Err(FrameError::ChecksumMismatch {
                expected: checksum,
                got,
            });
        }
        let mut entries = Vec::with_capacity(n_entries as usize);
        let mut at = RANKDEDUP_HEADER_LEN;
        let mut local_sum = 0u64;
        for i in 0..n_entries {
            let e = &bytes[at..at + RANKDEDUP_ENTRY_LEN];
            match e[0] {
                0 => {
                    let len = u32::from_le_bytes(e[1..5].try_into().unwrap());
                    local_sum += len as u64;
                    entries.push(RankDedupEntry::Local { len });
                }
                1 => entries.push(RankDedupEntry::Remote(RemoteRef {
                    owner_rank: u32::from_le_bytes(e[1..5].try_into().unwrap()),
                    ckpt_id: u32::from_le_bytes(e[5..9].try_into().unwrap()),
                    chunk: u32::from_le_bytes(e[9..13].try_into().unwrap()),
                })),
                tag => {
                    return Err(FrameError::BadEntryTag {
                        index: i as u32,
                        tag,
                    })
                }
            }
            at += RANKDEDUP_ENTRY_LEN;
        }
        if local_sum != local_len {
            return Err(FrameError::LengthMismatch {
                expected: local_len,
                got: local_sum,
            });
        }
        Ok(RankDedupRecord {
            rank,
            ckpt_id,
            chunk_len,
            orig_len,
            orig_checksum,
            entries,
            local: bytes[at..].to_vec(),
        })
    }
}

/// Whether a stored payload is a serialized rank-dedup record (cheap
/// format sniff; says nothing about validity).
pub fn looks_rankdedup(bytes: &[u8]) -> bool {
    bytes.len() >= RANKDEDUP_MAGIC.len() && bytes[..RANKDEDUP_MAGIC.len()] == RANKDEDUP_MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_payload() {
        let payload = b"the quick brown fox".to_vec();
        let framed = encode_frame(3, 7, &payload);
        assert_eq!(framed.len(), FRAME_HEADER_LEN + payload.len());
        assert!(looks_framed(&framed));
        let (header, got) = decode_frame(&framed).unwrap();
        assert_eq!(got, &payload[..]);
        assert_eq!(header.rank, 3);
        assert_eq!(header.ckpt_id, 7);
        assert_eq!(header.payload_len, payload.len() as u64);
        assert_eq!(verify_frame(&framed, Some((3, 7))).unwrap(), &payload[..]);
    }

    #[test]
    fn empty_payload_round_trips() {
        let framed = encode_frame(0, 0, &[]);
        assert_eq!(framed.len(), FRAME_HEADER_LEN);
        assert_eq!(verify_frame(&framed, Some((0, 0))).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let framed = encode_frame(1, 2, b"payload bytes under test");
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut bad = framed.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    verify_frame(&bad, Some((1, 2))).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn wrong_slot_is_detected() {
        let framed = encode_frame(1, 2, b"abc");
        assert_eq!(
            verify_frame(&framed, Some((1, 3))).unwrap_err(),
            FrameError::IdMismatch {
                expected: (1, 3),
                got: (1, 2)
            }
        );
        // Without an expectation the frame itself is still valid.
        assert!(verify_frame(&framed, None).is_ok());
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut framed = encode_frame(0, 1, b"xy");
        framed.push(0);
        assert!(matches!(
            decode_frame(&framed),
            Err(FrameError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn legacy_bytes_are_not_framed() {
        assert!(!looks_framed(b"CK"));
        assert!(!looks_framed(b"not a frame"));
        assert!(matches!(
            decode_frame(b"not a frame at all, but long enough to parse!"),
            Err(FrameError::BadMagic)
        ));
    }

    fn compressed_frame(rank: u32, ckpt: u32, payload: &[u8], codec: u8) -> Vec<u8> {
        let c = ckpt_compress::codec_by_id(codec).unwrap();
        let container = ckpt_compress::blocks::compress_blocks(&*c, payload, 4096);
        encode_frame_compressed(rank, ckpt, codec, payload.len() as u64, &container)
    }

    #[test]
    fn compressed_frame_round_trips() {
        let payload: Vec<u8> = (0..50_000u32)
            .flat_map(|i| (i / 13).to_le_bytes())
            .collect();
        let framed = compressed_frame(3, 7, &payload, 6);
        assert!(framed.len() < payload.len(), "counters must compress");
        let (header, stored) = decode_frame(&framed).unwrap();
        assert_eq!(header.codec, 6);
        assert_eq!(header.uncompressed_len, payload.len() as u64);
        assert_eq!(header.payload_len, stored.len() as u64);
        let (h2, back) = decode_payload(&framed, Some((3, 7))).unwrap();
        assert_eq!(h2, header);
        assert_eq!(back, payload);
    }

    #[test]
    fn legacy_frames_decode_through_decode_payload() {
        let framed = encode_frame(1, 2, b"plain bytes");
        let (header, back) = decode_payload(&framed, Some((1, 2))).unwrap();
        assert_eq!(header.codec, 0);
        assert_eq!(header.uncompressed_len, header.payload_len);
        assert_eq!(back, b"plain bytes");
    }

    #[test]
    fn every_single_bit_flip_is_detected_in_compressed_frames() {
        let payload: Vec<u8> = (0..4096u32).map(|i| ((i / 32) % 11) as u8).collect();
        let framed = compressed_frame(1, 2, &payload, 1);
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut bad = framed.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_payload(&bad, Some((1, 2))).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn unknown_codec_is_typed() {
        let mut framed = encode_frame(0, 0, b"x");
        framed[6] = 0x63; // unregistered codec id
        assert_eq!(
            decode_frame(&framed).unwrap_err(),
            FrameError::UnknownCodec { codec: 0x63 }
        );
    }

    #[test]
    fn truncated_length_field_is_rejected_before_any_copy() {
        // A frame whose length field claims far more payload than the
        // buffer holds must fail as Truncated (the defensive check) rather
        // than be trusted.
        let mut framed = encode_frame(0, 0, b"payload");
        framed[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&framed),
            Err(FrameError::Truncated { .. })
        ));
    }

    #[test]
    fn length_mismatch_is_typed() {
        let payload = vec![9u8; 10_000];
        let c = ckpt_compress::codec_by_id(7).unwrap();
        let container = ckpt_compress::blocks::compress_blocks(&*c, &payload, 4096);
        // Record a wrong uncompressed length: checksum verifies (it covers
        // the recorded field), decompression length check must catch it.
        let framed = encode_frame_compressed(0, 0, 7, 9_999, &container);
        assert_eq!(
            decode_payload(&framed, None).unwrap_err(),
            FrameError::LengthMismatch {
                expected: 9_999,
                got: 10_000
            }
        );
    }

    fn sample_parity() -> ParityRecord {
        ParityRecord {
            group: 3,
            stripe: 1,
            ckpt_id: 9,
            members: vec![
                ParityMember {
                    rank: 12,
                    codec: 6,
                    uncompressed_len: 4096,
                    stored_len: 1024,
                    chunk_len: 342,
                    checksum: 0xdead_beef_cafe_f00d,
                },
                ParityMember {
                    rank: 14,
                    codec: 0,
                    uncompressed_len: 512,
                    stored_len: 512,
                    chunk_len: 171,
                    checksum: 0x0123_4567_89ab_cdef,
                },
            ],
            parity: (0..342u32).map(|i| (i % 251) as u8).collect(),
        }
    }

    #[test]
    fn parity_record_round_trips() {
        let rec = sample_parity();
        let bytes = rec.encode();
        assert!(looks_parity(&bytes));
        assert!(!looks_framed(&bytes));
        assert_eq!(ParityRecord::decode(&bytes).unwrap(), rec);
    }

    #[test]
    fn empty_parity_record_round_trips() {
        let rec = ParityRecord {
            group: 0,
            stripe: 0,
            ckpt_id: 0,
            members: Vec::new(),
            parity: Vec::new(),
        };
        let bytes = rec.encode();
        assert_eq!(bytes.len(), PARITY_HEADER_LEN);
        assert_eq!(ParityRecord::decode(&bytes).unwrap(), rec);
    }

    #[test]
    fn every_parity_bit_flip_is_detected() {
        let bytes = sample_parity().encode();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    ParityRecord::decode(&bad).is_err(),
                    "parity flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn parity_truncation_is_typed_before_allocation() {
        let mut bytes = sample_parity().encode();
        // A corrupted member count must fail as Truncated, not allocate.
        bytes[20..24].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            ParityRecord::decode(&bytes),
            Err(FrameError::Truncated { .. })
        ));
        let whole = sample_parity().encode();
        for cut in 0..whole.len() {
            assert!(
                ParityRecord::decode(&whole[..cut]).is_err(),
                "prefix of {cut} bytes went undetected"
            );
        }
    }

    fn sample_rankdedup() -> RankDedupRecord {
        RankDedupRecord {
            rank: 2,
            ckpt_id: 5,
            chunk_len: 64,
            orig_len: 40 + 3 * 64,
            orig_checksum: 0x1122_3344_5566_7788,
            entries: vec![
                RankDedupEntry::Local { len: 40 },
                RankDedupEntry::Remote(RemoteRef {
                    owner_rank: 0,
                    ckpt_id: 5,
                    chunk: 1,
                }),
                RankDedupEntry::Local { len: 64 },
                RankDedupEntry::Remote(RemoteRef {
                    owner_rank: 2,
                    ckpt_id: 5,
                    chunk: 2,
                }),
            ],
            local: (0..104u32).map(|i| (i % 253) as u8).collect(),
        }
    }

    #[test]
    fn rankdedup_record_round_trips() {
        let rec = sample_rankdedup();
        let bytes = rec.encode();
        assert!(looks_rankdedup(&bytes));
        assert!(!looks_framed(&bytes));
        assert!(!looks_parity(&bytes));
        let back = RankDedupRecord::decode(&bytes).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.local_slice(0).unwrap(), &rec.local[..40]);
        assert_eq!(back.local_slice(2).unwrap(), &rec.local[40..]);
        assert_eq!(back.local_slice(1), None, "remote entry has no local bytes");
        assert_eq!(back.local_slice(9), None);
        assert_eq!(back.remote_refs().count(), 2);
    }

    #[test]
    fn empty_rankdedup_record_round_trips() {
        let rec = RankDedupRecord {
            rank: 0,
            ckpt_id: 0,
            chunk_len: 64,
            orig_len: 0,
            orig_checksum: checksum64(0, 0, &[]),
            entries: Vec::new(),
            local: Vec::new(),
        };
        let bytes = rec.encode();
        assert_eq!(bytes.len(), RANKDEDUP_HEADER_LEN);
        assert_eq!(RankDedupRecord::decode(&bytes).unwrap(), rec);
    }

    #[test]
    fn every_rankdedup_bit_flip_is_detected() {
        let bytes = sample_rankdedup().encode();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    RankDedupRecord::decode(&bad).is_err(),
                    "rank-dedup flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn rankdedup_truncation_is_typed_before_allocation() {
        let mut bytes = sample_rankdedup().encode();
        // A corrupted entry count must fail as Truncated, not allocate.
        bytes[28..32].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            RankDedupRecord::decode(&bytes),
            Err(FrameError::Truncated { .. })
        ));
        let whole = sample_rankdedup().encode();
        for cut in 0..whole.len() {
            assert!(
                RankDedupRecord::decode(&whole[..cut]).is_err(),
                "prefix of {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn rankdedup_bad_entry_tag_is_typed() {
        // Forge a record whose checksum covers a corrupt tag byte: the tag
        // error (not the checksum) must surface, typed with the slot index.
        let mut rec = sample_rankdedup();
        rec.entries[1] = RankDedupEntry::Local { len: 0 };
        let mut bytes = rec.encode();
        let tag_at = RANKDEDUP_HEADER_LEN + RANKDEDUP_ENTRY_LEN;
        bytes[tag_at] = 7;
        let sum = rankdedup_sum(rec.rank, rec.ckpt_id, &bytes[RANKDEDUP_CHECK_OFFSET..]);
        bytes[16..24].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            RankDedupRecord::decode(&bytes).unwrap_err(),
            FrameError::BadEntryTag { index: 1, tag: 7 }
        );
    }

    #[test]
    fn rankdedup_local_sum_mismatch_is_typed() {
        // Local entry lengths that do not add up to the carried bytes are a
        // typed LengthMismatch even under a recomputed checksum.
        let rec = sample_rankdedup();
        let mut bytes = rec.encode();
        bytes[RANKDEDUP_HEADER_LEN + 1] = 41;
        let sum = rankdedup_sum(rec.rank, rec.ckpt_id, &bytes[RANKDEDUP_CHECK_OFFSET..]);
        bytes[16..24].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            RankDedupRecord::decode(&bytes),
            Err(FrameError::LengthMismatch { .. })
        ));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Satellite property: flipping any single header byte of a
            /// valid frame — uncompressed or compressed — always fails
            /// verification with a typed error, never a panic and never a
            /// silent success.
            #[test]
            fn flipping_each_header_byte_is_detected(
                payload in proptest::collection::vec(any::<u8>(), 0..2048),
                rank in any::<u32>(),
                ckpt in any::<u32>(),
                codec in prop_oneof![Just(0u8), 1u8..=7],
                flip in any::<u8>(),
            ) {
                prop_assume!(flip != 0);
                let framed = if codec == 0 {
                    encode_frame(rank, ckpt, &payload)
                } else {
                    compressed_frame(rank, ckpt, &payload, codec)
                };
                let header_len = FRAME_HEADER_LEN
                    + if codec != 0 { FRAME_EXT_LEN } else { 0 };
                for byte in 0..header_len.min(framed.len()) {
                    let mut bad = framed.clone();
                    bad[byte] ^= flip;
                    prop_assert!(
                        decode_payload(&bad, Some((rank, ckpt))).is_err(),
                        "header byte {byte} xor {flip:#04x} went undetected"
                    );
                }
            }

            #[test]
            fn compressed_frames_roundtrip(
                payload in proptest::collection::vec(any::<u8>(), 0..4096),
                codec in 1u8..=7,
            ) {
                let framed = compressed_frame(5, 9, &payload, codec);
                let (header, back) = decode_payload(&framed, Some((5, 9))).unwrap();
                prop_assert_eq!(header.codec, codec);
                prop_assert_eq!(back, payload);
            }

            /// Fuzz: feeding arbitrary byte strings to every parser in
            /// this module never panics — each either succeeds (the fuzzer
            /// stumbled on a valid object, which the checksums make
            /// astronomically unlikely) or returns a typed [`FrameError`].
            #[test]
            fn arbitrary_bytes_never_panic_any_parser(
                bytes in proptest::collection::vec(any::<u8>(), 0..512),
            ) {
                let _ = decode_frame(&bytes);
                let _ = decode_payload(&bytes, Some((1, 2)));
                let _ = ParityRecord::decode(&bytes);
                let _ = RankDedupRecord::decode(&bytes);
            }

            /// Fuzz: arbitrary bytes *behind valid magic* still land in the
            /// typed taxonomy — the header fields themselves are hostile.
            #[test]
            fn arbitrary_bytes_with_valid_magic_never_panic(
                tail in proptest::collection::vec(any::<u8>(), 0..256),
                which in 0usize..3,
            ) {
                let magic: &[u8; 4] = match which {
                    0 => &FRAME_MAGIC,
                    1 => &PARITY_MAGIC,
                    _ => &RANKDEDUP_MAGIC,
                };
                let mut bytes = magic.to_vec();
                bytes.extend_from_slice(&tail);
                prop_assert!(decode_frame(&bytes).is_err() || which == 0);
                prop_assert!(ParityRecord::decode(&bytes).is_err() || which == 1);
                prop_assert!(RankDedupRecord::decode(&bytes).is_err() || which == 2);
            }

            /// Fuzz: truncating a *valid* object of any of the three
            /// formats at every offset is always a typed error, never a
            /// panic and never a silent success.
            #[test]
            fn truncation_at_every_offset_is_typed(
                payload in proptest::collection::vec(any::<u8>(), 1..512),
                rank in 0u32..8,
                ckpt in 0u32..8,
                codec in prop_oneof![Just(0u8), 1u8..=7],
            ) {
                let framed = if codec == 0 {
                    encode_frame(rank, ckpt, &payload)
                } else {
                    compressed_frame(rank, ckpt, &payload, codec)
                };
                for cut in 0..framed.len() {
                    prop_assert!(decode_frame(&framed[..cut]).is_err());
                }

                let parity = ParityRecord {
                    group: rank,
                    stripe: 1,
                    ckpt_id: ckpt,
                    members: vec![ParityMember {
                        rank,
                        codec,
                        uncompressed_len: payload.len() as u64,
                        stored_len: payload.len() as u64,
                        chunk_len: 64,
                        checksum: checksum64(rank, ckpt, &payload),
                    }],
                    parity: payload.clone(),
                }
                .encode();
                for cut in 0..parity.len() {
                    prop_assert!(ParityRecord::decode(&parity[..cut]).is_err());
                }

                let half = payload.len() / 2;
                let dedup = RankDedupRecord {
                    rank,
                    ckpt_id: ckpt,
                    chunk_len: 64,
                    orig_len: payload.len() as u64,
                    orig_checksum: checksum64(rank, ckpt, &payload),
                    entries: vec![
                        RankDedupEntry::Local { len: half as u32 },
                        RankDedupEntry::Remote(RemoteRef {
                            owner_rank: rank ^ 1,
                            ckpt_id: ckpt,
                            chunk: 0,
                        }),
                        RankDedupEntry::Local {
                            len: (payload.len() - half) as u32,
                        },
                    ],
                    local: payload.clone(),
                }
                .encode();
                for cut in 0..dedup.len() {
                    prop_assert!(RankDedupRecord::decode(&dedup[..cut]).is_err());
                }
            }
        }
    }
}
