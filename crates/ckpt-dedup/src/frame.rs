//! Self-describing integrity frames for stored checkpoint objects.
//!
//! Every object handed to a storage tier (and every `NNNN.ckpt` file the
//! CLI writes) is wrapped in a fixed 32-byte header so that torn writes,
//! bit flips and misplaced objects are *detected at read time* instead of
//! silently poisoning a restore chain. This mirrors how VeloC/FTI treat
//! per-level integrity verification as a first-class runtime concern.
//!
//! Layout (all fields little-endian):
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0  | 4 | magic `"CKF1"` |
//! | 4  | 2 | format version (currently 1) |
//! | 6  | 2 | flags (reserved, 0) |
//! | 8  | 4 | rank id |
//! | 12 | 4 | checkpoint id |
//! | 16 | 8 | payload length in bytes |
//! | 24 | 8 | checksum (Murmur3 x64-128 of the payload, seeded by the ids, |
//! |    |   | halves folded to 64 bits) |
//!
//! The checksum seed mixes `(rank, ckpt_id)` so a frame copied to the wrong
//! object slot fails verification even if its payload is intact. Any strict
//! prefix of a valid frame fails verification (the header announces the
//! payload length), which is exactly the artifact a torn write leaves
//! behind.

use ckpt_hash::{Hasher128, Murmur3};

/// Frame magic: "CKF1".
pub const FRAME_MAGIC: [u8; 4] = *b"CKF1";

/// Current frame format version.
pub const FRAME_VERSION: u16 = 1;

/// Fixed header size preceding the payload.
pub const FRAME_HEADER_LEN: usize = 32;

/// Decoded frame header fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    pub rank: u32,
    pub ckpt_id: u32,
    pub payload_len: u64,
    pub checksum: u64,
}

/// Why a frame failed verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than one header.
    TooShort { len: usize },
    /// Magic bytes did not match.
    BadMagic,
    /// Unknown format version.
    BadVersion { version: u16 },
    /// Reserved flags field was nonzero.
    BadFlags { flags: u16 },
    /// Header promises more payload than is present (torn write).
    Truncated { expected: u64, have: u64 },
    /// More bytes than the header accounts for.
    TrailingBytes { expected: u64, have: u64 },
    /// Checksum over the payload did not match the header.
    ChecksumMismatch { expected: u64, got: u64 },
    /// Frame ids do not match the slot it was read from.
    IdMismatch {
        expected: (u32, u32),
        got: (u32, u32),
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooShort { len } => {
                write!(f, "frame too short: {len} < {FRAME_HEADER_LEN} bytes")
            }
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::BadVersion { version } => write!(f, "unknown frame version {version}"),
            FrameError::BadFlags { flags } => {
                write!(f, "reserved frame flags set: {flags:#06x}")
            }
            FrameError::Truncated { expected, have } => {
                write!(f, "truncated frame: payload {have} of {expected} bytes")
            }
            FrameError::TrailingBytes { expected, have } => {
                write!(f, "frame has trailing bytes: {have} > {expected}")
            }
            FrameError::ChecksumMismatch { expected, got } => {
                write!(
                    f,
                    "checksum mismatch: header {expected:#018x}, payload {got:#018x}"
                )
            }
            FrameError::IdMismatch { expected, got } => {
                write!(f, "frame ids {got:?} do not match slot {expected:?}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Seed for the payload checksum: mixes both ids so relocated frames fail.
#[inline]
fn checksum_seed(rank: u32, ckpt_id: u32) -> u32 {
    rank.rotate_left(16) ^ ckpt_id ^ 0x9e37_79b9
}

/// The 64-bit payload checksum stored in (and verified against) the header.
pub fn checksum64(rank: u32, ckpt_id: u32, payload: &[u8]) -> u64 {
    let d = Murmur3.hash_seeded(payload, checksum_seed(rank, ckpt_id));
    d.h1 ^ d.h2.rotate_left(32)
}

/// Wrap `payload` in a verified frame for object `(rank, ckpt_id)`. The
/// payload bytes follow the 32-byte header verbatim.
pub fn encode_frame(rank: u32, ckpt_id: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&FRAME_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&rank.to_le_bytes());
    out.extend_from_slice(&ckpt_id.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum64(rank, ckpt_id, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Whether `bytes` begins with the frame magic (cheap format sniff for
/// legacy/unframed inputs; says nothing about validity).
pub fn looks_framed(bytes: &[u8]) -> bool {
    bytes.len() >= FRAME_MAGIC.len() && bytes[..FRAME_MAGIC.len()] == FRAME_MAGIC
}

/// Parse and fully verify a frame, returning the header and a borrowed
/// payload slice. Every integrity property is checked: magic, version,
/// exact length, and checksum.
pub fn decode_frame(bytes: &[u8]) -> Result<(FrameHeader, &[u8]), FrameError> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(FrameError::TooShort { len: bytes.len() });
    }
    if bytes[0..4] != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != FRAME_VERSION {
        return Err(FrameError::BadVersion { version });
    }
    let flags = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
    if flags != 0 {
        return Err(FrameError::BadFlags { flags });
    }
    let rank = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let ckpt_id = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    let payload_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let checksum = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
    let have = (bytes.len() - FRAME_HEADER_LEN) as u64;
    if have < payload_len {
        return Err(FrameError::Truncated {
            expected: payload_len,
            have,
        });
    }
    if have > payload_len {
        return Err(FrameError::TrailingBytes {
            expected: payload_len,
            have,
        });
    }
    let payload = &bytes[FRAME_HEADER_LEN..];
    let got = checksum64(rank, ckpt_id, payload);
    if got != checksum {
        return Err(FrameError::ChecksumMismatch {
            expected: checksum,
            got,
        });
    }
    Ok((
        FrameHeader {
            rank,
            ckpt_id,
            payload_len,
            checksum,
        },
        payload,
    ))
}

/// Verify a frame and (optionally) that it belongs to the given object
/// slot, returning the payload slice.
pub fn verify_frame(bytes: &[u8], expect: Option<(u32, u32)>) -> Result<&[u8], FrameError> {
    let (header, payload) = decode_frame(bytes)?;
    if let Some(expected) = expect {
        let got = (header.rank, header.ckpt_id);
        if got != expected {
            return Err(FrameError::IdMismatch { expected, got });
        }
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_payload() {
        let payload = b"the quick brown fox".to_vec();
        let framed = encode_frame(3, 7, &payload);
        assert_eq!(framed.len(), FRAME_HEADER_LEN + payload.len());
        assert!(looks_framed(&framed));
        let (header, got) = decode_frame(&framed).unwrap();
        assert_eq!(got, &payload[..]);
        assert_eq!(header.rank, 3);
        assert_eq!(header.ckpt_id, 7);
        assert_eq!(header.payload_len, payload.len() as u64);
        assert_eq!(verify_frame(&framed, Some((3, 7))).unwrap(), &payload[..]);
    }

    #[test]
    fn empty_payload_round_trips() {
        let framed = encode_frame(0, 0, &[]);
        assert_eq!(framed.len(), FRAME_HEADER_LEN);
        assert_eq!(verify_frame(&framed, Some((0, 0))).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let framed = encode_frame(1, 2, b"payload bytes under test");
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut bad = framed.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    verify_frame(&bad, Some((1, 2))).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn wrong_slot_is_detected() {
        let framed = encode_frame(1, 2, b"abc");
        assert_eq!(
            verify_frame(&framed, Some((1, 3))).unwrap_err(),
            FrameError::IdMismatch {
                expected: (1, 3),
                got: (1, 2)
            }
        );
        // Without an expectation the frame itself is still valid.
        assert!(verify_frame(&framed, None).is_ok());
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut framed = encode_frame(0, 1, b"xy");
        framed.push(0);
        assert!(matches!(
            decode_frame(&framed),
            Err(FrameError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn legacy_bytes_are_not_framed() {
        assert!(!looks_framed(b"CK"));
        assert!(!looks_framed(b"not a frame"));
        assert!(matches!(
            decode_frame(b"not a frame at all, but long enough to parse!"),
            Err(FrameError::BadMagic)
        ));
    }
}
