//! Metrics for checkpoints and checkpoint records, matching §3.2 of the
//! paper:
//!
//! * **de-duplication ratio** — size of the full checkpoints divided by the
//!   size of the de-duplicated checkpoints (higher = more space saved);
//! * **de-duplication throughput** — size of the original data divided by the
//!   time to create the incremental checkpoint *and* copy it from the GPU to
//!   host memory. For `Full` this degenerates to the flush throughput.
//!
//! Each quantity exists twice: measured CPU wall time, and modeled A100
//! device time from the `gpu-sim` performance model. The modeled numbers are
//! the ones comparable in shape to the paper's figures.

use crate::diff::MethodKind;

/// Per-checkpoint statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointStats {
    pub method: MethodKind,
    pub ckpt_id: u32,
    /// Size of the original (full) checkpoint buffer.
    pub uncompressed_bytes: u64,
    /// Size of the encoded diff actually stored.
    pub stored_bytes: u64,
    /// Metadata portion of the diff.
    pub metadata_bytes: u64,
    /// First-occurrence payload portion of the diff.
    pub payload_bytes: u64,
    /// First-occurrence regions (Tree) / chunks (Basic, List).
    pub n_first: u64,
    /// Shifted-duplicate regions (Tree) / chunks (List).
    pub n_shift: u64,
    /// Fixed-duplicate leaf chunks (omitted from the diff).
    pub n_fixed_chunks: u64,
    /// Wall-clock seconds to produce + serialize + transfer the diff.
    pub measured_sec: f64,
    /// Modeled device seconds for the same work.
    pub modeled_sec: f64,
}

impl CheckpointStats {
    /// De-duplication ratio of this single checkpoint.
    pub fn ratio(&self) -> f64 {
        self.uncompressed_bytes as f64 / self.stored_bytes.max(1) as f64
    }

    /// Measured de-duplication throughput, bytes/second.
    pub fn measured_throughput(&self) -> f64 {
        self.uncompressed_bytes as f64 / self.measured_sec.max(1e-12)
    }

    /// Modeled de-duplication throughput, bytes/second.
    pub fn modeled_throughput(&self) -> f64 {
        self.uncompressed_bytes as f64 / self.modeled_sec.max(1e-12)
    }
}

/// Aggregated statistics over a checkpoint record (a sequence of diffs).
///
/// The paper's frequency experiments aggregate "all captured checkpoints
/// (excluding the first)" — use [`RecordStats::excluding_first`] for that
/// view.
#[derive(Debug, Clone, Default)]
pub struct RecordStats {
    checkpoints: Vec<CheckpointStats>,
}

impl RecordStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, s: CheckpointStats) {
        self.checkpoints.push(s);
    }

    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &CheckpointStats> {
        self.checkpoints.iter()
    }

    /// A view excluding the initial full checkpoint (the paper's aggregation
    /// for the frequency scenario).
    pub fn excluding_first(&self) -> RecordStats {
        RecordStats {
            checkpoints: self.checkpoints.iter().skip(1).copied().collect(),
        }
    }

    pub fn total_uncompressed(&self) -> u64 {
        self.checkpoints.iter().map(|c| c.uncompressed_bytes).sum()
    }

    pub fn total_stored(&self) -> u64 {
        self.checkpoints.iter().map(|c| c.stored_bytes).sum()
    }

    pub fn total_metadata(&self) -> u64 {
        self.checkpoints.iter().map(|c| c.metadata_bytes).sum()
    }

    pub fn total_measured_sec(&self) -> f64 {
        self.checkpoints.iter().map(|c| c.measured_sec).sum()
    }

    pub fn total_modeled_sec(&self) -> f64 {
        self.checkpoints.iter().map(|c| c.modeled_sec).sum()
    }

    /// Aggregate de-duplication ratio: Σ full sizes / Σ stored sizes.
    pub fn ratio(&self) -> f64 {
        self.total_uncompressed() as f64 / self.total_stored().max(1) as f64
    }

    /// Aggregate measured throughput: Σ original bytes / Σ seconds.
    pub fn measured_throughput(&self) -> f64 {
        self.total_uncompressed() as f64 / self.total_measured_sec().max(1e-12)
    }

    /// Aggregate modeled throughput.
    pub fn modeled_throughput(&self) -> f64 {
        self.total_uncompressed() as f64 / self.total_modeled_sec().max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(id: u32, full: u64, stored: u64, sec: f64) -> CheckpointStats {
        CheckpointStats {
            method: MethodKind::Tree,
            ckpt_id: id,
            uncompressed_bytes: full,
            stored_bytes: stored,
            metadata_bytes: 8,
            payload_bytes: stored.saturating_sub(8),
            n_first: 1,
            n_shift: 0,
            n_fixed_chunks: 0,
            measured_sec: sec,
            modeled_sec: sec / 10.0,
        }
    }

    #[test]
    fn single_checkpoint_metrics() {
        let s = stats(0, 1000, 100, 0.5);
        assert!((s.ratio() - 10.0).abs() < 1e-12);
        assert!((s.measured_throughput() - 2000.0).abs() < 1e-9);
        assert!((s.modeled_throughput() - 20000.0).abs() < 1e-9);
    }

    #[test]
    fn record_aggregation() {
        let mut r = RecordStats::new();
        r.push(stats(0, 1000, 1000, 1.0)); // initial full checkpoint
        r.push(stats(1, 1000, 100, 0.1));
        r.push(stats(2, 1000, 100, 0.1));
        assert_eq!(r.len(), 3);
        assert!((r.ratio() - 3000.0 / 1200.0).abs() < 1e-12);

        let inc = r.excluding_first();
        assert_eq!(inc.len(), 2);
        assert!((inc.ratio() - 10.0).abs() < 1e-12);
        assert!((inc.measured_throughput() - 2000.0 / 0.2).abs() < 1e-6);
    }

    #[test]
    fn zero_division_guards() {
        let s = stats(0, 0, 0, 0.0);
        assert!(s.ratio().is_finite());
        assert!(s.measured_throughput().is_finite());
        assert!(RecordStats::new().ratio().is_finite());
    }
}
