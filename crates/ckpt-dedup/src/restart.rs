//! Single-pass parallel restart: last-writer-wins restore without
//! materializing intermediate checkpoints.
//!
//! The sequential [`Restorer`](crate::restore::Restorer) replays a record
//! front-to-back, cloning and patching every version on the way to the one
//! that is actually wanted — O(chain length × checkpoint size) bytes moved
//! for a single restore. This module walks the chain the other way: starting
//! from the target checkpoint, a per-chunk **resolution table** records which
//! record position must supply each chunk. Visiting records newest→oldest,
//! a device kernel advances every unresolved chunk through the current
//! record's region tables — a chunk covered by payload is *finalized* (its
//! source record and payload offset are now known), a chunk covered by a
//! shifted duplicate is redirected (possibly to an older record), and an
//! uncovered chunk is a fixed duplicate that simply carries to the
//! next-older record. Each visited record then contributes exactly one
//! parallel [`copy_regions`] wave for the chunks it finalized. Total bytes
//! moved: one checkpoint's worth, regardless of chain length.
//!
//! **Determinism:** every chunk's resolution is a pure function of the
//! record's region tables — threads never exchange data — so the restored
//! bytes are identical at any thread count, and identical to the sequential
//! replay (the per-chunk walk computes exactly the provenance the sequential
//! clone-and-patch loop realizes in place).
//!
//! Chains whose head is a **rebase record** (see
//! [`Checkpointer::rebase_checkpoint`](crate::methods::Checkpointer::rebase_checkpoint))
//! short-circuit: a self-contained record finalizes every remaining chunk,
//! so older records are never visited — the chain-compaction payoff.

use crate::chunking::Chunking;
use crate::diff::{bitmap, Diff, MethodKind};
use crate::restore::{copy_regions, decoded_payload, RestoreError};
use crate::tree::TreeShape;
use crate::util::SharedSliceMut;
use gpu_sim::{ArenaLease, Device, KernelCost};

/// Per-chunk resolution status after a record visit (kernel → host codes).
const ST_CARRIED: u32 = 0;
const ST_PAYLOAD: u32 = 1;
const ST_ZERO: u32 = 2;
const ST_CYCLE: u32 = 3;

/// Counters describing one single-pass restore.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestartStats {
    /// Records the resolution walk actually visited (≤ chain length; a
    /// self-contained rebase record stops the walk).
    pub records_visited: u32,
    /// Copy regions materialized across all per-record waves.
    pub regions_copied: u64,
    /// Payload bytes copied into the restored buffer.
    pub bytes_copied: u64,
    /// Chunks that resolved to the zero prefix below the record base.
    pub zero_chunks: u64,
}

/// Does this diff reference no earlier checkpoint? Structural check used to
/// recognize rebase records: a self-contained record is a legal chain base.
pub fn is_self_contained(diff: &Diff) -> bool {
    let ck = Chunking::new(diff.data_len as usize, diff.chunk_size as usize);
    let n = ck.n_chunks();
    match diff.kind {
        MethodKind::Full => true,
        MethodKind::Basic => (0..n).all(|c| bitmap::get(&diff.bitmap, c)),
        MethodKind::List | MethodKind::Tree => {
            if diff
                .shift_regions
                .iter()
                .any(|s| s.ref_ckpt != diff.ckpt_id)
            {
                return false;
            }
            // Every chunk must be covered by a payload or shift region;
            // an uncovered chunk would inherit from the previous version.
            let shape = TreeShape::new(n);
            let mut covered = vec![false; n];
            for &node in &diff.first_regions {
                let (clo, chi) = shape.chunk_range(node as usize);
                covered[clo..chi].fill(true);
            }
            for s in &diff.shift_regions {
                let (clo, chi) = shape.chunk_range(s.node as usize);
                covered[clo..chi].fill(true);
            }
            covered.into_iter().all(|c| c)
        }
    }
}

/// A payload-backed region of the record being visited: chunks
/// `clo..chi` live at byte `off` of the decoded payload.
struct PayloadIv {
    clo: u32,
    chi: u32,
    off: u64,
}

/// A shifted-duplicate region: destination chunks `clo..chi` read from
/// source chunks starting at `slo` of record position `ref_pos`.
struct ShiftIv {
    clo: u32,
    chi: u32,
    slo: u32,
    ref_pos: u32,
}

/// The record-visit index: where each chunk of this version's content is.
enum RecordIndex {
    /// Full method: the payload is the whole version.
    Full,
    /// Basic method: per-chunk changed flags and their exclusive ranks
    /// (payload offset of changed chunk `c` is `ranks[c] * chunk_size`).
    Basic {
        flags: ArenaLease<u64>,
        ranks: ArenaLease<u64>,
    },
    /// Tree/List: sorted interval tables over chunk ids.
    Regions {
        payload: Vec<PayloadIv>,
        shifts: Vec<ShiftIv>,
    },
}

/// Incremental single-pass restore of one target version.
///
/// Feed records newest→oldest starting with the target itself;
/// [`feed`](Self::feed) returns `true` once every chunk is resolved (always
/// by the time record position 0 has been fed). The incremental shape lets a
/// driver overlap fetching record *j−1* from storage with resolving record
/// *j* — the runtime crate's prefetching engine does exactly that.
pub struct SinglePassRestore {
    device: Device,
    kind: MethodKind,
    ck: Chunking,
    shape: TreeShape,
    base: u32,
    /// Record position the next `feed` must carry (`ckpt_id == base + pos`).
    next_pos: u32,
    buf: Vec<u8>,
    /// Per-chunk: record position whose content the chunk currently needs.
    need_pos: ArenaLease<u32>,
    /// Per-chunk: chunk index within that version.
    need_chunk: ArenaLease<u32>,
    /// Per-chunk visit status (`ST_*`).
    status: ArenaLease<u32>,
    /// Per-chunk payload byte offset once finalized.
    final_off: ArenaLease<u64>,
    /// Target chunks not yet finalized, ascending.
    pending: Vec<u32>,
    done: bool,
    stats: RestartStats,
}

impl SinglePassRestore {
    /// Start a restore of `target` (the newest record that matters) for a
    /// chain whose first surviving checkpoint id is `base`. The target diff
    /// itself must then be the first record fed.
    pub fn begin(device: &Device, base: u32, target: &Diff) -> Result<Self, RestoreError> {
        let Some(target_pos) = target.ckpt_id.checked_sub(base) else {
            return Err(RestoreError::OutOfOrder {
                index: 0,
                ckpt_id: target.ckpt_id,
            });
        };
        let ck = Chunking::new(target.data_len as usize, target.chunk_size as usize);
        let shape = TreeShape::new(ck.n_chunks());
        let n = ck.n_chunks();
        let arena = device.arena();
        let mut need_pos = arena.lease::<u32>("restart/need_pos", n);
        let mut need_chunk = arena.lease::<u32>("restart/need_chunk", n);
        let status = arena.lease::<u32>("restart/status", n);
        let final_off = arena.lease::<u64>("restart/final_off", n);
        {
            // Leases carry stale pool contents; seed the resolution table:
            // every chunk needs its own position of the target version.
            let pos = SharedSliceMut::new(need_pos.as_mut_slice());
            let chunk = SharedSliceMut::new(need_chunk.as_mut_slice());
            device.parallel_for(
                "restart_seed_resolution",
                n,
                KernelCost::stream(8 * n as u64),
                |c| unsafe {
                    // SAFETY: chunk index owned by this thread.
                    pos.write(c, target_pos);
                    chunk.write(c, c as u32);
                },
            );
        }
        Ok(SinglePassRestore {
            device: device.clone(),
            kind: target.kind,
            ck,
            shape,
            base,
            next_pos: target_pos,
            buf: vec![0u8; ck.data_len()],
            need_pos,
            need_chunk,
            status,
            final_off,
            pending: (0..n as u32).collect(),
            done: false,
            stats: RestartStats::default(),
        })
    }

    /// True once every chunk has a resolved source.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Record position expected by the next [`feed`](Self::feed).
    pub fn next_position(&self) -> Option<u32> {
        (!self.done).then_some(self.next_pos)
    }

    /// Build the visit index for `diff`, validating its tables the same way
    /// the sequential restorer does.
    fn build_index(&self, diff: &Diff, payload_len: usize) -> Result<RecordIndex, RestoreError> {
        let n = self.ck.n_chunks();
        match diff.kind {
            MethodKind::Full => {
                if payload_len != self.ck.data_len() {
                    return Err(RestoreError::PayloadTruncated {
                        ckpt_id: diff.ckpt_id,
                    });
                }
                Ok(RecordIndex::Full)
            }
            MethodKind::Basic => {
                let arena = self.device.arena();
                let mut flags = arena.lease::<u64>("restart/basic_flags", n);
                for (c, f) in flags.as_mut_slice().iter_mut().enumerate() {
                    *f = bitmap::get(&diff.bitmap, c) as u64;
                }
                let mut ranks = arena.lease::<u64>("restart/basic_ranks", n);
                let changed =
                    self.device
                        .exclusive_scan("restart_basic_ranks", &flags, ranks.as_mut_slice())
                        as usize;
                // All changed chunks are full-size except a changed global
                // last chunk, which is the final payload entry.
                let mut required = changed * self.ck.chunk_size();
                if changed > 0 && flags[n - 1] == 1 {
                    let (a, b) = self.ck.byte_range(n - 1);
                    required = required - self.ck.chunk_size() + (b - a);
                }
                if required > payload_len {
                    return Err(RestoreError::PayloadTruncated {
                        ckpt_id: diff.ckpt_id,
                    });
                }
                Ok(RecordIndex::Basic { flags, ranks })
            }
            MethodKind::List | MethodKind::Tree => {
                let mut payload = Vec::with_capacity(diff.first_regions.len());
                let mut cursor = 0usize;
                for &node in &diff.first_regions {
                    let (clo, chi) = self.shape.chunk_range(node as usize);
                    let (a, b) = self.ck.byte_range_of_chunks(clo, chi);
                    if cursor + (b - a) > payload_len {
                        return Err(RestoreError::PayloadTruncated {
                            ckpt_id: diff.ckpt_id,
                        });
                    }
                    payload.push(PayloadIv {
                        clo: clo as u32,
                        chi: chi as u32,
                        off: cursor as u64,
                    });
                    cursor += b - a;
                }
                payload.sort_unstable_by_key(|r| r.clo);

                let mut shifts = Vec::with_capacity(diff.shift_regions.len());
                for s in &diff.shift_regions {
                    if s.ref_ckpt > diff.ckpt_id {
                        return Err(RestoreError::ForwardReference {
                            ckpt_id: diff.ckpt_id,
                            ref_ckpt: s.ref_ckpt,
                        });
                    }
                    let Some(ref_pos) = s.ref_ckpt.checked_sub(self.base) else {
                        return Err(RestoreError::RefBelowBase {
                            ckpt_id: diff.ckpt_id,
                            ref_ckpt: s.ref_ckpt,
                            base: self.base,
                        });
                    };
                    let (clo, chi) = self.shape.chunk_range(s.node as usize);
                    let (slo, shi) = self.shape.chunk_range(s.ref_node as usize);
                    let (da, db) = self.ck.byte_range_of_chunks(clo, chi);
                    let (sa, sb) = self.ck.byte_range_of_chunks(slo, shi);
                    if db - da != sb - sa {
                        return Err(RestoreError::SpanMismatch {
                            node: s.node,
                            ref_node: s.ref_node,
                        });
                    }
                    shifts.push(ShiftIv {
                        clo: clo as u32,
                        chi: chi as u32,
                        slo: slo as u32,
                        ref_pos,
                    });
                }
                shifts.sort_unstable_by_key(|r| r.clo);
                Ok(RecordIndex::Regions { payload, shifts })
            }
        }
    }

    /// Visit the next record (position [`next_position`](Self::next_position),
    /// newest first). Returns `true` when every chunk is resolved and the
    /// remaining (older) records are not needed.
    pub fn feed(&mut self, diff: &Diff) -> Result<bool, RestoreError> {
        if self.done {
            return Ok(true);
        }
        let j = self.next_pos;
        if diff.ckpt_id != self.base + j {
            return Err(RestoreError::OutOfOrder {
                index: j as usize,
                ckpt_id: diff.ckpt_id,
            });
        }
        if diff.kind != self.kind {
            return Err(RestoreError::MixedKinds {
                expected: self.kind,
                found: diff.kind,
            });
        }
        if diff.data_len as usize != self.ck.data_len()
            || diff.chunk_size as usize != self.ck.chunk_size()
        {
            return Err(RestoreError::GeometryChanged);
        }

        let payload = decoded_payload(diff)?;
        let index = self.build_index(diff, payload.len())?;
        self.stats.records_visited += 1;

        // Resolution kernel: advance every unresolved chunk through this
        // record's tables. Each pending chunk is owned by one thread; the
        // tables are read-only; so the pass is embarrassingly parallel and
        // its outcome is thread-count independent.
        let n_pend = self.pending.len();
        let chunk_size = self.ck.chunk_size();
        {
            let pending = &self.pending;
            let need_pos = SharedSliceMut::new(self.need_pos.as_mut_slice());
            let need_chunk = SharedSliceMut::new(self.need_chunk.as_mut_slice());
            let status = SharedSliceMut::new(self.status.as_mut_slice());
            let final_off = SharedSliceMut::new(self.final_off.as_mut_slice());
            let index = &index;
            let cost = KernelCost::stream(32 * n_pend as u64);
            self.device
                .parallel_for("restart_resolve", n_pend, cost, |i| {
                    let c = pending[i] as usize;
                    // SAFETY: chunk `c` appears once in `pending`; all state
                    // slots for `c` are owned by this thread.
                    unsafe {
                        status.write(c, ST_CARRIED);
                        if need_pos.read(c) != j {
                            return; // waiting for an older record
                        }
                        let mut cur = need_chunk.read(c);
                        match index {
                            RecordIndex::Full => {
                                status.write(c, ST_PAYLOAD);
                                final_off.write(c, cur as u64 * chunk_size as u64);
                            }
                            RecordIndex::Basic { flags, ranks } => {
                                if flags[cur as usize] == 1 {
                                    status.write(c, ST_PAYLOAD);
                                    final_off.write(c, ranks[cur as usize] * chunk_size as u64);
                                } else if j == 0 {
                                    status.write(c, ST_ZERO);
                                } else {
                                    need_pos.write(c, j - 1);
                                }
                            }
                            RecordIndex::Regions { payload, shifts } => {
                                // Chase within this record; a cycle among
                                // same-record shifts exhausts the fuel.
                                let mut fuel = shifts.len() + 1;
                                loop {
                                    let p = payload.partition_point(|r| r.chi <= cur);
                                    if let Some(r) = payload.get(p) {
                                        if r.clo <= cur && cur < r.chi {
                                            status.write(c, ST_PAYLOAD);
                                            final_off.write(
                                                c,
                                                r.off + (cur - r.clo) as u64 * chunk_size as u64,
                                            );
                                            break;
                                        }
                                    }
                                    let s = shifts.partition_point(|r| r.chi <= cur);
                                    if let Some(r) = shifts.get(s) {
                                        if r.clo <= cur && cur < r.chi {
                                            let src = r.slo + (cur - r.clo);
                                            if r.ref_pos == j {
                                                if fuel == 0 {
                                                    status.write(c, ST_CYCLE);
                                                    break;
                                                }
                                                fuel -= 1;
                                                cur = src;
                                                continue;
                                            }
                                            need_pos.write(c, r.ref_pos);
                                            need_chunk.write(c, src);
                                            break;
                                        }
                                    }
                                    // Uncovered: a fixed duplicate — the
                                    // chunk's content is the previous
                                    // version's at the same position.
                                    if j == 0 {
                                        status.write(c, ST_ZERO);
                                    } else {
                                        need_pos.write(c, j - 1);
                                        need_chunk.write(c, cur);
                                    }
                                    break;
                                }
                            }
                        }
                    }
                });
        }

        // Resolution-table split: one device wave separates the chunks this
        // record finalized from the ones carried to older records.
        let status = &self.status;
        let pending = &self.pending;
        let (finalized, carried) = self
            .device
            .partition_where("restart_partition", n_pend, |i| {
                status[pending[i] as usize] != ST_CARRIED
            });

        let mut regions: Vec<(usize, usize, usize)> = Vec::with_capacity(finalized.len());
        let mut cycles = 0usize;
        for &i in &finalized {
            let c = self.pending[i as usize] as usize;
            match self.status[c] {
                ST_PAYLOAD => {
                    let (a, b) = self.ck.byte_range(c);
                    regions.push((a, b - a, self.final_off[c] as usize));
                }
                ST_ZERO => self.stats.zero_chunks += 1,
                _ => cycles += 1,
            }
        }
        if cycles > 0 {
            return Err(RestoreError::UnresolvableShifts {
                ckpt_id: diff.ckpt_id,
                remaining: cycles,
            });
        }

        // One parallel copy wave for everything this record supplies.
        let bytes: usize = regions.iter().map(|r| r.1).sum();
        self.device.parallel_for(
            "restart_copy_wave",
            0,
            KernelCost::copy(bytes as u64),
            |_| {},
        );
        copy_regions(&mut self.buf, &payload, &regions);
        self.stats.regions_copied += regions.len() as u64;
        self.stats.bytes_copied += bytes as u64;

        self.pending = carried
            .into_iter()
            .map(|i| self.pending[i as usize])
            .collect();
        debug_assert!(
            j > 0 || self.pending.is_empty(),
            "record position 0 must resolve every chunk"
        );
        self.done = self.pending.is_empty();
        if !self.done {
            self.next_pos = j - 1;
        }
        Ok(self.done)
    }

    /// The restored bytes and walk statistics. Errors if records stopped
    /// being fed before every chunk was resolved.
    pub fn finish(self) -> Result<(Vec<u8>, RestartStats), RestoreError> {
        if !self.done {
            return Err(RestoreError::UnresolvableShifts {
                ckpt_id: self.base + self.next_pos,
                remaining: self.pending.len(),
            });
        }
        Ok((self.buf, self.stats))
    }
}

/// Restore version `target_index` of a (possibly compacted, base-offset)
/// record in a single pass. Bit-identical to
/// [`restore_record_from`](crate::restore::restore_record_from)'s
/// corresponding version at any thread count.
pub fn restore_version_single_pass(
    device: &Device,
    base: u32,
    diffs: &[Diff],
    target_index: usize,
) -> Result<(Vec<u8>, RestartStats), RestoreError> {
    let Some(target) = diffs.get(target_index) else {
        return Err(RestoreError::OutOfOrder {
            index: target_index,
            ckpt_id: base + target_index as u32,
        });
    };
    let mut sp = SinglePassRestore::begin(device, base, target)?;
    for d in diffs[..=target_index].iter().rev() {
        if sp.feed(d)? {
            break;
        }
    }
    sp.finish()
}

/// Restore the latest version of a record in a single pass.
pub fn restore_latest_single_pass(
    device: &Device,
    base: u32,
    diffs: &[Diff],
) -> Result<(Vec<u8>, RestartStats), RestoreError> {
    if diffs.is_empty() {
        return Err(RestoreError::UnresolvableShifts {
            ckpt_id: base,
            remaining: 0,
        });
    }
    restore_version_single_pass(device, base, diffs, diffs.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::ShiftRegion;
    use crate::methods::tree::{TreeCheckpointer, TreeConfig};
    use crate::methods::Checkpointer;
    use crate::restore::{restore_record, restore_record_from};

    fn tree_diff(ckpt_id: u32, data_len: u64) -> Diff {
        Diff {
            kind: MethodKind::Tree,
            ckpt_id,
            data_len,
            chunk_size: 32,
            first_regions: Vec::new(),
            shift_regions: Vec::new(),
            bitmap: Vec::new(),
            payload_codec: 0,
            payload: Vec::new(),
        }
    }

    fn snapshots(n: usize, len: usize) -> Vec<Vec<u8>> {
        let mut data: Vec<u8> = (0..len).map(|i| ((i * 31) % 251) as u8).collect();
        let mut out = vec![data.clone()];
        for k in 1..n {
            for j in 0..len / 64 {
                let at = (k * 911 + j * 53) % len;
                data[at] = data[at].wrapping_add(1);
            }
            out.push(data.clone());
        }
        out
    }

    #[test]
    fn single_pass_matches_sequential_tree_chain() {
        let device = Device::a100();
        let mut m = TreeCheckpointer::new(device.clone(), TreeConfig::new(64));
        let snaps = snapshots(6, 8192);
        let diffs: Vec<Diff> = snaps.iter().map(|s| m.checkpoint(s).diff).collect();
        let seq = restore_record(&diffs).unwrap();
        for (t, expect) in seq.iter().enumerate() {
            let (par, _) = restore_version_single_pass(&device, 0, &diffs, t).unwrap();
            assert_eq!(&par, expect, "version {t}");
        }
    }

    #[test]
    fn rebase_record_short_circuits_the_walk() {
        let device = Device::a100();
        let mut m = TreeCheckpointer::new(device.clone(), TreeConfig::new(64));
        let snaps = snapshots(6, 8192);
        let mut diffs = Vec::new();
        for (k, s) in snaps.iter().enumerate() {
            let out = if k == 3 {
                m.rebase_checkpoint(s)
            } else {
                m.checkpoint(s)
            };
            diffs.push(out.diff);
        }
        assert!(
            is_self_contained(&diffs[3]),
            "rebase must be self-contained"
        );
        let seq = restore_record(&diffs).unwrap();
        let (par, stats) = restore_latest_single_pass(&device, 0, &diffs).unwrap();
        assert_eq!(par, seq[5]);
        assert!(
            stats.records_visited <= 3,
            "walk must stop at the rebase record, visited {}",
            stats.records_visited
        );
    }

    #[test]
    fn compacted_chain_restores_from_base() {
        let device = Device::a100();
        let mut m = TreeCheckpointer::new(device.clone(), TreeConfig::new(64));
        let snaps = snapshots(6, 8192);
        let mut diffs = Vec::new();
        for (k, s) in snaps.iter().enumerate() {
            let out = if k == 3 {
                m.rebase_checkpoint(s)
            } else {
                m.checkpoint(s)
            };
            diffs.push(out.diff);
        }
        // Garbage-collect below the rebase: only records 3.. survive.
        let tail = &diffs[3..];
        let seq = restore_record_from(3, tail).unwrap();
        assert_eq!(seq[0], snaps[3]);
        assert_eq!(seq[2], snaps[5]);
        let (par, _) = restore_latest_single_pass(&device, 3, tail).unwrap();
        assert_eq!(par, snaps[5]);
    }

    #[test]
    fn self_containment_detection() {
        let device = Device::a100();
        let mut m = TreeCheckpointer::new(device.clone(), TreeConfig::new(64));
        let snaps = snapshots(3, 4096);
        let d0 = m.checkpoint(&snaps[0]).diff;
        let d1 = m.checkpoint(&snaps[1]).diff;
        // Checkpoint 0 references nothing earlier; an incremental later
        // checkpoint of a sparse update is dominated by fixed duplicates.
        assert!(is_self_contained(&d0));
        assert!(!is_self_contained(&d1));
    }

    #[test]
    fn ref_below_base_is_typed() {
        let mut d = tree_diff(5, 64);
        d.first_regions = vec![1]; // chunk 0
        d.payload = vec![0; 32];
        d.shift_regions = vec![ShiftRegion {
            node: 2,
            ref_node: 1,
            ref_ckpt: 2, // below base 5
        }];
        let device = Device::a100();
        let err = restore_latest_single_pass(&device, 5, std::slice::from_ref(&d)).unwrap_err();
        assert!(matches!(
            err,
            RestoreError::RefBelowBase {
                ref_ckpt: 2,
                base: 5,
                ..
            }
        ));
    }

    #[test]
    fn same_record_shift_chain_and_cycles() {
        // Mirror restore.rs's chain test: 5 -> 4 -> 3(payload).
        let mut d = tree_diff(0, 128);
        d.first_regions = vec![3, 6];
        d.shift_regions = vec![
            ShiftRegion {
                node: 5,
                ref_node: 4,
                ref_ckpt: 0,
            },
            ShiftRegion {
                node: 4,
                ref_node: 3,
                ref_ckpt: 0,
            },
        ];
        d.payload = [[7u8; 32], [9u8; 32]].concat();
        let device = Device::a100();
        let (v, _) = restore_latest_single_pass(&device, 0, std::slice::from_ref(&d)).unwrap();
        assert_eq!(&v[0..96], &[7u8; 96][..]);
        assert_eq!(&v[96..128], &[9u8; 32][..]);

        let mut cyc = tree_diff(0, 128);
        cyc.first_regions = vec![3, 6];
        cyc.payload = vec![0; 64];
        cyc.shift_regions = vec![
            ShiftRegion {
                node: 4,
                ref_node: 5,
                ref_ckpt: 0,
            },
            ShiftRegion {
                node: 5,
                ref_node: 4,
                ref_ckpt: 0,
            },
        ];
        let err = restore_latest_single_pass(&device, 0, std::slice::from_ref(&cyc)).unwrap_err();
        assert!(matches!(err, RestoreError::UnresolvableShifts { .. }));
    }

    #[test]
    fn early_stop_without_resolution_errors() {
        let device = Device::a100();
        let mut m = TreeCheckpointer::new(device.clone(), TreeConfig::new(64));
        let snaps = snapshots(3, 4096);
        let diffs: Vec<Diff> = snaps.iter().map(|s| m.checkpoint(s).diff).collect();
        let mut sp = SinglePassRestore::begin(&device, 0, &diffs[2]).unwrap();
        let done = sp.feed(&diffs[2]).unwrap();
        assert!(!done, "incremental tail cannot be self-sufficient");
        let err = sp.finish().unwrap_err();
        assert!(matches!(err, RestoreError::UnresolvableShifts { .. }));
    }
}
