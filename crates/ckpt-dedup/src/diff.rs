//! The serialized incremental-checkpoint ("diff") format.
//!
//! One diff is produced per checkpoint. It packs, in order: a fixed header,
//! method-specific metadata (region tables or a chunk bitmap), and the raw
//! payload of first-occurrence data. The paper's pipeline assembles exactly
//! this object in GPU memory so a single device-to-host transfer moves it
//! (§2.1 "efficient combined serialization of metadata and unique chunks");
//! our encoding is the host-side materialization of that object.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic      [u8;4] = b"GDCD"
//! version    u16
//! kind       u8            (Full / Basic / List / Tree)
//! payload_codec u8         (0 = raw; else a `ckpt_compress::codec_by_id`
//!                           id — the §5 dedup+compression hybrid)
//! ckpt_id    u32
//! data_len   u64
//! chunk_size u32
//! n_first    u32           (regions / changed chunks)
//! n_shift    u32
//! payload_len u64
//! -- kind-specific metadata --
//! Basic:       bitmap of ceil(n_chunks/8) bytes, bit c = chunk c changed
//! List / Tree: n_first × u32 node ids,
//!              n_shift × (u32 node, u32 ref_node, u32 ref_ckpt)
//! Full:        none
//! -- payload: payload_len bytes --
//! ```

/// Which checkpointing method produced a diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MethodKind {
    /// Always store the full buffer.
    Full = 0,
    /// Hash chunks, compare with the previous checkpoint position-wise,
    /// store a bitmap plus changed chunks.
    Basic = 1,
    /// Hash chunks against the whole historical record but store one
    /// metadata entry per non-fixed chunk (no compaction).
    List = 2,
    /// The paper's method: Merkle-tree compacted metadata.
    Tree = 3,
}

impl MethodKind {
    pub fn from_u8(v: u8) -> Option<MethodKind> {
        match v {
            0 => Some(MethodKind::Full),
            1 => Some(MethodKind::Basic),
            2 => Some(MethodKind::List),
            3 => Some(MethodKind::Tree),
            _ => None,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            MethodKind::Full => "Full",
            MethodKind::Basic => "Basic",
            MethodKind::List => "List",
            MethodKind::Tree => "Tree",
        }
    }
}

/// A shifted-duplicate region: `node`'s data equals the data that first
/// occurred at `ref_node` of checkpoint `ref_ckpt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShiftRegion {
    pub node: u32,
    pub ref_node: u32,
    pub ref_ckpt: u32,
}

const MAGIC: [u8; 4] = *b"GDCD";
const VERSION: u16 = 1;
const HEADER_BYTES: usize = 4 + 2 + 1 + 1 + 4 + 8 + 4 + 4 + 4 + 8;

/// A decoded (or not-yet-encoded) incremental checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diff {
    pub kind: MethodKind,
    pub ckpt_id: u32,
    /// Length of the original checkpoint buffer.
    pub data_len: u64,
    pub chunk_size: u32,
    /// First-occurrence region roots (node ids), in payload order.
    /// Unused by `Full`; for `Basic` the changed chunks are implied by the
    /// bitmap and this stays empty.
    pub first_regions: Vec<u32>,
    /// Shifted-duplicate regions. Empty for `Full`/`Basic`.
    pub shift_regions: Vec<ShiftRegion>,
    /// `Basic` only: changed-chunk bitmap.
    pub bitmap: Vec<u8>,
    /// Compression applied to `payload` (0 = none; see
    /// `ckpt_compress::codec_by_id`). First-occurrence data is compressed
    /// *after* de-duplication — the hybrid the paper's §5 proposes.
    pub payload_codec: u8,
    /// Raw bytes of the first-occurrence regions, concatenated in table
    /// order (`Basic`: changed chunks in ascending chunk order; `Full`: the
    /// entire buffer).
    pub payload: Vec<u8>,
}

/// Errors from [`Diff::decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    TooShort,
    BadMagic,
    BadVersion(u16),
    BadKind(u8),
    LengthMismatch { expected: usize, actual: usize },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::TooShort => write!(f, "buffer too short for diff header"),
            DecodeError::BadMagic => write!(f, "bad magic bytes"),
            DecodeError::BadVersion(v) => write!(f, "unsupported diff version {v}"),
            DecodeError::BadKind(k) => write!(f, "unknown method kind {k}"),
            DecodeError::LengthMismatch { expected, actual } => {
                write!(f, "diff length mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

impl Diff {
    /// Number of chunks in the original buffer.
    pub fn n_chunks(&self) -> usize {
        (self.data_len as usize).div_ceil(self.chunk_size as usize)
    }

    /// Bytes of metadata (everything except the payload and the fixed
    /// header). This is the quantity the paper's compaction minimizes.
    pub fn metadata_bytes(&self) -> usize {
        self.first_regions.len() * 4 + self.shift_regions.len() * 12 + self.bitmap.len()
    }

    /// Total size of the encoded diff in bytes — the "incremental checkpoint
    /// size" used for de-duplication ratios.
    pub fn stored_bytes(&self) -> usize {
        HEADER_BYTES + self.metadata_bytes() + self.payload.len()
    }

    /// Byte offset at which the first-occurrence payload starts inside a
    /// valid encoded diff, without decoding the tables. `None` when `buf`
    /// is not a structurally valid diff. The cluster dedup index uses this
    /// to start its chunk grid at the payload — metadata prefixes differ
    /// per rank, but payload bytes of replicated regions align.
    pub fn payload_offset(buf: &[u8]) -> Option<usize> {
        if buf.len() < HEADER_BYTES || buf[0..4] != MAGIC {
            return None;
        }
        if u16::from_le_bytes(buf[4..6].try_into().unwrap()) != VERSION {
            return None;
        }
        let kind = MethodKind::from_u8(buf[6])?;
        let data_len = u64::from_le_bytes(buf[12..20].try_into().unwrap());
        let chunk_size = u32::from_le_bytes(buf[20..24].try_into().unwrap());
        let n_first = u32::from_le_bytes(buf[24..28].try_into().unwrap()) as usize;
        let n_shift = u32::from_le_bytes(buf[28..32].try_into().unwrap()) as usize;
        let payload_len = u64::from_le_bytes(buf[32..40].try_into().unwrap()) as usize;
        let n_chunks = (data_len as usize).div_ceil(chunk_size.max(1) as usize);
        let meta_len = match kind {
            MethodKind::Full => 0,
            MethodKind::Basic => n_chunks.div_ceil(8),
            MethodKind::List | MethodKind::Tree => n_first * 4 + n_shift * 12,
        };
        let offset = HEADER_BYTES.checked_add(meta_len)?;
        (offset.checked_add(payload_len) == Some(buf.len())).then_some(offset)
    }

    /// Serialize to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.stored_bytes());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(self.kind as u8);
        out.push(self.payload_codec);
        out.extend_from_slice(&self.ckpt_id.to_le_bytes());
        out.extend_from_slice(&self.data_len.to_le_bytes());
        out.extend_from_slice(&self.chunk_size.to_le_bytes());
        out.extend_from_slice(&(self.first_regions.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.shift_regions.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        match self.kind {
            MethodKind::Full => {}
            MethodKind::Basic => out.extend_from_slice(&self.bitmap),
            MethodKind::List | MethodKind::Tree => {
                for &n in &self.first_regions {
                    out.extend_from_slice(&n.to_le_bytes());
                }
                for s in &self.shift_regions {
                    out.extend_from_slice(&s.node.to_le_bytes());
                    out.extend_from_slice(&s.ref_node.to_le_bytes());
                    out.extend_from_slice(&s.ref_ckpt.to_le_bytes());
                }
            }
        }
        out.extend_from_slice(&self.payload);
        debug_assert_eq!(out.len(), self.stored_bytes());
        out
    }

    /// Deserialize from bytes.
    pub fn decode(buf: &[u8]) -> Result<Diff, DecodeError> {
        if buf.len() < HEADER_BYTES {
            return Err(DecodeError::TooShort);
        }
        if buf[0..4] != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = u16::from_le_bytes(buf[4..6].try_into().unwrap());
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let kind = MethodKind::from_u8(buf[6]).ok_or(DecodeError::BadKind(buf[6]))?;
        let payload_codec = buf[7];
        let ckpt_id = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        let data_len = u64::from_le_bytes(buf[12..20].try_into().unwrap());
        let chunk_size = u32::from_le_bytes(buf[20..24].try_into().unwrap());
        let n_first = u32::from_le_bytes(buf[24..28].try_into().unwrap()) as usize;
        let n_shift = u32::from_le_bytes(buf[28..32].try_into().unwrap()) as usize;
        let payload_len = u64::from_le_bytes(buf[32..40].try_into().unwrap()) as usize;

        let n_chunks = (data_len as usize).div_ceil(chunk_size.max(1) as usize);
        let (bitmap_len, table_len, keep_first) = match kind {
            MethodKind::Full => (0, 0, false),
            MethodKind::Basic => (n_chunks.div_ceil(8), 0, false),
            MethodKind::List | MethodKind::Tree => (0, n_first * 4 + n_shift * 12, true),
        };
        let expected = HEADER_BYTES + bitmap_len + table_len + payload_len;
        if buf.len() != expected {
            return Err(DecodeError::LengthMismatch {
                expected,
                actual: buf.len(),
            });
        }

        let mut pos = HEADER_BYTES;
        let bitmap = buf[pos..pos + bitmap_len].to_vec();
        pos += bitmap_len;

        let mut first_regions = Vec::new();
        let mut shift_regions = Vec::new();
        if keep_first {
            first_regions.reserve(n_first);
            for _ in 0..n_first {
                first_regions.push(u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()));
                pos += 4;
            }
            shift_regions.reserve(n_shift);
            for _ in 0..n_shift {
                let node = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
                let ref_node = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
                let ref_ckpt = u32::from_le_bytes(buf[pos + 8..pos + 12].try_into().unwrap());
                shift_regions.push(ShiftRegion {
                    node,
                    ref_node,
                    ref_ckpt,
                });
                pos += 12;
            }
        }
        let payload = buf[pos..pos + payload_len].to_vec();

        Ok(Diff {
            kind,
            ckpt_id,
            data_len,
            chunk_size,
            first_regions,
            shift_regions,
            bitmap,
            payload_codec,
            payload,
        })
    }
}

/// Bitmap helpers used by the `Basic` method.
pub mod bitmap {
    /// Set bit `i` in `bits`.
    #[inline]
    pub fn set(bits: &mut [u8], i: usize) {
        bits[i / 8] |= 1 << (i % 8);
    }

    /// Read bit `i` of `bits`.
    #[inline]
    pub fn get(bits: &[u8], i: usize) -> bool {
        bits[i / 8] & (1 << (i % 8)) != 0
    }

    /// Bytes needed for `n` bits.
    #[inline]
    pub fn bytes_for(n: usize) -> usize {
        n.div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree_diff() -> Diff {
        Diff {
            kind: MethodKind::Tree,
            ckpt_id: 3,
            data_len: 1000,
            chunk_size: 64,
            first_regions: vec![1, 12],
            shift_regions: vec![ShiftRegion {
                node: 6,
                ref_node: 3,
                ref_ckpt: 0,
            }],
            bitmap: Vec::new(),
            payload_codec: 0,
            payload: vec![0xab; 192],
        }
    }

    #[test]
    fn tree_diff_round_trip() {
        let d = sample_tree_diff();
        let bytes = d.encode();
        assert_eq!(bytes.len(), d.stored_bytes());
        assert_eq!(Diff::decode(&bytes).unwrap(), d);
    }

    #[test]
    fn full_diff_round_trip() {
        let d = Diff {
            kind: MethodKind::Full,
            ckpt_id: 0,
            data_len: 100,
            chunk_size: 64,
            first_regions: Vec::new(),
            shift_regions: Vec::new(),
            bitmap: Vec::new(),
            payload_codec: 0,
            payload: (0..100u8).collect(),
        };
        assert_eq!(Diff::decode(&d.encode()).unwrap(), d);
    }

    #[test]
    fn basic_diff_round_trip() {
        let n_chunks = 10usize;
        let mut bm = vec![0u8; bitmap::bytes_for(n_chunks)];
        bitmap::set(&mut bm, 0);
        bitmap::set(&mut bm, 9);
        let d = Diff {
            kind: MethodKind::Basic,
            ckpt_id: 2,
            data_len: 640,
            chunk_size: 64,
            first_regions: Vec::new(),
            shift_regions: Vec::new(),
            bitmap: bm,
            payload_codec: 0,
            payload: vec![1u8; 128],
        };
        let back = Diff::decode(&d.encode()).unwrap();
        assert_eq!(back, d);
        assert!(bitmap::get(&back.bitmap, 0));
        assert!(!bitmap::get(&back.bitmap, 5));
        assert!(bitmap::get(&back.bitmap, 9));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Diff::decode(&[]), Err(DecodeError::TooShort));
        let mut bytes = sample_tree_diff().encode();
        bytes[0] = b'X';
        assert_eq!(Diff::decode(&bytes), Err(DecodeError::BadMagic));

        let mut bytes = sample_tree_diff().encode();
        bytes[4] = 99;
        assert!(matches!(
            Diff::decode(&bytes),
            Err(DecodeError::BadVersion(99))
        ));

        let mut bytes = sample_tree_diff().encode();
        bytes[6] = 7;
        assert_eq!(Diff::decode(&bytes), Err(DecodeError::BadKind(7)));

        let mut bytes = sample_tree_diff().encode();
        bytes.pop();
        assert!(matches!(
            Diff::decode(&bytes),
            Err(DecodeError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn metadata_accounting() {
        let d = sample_tree_diff();
        assert_eq!(d.metadata_bytes(), 2 * 4 + 12);
        assert_eq!(d.stored_bytes(), 40 + 20 + 192);
    }

    #[test]
    fn bitmap_helpers() {
        let mut b = vec![0u8; bitmap::bytes_for(17)];
        assert_eq!(b.len(), 3);
        for i in [0, 7, 8, 16] {
            bitmap::set(&mut b, i);
        }
        for i in 0..17 {
            assert_eq!(bitmap::get(&b, i), [0, 7, 8, 16].contains(&i));
        }
    }
}
