//! Running a sequence of checkpoints through one method.

use crate::diff::Diff;
use crate::methods::Checkpointer;
use crate::stats::RecordStats;

/// The outcome of checkpointing a sequence of snapshots: the diffs plus the
/// aggregated statistics.
#[derive(Debug)]
pub struct CheckpointRecord {
    pub diffs: Vec<Diff>,
    pub stats: RecordStats,
}

impl CheckpointRecord {
    /// Total bytes stored across the record.
    pub fn total_stored(&self) -> u64 {
        self.stats.total_stored()
    }
}

/// Feed every snapshot to `method` in order, collecting diffs and stats.
pub fn run_record<'a>(
    method: &mut dyn Checkpointer,
    snapshots: impl IntoIterator<Item = &'a [u8]>,
) -> CheckpointRecord {
    let mut diffs = Vec::new();
    let mut stats = RecordStats::new();
    for snap in snapshots {
        let out = method.checkpoint(snap);
        stats.push(out.stats);
        diffs.push(out.diff);
    }
    CheckpointRecord { diffs, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::full::FullCheckpointer;

    #[test]
    fn record_collects_all_snapshots() {
        let dev = gpu_sim::Device::a100();
        let mut m = FullCheckpointer::new(dev, 64);
        let snaps: Vec<Vec<u8>> = (0..3).map(|i| vec![i as u8; 256]).collect();
        let rec = run_record(&mut m, snaps.iter().map(|s| s.as_slice()));
        assert_eq!(rec.diffs.len(), 3);
        assert_eq!(rec.stats.len(), 3);
        assert_eq!(rec.stats.total_uncompressed(), 3 * 256);
    }
}
