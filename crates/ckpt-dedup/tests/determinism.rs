//! Thread-count determinism: the executor guarantees that every parallel
//! terminal produces results in deterministic item order, so the encoded
//! checkpoint bytes and the restored snapshots must be bit-identical no
//! matter how many worker threads the pool runs.
//!
//! This file is its own test binary, so flipping the global thread-count
//! override cannot race with unrelated tests; within the binary the
//! override-touching tests share `THREAD_LOCK`.

use ckpt_dedup::prelude::*;
use gpu_sim::Device;
use std::sync::Mutex;

static THREAD_LOCK: Mutex<()> = Mutex::new(());

/// Deterministic pseudo-random snapshot sequence with realistic structure:
/// sparse point edits, block fills, region copies and one full revert, so
/// all three chunk classes (first-occurrence, shifted-duplicate, repeat)
/// appear.
fn workload(len: usize, n_snapshots: usize) -> Vec<Vec<u8>> {
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut data: Vec<u8> = (0..len).map(|i| (i / 9) as u8).collect();
    let mut snapshots = vec![data.clone()];
    for v in 1..n_snapshots {
        match v % 4 {
            0 => {
                // Sparse point edits.
                for _ in 0..len / 50 {
                    let at = (next() as usize) % len;
                    data[at] = next() as u8;
                }
            }
            1 => {
                // Block fill.
                let at = (next() as usize) % len;
                let end = (at + len / 8).min(len);
                data[at..end].fill(next() as u8);
            }
            2 => {
                // Shift a region (creates shifted duplicates).
                let src = (next() as usize) % (len / 2);
                let dst = len / 2 + (next() as usize) % (len / 4);
                let n = (len / 6).min(len - dst);
                let tmp = data[src..src + n].to_vec();
                data[dst..dst + n].copy_from_slice(&tmp);
            }
            _ => {
                // Revert to the first snapshot (pure repeats).
                data.copy_from_slice(&snapshots[0]);
            }
        }
        snapshots.push(data.clone());
    }
    snapshots
}

fn encoded_record(method: &mut dyn Checkpointer, snapshots: &[Vec<u8>]) -> Vec<Vec<u8>> {
    snapshots
        .iter()
        .map(|s| method.checkpoint(s).diff.encode())
        .collect()
}

fn run_method_at(
    threads: usize,
    make: &dyn Fn() -> Box<dyn Checkpointer>,
    snapshots: &[Vec<u8>],
) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    rayon::set_active_threads(threads);
    let mut m = make();
    let encoded = encoded_record(m.as_mut(), snapshots);
    let diffs: Vec<ckpt_dedup::Diff> = encoded
        .iter()
        .map(|e| ckpt_dedup::Diff::decode(e).expect("decode"))
        .collect();
    let restored = restore_record(&diffs).expect("restore must succeed");
    (encoded, restored)
}

fn assert_bit_identical_across_threads(name: &str, make: &dyn Fn() -> Box<dyn Checkpointer>) {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Large enough that leaf kernels exceed the 1024-item sequential
    // threshold and the pool genuinely runs multi-chunk jobs.
    let snapshots = workload(200_000, 8);
    let sweep = [1usize, 2, rayon::current_num_threads().max(4)];

    let (ref_encoded, ref_restored) = run_method_at(sweep[0], make, &snapshots);
    for (got, want) in ref_restored.iter().zip(&snapshots) {
        assert_eq!(got, want, "{name}: restore diverged from source");
    }
    for &threads in &sweep[1..] {
        let (encoded, restored) = run_method_at(threads, make, &snapshots);
        assert_eq!(
            encoded, ref_encoded,
            "{name}: checkpoint bytes differ between 1 and {threads} threads"
        );
        assert_eq!(
            restored, ref_restored,
            "{name}: restored snapshots differ between 1 and {threads} threads"
        );
    }
    rayon::set_active_threads(0);
}

/// Device-arena pooling must be invisible in the output: a checkpointer
/// reusing leased buffers (the default) and one trimming the arena before
/// every checkpoint (every lease allocates fresh) must produce the same
/// bytes at every thread count.
fn assert_pooled_matches_unpooled(name: &str, make: &dyn Fn() -> Box<dyn Checkpointer>) {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let snapshots = workload(200_000, 8);
    for threads in [1usize, 2, rayon::current_num_threads().max(4)] {
        rayon::set_active_threads(threads);
        let mut pooled = make();
        let mut unpooled = make();
        unpooled.set_buffer_reuse(false);
        let a = encoded_record(pooled.as_mut(), &snapshots);
        let b = encoded_record(unpooled.as_mut(), &snapshots);
        assert_eq!(
            a, b,
            "{name}: pooled and unpooled checkpoints differ at {threads} threads"
        );
    }
    rayon::set_active_threads(0);
}

/// `reset_record` must be equivalent to a fresh checkpointer: replaying the
/// same snapshots after a reset yields bit-identical records even though
/// arenas stay warm and the hash map only bumped its generation.
fn assert_reset_record_repeats(name: &str, make: &dyn Fn() -> Box<dyn Checkpointer>) {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let snapshots = workload(120_000, 6);
    let mut m = make();
    let first = encoded_record(m.as_mut(), &snapshots);
    m.reset_record();
    let second = encoded_record(m.as_mut(), &snapshots);
    assert_eq!(
        first, second,
        "{name}: record replay after reset_record diverged"
    );
}

#[test]
fn tree_checkpoints_are_bit_identical_across_thread_counts() {
    assert_bit_identical_across_threads("tree", &|| {
        Box::new(TreeCheckpointer::new(Device::a100(), TreeConfig::new(128)))
    });
}

#[test]
fn list_checkpoints_are_bit_identical_across_thread_counts() {
    assert_bit_identical_across_threads("list", &|| {
        Box::new(ListCheckpointer::new(Device::a100(), TreeConfig::new(128)))
    });
}

#[test]
fn basic_checkpoints_are_bit_identical_across_thread_counts() {
    assert_bit_identical_across_threads("basic", &|| {
        Box::new(BasicCheckpointer::new(Device::a100(), 128))
    });
}

#[test]
fn tree_pooled_matches_unpooled() {
    assert_pooled_matches_unpooled("tree", &|| {
        Box::new(TreeCheckpointer::new(Device::a100(), TreeConfig::new(128)))
    });
}

#[test]
fn list_pooled_matches_unpooled() {
    assert_pooled_matches_unpooled("list", &|| {
        Box::new(ListCheckpointer::new(Device::a100(), TreeConfig::new(128)))
    });
}

#[test]
fn basic_pooled_matches_unpooled() {
    assert_pooled_matches_unpooled("basic", &|| {
        Box::new(BasicCheckpointer::new(Device::a100(), 128))
    });
}

#[test]
fn tree_reset_record_replays_bit_identically() {
    assert_reset_record_repeats("tree", &|| {
        Box::new(TreeCheckpointer::new(Device::a100(), TreeConfig::new(128)))
    });
}

#[test]
fn list_reset_record_replays_bit_identically() {
    assert_reset_record_repeats("list", &|| {
        Box::new(ListCheckpointer::new(Device::a100(), TreeConfig::new(128)))
    });
}

#[test]
fn basic_reset_record_replays_bit_identically() {
    assert_reset_record_repeats("basic", &|| {
        Box::new(BasicCheckpointer::new(Device::a100(), 128))
    });
}
