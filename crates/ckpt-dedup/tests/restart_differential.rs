//! Differential testing of the single-pass parallel restart engine: for
//! random snapshot sequences, every method, every target version and
//! several pool widths, the parallel restore must be byte-identical to
//! the sequential replay — including chains with a mid-stream rebase
//! record and compacted chains restored from a non-zero base.

use ckpt_dedup::prelude::*;
use ckpt_dedup::restart::restore_version_single_pass;
use ckpt_dedup::restore::{restore_record, restore_record_from};
use ckpt_dedup::Diff;
use gpu_sim::Device;
use proptest::prelude::*;

const CHUNK: usize = 64;

fn make_checkpointer(method_idx: usize) -> Box<dyn Checkpointer> {
    match method_idx {
        0 => Box::new(TreeCheckpointer::new(
            Device::a100(),
            TreeConfig::new(CHUNK),
        )),
        1 => Box::new(ListCheckpointer::new(
            Device::a100(),
            TreeConfig::new(CHUNK),
        )),
        2 => Box::new(BasicCheckpointer::new(Device::a100(), CHUNK)),
        _ => Box::new(FullCheckpointer::new(Device::a100(), CHUNK)),
    }
}

/// Seeded snapshot sequence with sparse mutations (splitmix64 stream).
fn snapshots(seed: u64, count: usize, len: usize) -> Vec<Vec<u8>> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut data: Vec<u8> = (0..len).map(|_| (next() & 0xff) as u8).collect();
    let mut out = vec![data.clone()];
    for _ in 1..count {
        let edits = 1 + (next() % 32) as usize;
        for _ in 0..edits {
            let at = (next() as usize) % len;
            data[at] = (next() & 0xff) as u8;
        }
        out.push(data.clone());
    }
    out
}

fn build_chain(method_idx: usize, snaps: &[Vec<u8>], rebase_at: Option<usize>) -> Vec<Diff> {
    let mut m = make_checkpointer(method_idx);
    snaps
        .iter()
        .enumerate()
        .map(|(k, s)| {
            if rebase_at == Some(k) {
                m.rebase_checkpoint(s).diff
            } else {
                m.checkpoint(s).diff
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The headline determinism property: parallel == sequential, bitwise,
    /// at 1, 2 and 8 pool threads, for every method and target version —
    /// with and without a mid-stream rebase record.
    #[test]
    fn parallel_restore_is_bit_identical_across_threads(
        method_idx in 0usize..4,
        count in 2usize..6,
        len in 200usize..2400,
        seed in any::<u64>(),
        rebase_frac in 0u32..100,
        with_rebase in any::<bool>(),
    ) {
        let snaps = snapshots(seed, count, len);
        let rebase_at = with_rebase.then(|| 1 + rebase_frac as usize % (count - 1));
        let diffs = build_chain(method_idx, &snaps, rebase_at);
        let seq = restore_record(&diffs).expect("sequential replay");
        for (k, v) in seq.iter().enumerate() {
            prop_assert_eq!(v, &snaps[k], "sequential replay ground truth, version {}", k);
        }
        let device = Device::a100();
        for threads in [1usize, 2, 8] {
            rayon::set_active_threads(threads);
            for (target, expect) in seq.iter().enumerate() {
                let (par, _) =
                    restore_version_single_pass(&device, 0, &diffs, target).expect("single pass");
                prop_assert_eq!(
                    &par,
                    expect,
                    "method {} threads {} target {}",
                    method_idx,
                    threads,
                    target
                );
            }
        }
        rayon::set_active_threads(0);
    }

    /// Compacted chains: drop everything below the rebase record and
    /// restore from the non-zero base — parallel and sequential must agree
    /// on every surviving version.
    #[test]
    fn compacted_chain_restores_identically(
        method_idx in 0usize..4,
        count in 3usize..6,
        len in 200usize..1600,
        seed in any::<u64>(),
        rebase_frac in 0u32..100,
    ) {
        let snaps = snapshots(seed, count, len);
        let rebase_at = 1 + rebase_frac as usize % (count - 1);
        let diffs = build_chain(method_idx, &snaps, Some(rebase_at));
        let tail = &diffs[rebase_at..];
        let seq = restore_record_from(rebase_at as u32, tail).expect("base-offset replay");
        let device = Device::a100();
        for (i, v) in seq.iter().enumerate() {
            prop_assert_eq!(v, &snaps[rebase_at + i], "version {}", rebase_at + i);
            let (par, _) =
                restore_version_single_pass(&device, rebase_at as u32, tail, i)
                    .expect("single pass from base");
            prop_assert_eq!(&par, v, "method {} version {}", method_idx, rebase_at + i);
        }
    }
}
