//! Zero-allocation steady state: after one warm-up checkpoint, the hot path
//! must run entirely out of the device arena and the generation-tagged hash
//! map — no arena lease may allocate or grow, and the historical record must
//! never rebuild.
//!
//! The first checkpoint of a record is the warm-up: every lease misses once
//! and reserves its worst-case floor (`lease_with_floor`), so all later
//! leases are hits by construction. The assertions here are deltas against
//! the post-warm-up counters, making the test insensitive to how many
//! buffers a method leases.

use ckpt_dedup::prelude::*;
use gpu_sim::Device;

/// Snapshot sequence with churn in every class (new data, shifts, repeats)
/// so each checkpoint exercises the full pipeline, with payload sizes that
/// vary checkpoint-to-checkpoint (catching floors that were sized to the
/// first checkpoint instead of the worst case).
fn snapshots(len: usize, n: usize) -> Vec<Vec<u8>> {
    let mut data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
    let mut out = vec![data.clone()];
    for v in 1..n {
        let stride = 3 + v;
        for j in (v % 7..len).step_by(stride * 97) {
            data[j] = data[j].wrapping_add(v as u8);
        }
        if v % 3 == 0 {
            let half = len / 2;
            let shift = len / 8;
            let tmp = data[..half - shift].to_vec();
            data[shift..half].copy_from_slice(&tmp);
        }
        out.push(data.clone());
    }
    out
}

fn assert_zero_alloc_steady_state(name: &str, mut m: Box<dyn Checkpointer>) {
    let snaps = snapshots(160_000, 7);

    // Warm-up: first checkpoint populates arenas and the map.
    m.checkpoint(&snaps[0]);
    let warm = m.memory_stats();
    assert!(
        warm.device_bytes_allocated > 0,
        "{name}: warm-up should allocate arena storage"
    );

    for snap in &snaps[1..] {
        m.checkpoint(snap);
    }
    let end = m.memory_stats();

    assert_eq!(
        end.arena_misses, warm.arena_misses,
        "{name}: steady-state checkpoints must not miss in the arena"
    );
    assert_eq!(
        end.device_bytes_allocated, warm.device_bytes_allocated,
        "{name}: steady-state checkpoints must not allocate device storage"
    );
    assert_eq!(
        end.map_rehash_rebuilds, warm.map_rehash_rebuilds,
        "{name}: steady-state checkpoints must not rebuild the hash map"
    );
    assert!(
        end.arena_hits > warm.arena_hits,
        "{name}: steady-state leases should be arena hits"
    );
    assert!(
        end.device_bytes_leased > warm.device_bytes_leased,
        "{name}: steady-state checkpoints still lease buffers"
    );
}

#[test]
fn tree_is_allocation_free_after_warmup() {
    assert_zero_alloc_steady_state(
        "tree",
        Box::new(TreeCheckpointer::new(Device::a100(), TreeConfig::new(128))),
    );
}

#[test]
fn list_is_allocation_free_after_warmup() {
    assert_zero_alloc_steady_state(
        "list",
        Box::new(ListCheckpointer::new(Device::a100(), TreeConfig::new(128))),
    );
}

#[test]
fn basic_is_allocation_free_after_warmup() {
    assert_zero_alloc_steady_state(
        "basic",
        Box::new(BasicCheckpointer::new(Device::a100(), 128)),
    );
}

/// `reset_record` must also stay allocation-free: restarting a record on a
/// warm checkpointer is a generation bump plus cleared labels, not a
/// teardown. This is what lets the scaling benchmark sweep thread counts
/// over one persistent instance.
#[test]
fn reset_record_keeps_the_steady_state() {
    let snaps = snapshots(120_000, 4);
    let mut m = TreeCheckpointer::new(Device::a100(), TreeConfig::new(128));
    for snap in &snaps {
        m.checkpoint(snap);
    }
    let warm = m.memory_stats();
    m.reset_record();
    for snap in &snaps {
        m.checkpoint(snap);
    }
    let end = m.memory_stats();
    assert_eq!(end.arena_misses, warm.arena_misses);
    assert_eq!(end.device_bytes_allocated, warm.device_bytes_allocated);
    assert_eq!(end.map_rehash_rebuilds, warm.map_rehash_rebuilds);
    assert_eq!(
        end.map_generation_bumps,
        warm.map_generation_bumps + 1,
        "reset must be one O(1) generation bump"
    );
}
