//! Property-based tests: for *any* sequence of snapshot mutations, every
//! method's record restores to the exact original bytes, and the parallel
//! Tree implementation agrees with its sequential reference.

use ckpt_dedup::prelude::*;
use gpu_sim::Device;
use proptest::prelude::*;

/// A random edit applied between two checkpoints.
#[derive(Debug, Clone)]
enum Edit {
    /// Overwrite `len` bytes at `at` with `value`.
    Fill { at: usize, len: usize, value: u8 },
    /// Copy `len` bytes from `src` to `dst` (may overlap).
    Copy { src: usize, dst: usize, len: usize },
    /// Revert the whole buffer to an earlier snapshot.
    Revert { to: usize },
}

fn edit_strategy() -> impl Strategy<Value = Edit> {
    prop_oneof![
        (0usize..4096, 1usize..512, any::<u8>()).prop_map(|(at, len, value)| Edit::Fill {
            at,
            len,
            value
        }),
        (0usize..4096, 0usize..4096, 1usize..1024).prop_map(|(src, dst, len)| Edit::Copy {
            src,
            dst,
            len
        }),
        (0usize..4).prop_map(|to| Edit::Revert { to }),
    ]
}

fn apply(snapshots: &[Vec<u8>], data: &mut Vec<u8>, edit: &Edit) {
    let n = data.len();
    match edit {
        Edit::Fill { at, len, value } => {
            let at = at % n;
            let end = (at + len).min(n);
            data[at..end].fill(*value);
        }
        Edit::Copy { src, dst, len } => {
            let src = src % n;
            let dst = dst % n;
            let len = (*len).min(n - src).min(n - dst);
            let tmp = data[src..src + len].to_vec();
            data[dst..dst + len].copy_from_slice(&tmp);
        }
        Edit::Revert { to } => {
            if let Some(s) = snapshots.get(*to) {
                *data = s.clone();
            }
        }
    }
}

fn snapshots_from_edits(len: usize, seed_byte: u8, edits: &[Edit]) -> Vec<Vec<u8>> {
    let mut data: Vec<u8> = (0..len)
        .map(|i| seed_byte.wrapping_add((i / 7) as u8).wrapping_mul(13))
        .collect();
    let mut snapshots = vec![data.clone()];
    for e in edits {
        apply(&snapshots, &mut data, e);
        snapshots.push(data.clone());
    }
    snapshots
}

fn assert_roundtrip(method: &mut dyn Checkpointer, snapshots: &[Vec<u8>]) {
    let rec = run_record(method, snapshots.iter().map(|s| s.as_slice()));
    let versions = restore_record(&rec.diffs).expect("restore must succeed");
    for (k, (got, want)) in versions.iter().zip(snapshots).enumerate() {
        assert_eq!(got, want, "{} diverged at version {k}", method.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tree_restores_any_workload(
        len in 40usize..5000,
        seed in any::<u8>(),
        chunk_size in prop_oneof![Just(32usize), Just(64), Just(128)],
        edits in prop::collection::vec(edit_strategy(), 1..6),
    ) {
        let snapshots = snapshots_from_edits(len, seed, &edits);
        let mut m = TreeCheckpointer::new(Device::a100(), TreeConfig::new(chunk_size));
        assert_roundtrip(&mut m, &snapshots);
    }

    #[test]
    fn list_restores_any_workload(
        len in 40usize..3000,
        seed in any::<u8>(),
        edits in prop::collection::vec(edit_strategy(), 1..5),
    ) {
        let snapshots = snapshots_from_edits(len, seed, &edits);
        let mut m = ListCheckpointer::new(Device::a100(), TreeConfig::new(32));
        assert_roundtrip(&mut m, &snapshots);
    }

    #[test]
    fn basic_restores_any_workload(
        len in 40usize..3000,
        seed in any::<u8>(),
        edits in prop::collection::vec(edit_strategy(), 1..5),
    ) {
        let snapshots = snapshots_from_edits(len, seed, &edits);
        let mut m = BasicCheckpointer::new(Device::a100(), 32);
        assert_roundtrip(&mut m, &snapshots);
    }

    #[test]
    fn parallel_equals_serial_on_any_workload(
        len in 40usize..3000,
        seed in any::<u8>(),
        edits in prop::collection::vec(edit_strategy(), 1..5),
    ) {
        let snapshots = snapshots_from_edits(len, seed, &edits);
        let mut par = TreeCheckpointer::new(Device::a100(), TreeConfig::new(32));
        let mut ser = SerialTreeCheckpointer::new(32);
        for snap in &snapshots {
            let p = par.checkpoint(snap);
            let s = ser.checkpoint(snap);
            prop_assert_eq!(p.diff, s.diff);
        }
    }

    #[test]
    fn diff_wire_format_round_trips(
        len in 40usize..2000,
        seed in any::<u8>(),
        edits in prop::collection::vec(edit_strategy(), 1..4),
    ) {
        let snapshots = snapshots_from_edits(len, seed, &edits);
        let mut m = TreeCheckpointer::new(Device::a100(), TreeConfig::new(32));
        for snap in &snapshots {
            let d = m.checkpoint(snap).diff;
            let encoded = d.encode();
            prop_assert_eq!(ckpt_dedup::Diff::decode(&encoded).unwrap(), d);
        }
    }

    #[test]
    fn tree_never_stores_more_than_full_plus_small_overhead(
        len in 1000usize..5000,
        seed in any::<u8>(),
        edits in prop::collection::vec(edit_strategy(), 1..4),
    ) {
        // Worst case the Tree method stores the whole buffer plus bounded
        // metadata: header + one region id, and in pathological mixes at
        // most one entry per chunk pair.
        let snapshots = snapshots_from_edits(len, seed, &edits);
        let mut m = TreeCheckpointer::new(Device::a100(), TreeConfig::new(32));
        for snap in &snapshots {
            let out = m.checkpoint(snap);
            let n_chunks = len.div_ceil(32);
            let bound = snap.len() + 64 + 16 * n_chunks;
            prop_assert!(out.diff.stored_bytes() <= bound);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_access_reader_matches_full_restore(
        len in 100usize..3000,
        seed in any::<u8>(),
        edits in prop::collection::vec(edit_strategy(), 1..5),
        reads in prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 1..20),
    ) {
        let snapshots = snapshots_from_edits(len, seed, &edits);
        let mut m = TreeCheckpointer::new(Device::a100(), TreeConfig::new(32));
        let diffs: Vec<_> = snapshots.iter().map(|s| m.checkpoint(s).diff).collect();
        let reader = ckpt_dedup::RecordReader::build(&diffs).unwrap();
        for (v, off, rlen) in reads {
            let v = (v as usize) % snapshots.len();
            let off = (off as usize) % len;
            let rlen = (rlen as usize) % (len - off).max(1);
            let mut out = vec![0u8; rlen];
            reader.read_at(v as u32, off, &mut out).unwrap();
            prop_assert_eq!(&out[..], &snapshots[v][off..off + rlen]);
        }
    }

    #[test]
    fn random_access_reader_matches_chain_restore_for_every_method(
        len in 100usize..2500,
        seed in any::<u8>(),
        edits in prop::collection::vec(edit_strategy(), 1..5),
        method_idx in 0usize..4,
        reads in prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 1..16),
    ) {
        // Arbitrary (version, byte-range) random-access reads must be
        // byte-equal to the corresponding slice of a full chain restore —
        // for every method the reader supports.
        let snapshots = snapshots_from_edits(len, seed, &edits);
        let mut m: Box<dyn Checkpointer> = match method_idx {
            0 => Box::new(TreeCheckpointer::new(Device::a100(), TreeConfig::new(32))),
            1 => Box::new(ListCheckpointer::new(Device::a100(), TreeConfig::new(32))),
            2 => Box::new(BasicCheckpointer::new(Device::a100(), 32)),
            _ => Box::new(FullCheckpointer::new(Device::a100(), 32)),
        };
        let diffs: Vec<_> = snapshots.iter().map(|s| m.checkpoint(s).diff).collect();
        let chain = restore_record(&diffs).expect("chain restore must succeed");
        let reader = ckpt_dedup::RecordReader::build(&diffs).unwrap();
        for (v, off, rlen) in reads {
            let v = (v as usize) % chain.len();
            let off = (off as usize) % len;
            let rlen = (rlen as usize) % (len - off).max(1);
            let mut out = vec![0u8; rlen];
            reader.read_at(v as u32, off, &mut out).unwrap();
            prop_assert_eq!(&out[..], &chain[v][off..off + rlen]);
        }
    }

    #[test]
    fn hybrid_codecs_restore_any_workload(
        len in 100usize..2500,
        seed in any::<u8>(),
        edits in prop::collection::vec(edit_strategy(), 1..4),
        codec_idx in 0usize..7,
    ) {
        let codec = ["lz4", "snappy", "cascaded", "bitcomp", "deflate", "zstd", "rle"][codec_idx];
        let snapshots = snapshots_from_edits(len, seed, &edits);
        let mut m = TreeCheckpointer::new(
            Device::a100(),
            TreeConfig::new(32).with_payload_codec(codec),
        );
        assert_roundtrip(&mut m, &snapshots);
    }

    #[test]
    fn collision_verification_is_transparent_with_strong_hash(
        len in 100usize..2000,
        seed in any::<u8>(),
        edits in prop::collection::vec(edit_strategy(), 1..4),
    ) {
        let snapshots = snapshots_from_edits(len, seed, &edits);
        let mut plain = TreeCheckpointer::new(Device::a100(), TreeConfig::new(32));
        let mut verified = TreeCheckpointer::new(
            Device::a100(),
            TreeConfig::new(32).with_collision_verification(),
        );
        for snap in &snapshots {
            prop_assert_eq!(plain.checkpoint(snap).diff, verified.checkpoint(snap).diff);
        }
    }

    #[test]
    fn naive_tree_restores_any_workload(
        len in 100usize..2000,
        seed in any::<u8>(),
        edits in prop::collection::vec(edit_strategy(), 1..4),
    ) {
        let snapshots = snapshots_from_edits(len, seed, &edits);
        let mut m = NaiveTreeCheckpointer::new(Device::a100(), TreeConfig::new(32));
        assert_roundtrip(&mut m, &snapshots);
    }

    /// Integrity frames round-trip any payload, reject relocation to a
    /// wrong slot, and detect truncation at *every* byte offset — the
    /// artifact a torn write leaves behind.
    #[test]
    fn frame_round_trips_and_any_truncation_fails(
        rank in any::<u32>(),
        ckpt in any::<u32>(),
        payload in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let framed = ckpt_dedup::encode_frame(rank, ckpt, &payload);
        prop_assert_eq!(
            ckpt_dedup::verify_frame(&framed, Some((rank, ckpt))).unwrap(),
            &payload[..]
        );
        prop_assert!(
            ckpt_dedup::verify_frame(&framed, Some((rank, ckpt.wrapping_add(1)))).is_err()
        );
        for cut in 0..framed.len() {
            prop_assert!(
                ckpt_dedup::decode_frame(&framed[..cut]).is_err(),
                "truncation to {} bytes went undetected", cut
            );
        }
    }
}
