//! End-to-end tests of the four checkpointing methods: round trips, the
//! paper's Figure 2 worked example, and serial-vs-parallel equivalence.

use ckpt_dedup::prelude::*;
use gpu_sim::Device;

const CS: usize = 32;

/// Build a buffer of `n` chunks from one tag byte per chunk.
fn chunks(tags: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(tags.len() * CS);
    for &t in tags {
        // Vary the bytes within the chunk so different chunk *positions* with
        // the same tag still hash equal, but tags produce distinct contents.
        v.extend((0..CS).map(|i| t.wrapping_mul(31).wrapping_add(i as u8)));
    }
    v
}

fn roundtrip(method: &mut dyn Checkpointer, snapshots: &[Vec<u8>]) {
    let rec = run_record(method, snapshots.iter().map(|s| s.as_slice()));
    // Exercise the wire format too.
    let decoded: Vec<_> = rec
        .diffs
        .iter()
        .map(|d| ckpt_dedup::Diff::decode(&d.encode()).expect("decode"))
        .collect();
    let versions = restore_record(&decoded).expect("restore");
    assert_eq!(versions.len(), snapshots.len());
    for (k, (got, want)) in versions.iter().zip(snapshots).enumerate() {
        assert_eq!(got, want, "method {} version {k} mismatch", method.name());
    }
}

fn snapshot_sequence() -> Vec<Vec<u8>> {
    // A sequence exercising all duplicate classes:
    // v0: distinct chunks + intra-checkpoint duplicates
    // v1: sparse in-place updates
    // v2: data shifted to other positions + brand-new data
    // v3: identical to v2 (everything fixed)
    // v4: reverts to v0's content (temporal duplicates of old data)
    vec![
        chunks(&[1, 2, 3, 4, 5, 1, 2, 6, 7, 8, 9, 10, 11, 12, 13, 14]),
        chunks(&[1, 2, 3, 99, 5, 1, 2, 6, 7, 8, 98, 10, 11, 12, 13, 14]),
        chunks(&[3, 4, 5, 99, 5, 1, 2, 6, 50, 51, 98, 10, 11, 12, 1, 2]),
        chunks(&[3, 4, 5, 99, 5, 1, 2, 6, 50, 51, 98, 10, 11, 12, 1, 2]),
        chunks(&[1, 2, 3, 4, 5, 1, 2, 6, 7, 8, 9, 10, 11, 12, 13, 14]),
    ]
}

#[test]
fn tree_round_trip() {
    let mut m = TreeCheckpointer::new(Device::a100(), TreeConfig::new(CS));
    roundtrip(&mut m, &snapshot_sequence());
}

#[test]
fn serial_tree_round_trip() {
    let mut m = SerialTreeCheckpointer::new(CS);
    roundtrip(&mut m, &snapshot_sequence());
}

#[test]
fn list_round_trip() {
    let mut m = ListCheckpointer::new(Device::a100(), TreeConfig::new(CS));
    roundtrip(&mut m, &snapshot_sequence());
}

#[test]
fn basic_round_trip() {
    let mut m = BasicCheckpointer::new(Device::a100(), CS);
    roundtrip(&mut m, &snapshot_sequence());
}

#[test]
fn full_round_trip() {
    let mut m = FullCheckpointer::new(Device::a100(), CS);
    roundtrip(&mut m, &snapshot_sequence());
}

#[test]
fn parallel_tree_matches_serial_reference_exactly() {
    let snapshots = snapshot_sequence();
    let mut par = TreeCheckpointer::new(Device::a100(), TreeConfig::new(CS));
    let mut ser = SerialTreeCheckpointer::new(CS);
    for snap in &snapshots {
        let p = par.checkpoint(snap);
        let s = ser.checkpoint(snap);
        assert_eq!(p.diff, s.diff, "diff divergence at ckpt {}", s.diff.ckpt_id);
    }
    assert_eq!(par.record_len(), ser.record_len());
}

#[test]
fn parallel_matches_serial_on_many_random_workloads() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_chunks = rng.gen_range(1..80);
        let mut data: Vec<u8> = (0..n_chunks * CS).map(|_| rng.gen_range(0..6u8)).collect();
        let mut par = TreeCheckpointer::new(Device::a100(), TreeConfig::new(CS));
        let mut ser = SerialTreeCheckpointer::new(CS);
        for step in 0..6 {
            let p = par.checkpoint(&data);
            let s = ser.checkpoint(&data);
            assert_eq!(p.diff, s.diff, "seed {seed} step {step}");
            // Mutate: a few random in-place writes plus one block copy.
            for _ in 0..rng.gen_range(0..5) {
                let i = rng.gen_range(0..data.len());
                data[i] = rng.gen_range(0..6u8);
            }
            if n_chunks > 2 {
                let src = rng.gen_range(0..n_chunks - 1) * CS;
                let dst = rng.gen_range(0..n_chunks - 1) * CS;
                let tmp = data[src..src + CS].to_vec();
                data[dst..dst + CS].copy_from_slice(&tmp);
            }
        }
    }
}

/// The worked example of Figure 2 (§2.2): the compact representation needs
/// exactly 3 regions where the List method needs 7 entries.
#[test]
fn figure2_worked_example() {
    // Checkpoint 0: eight distinct chunks A..H (leaves 7..=14).
    let v0 = chunks(b"ABCDEFGH");
    // Checkpoint 1: I J K L at leaves 7-10 (first occurrences), leaf 11
    // unchanged (E, fixed duplicate), leaf 12 = A (shifted duplicate of
    // checkpoint 0's leaf 7), leaves 13,14 = I,J (shifted duplicates of the
    // current checkpoint's leaves 7,8).
    let v1 = chunks(b"IJKLEAIJ");

    let mut tree = TreeCheckpointer::new(Device::a100(), TreeConfig::new(CS));
    tree.checkpoint(&v0);
    let out = tree.checkpoint(&v1);

    // Exactly three regions: node 1 (first occurrence covering I J K L),
    // node 12 (shifted, from checkpoint 0) and node 6 (shifted, from the
    // current checkpoint).
    assert_eq!(out.diff.first_regions, vec![1]);
    assert_eq!(out.diff.shift_regions.len(), 2);
    let by_node: std::collections::HashMap<u32, (u32, u32)> = out
        .diff
        .shift_regions
        .iter()
        .map(|s| (s.node, (s.ref_node, s.ref_ckpt)))
        .collect();
    // Node 12 = chunk 5 duplicates checkpoint 0's chunk 0 (leaf 7).
    assert_eq!(by_node[&12], (7, 0));
    // Node 6 = chunks 6..8 duplicates this checkpoint's node 3 (chunks 0..2).
    assert_eq!(by_node[&6], (3, 1));
    // Payload: only I J K L.
    assert_eq!(out.diff.payload.len(), 4 * CS);
    assert_eq!(out.stats.n_fixed_chunks, 1);

    // The List method needs 7 entries for the same update (4 first + 3 shift).
    let mut list = ListCheckpointer::new(Device::a100(), TreeConfig::new(CS));
    list.checkpoint(&v0);
    let lout = list.checkpoint(&v1);
    assert_eq!(lout.diff.first_regions.len(), 4);
    assert_eq!(lout.diff.shift_regions.len(), 3);

    // Both restore to the same bytes.
    let mut tree2 = TreeCheckpointer::new(Device::a100(), TreeConfig::new(CS));
    let d0 = tree2.checkpoint(&v0).diff;
    let d1 = tree2.checkpoint(&v1).diff;
    let versions = restore_record(&[d0, d1]).unwrap();
    assert_eq!(versions[0], v0);
    assert_eq!(versions[1], v1);
}

#[test]
fn ratio_ordering_on_shift_heavy_workload() {
    // v1 moves a large contiguous block to a new offset: Tree/List can
    // reference it, Basic must store it, Full stores everything.
    let mut tags0 = Vec::new();
    for i in 0..128u8 {
        tags0.push(i);
    }
    let mut tags1 = tags0.clone();
    // Shift chunks 0..48 to position 64..112 (contiguous shifted block).
    tags1[64..64 + 48].copy_from_slice(&tags0[..48]);
    let v0 = chunks(&tags0);
    let v1 = chunks(&tags1);

    let snaps = [v0, v1];
    let run = |m: &mut dyn Checkpointer| {
        let rec = run_record(m, snaps.iter().map(|s| s.as_slice()));
        rec.stats.excluding_first().ratio()
    };
    let tree = run(&mut TreeCheckpointer::new(
        Device::a100(),
        TreeConfig::new(CS),
    ));
    let list = run(&mut ListCheckpointer::new(
        Device::a100(),
        TreeConfig::new(CS),
    ));
    let basic = run(&mut BasicCheckpointer::new(Device::a100(), CS));
    let full = run(&mut FullCheckpointer::new(Device::a100(), CS));

    assert!(tree > list, "tree {tree} vs list {list}");
    assert!(list > basic, "list {list} vs basic {basic}");
    assert!(basic > full, "basic {basic} vs full {full}");
    assert!((full - 1.0).abs() < 0.01, "full ratio ~1, got {full}");
}

#[test]
fn unchanged_checkpoint_produces_empty_diff() {
    let v = chunks(&[1, 2, 3, 4, 5, 6, 7, 8]);
    let mut m = TreeCheckpointer::new(Device::a100(), TreeConfig::new(CS));
    m.checkpoint(&v);
    let out = m.checkpoint(&v);
    assert!(out.diff.first_regions.is_empty());
    assert!(out.diff.shift_regions.is_empty());
    assert!(out.diff.payload.is_empty());
    assert_eq!(out.stats.n_fixed_chunks, 8);
    // Only the header remains.
    assert!(out.diff.stored_bytes() < 64);
}

#[test]
fn fully_changed_checkpoint_stores_everything_with_tiny_metadata() {
    let v0 = chunks(&(0..64).map(|i| i as u8).collect::<Vec<_>>());
    let v1 = chunks(&(0..64).map(|i| i as u8 + 100).collect::<Vec<_>>());
    let mut m = TreeCheckpointer::new(Device::a100(), TreeConfig::new(CS));
    m.checkpoint(&v0);
    let out = m.checkpoint(&v1);
    // All data new, but consolidated into a single root region.
    assert_eq!(out.diff.first_regions, vec![0]);
    assert_eq!(out.diff.payload.len(), v1.len());
    assert!(out.diff.metadata_bytes() <= 4);
    let versions = restore_record(&run_record_diffs(
        &mut TreeCheckpointer::new(Device::a100(), TreeConfig::new(CS)),
        &[v0.clone(), v1.clone()],
    ))
    .unwrap();
    assert_eq!(versions[1], v1);
}

fn run_record_diffs(m: &mut dyn Checkpointer, snaps: &[Vec<u8>]) -> Vec<ckpt_dedup::Diff> {
    run_record(m, snaps.iter().map(|s| s.as_slice())).diffs
}

#[test]
fn single_chunk_buffer() {
    let v0 = vec![5u8; 40];
    let v1 = vec![6u8; 40];
    for mk in [0usize, 1, 2, 3] {
        let mut m: Box<dyn Checkpointer> = match mk {
            0 => Box::new(TreeCheckpointer::new(Device::a100(), TreeConfig::new(CS))),
            1 => Box::new(ListCheckpointer::new(Device::a100(), TreeConfig::new(CS))),
            2 => Box::new(BasicCheckpointer::new(Device::a100(), CS)),
            _ => Box::new(FullCheckpointer::new(Device::a100(), CS)),
        };
        let diffs = run_record_diffs(&mut *m, &[v0.clone(), v1.clone(), v1.clone()]);
        let versions = restore_record(&diffs).unwrap();
        assert_eq!(
            versions,
            vec![v0.clone(), v1.clone(), v1.clone()],
            "method {mk}"
        );
    }
}

#[test]
fn partial_tail_chunk_round_trip() {
    // 10 chunks of 32 plus a 7-byte tail.
    let mut v0: Vec<u8> = (0..327u32).map(|i| (i % 13) as u8).collect();
    let mut m = TreeCheckpointer::new(Device::a100(), TreeConfig::new(CS));
    let d0 = m.checkpoint(&v0).diff;
    v0[326] ^= 0xff; // mutate the tail
    let d1 = m.checkpoint(&v0).diff;
    let versions = restore_record(&[d0, d1]).unwrap();
    assert_eq!(versions[1], v0);
}

#[test]
fn record_size_grows_sublinearly_for_sparse_updates() {
    // 1 MiB buffer, 10 checkpoints, each touching 0.1% of the data: the
    // whole record should be a small multiple of one full checkpoint.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(7);
    let mut data: Vec<u8> = (0..1 << 20).map(|_| rng.gen()).collect();
    let mut m = TreeCheckpointer::new(Device::a100(), TreeConfig::new(128));
    let mut snaps = vec![data.clone()];
    for _ in 0..9 {
        for _ in 0..(data.len() / 1000 / 128) {
            let at = rng.gen_range(0..data.len());
            data[at] = rng.gen();
        }
        snaps.push(data.clone());
    }
    let rec = run_record(&mut m, snaps.iter().map(|s| s.as_slice()));
    let total = rec.total_stored();
    assert!(
        total < (1 << 20) * 12 / 10,
        "record {} should stay near one full checkpoint",
        total
    );
    // And restores exactly.
    let versions = restore_record(&rec.diffs).unwrap();
    assert_eq!(versions.last().unwrap(), &data);
}

#[test]
fn hybrid_payload_compression_round_trips_every_codec() {
    // The §5 dedup+compression hybrid: first occurrences are compressed
    // before the transfer; restore undoes it transparently.
    let snaps = snapshot_sequence();
    for codec in [
        "lz4", "snappy", "cascaded", "bitcomp", "deflate", "zstd", "rle",
    ] {
        let cfg = TreeConfig::new(CS).with_payload_codec(codec);
        let mut m = TreeCheckpointer::new(Device::a100(), cfg);
        let rec = run_record(&mut m, snaps.iter().map(|s| s.as_slice()));
        // Exercise the wire format too.
        let decoded: Vec<_> = rec
            .diffs
            .iter()
            .map(|d| ckpt_dedup::Diff::decode(&d.encode()).expect("decode"))
            .collect();
        let versions = restore_record(&decoded).expect("restore");
        for (k, (got, want)) in versions.iter().zip(&snaps).enumerate() {
            assert_eq!(got, want, "codec {codec} version {k}");
        }
    }
}

#[test]
fn hybrid_shrinks_compressible_payloads() {
    // Compressible chunk contents (each chunk is a run of one byte).
    let snaps = snapshot_sequence();
    let mut raw = TreeCheckpointer::new(Device::a100(), TreeConfig::new(CS));
    let mut hybrid = TreeCheckpointer::new(
        Device::a100(),
        TreeConfig::new(CS).with_payload_codec("zstd"),
    );
    let raw_rec = run_record(&mut raw, snaps.iter().map(|s| s.as_slice()));
    let hy_rec = run_record(&mut hybrid, snaps.iter().map(|s| s.as_slice()));
    assert!(
        hy_rec.total_stored() < raw_rec.total_stored(),
        "hybrid {} vs raw {}",
        hy_rec.total_stored(),
        raw_rec.total_stored()
    );
}

#[test]
fn hybrid_never_inflates_incompressible_payloads() {
    // Random payload: the codec's output is larger, so the diff must fall
    // back to raw bytes (payload_codec 0).
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(99);
    let v0: Vec<u8> = (0..CS * 64).map(|_| rng.gen()).collect();
    let mut raw = TreeCheckpointer::new(Device::a100(), TreeConfig::new(CS));
    let mut hybrid = TreeCheckpointer::new(
        Device::a100(),
        TreeConfig::new(CS).with_payload_codec("rle"),
    );
    let a = raw.checkpoint(&v0);
    let b = hybrid.checkpoint(&v0);
    assert_eq!(b.diff.payload_codec, 0, "should have fallen back to raw");
    assert_eq!(a.diff.stored_bytes(), b.diff.stored_bytes());
    assert_eq!(restore_record(&[b.diff]).unwrap()[0], v0);
}

#[test]
fn streamed_serialization_round_trips_and_overlaps() {
    // §5 streaming extension: identical bytes, lower modeled time when the
    // payload is large enough for the pipeline to amortize its slice setups.
    let snaps = snapshot_sequence();
    let mut plain = TreeCheckpointer::new(Device::a100(), TreeConfig::new(CS));
    let mut streamed = TreeCheckpointer::new(Device::a100(), TreeConfig::new(CS).with_streaming(4));
    for snap in &snaps {
        let a = plain.checkpoint(snap);
        let b = streamed.checkpoint(snap);
        assert_eq!(a.diff.payload, b.diff.payload);
        assert_eq!(a.diff.first_regions, b.diff.first_regions);
    }
    let diffs: Vec<_> = {
        let mut m = TreeCheckpointer::new(Device::a100(), TreeConfig::new(CS).with_streaming(4));
        snaps.iter().map(|s| m.checkpoint(s).diff).collect()
    };
    assert_eq!(restore_record(&diffs).unwrap(), snaps);
}

#[test]
fn serialization_stage_streaming_is_roughly_neutral() {
    // Structural finding (documented in gpu_sim::PerfModel): HBM is ~60x
    // PCIe on an A100, so overlapping only the *serialization* stage with
    // the transfer can hide no more than the tiny gather kernel. The
    // modeled time must therefore stay within a few percent of the
    // sequential path (the win comes from checkpoint-level pipelining,
    // which the `streaming` experiment quantifies).
    // Unique (incompressible, non-repeating) content so the whole buffer is
    // first-occurrence payload and the transfer dominates.
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let v: Vec<u8> = (0..16 << 20)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect();
    let run = |cfg: TreeConfig| {
        let dev = Device::a100();
        let mut m = TreeCheckpointer::new(dev.clone(), cfg);
        m.checkpoint(&v);
        dev.metrics().modeled_sec()
    };
    let t_plain = run(TreeConfig::new(512));
    let t_stream = run(TreeConfig::new(512).with_streaming(2));
    assert!(
        (t_stream - t_plain).abs() / t_plain < 0.05,
        "streamed {t_stream} vs sequential {t_plain}"
    );
}
