//! Hash-collision behaviour (§2.4).
//!
//! The paper ignores collisions (2⁻¹²⁸ with Murmur3) but notes "they can be
//! mitigated by using a cache of chunks that can be directly compared in
//! parallel". These tests drive the Tree method with a deliberately weak
//! hash that collides on chunks sharing an 8-byte prefix, demonstrating
//! (a) that an unverified record silently restores *wrong bytes* under
//! collisions, and (b) that enabling the content-cache verification restores
//! exactly, storing colliding chunks instead of referencing them.

use ckpt_dedup::prelude::*;
use ckpt_hash::{Digest128, Hasher128, Murmur3};
use gpu_sim::Device;

const CS: usize = 32;

/// Weak leaf hash: digests depend only on the first 8 bytes of the chunk
/// (chunks with equal prefixes collide). Inner-node combination stays full
/// strength so the collision surface is exactly the leaf level.
#[derive(Debug, Clone, Copy)]
struct PrefixHasher;

impl Hasher128 for PrefixHasher {
    fn hash_seeded(&self, data: &[u8], seed: u32) -> Digest128 {
        Murmur3.hash_seeded(&data[..data.len().min(8)], seed)
    }

    fn combine(&self, left: &Digest128, right: &Digest128) -> Digest128 {
        Murmur3.combine(left, right)
    }

    fn name(&self) -> &'static str {
        "prefix8-weak"
    }
}

/// Two chunk contents that collide under [`PrefixHasher`] but differ.
fn colliding_pair() -> (Vec<u8>, Vec<u8>) {
    let mut a = vec![0xAAu8; CS];
    let mut b = vec![0xAAu8; CS];
    a[8..].fill(1);
    b[8..].fill(2);
    assert_ne!(a, b);
    assert_eq!(PrefixHasher.hash(&a), PrefixHasher.hash(&b));
    (a, b)
}

/// One checkpoint containing both colliding chunks plus distinct filler.
fn snapshot() -> Vec<u8> {
    let (a, b) = colliding_pair();
    let mut v = Vec::new();
    v.extend_from_slice(&a);
    for t in 0..6u8 {
        v.extend((0..CS).map(|i| t.wrapping_mul(97).wrapping_add(i as u8 + 3)));
    }
    v.extend_from_slice(&b);
    v
}

#[test]
fn weak_hash_without_verification_corrupts_silently() {
    let data = snapshot();
    let mut m =
        TreeCheckpointer::with_hasher(Device::a100(), TreeConfig::new(CS), Box::new(PrefixHasher));
    let diff = m.checkpoint(&data).diff;
    let restored = restore_record(std::slice::from_ref(&diff)).unwrap();
    // Chunk 7 (content b) was de-duplicated against chunk 0 (content a):
    // the restore "succeeds" but returns a's bytes where b's should be.
    let (a, b) = colliding_pair();
    assert_eq!(
        &restored[0][7 * CS..8 * CS],
        &a[..],
        "collision aliased to first content"
    );
    assert_ne!(&restored[0][7 * CS..8 * CS], &b[..]);
    assert_ne!(
        restored[0], data,
        "unverified weak hashing must corrupt this input"
    );
}

#[test]
fn verification_detects_collisions_and_restores_exactly() {
    let data = snapshot();
    let mut m = TreeCheckpointer::with_hasher(
        Device::a100(),
        TreeConfig::new(CS).with_collision_verification(),
        Box::new(PrefixHasher),
    );
    let out = m.checkpoint(&data);
    let restored = restore_record(&[out.diff]).unwrap();
    assert_eq!(
        restored[0], data,
        "verified record must restore bit-exactly"
    );
}

#[test]
fn verification_is_stable_across_checkpoints() {
    // The colliding chunk keeps being stored (never referenced) in every
    // checkpoint, and genuine duplicates still de-duplicate.
    let data = snapshot();
    let mut m = TreeCheckpointer::with_hasher(
        Device::a100(),
        TreeConfig::new(CS).with_collision_verification(),
        Box::new(PrefixHasher),
    );
    let mut diffs = Vec::new();
    for _ in 0..3 {
        diffs.push(m.checkpoint(&data).diff);
    }
    let restored = restore_record(&diffs).unwrap();
    for v in &restored {
        assert_eq!(v, &data);
    }
    // Unchanged checkpoints after the first stay small: only the re-stored
    // colliding chunk plus headers/metadata.
    assert!(diffs[1].stored_bytes() < data.len() / 2);
    assert_eq!(
        diffs[1].payload.len(),
        CS,
        "exactly the colliding chunk re-stored"
    );
}

#[test]
fn verification_with_strong_hash_changes_nothing() {
    // With Murmur3 the cache never fires a collision: diffs are identical
    // with and without verification on ordinary data.
    let snaps: Vec<Vec<u8>> = (0..3u8)
        .map(|k| {
            (0..256 * CS)
                .map(|i| (i as u32).wrapping_mul(2654435761).wrapping_add(k as u32) as u8)
                .collect()
        })
        .collect();
    let mut plain = TreeCheckpointer::new(Device::a100(), TreeConfig::new(CS));
    let mut verified = TreeCheckpointer::new(
        Device::a100(),
        TreeConfig::new(CS).with_collision_verification(),
    );
    for s in &snaps {
        let a = plain.checkpoint(s);
        let b = verified.checkpoint(s);
        assert_eq!(a.diff, b.diff);
    }
}

#[test]
fn fixed_position_collision_is_caught_too() {
    // A chunk mutates *in place* into a colliding value: the fixed-duplicate
    // check would silently skip it; verification forces a store.
    let (a, b) = colliding_pair();
    let mut data = vec![0u8; 4 * CS];
    data[..CS].copy_from_slice(&a);
    for (i, byte) in data[CS..].iter_mut().enumerate() {
        *byte = (i as u8).wrapping_mul(13).wrapping_add(7);
    }
    let mut m = TreeCheckpointer::with_hasher(
        Device::a100(),
        TreeConfig::new(CS).with_collision_verification(),
        Box::new(PrefixHasher),
    );
    let d0 = m.checkpoint(&data).diff;
    data[..CS].copy_from_slice(&b); // collides with its own previous digest
    let d1 = m.checkpoint(&data).diff;
    let restored = restore_record(&[d0, d1]).unwrap();
    assert_eq!(&restored[1][..CS], &b[..]);
    assert_eq!(restored[1], data);
}
