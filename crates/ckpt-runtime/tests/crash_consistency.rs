//! Crash-consistency harness: randomized schedules of submissions, kills,
//! injected faults and recoveries, asserting that whatever the runtime
//! *claims* is durable restores bit-exact — across the Tree, List and Basic
//! de-duplication methods.
//!
//! Schedules are driven by proptest; fault schedules by a seeded
//! [`FaultPlan`], which keys faults on per-tier operation ordinals, so a
//! whole schedule (which faults fire, which objects verify, repair or get
//! lost) is reproducible from its parameters alone.
//!
//! Invariants checked on every schedule:
//!
//! 1. every recovered durable prefix replays bit-exact to the original
//!    snapshots (never a silently corrupted restore);
//! 2. the recovery report accounts for every successfully submitted object
//!    exactly once (verified + repaired + lost == submitted);
//! 3. report totals reconcile with the runtime's telemetry counters;
//! 4. with fault injection disabled and no kill, nothing is lost and the
//!    full record restores bit-exact.

use ckpt_dedup::prelude::*;
use ckpt_dedup::Diff;
use ckpt_runtime::tier::ObjectId;
use ckpt_runtime::{
    AsyncRuntime, CompressionPolicy, FaultPlan, ObjectStatus, RecoveryReport, SplitMix64, TierChain,
};
use ckpt_telemetry::Registry;
use gpu_sim::Device;
use proptest::prelude::*;
use std::sync::Arc;

const CHUNK: usize = 64;

fn make_checkpointer(method_idx: usize) -> Box<dyn Checkpointer> {
    match method_idx {
        0 => Box::new(TreeCheckpointer::new(
            Device::a100(),
            TreeConfig::new(CHUNK),
        )),
        1 => Box::new(ListCheckpointer::new(
            Device::a100(),
            TreeConfig::new(CHUNK),
        )),
        _ => Box::new(BasicCheckpointer::new(Device::a100(), CHUNK)),
    }
}

/// Deterministic per-rank snapshot sequence: a seeded base buffer with
/// sparse seeded mutations between versions.
fn rank_snapshots(rank: u32, len: usize, data_seed: u64, count: usize) -> Vec<Vec<u8>> {
    let mut rng = SplitMix64::new(data_seed ^ (rank as u64).wrapping_mul(0x9e37_79b9));
    let mut data: Vec<u8> = (0..len).map(|_| (rng.next() & 0xff) as u8).collect();
    let mut out = vec![data.clone()];
    for _ in 1..count {
        let edits = 1 + (rng.next() % 24) as usize;
        for _ in 0..edits {
            let at = (rng.next() as usize) % len;
            data[at] = (rng.next() & 0xff) as u8;
        }
        out.push(data.clone());
    }
    out
}

struct Schedule {
    ranks: u32,
    ckpts: u32,
    /// Per-rank snapshot sequences (ground truth).
    snapshots: Vec<Vec<Vec<u8>>>,
    /// Per-rank encoded diffs, the exact bytes handed to the runtime.
    diffs: Vec<Vec<Vec<u8>>>,
}

impl Schedule {
    fn build(ranks: u32, ckpts: u32, len: usize, data_seed: u64, method_idx: usize) -> Schedule {
        Self::build_with_rebase(ranks, ckpts, len, data_seed, method_idx, None)
    }

    /// Like [`build`](Self::build), but checkpoint `rebase_at` is emitted
    /// as a self-contained rebase record (the chain-compaction head).
    fn build_with_rebase(
        ranks: u32,
        ckpts: u32,
        len: usize,
        data_seed: u64,
        method_idx: usize,
        rebase_at: Option<u32>,
    ) -> Schedule {
        let mut snapshots = Vec::new();
        let mut diffs = Vec::new();
        for r in 0..ranks {
            let snaps = rank_snapshots(r, len, data_seed, ckpts as usize);
            let mut ckpt = make_checkpointer(method_idx);
            diffs.push(
                snaps
                    .iter()
                    .enumerate()
                    .map(|(k, s)| {
                        if rebase_at == Some(k as u32) {
                            ckpt.rebase_checkpoint(s).diff.encode()
                        } else {
                            ckpt.checkpoint(s).diff.encode()
                        }
                    })
                    .collect(),
            );
            snapshots.push(snaps);
        }
        Schedule {
            ranks,
            ckpts,
            snapshots,
            diffs,
        }
    }
}

struct RunOutcome {
    report: RecoveryReport,
    submitted_ok: Vec<ObjectId>,
    durable_counter: u64,
    submitted_counter: u64,
    /// Sorted fired-fault log, for determinism comparisons.
    fired: Vec<ckpt_runtime::FiredFault>,
}

/// Execute one schedule against a fresh runtime: submit rank-interleaved,
/// crash before the `kill_after`-th submission (if within range), then
/// recover. Objects already submitted are first allowed to settle
/// (durable or abandoned) so the flusher's operation sequence — and hence
/// the fault schedule — is a pure function of the parameters.
fn run_schedule(sched: &Schedule, plan: Arc<FaultPlan>, kill_after: usize) -> RunOutcome {
    run_schedule_with_policy(sched, plan, kill_after, CompressionPolicy::Off)
}

/// [`run_schedule`] with an explicit flush-path compression policy: every
/// durability and accounting invariant must hold identically whether the
/// tiers hold raw or compressed objects.
fn run_schedule_with_policy(
    sched: &Schedule,
    plan: Arc<FaultPlan>,
    kill_after: usize,
    policy: CompressionPolicy,
) -> RunOutcome {
    let rt = AsyncRuntime::with_compression(
        TierChain::with_faults(Arc::clone(&plan)),
        0.0,
        Arc::new(Registry::new()),
        policy,
    );
    let mut submitted_ok: Vec<ObjectId> = Vec::new();
    let mut n = 0usize;
    let mut killed = false;
    for k in 0..sched.ckpts {
        for r in 0..sched.ranks {
            if n == kill_after && !killed {
                rt.wait_durable(&submitted_ok);
                rt.kill();
                killed = true;
            }
            n += 1;
            let bytes = sched.diffs[r as usize][k as usize].clone();
            // Submission itself can fail under injected host faults; those
            // objects were never accepted and are excluded from accounting.
            if rt.submit(r, k, bytes).is_ok() {
                submitted_ok.push((r, k));
            }
        }
    }
    if !killed {
        rt.wait_durable(&submitted_ok);
        rt.kill();
    }
    let report = rt.recover_report();
    let reg = rt.telemetry();
    RunOutcome {
        report,
        submitted_ok,
        durable_counter: reg.counter("runtime/durable").get(),
        submitted_counter: reg.counter("runtime/submitted").get(),
        fired: plan.fired(),
    }
}

/// Invariants 1–3: prefix bit-exactness and full accounting.
fn check_outcome(sched: &Schedule, out: &RunOutcome, fault_count: usize) {
    let report = &out.report;
    // 2: every accepted object accounted for exactly once.
    assert_eq!(report.total_objects(), out.submitted_ok.len());
    assert_eq!(out.submitted_counter, out.submitted_ok.len() as u64);
    assert_eq!(
        report.total_verified() + report.total_repaired() + report.total_lost(),
        report.total_objects()
    );
    // 3: pfs-classified objects reconcile with the durable counter. The
    // counter can exceed the classification only when a scheduled read
    // fault outlasted recovery's retries (the object then conservatively
    // reads as lost).
    let pfs_classified = (report.total_verified()
        + report.total_repaired()
        + report.total(ObjectStatus::LostCorrupt)) as u64;
    assert!(
        pfs_classified <= out.durable_counter,
        "recovery classified more durable objects ({pfs_classified}) than ever drained ({})",
        out.durable_counter
    );
    assert!(
        out.durable_counter - pfs_classified <= fault_count as u64,
        "durable counter {} vs pfs-classified {pfs_classified}: gap exceeds fault budget {fault_count}",
        out.durable_counter
    );
    // 1: the durable prefix restores bit-exact for every rank.
    for rr in &report.ranks {
        let r = rr.rank as usize;
        assert!(rr.prefix_len <= sched.ckpts as usize);
        // The recovered payloads are byte-identical to what was submitted…
        for (k, payload) in rr.payloads.iter().enumerate() {
            assert_eq!(
                payload, &sched.diffs[r][k],
                "rank {r} ckpt {k}: recovered payload differs from submitted bytes"
            );
        }
        if rr.prefix_len == 0 {
            continue;
        }
        // …and the diff chain replays to the exact original snapshots.
        let decoded: Vec<Diff> = rr
            .payloads
            .iter()
            .map(|b| Diff::decode(b).expect("verified payload must decode"))
            .collect();
        let versions = restore_record(&decoded).expect("durable prefix must replay");
        assert_eq!(versions.len(), rr.prefix_len);
        for (k, v) in versions.iter().enumerate() {
            assert_eq!(
                v, &sched.snapshots[r][k],
                "rank {r} version {k} not bit-exact after recovery"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline property: any schedule of submits, faults and a crash
    /// recovers to bit-exact durable prefixes with full accounting.
    #[test]
    fn randomized_crash_schedules_recover_bit_exact(
        ranks in 1u32..3,
        ckpts in 2u32..5,
        len in 256usize..1024,
        data_seed in any::<u64>(),
        method_idx in 0usize..3,
        fault_seed in any::<u64>(),
        fault_count in 0usize..10,
        kill_frac in 0u32..120,
    ) {
        let sched = Schedule::build(ranks, ckpts, len, data_seed, method_idx);
        let total = (ranks * ckpts) as usize;
        // kill point: anywhere in the schedule, or past the end (no crash
        // until everything settled).
        let kill_after = (kill_frac as usize * (total + 1)) / 120;
        let horizon = (total * 4) as u64;
        let plan = if fault_count == 0 {
            FaultPlan::empty()
        } else {
            FaultPlan::from_seed(fault_seed, fault_count, horizon)
        };
        let out = run_schedule(&sched, plan, kill_after);
        check_outcome(&sched, &out, fault_count);
    }

    /// Determinism: the same parameters replay to the identical recovery
    /// report and the identical fired-fault log. (Faults key on per-tier op
    /// ordinals, and each tier's op stream is single-threaded, so the whole
    /// schedule is a pure function of its parameters.)
    #[test]
    fn schedules_replay_identically(
        ckpts in 2u32..5,
        data_seed in any::<u64>(),
        fault_seed in any::<u64>(),
        fault_count in 1usize..8,
        kill_frac in 0u32..120,
    ) {
        let sched = Schedule::build(2, ckpts, 512, data_seed, 0);
        let total = (2 * ckpts) as usize;
        let kill_after = (kill_frac as usize * (total + 1)) / 120;
        let horizon = (total * 4) as u64;
        let mk = || FaultPlan::from_seed(fault_seed, fault_count, horizon);
        let a = run_schedule(&sched, mk(), kill_after);
        let b = run_schedule(&sched, mk(), kill_after);
        prop_assert_eq!(&a.fired, &b.fired);
        prop_assert_eq!(a.submitted_ok, b.submitted_ok);
        prop_assert_eq!(a.durable_counter, b.durable_counter);
        let statuses = |o: &RunOutcome| -> Vec<(u32, Vec<(u32, &'static str)>)> {
            o.report
                .ranks
                .iter()
                .map(|rr| {
                    (
                        rr.rank,
                        rr.objects.iter().map(|ob| (ob.ckpt_id, ob.status.name())).collect(),
                    )
                })
                .collect()
        };
        prop_assert_eq!(statuses(&a), statuses(&b));
    }
}

/// Invariant 4 as a fixed test: fault-free, crash-free schedules lose
/// nothing and restore every version bit-exact, for every method.
#[test]
fn fault_free_schedules_lose_nothing() {
    for method_idx in 0..3 {
        let sched = Schedule::build(2, 4, 700, 42 + method_idx as u64, method_idx);
        let out = run_schedule(&sched, FaultPlan::empty(), usize::MAX);
        assert_eq!(out.report.total_lost(), 0, "method {method_idx}");
        assert_eq!(out.report.total_verified(), 8, "method {method_idx}");
        assert_eq!(out.report.total_durable_prefix(), 8, "method {method_idx}");
        assert_eq!(out.durable_counter, 8);
        check_outcome(&sched, &out, 0);
    }
}

/// A crash anywhere in the chain-compaction window must leave a
/// restorable chain, for every method. The protocol under test: the
/// rebase record is submitted like any checkpoint, and garbage collection
/// below it may only run after it is durable. Three kill points:
///
/// * before the rebase record drained — the original chain restores;
/// * after it is durable but before GC — the full chain restores from 0
///   (the rebase record replays in place like any diff);
/// * after GC — the compacted chain restores from the rebase base.
#[test]
fn kill_in_the_compaction_window_keeps_a_restorable_chain() {
    use ckpt_dedup::restore::restore_record_from;
    use ckpt_runtime::compact_below;

    let rebase_at = 4u32;
    for method_idx in 0..3 {
        let sched = Schedule::build_with_rebase(
            1,
            6,
            700,
            7 + method_idx as u64,
            method_idx,
            Some(rebase_at),
        );
        let replay_against_truth = |rr: &ckpt_runtime::RankRecovery| {
            let decoded: Vec<Diff> = rr
                .payloads
                .iter()
                .map(|b| Diff::decode(b).expect("durable payload must decode"))
                .collect();
            let versions =
                restore_record_from(rr.base, &decoded).expect("usable chain must replay");
            for (i, v) in versions.iter().enumerate() {
                assert_eq!(
                    v,
                    &sched.snapshots[0][rr.base as usize + i],
                    "method {method_idx}: version {} not bit-exact",
                    rr.base as usize + i
                );
            }
            versions.len()
        };

        // Kill point 1: the rebase record was submitted but never drained
        // (no durability wait, flusher killed immediately). GC must not
        // have run, and the original prefix restores.
        {
            let rt = AsyncRuntime::with_tiers(TierChain::with_faults(FaultPlan::empty()));
            let pre: Vec<ObjectId> = (0..rebase_at).map(|k| (0, k)).collect();
            for k in 0..rebase_at {
                rt.submit(0, k, sched.diffs[0][k as usize].clone()).unwrap();
            }
            rt.wait_durable(&pre);
            rt.kill();
            let _ = rt.submit(0, rebase_at, sched.diffs[0][rebase_at as usize].clone());
            let report = rt.recover_report();
            let rr = &report.ranks[0];
            assert_eq!(rr.base, 0, "method {method_idx}");
            assert!(
                rr.prefix_len >= rebase_at as usize,
                "method {method_idx}: pre-rebase chain lost"
            );
            replay_against_truth(rr);
        }

        // Kill points 2 and 3: rebase durable; crash lands between the
        // rebase and the GC (2), then the GC runs on the recovered tiers
        // and the compacted chain must still restore (3).
        {
            let rt = AsyncRuntime::with_tiers(TierChain::with_faults(FaultPlan::empty()));
            let all: Vec<ObjectId> = (0..6).map(|k| (0, k)).collect();
            for k in 0..6u32 {
                rt.submit(0, k, sched.diffs[0][k as usize].clone()).unwrap();
            }
            rt.wait_durable(&all);
            rt.kill();

            let report = rt.recover_report();
            let rr = &report.ranks[0];
            assert_eq!((rr.base, rr.prefix_len), (0, 6), "method {method_idx}");
            assert_eq!(replay_against_truth(rr), 6);

            let evicted = compact_below(rt.tiers(), 0, rebase_at);
            assert!(evicted >= rebase_at as usize, "method {method_idx}");
            let report = rt.recover_report();
            let rr = &report.ranks[0];
            assert_eq!(
                (rr.base, rr.prefix_len),
                (rebase_at, 2),
                "method {method_idx}"
            );
            assert_eq!(replay_against_truth(rr), 2);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Compaction under randomized crash points: with a rebase record in
    /// the schedule and a kill landing anywhere (including between the
    /// rebase submit and the GC), whatever chain recovery reports usable
    /// replays bit-exact against the original snapshots from its base.
    #[test]
    fn randomized_compaction_crashes_keep_a_restorable_chain(
        ckpts in 4u32..7,
        rebase_frac in 0u32..100,
        len in 256usize..1024,
        data_seed in any::<u64>(),
        method_idx in 0usize..3,
        kill_frac in 0u32..120,
    ) {
        use ckpt_dedup::restore::restore_record_from;
        use ckpt_runtime::compact_below;

        let rebase_at = 1 + rebase_frac % (ckpts - 1);
        let sched =
            Schedule::build_with_rebase(1, ckpts, len, data_seed, method_idx, Some(rebase_at));
        let total = ckpts as usize;
        let kill_after = (kill_frac as usize * (total + 1)) / 120;
        let out = run_schedule(&sched, FaultPlan::empty(), kill_after);
        check_outcome(&sched, &out, 0);

        // GC below the rebase point if (and only if) it came back durable,
        // then re-check: the compacted chain must still replay bit-exact.
        let rt = AsyncRuntime::with_tiers(TierChain::with_faults(FaultPlan::empty()));
        for (k, bytes) in sched.diffs[0].iter().take(kill_after.min(total)).enumerate() {
            let _ = rt.submit(0, k as u32, bytes.clone());
        }
        let ids: Vec<ObjectId> = (0..kill_after.min(total) as u32).map(|k| (0, k)).collect();
        rt.wait_durable(&ids);
        rt.kill();
        let rebase_durable = out
            .report
            .ranks
            .first()
            .map(|rr| {
                rr.objects
                    .iter()
                    .any(|o| o.ckpt_id == rebase_at && o.status.is_durable())
            })
            .unwrap_or(false);
        if rebase_durable {
            compact_below(rt.tiers(), 0, rebase_at);
        }
        let report = rt.recover_report();
        if let Some(rr) = report.ranks.first() {
            let decoded: Vec<Diff> = rr
                .payloads
                .iter()
                .map(|b| Diff::decode(b).expect("durable payload must decode"))
                .collect();
            if !decoded.is_empty() {
                let versions =
                    restore_record_from(rr.base, &decoded).expect("usable chain must replay");
                for (i, v) in versions.iter().enumerate() {
                    prop_assert_eq!(v, &sched.snapshots[0][rr.base as usize + i]);
                }
            }
        }
    }
}

/// A crash landing inside the double-buffered submit window: checkpoints
/// are handed to a [`CheckpointPipeline`] whose produce closures hold live
/// device-arena leases and encode slowly (so the overlap window — one tail
/// in flight, one parked in the channel — is genuinely open when the kill
/// lands). Afterwards: no leased buffer may remain outstanding, every
/// handoff must be accounted exactly once, and whatever the runtime claims
/// durable must still replay bit-exact.
#[test]
fn kill_during_double_buffered_submit_leaks_nothing() {
    use ckpt_runtime::CheckpointPipeline;
    use std::time::Duration;

    for method_idx in 0..3 {
        let sched = Schedule::build(1, 4, 600, 99 + method_idx as u64, method_idx);
        let rt = Arc::new(AsyncRuntime::with_tiers(TierChain::with_faults(
            FaultPlan::empty(),
        )));
        let device = Device::a100();
        let pipe = CheckpointPipeline::new(Arc::clone(&rt));
        for k in 0..sched.ckpts {
            let bytes = sched.diffs[0][k as usize].clone();
            let lease = device
                .arena()
                .lease::<u8>("pipeline/encode_scratch", bytes.len().max(1));
            pipe.submit_with(
                0,
                k,
                Box::new(move || {
                    let _scratch = lease;
                    std::thread::sleep(Duration::from_millis(10));
                    bytes
                }),
            );
            if k == 1 {
                // Both buffer slots are (or were moments ago) occupied:
                // crash inside the overlap window.
                rt.kill();
            }
        }
        let stats = pipe.close();
        assert_eq!(
            stats.submitted + stats.aborted,
            sched.ckpts as u64,
            "method {method_idx}: every handoff accounted exactly once"
        );
        assert_eq!(
            device.arena().outstanding(),
            0,
            "method {method_idx}: a leased arena buffer leaked across the kill"
        );
        // Invariant 1 still holds: the durable prefix replays bit-exact.
        let report = rt.recover_report();
        for rr in &report.ranks {
            for (k, payload) in rr.payloads.iter().enumerate() {
                assert_eq!(
                    payload, &sched.diffs[0][k],
                    "method {method_idx} ckpt {k}: durable payload corrupted"
                );
            }
            if rr.prefix_len == 0 {
                continue;
            }
            let decoded: Vec<Diff> = rr
                .payloads
                .iter()
                .map(|b| Diff::decode(b).expect("verified payload must decode"))
                .collect();
            let versions = restore_record(&decoded).expect("durable prefix must replay");
            for (k, v) in versions.iter().enumerate() {
                assert_eq!(
                    v, &sched.snapshots[0][k],
                    "method {method_idx} version {k} not bit-exact after mid-overlap kill"
                );
            }
        }
    }
}

/// Restore-under-corruption, per method: the durable copy of checkpoint 2
/// is bit-flipped (its redundant copies already evicted), so recovery must
/// stop the prefix there — and versions 0–1 must still restore bit-exact.
#[test]
fn restore_under_corruption_per_method() {
    for method_idx in 0..3 {
        let sched = Schedule::build(1, 4, 600, 7 + method_idx as u64, method_idx);
        // pfs put ordinal k corresponds to ckpt k (single rank, in-order
        // drain): corrupt the third durable write.
        let plan = FaultPlan::builder()
            .on_put("pfs", 2, ckpt_runtime::FaultKind::BitFlip { bit: 12345 })
            .build();
        let out = run_schedule(&sched, plan, usize::MAX);
        let rr = &out.report.ranks[0];
        assert_eq!(
            rr.prefix_len, 2,
            "method {method_idx}: prefix must stop at the corrupt ckpt"
        );
        assert_eq!(out.report.total(ObjectStatus::LostCorrupt), 1);
        // ckpt 3 is durable and verified, but unusable without ckpt 2.
        assert_eq!(out.report.total_verified(), 3);
        check_outcome(&sched, &out, 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline property with flush-path compression on: any schedule
    /// of submits, faults and a crash still recovers to bit-exact durable
    /// prefixes with full accounting. Snapshots are large enough that full
    /// checkpoints clear the min-compress threshold, so the tiers really
    /// hold compressed objects.
    #[test]
    fn randomized_crash_schedules_recover_bit_exact_compressed(
        ckpts in 2u32..5,
        data_seed in any::<u64>(),
        method_idx in 0usize..3,
        fault_seed in any::<u64>(),
        fault_count in 0usize..10,
        kill_frac in 0u32..120,
        adaptive in any::<bool>(),
    ) {
        let policy = if adaptive {
            CompressionPolicy::Adaptive
        } else {
            CompressionPolicy::Fixed(6)
        };
        let sched = Schedule::build(2, ckpts, 4096, data_seed, method_idx);
        let total = (2 * ckpts) as usize;
        let kill_after = (kill_frac as usize * (total + 1)) / 120;
        let horizon = (total * 4) as u64;
        let plan = if fault_count == 0 {
            FaultPlan::empty()
        } else {
            FaultPlan::from_seed(fault_seed, fault_count, horizon)
        };
        let out = run_schedule_with_policy(&sched, plan, kill_after, policy);
        check_outcome(&sched, &out, fault_count);
    }
}

/// Fault-free, crash-free compressed schedules lose nothing, restore every
/// version bit-exact for every method × policy, and actually shrink the
/// durable tier versus the uncompressed run.
#[test]
fn fault_free_compressed_schedules_lose_nothing_and_shrink_the_pfs() {
    for method_idx in 0..3 {
        let sched = Schedule::build(2, 4, 8192, 42 + method_idx as u64, method_idx);
        let mut pfs_used = Vec::new();
        for policy in [
            CompressionPolicy::Off,
            CompressionPolicy::Fixed(6),
            CompressionPolicy::Adaptive,
        ] {
            let plan = FaultPlan::empty();
            let rt = AsyncRuntime::with_compression(
                TierChain::with_faults(Arc::clone(&plan)),
                0.0,
                Arc::new(Registry::new()),
                policy,
            );
            let mut ids = Vec::new();
            for k in 0..sched.ckpts {
                for r in 0..sched.ranks {
                    rt.submit(r, k, sched.diffs[r as usize][k as usize].clone())
                        .unwrap();
                    ids.push((r, k));
                }
            }
            rt.wait_durable(&ids);
            rt.kill();
            pfs_used.push(rt.tiers().pfs.used_bytes());
            let out = RunOutcome {
                report: rt.recover_report(),
                submitted_ok: ids,
                durable_counter: rt.telemetry().counter("runtime/durable").get(),
                submitted_counter: rt.telemetry().counter("runtime/submitted").get(),
                fired: plan.fired(),
            };
            assert!(out.fired.is_empty());
            assert_eq!(out.report.total_lost(), 0, "method {method_idx}");
            check_outcome(&sched, &out, 0);
        }
        // The compressed runs must store strictly fewer durable bytes
        // (snapshot bases are seeded-random, but each chain's full
        // checkpoint is dominated by compressible structure at len 8192
        // only for the dedup metadata — so require no inflation at least,
        // and strict shrink for the fixed-codec run on the Tree method).
        assert!(
            pfs_used[1] <= pfs_used[0] && pfs_used[2] <= pfs_used[0],
            "method {method_idx}: compression inflated the PFS: {pfs_used:?}"
        );
    }
}

/// Restore-under-corruption with compression on: a bit-flipped compressed
/// durable copy is detected by its (compressed-payload) checksum,
/// quarantined, and stops the prefix exactly like an uncompressed one.
#[test]
fn restore_under_corruption_per_method_compressed() {
    for method_idx in 0..3 {
        let sched = Schedule::build(1, 4, 4096, 7 + method_idx as u64, method_idx);
        let plan = FaultPlan::builder()
            .on_put("pfs", 2, ckpt_runtime::FaultKind::BitFlip { bit: 12345 })
            .build();
        let out = run_schedule_with_policy(&sched, plan, usize::MAX, CompressionPolicy::Adaptive);
        let rr = &out.report.ranks[0];
        assert_eq!(
            rr.prefix_len, 2,
            "method {method_idx}: prefix must stop at the corrupt compressed ckpt"
        );
        assert_eq!(out.report.total(ObjectStatus::LostCorrupt), 1);
        assert_eq!(out.report.total_verified(), 3);
        check_outcome(&sched, &out, 1);
    }
}
