//! Cluster failure schedules for cross-rank redundancy groups.
//!
//! Extends the crash-consistency harness with whole-rank node loss
//! ([`FaultKind::RankLoss`], drawn by [`FaultPlan::from_seed_clustered`])
//! over 4–8 rank clusters running partner-copy or XOR-parity redundancy.
//!
//! Invariants checked:
//!
//! 1. recovery never returns a wrong payload — every byte it hands back is
//!    identical to what was submitted (and replays to the fault-free
//!    snapshots), no matter which faults fired;
//! 2. ranks a `RankLoss` never hit are fully accounted, exactly as in the
//!    redundancy-off harness;
//! 3. a *fully* lost rank (host, SSD and PFS gone) restores its latest
//!    checkpoint from the group bit-identically to sequential fault-free
//!    replay — at 1, 2 and 8 pool threads, compression Off and Adaptive;
//! 4. two simultaneous losses inside one XOR group produce typed
//!    `LostCorrupt` outcomes, never a reconstructed-but-wrong payload.

use ckpt_dedup::prelude::*;
use ckpt_dedup::Diff;
use ckpt_runtime::tier::ObjectId;
use ckpt_runtime::{
    restore_rank_latest_parallel, AsyncRuntime, CompressionPolicy, FaultKind, FaultPlan,
    ObjectStatus, RankDedupConfig, RankDedupEngine, RankDedupMetrics, RedundancyPolicy, SplitMix64,
    TierChain,
};
use ckpt_telemetry::Registry;
use gpu_sim::Device;
use proptest::prelude::*;
use std::sync::Arc;

const CHUNK: usize = 64;

/// Deterministic per-rank snapshot sequence (same construction as the
/// crash-consistency harness, so ground truth is reproducible from the
/// parameters alone).
fn rank_snapshots(rank: u32, len: usize, data_seed: u64, count: usize) -> Vec<Vec<u8>> {
    let mut rng = SplitMix64::new(data_seed ^ (rank as u64).wrapping_mul(0x9e37_79b9));
    let mut data: Vec<u8> = (0..len).map(|_| (rng.next() & 0xff) as u8).collect();
    let mut out = vec![data.clone()];
    for _ in 1..count {
        let edits = 1 + (rng.next() % 24) as usize;
        for _ in 0..edits {
            let at = (rng.next() as usize) % len;
            data[at] = (rng.next() & 0xff) as u8;
        }
        out.push(data.clone());
    }
    out
}

struct Cluster {
    ranks: u32,
    ckpts: u32,
    snapshots: Vec<Vec<Vec<u8>>>,
    diffs: Vec<Vec<Vec<u8>>>,
}

impl Cluster {
    fn build(ranks: u32, ckpts: u32, len: usize, data_seed: u64) -> Cluster {
        let mut snapshots = Vec::new();
        let mut diffs = Vec::new();
        for r in 0..ranks {
            let snaps = rank_snapshots(r, len, data_seed, ckpts as usize);
            let mut ckpt = TreeCheckpointer::new(Device::a100(), TreeConfig::new(CHUNK));
            diffs.push(
                snaps
                    .iter()
                    .map(|s| ckpt.checkpoint(s).diff.encode())
                    .collect::<Vec<_>>(),
            );
            snapshots.push(snaps);
        }
        Cluster {
            ranks,
            ckpts,
            snapshots,
            diffs,
        }
    }

    fn ids(&self) -> Vec<ObjectId> {
        (0..self.ckpts)
            .flat_map(|k| (0..self.ranks).map(move |r| (r, k)))
            .collect()
    }
}

fn make_runtime(
    plan: Arc<FaultPlan>,
    compression: CompressionPolicy,
    redundancy: RedundancyPolicy,
) -> AsyncRuntime {
    AsyncRuntime::with_redundancy(
        TierChain::with_faults(plan),
        0.0,
        Arc::new(Registry::new()),
        compression,
        redundancy,
    )
}

/// Submit the whole cluster rank-interleaved with an optional mid-schedule
/// kill, then recover. Mirrors the crash-consistency harness driver.
fn run_cluster(
    sched: &Cluster,
    plan: Arc<FaultPlan>,
    kill_after: usize,
    compression: CompressionPolicy,
    redundancy: RedundancyPolicy,
) -> (ckpt_runtime::RecoveryReport, Vec<ObjectId>) {
    let rt = make_runtime(plan, compression, redundancy);
    let mut submitted_ok: Vec<ObjectId> = Vec::new();
    let mut n = 0usize;
    let mut killed = false;
    for k in 0..sched.ckpts {
        for r in 0..sched.ranks {
            if n == kill_after && !killed {
                rt.wait_durable(&submitted_ok);
                rt.kill();
                killed = true;
            }
            n += 1;
            if rt
                .submit(r, k, sched.diffs[r as usize][k as usize].clone())
                .is_ok()
            {
                submitted_ok.push((r, k));
            }
        }
    }
    if !killed {
        rt.wait_durable(&submitted_ok);
        rt.kill();
    }
    (rt.recover_report(), submitted_ok)
}

/// Invariant 1: whatever recovery reports is bit-identical to the
/// fault-free ground truth — payloads equal the submitted bytes and the
/// durable prefix replays to the original snapshots.
fn check_payloads_bit_identical(sched: &Cluster, report: &ckpt_runtime::RecoveryReport) {
    for rr in &report.ranks {
        let r = rr.rank as usize;
        for (i, payload) in rr.payloads.iter().enumerate() {
            let k = rr.base as usize + i;
            assert_eq!(
                payload, &sched.diffs[r][k],
                "rank {r} ckpt {k}: recovered payload differs from submitted bytes"
            );
        }
        if rr.prefix_len == 0 {
            continue;
        }
        let decoded: Vec<Diff> = rr
            .payloads
            .iter()
            .map(|b| Diff::decode(b).expect("recovered payload must decode"))
            .collect();
        let versions = restore_record(&decoded).expect("durable prefix must replay");
        for (i, v) in versions.iter().enumerate() {
            assert_eq!(
                v,
                &sched.snapshots[r][rr.base as usize + i],
                "rank {r} version {} not bit-exact to fault-free replay",
                rr.base as usize + i
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Seeded cluster failure schedules: submits × RankLoss/BitFlip/torn
    /// writes/kill over 4–8 ranks. Surviving ranks' durable prefixes stay
    /// bit-identical to fault-free replay and fully accounted; recovery
    /// never fabricates a payload for anyone.
    #[test]
    fn cluster_failure_schedules_recover_bit_exact(
        ranks in 4u32..9,
        ckpts in 2u32..4,
        len in 256usize..768,
        data_seed in any::<u64>(),
        fault_seed in any::<u64>(),
        fault_count in 0usize..12,
        kill_frac in 0u32..120,
        policy_idx in 0usize..3,
    ) {
        let redundancy = match policy_idx {
            0 => RedundancyPolicy::Off,
            1 => RedundancyPolicy::Partner,
            _ => RedundancyPolicy::Xor { group_size: 2 },
        };
        let sched = Cluster::build(ranks, ckpts, len, data_seed);
        let total = (ranks * ckpts) as usize;
        let kill_after = (kill_frac as usize * (total + 1)) / 120;
        let plan = if fault_count == 0 {
            FaultPlan::empty()
        } else {
            FaultPlan::from_seed_clustered(fault_seed, fault_count, (total * 4) as u64, ranks)
        };
        let (report, submitted_ok) =
            run_cluster(&sched, Arc::clone(&plan), kill_after, CompressionPolicy::Off, redundancy);

        check_payloads_bit_identical(&sched, &report);

        // Ranks an actually-fired RankLoss hit; everyone else must be
        // fully accounted exactly like the redundancy-off harness.
        let lost: std::collections::HashSet<u32> = plan
            .fired()
            .iter()
            .filter_map(|f| match f.kind {
                FaultKind::RankLoss { rank } => Some(rank),
                _ => None,
            })
            .collect();
        let mut surviving_submitted = 0usize;
        let mut surviving_reported = 0usize;
        for &(r, _) in &submitted_ok {
            if !lost.contains(&r) {
                surviving_submitted += 1;
            }
        }
        for rr in &report.ranks {
            if !lost.contains(&rr.rank) {
                surviving_reported += rr.objects.len();
            }
            for o in &rr.objects {
                if o.status == ObjectStatus::RestoredFromGroup {
                    prop_assert_ne!(
                        redundancy,
                        RedundancyPolicy::Off,
                        "group restore reported without a redundancy group"
                    );
                }
            }
        }
        prop_assert_eq!(
            surviving_reported, surviving_submitted,
            "surviving ranks must account every accepted object"
        );
        prop_assert!(report.total_objects() <= submitted_ok.len());
        if lost.is_empty() {
            prop_assert_eq!(report.total_objects(), submitted_ok.len());
        }
        if redundancy == RedundancyPolicy::Off {
            prop_assert_eq!(report.total_restored_from_group(), 0);
        }
    }

    /// Satellite differential: with redundancy Off, `recover_report()` is
    /// byte-for-byte identical (JSON rendering and all) to the baseline
    /// compression-eligible runtime on the crash-consistency schedules —
    /// the redundancy layer is invisible unless enabled.
    #[test]
    fn redundancy_off_is_byte_identical_to_baseline(
        ranks in 1u32..3,
        ckpts in 2u32..5,
        len in 256usize..1024,
        data_seed in any::<u64>(),
        fault_seed in any::<u64>(),
        fault_count in 0usize..10,
        kill_frac in 0u32..120,
        adaptive in any::<bool>(),
    ) {
        let compression = if adaptive {
            CompressionPolicy::Adaptive
        } else {
            CompressionPolicy::Off
        };
        let sched = Cluster::build(ranks, ckpts, len, data_seed);
        let total = (ranks * ckpts) as usize;
        let kill_after = (kill_frac as usize * (total + 1)) / 120;
        let horizon = (total * 4) as u64;
        let mk = || {
            if fault_count == 0 {
                FaultPlan::empty()
            } else {
                FaultPlan::from_seed(fault_seed, fault_count, horizon)
            }
        };

        // Baseline: the pre-redundancy constructor.
        let plan_a = mk();
        let rt = AsyncRuntime::with_compression(
            TierChain::with_faults(Arc::clone(&plan_a)),
            0.0,
            Arc::new(Registry::new()),
            compression,
        );
        let mut ok_a = Vec::new();
        for k in 0..sched.ckpts {
            for r in 0..sched.ranks {
                if (k * sched.ranks + r) as usize == kill_after {
                    rt.wait_durable(&ok_a);
                    rt.kill();
                }
                if rt.submit(r, k, sched.diffs[r as usize][k as usize].clone()).is_ok() {
                    ok_a.push((r, k));
                }
            }
        }
        rt.wait_durable(&ok_a);
        rt.kill();
        let base_json = rt.recover_report().to_json();
        let base_fired = plan_a.fired();

        // Same schedule through the redundancy-aware constructor, Off.
        let plan_b = mk();
        let rt = make_runtime(Arc::clone(&plan_b), compression, RedundancyPolicy::Off);
        let mut ok_b = Vec::new();
        for k in 0..sched.ckpts {
            for r in 0..sched.ranks {
                if (k * sched.ranks + r) as usize == kill_after {
                    rt.wait_durable(&ok_b);
                    rt.kill();
                }
                if rt.submit(r, k, sched.diffs[r as usize][k as usize].clone()).is_ok() {
                    ok_b.push((r, k));
                }
            }
        }
        rt.wait_durable(&ok_b);
        rt.kill();
        let off_json = rt.recover_report().to_json();

        prop_assert_eq!(base_fired, plan_b.fired(), "fault schedules diverged");
        prop_assert_eq!(ok_a, ok_b, "accepted-submission sets diverged");
        prop_assert_eq!(
            base_json, off_json,
            "redundancy Off changed the recovery report"
        );
    }
}

/// Acceptance criterion: a fully-lost rank (host, SSD *and* PFS wiped)
/// restores its latest checkpoint from the redundancy group bit-identically
/// to sequential fault-free replay — at 1, 2 and 8 pool threads, with
/// compression Off and Adaptive, under both partner and XOR policies.
#[test]
fn fully_lost_rank_restores_from_group_bit_identically() {
    let device = Device::a100();
    let sched = Cluster::build(4, 4, 4096, 2024);
    let lost = 2u32;
    let want = sched.snapshots[lost as usize].last().unwrap();
    for redundancy in [
        RedundancyPolicy::Partner,
        RedundancyPolicy::Xor { group_size: 4 },
    ] {
        for compression in [CompressionPolicy::Off, CompressionPolicy::Adaptive] {
            for threads in [1usize, 2, 8] {
                rayon::set_active_threads(threads);
                let rt = make_runtime(FaultPlan::empty(), compression, redundancy);
                let ids = sched.ids();
                for k in 0..sched.ckpts {
                    for r in 0..sched.ranks {
                        rt.submit(r, k, sched.diffs[r as usize][k as usize].clone())
                            .unwrap();
                    }
                }
                rt.wait_durable(&ids);
                rt.wait_redundancy_durable(&ids);
                rt.kill();

                // Node loss takes every local copy, durable tier included.
                rt.tiers().host.wipe_rank(lost);
                rt.tiers().ssd.wipe_rank(lost);
                rt.tiers().pfs.wipe_rank(lost);

                let out = restore_rank_latest_parallel(rt.tiers(), &device, lost, None)
                    .expect("lost rank must restore from its group");
                assert_eq!(out.version, sched.ckpts - 1);
                assert_eq!(
                    &out.data, want,
                    "{redundancy:?}/{compression:?}/{threads} threads: \
                     group restore not bit-identical to fault-free replay"
                );

                // The rebuild re-registers on the PFS and the recovery
                // report types it as group-restored.
                let report = rt.recover_report();
                let rr = report
                    .ranks
                    .iter()
                    .find(|rr| rr.rank == lost)
                    .expect("lost rank present in report");
                assert_eq!(rr.prefix_len, sched.ckpts as usize);
                assert!(rr.objects.iter().all(|o| o.status.is_durable()));
                check_payloads_bit_identical(&sched, &report);
            }
        }
    }
    rayon::set_active_threads(0);
}

/// Two simultaneous rank losses inside one XOR group: reconstruction is
/// impossible, and the report must say `LostCorrupt` for every affected
/// object — never a fabricated payload — while the other group's ranks
/// stay fully verified.
#[test]
fn xor_double_loss_is_typed_never_wrong() {
    let sched = Cluster::build(8, 3, 2048, 7);
    let rt = make_runtime(
        FaultPlan::empty(),
        CompressionPolicy::Off,
        RedundancyPolicy::Xor { group_size: 4 },
    );
    let ids = sched.ids();
    for k in 0..sched.ckpts {
        for r in 0..sched.ranks {
            rt.submit(r, k, sched.diffs[r as usize][k as usize].clone())
                .unwrap();
        }
    }
    rt.wait_durable(&ids);
    rt.wait_redundancy_durable(&ids);
    rt.kill();

    // Ranks 1 and 2 share XOR group 0; both go down completely, hosted
    // parity stripes included.
    let red = rt
        .tiers()
        .redundancy()
        .expect("redundancy attached")
        .clone();
    for lost in [1u32, 2] {
        rt.tiers().host.wipe_rank(lost);
        rt.tiers().ssd.wipe_rank(lost);
        rt.tiers().pfs.wipe_rank(lost);
        red.apply_rank_loss(lost);
    }

    let device = Device::a100();
    assert!(
        restore_rank_latest_parallel(rt.tiers(), &device, 1, None).is_err(),
        "a double loss must not restore"
    );

    let report = rt.recover_report();
    check_payloads_bit_identical(&sched, &report);
    for rr in &report.ranks {
        if rr.rank == 1 || rr.rank == 2 {
            assert_eq!(rr.prefix_len, 0, "rank {}: nothing usable remains", rr.rank);
            for o in &rr.objects {
                assert_eq!(
                    o.status,
                    ObjectStatus::LostCorrupt,
                    "rank {} ckpt {}: double loss must be typed, got {:?}",
                    rr.rank,
                    o.ckpt_id,
                    o.status
                );
            }
        } else {
            // Everyone else — including group 1 (ranks 4–7) — is intact.
            assert_eq!(rr.prefix_len, sched.ckpts as usize, "rank {}", rr.rank);
            assert!(rr
                .objects
                .iter()
                .all(|o| o.status == ObjectStatus::Verified));
        }
    }
}

/// Per-rank snapshots over one *shared* base buffer, so the cluster
/// dedup index has real cross-rank redundancy to find (version 0 is
/// identical on every rank, later versions drift by seeded edits).
fn shared_snapshots(ranks: u32, len: usize, data_seed: u64, count: usize) -> Vec<Vec<Vec<u8>>> {
    let mut rng = SplitMix64::new(data_seed);
    let base: Vec<u8> = (0..len).map(|_| (rng.next() & 0xff) as u8).collect();
    (0..ranks)
        .map(|r| {
            let mut rng = SplitMix64::new(data_seed ^ (r as u64 + 1).wrapping_mul(0x9e37_79b9));
            let mut data = base.clone();
            let mut out = vec![data.clone()];
            for _ in 1..count {
                for _ in 0..1 + (rng.next() % 16) as usize {
                    let at = (rng.next() as usize) % len;
                    data[at] = (rng.next() & 0xff) as u8;
                }
                out.push(data.clone());
            }
            out
        })
        .collect()
}

fn shared_cluster(ranks: u32, ckpts: u32, len: usize, data_seed: u64) -> Cluster {
    let snapshots = shared_snapshots(ranks, len, data_seed, ckpts as usize);
    let diffs = snapshots
        .iter()
        .map(|snaps| {
            let mut ckpt = TreeCheckpointer::new(Device::a100(), TreeConfig::new(CHUNK));
            snaps
                .iter()
                .map(|s| ckpt.checkpoint(s).diff.encode())
                .collect::<Vec<_>>()
        })
        .collect();
    Cluster {
        ranks,
        ckpts,
        snapshots,
        diffs,
    }
}

/// Faults fired against the claim exchange (`RankLoss` of a claimant,
/// transient drops, torn batches) orphan claims but never corrupt data:
/// every durable record still resolves to the original diff bytes, every
/// rank still restores bit-exact, and the dropped claims surface as typed
/// `rankdedup/orphans` — the chunks stay locally stored by their
/// claimant, never silently re-stored as someone else's.
#[test]
fn exchange_faults_orphan_claims_but_keep_prefixes_bit_exact() {
    let sched = shared_cluster(4, 3, 2048, 41);
    let plan = FaultPlan::builder()
        .on_put("exchange", 1, FaultKind::RankLoss { rank: 1 })
        .on_put("exchange", 2, FaultKind::TransientIo)
        .on_put("exchange", 4, FaultKind::TornWrite { keep_bytes: 7 })
        .build();
    let registry = Arc::new(Registry::new());
    let engine = RankDedupEngine::with_exchange(
        RankDedupConfig {
            ranks: sched.ranks,
            chunk_len: CHUNK,
        },
        RankDedupMetrics::bound(Arc::clone(&registry)),
        0xFEED,
        2,
        Some(Arc::clone(&plan)),
    );
    let rt = AsyncRuntime::with_rank_dedup(
        TierChain::new(),
        0.0,
        Arc::clone(&registry),
        CompressionPolicy::Adaptive,
        RedundancyPolicy::Xor { group_size: 4 },
        Some(engine),
    );
    let ids = sched.ids();
    for k in 0..sched.ckpts {
        for r in 0..sched.ranks {
            rt.submit(r, k, sched.diffs[r as usize][k as usize].clone())
                .unwrap();
        }
    }
    rt.wait_durable(&ids);
    rt.wait_redundancy_durable(&ids);
    rt.rank_dedup().unwrap().quiesce();

    let dropped = plan
        .fired()
        .iter()
        .filter(|f| {
            matches!(
                f.kind,
                FaultKind::RankLoss { .. } | FaultKind::TransientIo | FaultKind::TornWrite { .. }
            )
        })
        .count();
    assert!(dropped > 0, "the schedule must actually drop batches");
    assert!(
        registry.counter("rankdedup/orphans").get() > 0,
        "dropped claim batches must be typed as orphans"
    );

    // Durable prefixes resolve to the original diffs and replay bit-exact
    // despite the orphaned claims.
    let report = rt.recover_report();
    check_payloads_bit_identical(&sched, &report);
    for rr in &report.ranks {
        assert_eq!(rr.prefix_len, sched.ckpts as usize, "rank {}", rr.rank);
    }
    let device = Device::a100();
    for r in 0..sched.ranks {
        let out = restore_rank_latest_parallel(rt.tiers(), &device, r, None).unwrap();
        assert_eq!(&out.data, sched.snapshots[r as usize].last().unwrap());
    }
    rt.kill();
}

/// Killing the exchange mid-schedule (the claim stage crashes while
/// checkpoints keep coming) drops the queued batches as orphans; records
/// submitted after the kill keep their chunks local. Durable prefixes
/// stay bit-exact, and a full rank loss afterwards still restores every
/// survivor — including one whose records reference the lost claim
/// winner — through the parity group.
#[test]
fn exchange_kill_mid_schedule_keeps_durable_prefixes_bit_exact() {
    let sched = shared_cluster(4, 4, 2048, 43);
    let registry = Arc::new(Registry::new());
    let engine = RankDedupEngine::with_exchange(
        RankDedupConfig {
            ranks: sched.ranks,
            chunk_len: CHUNK,
        },
        RankDedupMetrics::bound(Arc::clone(&registry)),
        0xBEEF,
        3,
        None,
    );
    let rt = AsyncRuntime::with_rank_dedup(
        TierChain::new(),
        0.0,
        Arc::clone(&registry),
        CompressionPolicy::Off,
        RedundancyPolicy::Partner,
        Some(Arc::clone(&engine)),
    );
    let ids = sched.ids();
    for k in 0..sched.ckpts {
        // The exchange crashes between checkpoint rounds 1 and 2.
        if k == 2 {
            engine.kill();
        }
        for r in 0..sched.ranks {
            rt.submit(r, k, sched.diffs[r as usize][k as usize].clone())
                .unwrap();
        }
    }
    rt.wait_durable(&ids);
    rt.wait_redundancy_durable(&ids);
    assert!(
        registry.counter("rankdedup/orphans").get() > 0,
        "claims published into the dead exchange must be typed as orphans"
    );

    let report = rt.recover_report();
    check_payloads_bit_identical(&sched, &report);
    for rr in &report.ranks {
        assert_eq!(rr.prefix_len, sched.ckpts as usize, "rank {}", rr.rank);
    }

    // Rank 0 won the shared-base claims; lose it completely and restore a
    // surviving rank whose records reference it: the remotely-referenced
    // chunks must come back through the partner group before the replay.
    rt.tiers().host.wipe_rank(0);
    rt.tiers().ssd.wipe_rank(0);
    rt.tiers().pfs.wipe_rank(0);
    let device = Device::a100();
    for r in [2u32, 0] {
        let out = restore_rank_latest_parallel(rt.tiers(), &device, r, None)
            .expect("restore through the group");
        assert_eq!(
            &out.data,
            sched.snapshots[r as usize].last().unwrap(),
            "rank {r}: restore after claim-winner loss not bit-exact"
        );
    }
    rt.kill();
}

/// Satellite differential: with rank-dedup *absent* (engine `None`), the
/// rank-dedup-aware constructor produces a `recover_report()` whose JSON
/// is byte-for-byte the baseline redundancy runtime's on the same
/// schedules — the cluster index is invisible unless enabled.
#[test]
fn rank_dedup_off_report_json_identical_to_baseline() {
    for (data_seed, compression) in [
        (17u64, CompressionPolicy::Off),
        (18, CompressionPolicy::Adaptive),
    ] {
        let sched = Cluster::build(3, 3, 1024, data_seed);
        let run = |dedup_aware: bool| {
            let rt = if dedup_aware {
                AsyncRuntime::with_rank_dedup(
                    TierChain::new(),
                    0.0,
                    Arc::new(Registry::new()),
                    compression,
                    RedundancyPolicy::Off,
                    None,
                )
            } else {
                make_runtime(FaultPlan::empty(), compression, RedundancyPolicy::Off)
            };
            for k in 0..sched.ckpts {
                for r in 0..sched.ranks {
                    rt.submit(r, k, sched.diffs[r as usize][k as usize].clone())
                        .unwrap();
                }
            }
            rt.wait_durable(&sched.ids());
            rt.kill();
            rt.recover_report().to_json()
        };
        assert_eq!(
            run(false),
            run(true),
            "engine None changed the recovery report JSON"
        );
    }
}

/// A single loss in each of two *different* XOR groups is fine: both
/// ranks rebuild from their own group's survivors.
#[test]
fn one_loss_per_group_restores_both() {
    let sched = Cluster::build(8, 2, 1024, 11);
    let rt = make_runtime(
        FaultPlan::empty(),
        CompressionPolicy::Adaptive,
        RedundancyPolicy::Xor { group_size: 4 },
    );
    let ids = sched.ids();
    for k in 0..sched.ckpts {
        for r in 0..sched.ranks {
            rt.submit(r, k, sched.diffs[r as usize][k as usize].clone())
                .unwrap();
        }
    }
    rt.wait_durable(&ids);
    rt.wait_redundancy_durable(&ids);
    rt.kill();

    let red = rt
        .tiers()
        .redundancy()
        .expect("redundancy attached")
        .clone();
    for lost in [1u32, 6] {
        rt.tiers().host.wipe_rank(lost);
        rt.tiers().ssd.wipe_rank(lost);
        rt.tiers().pfs.wipe_rank(lost);
        red.apply_rank_loss(lost);
    }

    let device = Device::a100();
    for lost in [1u32, 6] {
        let out = restore_rank_latest_parallel(rt.tiers(), &device, lost, None)
            .expect("single loss per group must restore");
        assert_eq!(
            &out.data,
            sched.snapshots[lost as usize].last().unwrap(),
            "rank {lost}: group restore not bit-identical"
        );
    }
}
