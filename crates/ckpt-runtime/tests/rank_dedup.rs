//! Differential harness for the cluster-wide dedup index: every schedule
//! runs twice — once through the plain redundancy-aware runtime and once
//! with rank-dedup on (one shared inline claim index across the ranks) —
//! and every observable restore must be byte-equal between the two.
//!
//! Invariants checked:
//!
//! 1. rank-dedup ON restores byte-equal to OFF for every rank, across the
//!    Tree, List and Basic methods, compression Off and Adaptive, at 1, 2
//!    and 8 pool threads;
//! 2. the same holds across a mid-chain rebase followed by chain
//!    compaction (`compact_below`), where the GC floor must pin every
//!    remotely-referenced object the compacted rank still owes the
//!    cluster;
//! 3. recovery hands back the *original* diff bytes (resolution undoes
//!    the `CKPR` rewrite exactly), never a reference record or a wrong
//!    payload;
//! 4. the shared-working-set schedules really exercise the index: the
//!    cross-rank reference counter is non-zero and the durable tier holds
//!    fewer bytes with dedup on.

use ckpt_dedup::prelude::*;
use ckpt_runtime::tier::ObjectId;
use ckpt_runtime::{
    compact_below, restore_rank_latest_parallel, AsyncRuntime, CompressionPolicy, RankDedupConfig,
    RankDedupEngine, RankDedupMetrics, RedundancyPolicy, SplitMix64, TierChain,
};
use ckpt_telemetry::Registry;
use gpu_sim::Device;
use proptest::prelude::*;
use std::sync::Arc;

const CHUNK: usize = 64;

fn make_checkpointer(method_idx: usize) -> Box<dyn Checkpointer> {
    match method_idx {
        0 => Box::new(TreeCheckpointer::new(
            Device::a100(),
            TreeConfig::new(CHUNK),
        )),
        1 => Box::new(ListCheckpointer::new(
            Device::a100(),
            TreeConfig::new(CHUNK),
        )),
        _ => Box::new(BasicCheckpointer::new(Device::a100(), CHUNK)),
    }
}

/// Per-rank snapshot sequences over a *shared* base buffer: version 0 is
/// identical on every rank (the overlapping working set), later versions
/// drift apart through rank-seeded sparse edits. The first checkpoint of
/// every rank past the claim winner therefore dedups almost entirely into
/// cross-rank references.
fn cluster_snapshots(ranks: u32, len: usize, data_seed: u64, count: usize) -> Vec<Vec<Vec<u8>>> {
    let mut rng = SplitMix64::new(data_seed);
    let base: Vec<u8> = (0..len).map(|_| (rng.next() & 0xff) as u8).collect();
    (0..ranks)
        .map(|r| {
            let mut rng = SplitMix64::new(data_seed ^ (r as u64 + 1).wrapping_mul(0x9e37_79b9));
            let mut data = base.clone();
            let mut out = vec![data.clone()];
            for _ in 1..count {
                let edits = 1 + (rng.next() % 16) as usize;
                for _ in 0..edits {
                    let at = (rng.next() as usize) % len;
                    data[at] = (rng.next() & 0xff) as u8;
                }
                out.push(data.clone());
            }
            out
        })
        .collect()
}

struct Cluster {
    ranks: u32,
    ckpts: u32,
    snapshots: Vec<Vec<Vec<u8>>>,
    diffs: Vec<Vec<Vec<u8>>>,
}

impl Cluster {
    fn build(
        ranks: u32,
        ckpts: u32,
        len: usize,
        data_seed: u64,
        method_idx: usize,
        rebase_at: Option<u32>,
    ) -> Cluster {
        let snapshots = cluster_snapshots(ranks, len, data_seed, ckpts as usize);
        let diffs = snapshots
            .iter()
            .map(|snaps| {
                let mut ckpt = make_checkpointer(method_idx);
                snaps
                    .iter()
                    .enumerate()
                    .map(|(k, s)| {
                        if rebase_at == Some(k as u32) {
                            ckpt.rebase_checkpoint(s).diff.encode()
                        } else {
                            ckpt.checkpoint(s).diff.encode()
                        }
                    })
                    .collect()
            })
            .collect();
        Cluster {
            ranks,
            ckpts,
            snapshots,
            diffs,
        }
    }

    fn ids(&self) -> Vec<ObjectId> {
        (0..self.ckpts)
            .flat_map(|k| (0..self.ranks).map(move |r| (r, k)))
            .collect()
    }
}

/// Submit the whole cluster checkpoint-major into a fresh runtime — with
/// or without a shared inline rank-dedup engine — then optionally compact
/// every rank's chain below `rebase_at`.
fn run_cluster(
    sched: &Cluster,
    compression: CompressionPolicy,
    dedup: bool,
    registry: Arc<Registry>,
    compact_at: Option<u32>,
) -> AsyncRuntime {
    let engine = dedup.then(|| {
        RankDedupEngine::new(
            RankDedupConfig {
                ranks: sched.ranks,
                chunk_len: CHUNK,
            },
            RankDedupMetrics::bound(Arc::clone(&registry)),
        )
    });
    let rt = AsyncRuntime::with_rank_dedup(
        TierChain::new(),
        0.0,
        registry,
        compression,
        RedundancyPolicy::Off,
        engine,
    );
    for k in 0..sched.ckpts {
        for r in 0..sched.ranks {
            rt.submit(r, k, sched.diffs[r as usize][k as usize].clone())
                .unwrap();
        }
    }
    rt.wait_durable(&sched.ids());
    if let Some(at) = compact_at {
        for r in 0..sched.ranks {
            compact_below(rt.tiers(), r, at);
        }
    }
    rt
}

/// Restore every rank from both runtimes at the given thread count and
/// assert byte-equality — between the two runtimes and against the
/// fault-free ground truth.
fn check_restores_equal(sched: &Cluster, off: &AsyncRuntime, on: &AsyncRuntime, threads: usize) {
    let device = Device::a100();
    rayon::set_active_threads(threads);
    for r in 0..sched.ranks {
        let a =
            restore_rank_latest_parallel(off.tiers(), &device, r, None).expect("dedup-off restore");
        let b =
            restore_rank_latest_parallel(on.tiers(), &device, r, None).expect("dedup-on restore");
        assert_eq!(a.version, b.version, "rank {r}: versions diverged");
        assert_eq!(
            a.data, b.data,
            "rank {r} @ {threads} threads: dedup-on restore differs from off"
        );
        assert_eq!(
            &a.data,
            sched.snapshots[r as usize].last().unwrap(),
            "rank {r}: restore not bit-exact to ground truth"
        );
    }
    rayon::set_active_threads(0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The differential: rank-dedup ON restores byte-equal to OFF across
    /// Tree/List/Basic x Off/Adaptive x 1/2/8 threads, with and without a
    /// mid-chain rebase + compaction.
    #[test]
    fn rank_dedup_on_restores_byte_equal_to_off(
        ranks in 2u32..5,
        ckpts in 2u32..5,
        len in 512usize..1024,
        data_seed in any::<u64>(),
        method_idx in 0usize..3,
        adaptive in any::<bool>(),
        rebase in any::<bool>(),
    ) {
        let compression = if adaptive {
            CompressionPolicy::Adaptive
        } else {
            CompressionPolicy::Off
        };
        // A mid-chain rebase: the head is re-emitted self-contained and
        // everything below it garbage-collected on both runtimes.
        let rebase_at = rebase.then_some(ckpts / 2).filter(|&a| a > 0);
        let sched = Cluster::build(ranks, ckpts, len, data_seed, method_idx, rebase_at);

        let reg_on = Arc::new(Registry::new());
        let off = run_cluster(&sched, compression, false, Arc::new(Registry::new()), rebase_at);
        let on = run_cluster(&sched, compression, true, Arc::clone(&reg_on), rebase_at);

        for threads in [1usize, 2, 8] {
            check_restores_equal(&sched, &off, &on, threads);
        }

        // Version 0 is identical on every rank, so with >=2 ranks the
        // schedule must have exercised cross-rank references.
        prop_assert!(
            reg_on.counter("rankdedup/remote_refs").get() > 0,
            "shared-base schedule produced no cross-rank references"
        );

        // Recovery resolves every CKPR record back to the original diff
        // bytes. Without compaction the reports must match rank by rank;
        // after compaction the GC floor may legitimately keep a *longer*
        // durable prefix on the dedup side (pinned objects), so there the
        // check is per-report: every payload is the original diff.
        let rep_off = off.recover_report();
        let rep_on = on.recover_report();
        for (a, b) in rep_off.ranks.iter().zip(rep_on.ranks.iter()) {
            prop_assert_eq!(a.rank, b.rank);
            if rebase_at.is_none() {
                prop_assert_eq!(a.prefix_len, b.prefix_len, "rank {} prefix", a.rank);
                prop_assert_eq!(&a.payloads, &b.payloads, "rank {} payloads", a.rank);
            }
            for rr in [a, b] {
                for (i, p) in rr.payloads.iter().enumerate() {
                    let k = rr.base as usize + i;
                    prop_assert_eq!(
                        p, &sched.diffs[rr.rank as usize][k],
                        "rank {} ckpt {}: payload not the original diff", rr.rank, k
                    );
                }
            }
        }
        off.kill();
        on.kill();
    }
}

/// The canonical acceptance cell, deterministic: 4 ranks over one shared
/// working set, Tree method, adaptive compression. Rank-dedup must store
/// strictly fewer durable bytes than per-rank dedup alone while restoring
/// byte-equal at 1, 2 and 8 threads — including after the claim-winning
/// rank's chain is compacted under the GC floor.
#[test]
fn shared_working_set_stores_less_and_restores_equal() {
    // The head checkpoint is a rebase record so the chains can later be
    // compacted below it.
    let sched = Cluster::build(4, 3, 4096, 0xC0FFEE, 0, Some(2));
    let reg_on = Arc::new(Registry::new());
    let off = run_cluster(
        &sched,
        CompressionPolicy::Adaptive,
        false,
        Arc::new(Registry::new()),
        None,
    );
    let on = run_cluster(
        &sched,
        CompressionPolicy::Adaptive,
        true,
        Arc::clone(&reg_on),
        None,
    );

    let stored = |rt: &AsyncRuntime| -> u64 {
        sched
            .ids()
            .iter()
            .map(|&id| {
                rt.tiers()
                    .pfs
                    .inspect_object(id)
                    .into_object()
                    .expect("durable")
                    .stored_len()
            })
            .sum()
    };
    assert!(
        stored(&on) < stored(&off),
        "cluster dedup must store fewer durable bytes ({} vs {})",
        stored(&on),
        stored(&off)
    );
    assert!(reg_on.counter("rankdedup/remote_refs").get() > 0);

    for threads in [1usize, 2, 8] {
        check_restores_equal(&sched, &off, &on, threads);
    }

    // Compact the claim winner's chain below its head: the GC floor pins
    // what other ranks reference, so every restore still resolves.
    compact_below(on.tiers(), 0, sched.ckpts - 1);
    compact_below(off.tiers(), 0, sched.ckpts - 1);
    for threads in [1usize, 2, 8] {
        let device = Device::a100();
        rayon::set_active_threads(threads);
        for r in 0..sched.ranks {
            let b = restore_rank_latest_parallel(on.tiers(), &device, r, None)
                .expect("restore after compaction");
            assert_eq!(
                &b.data,
                sched.snapshots[r as usize].last().unwrap(),
                "rank {r}: post-compaction restore not bit-exact"
            );
        }
        rayon::set_active_threads(0);
    }
    off.kill();
    on.kill();
}

/// A dedup-off chain built through the rank-dedup constructor is
/// frame-for-frame what the plain constructor stores: `None` must be a
/// true no-op, not a third code path.
#[test]
fn disabled_engine_is_invisible() {
    let sched = Cluster::build(2, 2, 1024, 99, 0, None);
    let a = run_cluster(
        &sched,
        CompressionPolicy::Off,
        false,
        Arc::new(Registry::new()),
        None,
    );
    let b = AsyncRuntime::with_redundancy(
        TierChain::new(),
        0.0,
        Arc::new(Registry::new()),
        CompressionPolicy::Off,
        RedundancyPolicy::Off,
    );
    for k in 0..sched.ckpts {
        for r in 0..sched.ranks {
            b.submit(r, k, sched.diffs[r as usize][k as usize].clone())
                .unwrap();
        }
    }
    b.wait_durable(&sched.ids());
    for &id in &sched.ids() {
        let bytes = |rt: &AsyncRuntime| {
            rt.tiers()
                .pfs
                .inspect_object(id)
                .into_object()
                .expect("durable")
        };
        assert_eq!(bytes(&a), bytes(&b), "object {id:?} diverged");
    }
    a.kill();
    b.kill();
}
