//! Corruption matrix for the restart path: every record of a chain is
//! corrupted individually, and the parallel single-pass restore must
//! behave exactly like the sequential replay — falling back past corrupt
//! copies through [`TierChain::locate`], or surfacing the same typed hole
//! when a record's every copy is gone. Recovery reports must reconcile
//! with the `integrity/*` counters in each cell of the matrix.

use ckpt_dedup::prelude::*;
use ckpt_runtime::{
    restore_rank, restore_rank_latest, restore_rank_latest_parallel, FaultKind, FaultPlan,
    LineageError, TierChain,
};
use gpu_sim::Device;

const CHUNK: usize = 64;
const CKPTS: u32 = 5;

fn chain(rebase_at: Option<u32>) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let mut ckpt = TreeCheckpointer::new(Device::a100(), TreeConfig::new(CHUNK));
    let mut data: Vec<u8> = (0..6000u32).map(|i| ((i * 37) % 251) as u8).collect();
    let mut snaps = Vec::new();
    let mut encoded = Vec::new();
    for k in 0..CKPTS {
        if k > 0 {
            let len = data.len();
            for j in 0..48 {
                data[(k as usize * 769 + j * 31) % len] ^= 0x3c;
            }
        }
        snaps.push(data.clone());
        let out = if rebase_at == Some(k) {
            ckpt.rebase_checkpoint(&data)
        } else {
            ckpt.checkpoint(&data)
        };
        encoded.push(out.diff.encode());
    }
    (snaps, encoded)
}

/// Cell 1 of the matrix, for every record: the PFS copy is corrupt but a
/// valid host copy exists. Both engines must restore bit-exact (locate
/// skips, quarantines and repairs the corrupt copy), and the integrity
/// counters must record exactly one corruption and one repair.
#[test]
fn redundant_copy_corruption_is_transparent_for_every_record() {
    let (snaps, encoded) = chain(None);
    for victim in 0..CKPTS {
        let plan = FaultPlan::builder()
            .on_put("pfs", victim as u64, FaultKind::BitFlip { bit: 100 })
            .build();
        let tiers = TierChain::with_faults(plan);
        for (k, bytes) in encoded.iter().enumerate() {
            tiers.pfs.put((0, k as u32), bytes.clone()).unwrap();
            tiers.host.put((0, k as u32), bytes.clone()).unwrap();
        }
        let device = Device::a100();
        let par = restore_rank_latest_parallel(&tiers, &device, 0, None)
            .unwrap_or_else(|e| panic!("victim {victim}: parallel restore failed: {e}"));
        assert_eq!(par.version, CKPTS - 1, "victim {victim}");
        assert_eq!(&par.data, snaps.last().unwrap(), "victim {victim}");

        // The walk only touches records its resolution still needs, so the
        // corrupt copy is observed lazily; force full accounting and
        // reconcile with the counters.
        let (base, versions) = restore_rank(&tiers, 0).unwrap();
        assert_eq!(base, 0, "victim {victim}");
        assert_eq!(versions.len(), CKPTS as usize, "victim {victim}");
        for (k, v) in versions.iter().enumerate() {
            assert_eq!(v, &snaps[k], "victim {victim} version {k}");
        }
        assert_eq!(tiers.integrity().corrupt_count(), 1, "victim {victim}");
        assert_eq!(tiers.integrity().repaired_count(), 1, "victim {victim}");
        assert_eq!(
            tiers.pfs.quarantined(),
            vec![(0, victim)],
            "victim {victim}: corrupt copy quarantined (repair re-stages a fresh copy)"
        );
        let report = tiers.recover_report();
        assert_eq!(report.total_objects(), CKPTS as usize, "victim {victim}");
        assert_eq!(report.total_lost(), 0, "victim {victim}");
        assert_eq!(
            report.total_durable_prefix(),
            CKPTS as usize,
            "victim {victim}"
        );
    }
}

/// Cell 2: the record's *only* copy is corrupt (torn below the frame
/// minimum). A mid-chain victim is a typed hole for both engines; a
/// victim at the top of the chain just shortens it — both engines restore
/// the previous version. Reports and counters agree in every cell.
#[test]
fn sole_copy_corruption_matches_sequential_for_every_record() {
    let (snaps, encoded) = chain(None);
    for victim in 0..CKPTS {
        let plan = FaultPlan::builder()
            .on_put(
                "pfs",
                victim as u64,
                FaultKind::TornWrite { keep_bytes: 10 },
            )
            .build();
        let tiers = TierChain::with_faults(plan);
        for (k, bytes) in encoded.iter().enumerate() {
            tiers.pfs.put((0, k as u32), bytes.clone()).unwrap();
        }
        let device = Device::a100();
        let par = restore_rank_latest_parallel(&tiers, &device, 0, None);
        let seq = restore_rank_latest(&tiers, 0);
        if victim == CKPTS - 1 {
            // The newest record is gone; the chain just ends one earlier.
            let par = par.unwrap_or_else(|e| panic!("victim {victim}: {e}"));
            let (seq_last, seq_bytes) = seq.unwrap();
            assert_eq!((par.version, seq_last), (CKPTS - 2, CKPTS - 2));
            assert_eq!(par.data, seq_bytes);
            assert_eq!(&par.data, &snaps[victim as usize - 1]);
        } else {
            // A hole below surviving records: both engines refuse with the
            // same typed error rather than silently restoring stale state.
            for (name, err) in [
                ("parallel", par.map(|_| ()).unwrap_err()),
                ("sequential", seq.map(|_| ()).unwrap_err()),
            ] {
                match err {
                    LineageError::Hole {
                        rank: 0,
                        missing,
                        present_above,
                    } => {
                        assert_eq!(missing, victim, "{name} victim {victim}");
                        assert!(present_above > victim, "{name} victim {victim}");
                    }
                    other => panic!("{name} victim {victim}: expected hole, got {other:?}"),
                }
            }
        }
        assert_eq!(tiers.integrity().corrupt_count(), 1, "victim {victim}");
        assert_eq!(tiers.integrity().repaired_count(), 0, "victim {victim}");
        assert_eq!(
            tiers.pfs.quarantined(),
            vec![(0, victim)],
            "victim {victim}"
        );
        let report = tiers.recover_report();
        assert_eq!(report.total_objects(), CKPTS as usize, "victim {victim}");
        assert_eq!(report.total_lost(), 1, "victim {victim}");
    }
}

/// Cell 3: with a rebase record mid-chain, losing any sole copy *below*
/// the rebase point is harmless — the walk never needs it. Losing one at
/// or above the rebase point behaves like cell 2.
#[test]
fn rebase_point_shields_corruption_below_it() {
    let rebase_at = 2u32;
    let (snaps, encoded) = chain(Some(rebase_at));
    for victim in 0..CKPTS {
        let plan = FaultPlan::builder()
            .on_put(
                "pfs",
                victim as u64,
                FaultKind::TornWrite { keep_bytes: 10 },
            )
            .build();
        let tiers = TierChain::with_faults(plan);
        for (k, bytes) in encoded.iter().enumerate() {
            tiers.pfs.put((0, k as u32), bytes.clone()).unwrap();
        }
        let device = Device::a100();
        let par = restore_rank_latest_parallel(&tiers, &device, 0, None);
        match victim {
            v if v < rebase_at => {
                // The chain restores from the rebase record; the lost
                // record below it was already logically compacted away.
                let par = par.unwrap_or_else(|e| panic!("victim {victim}: {e}"));
                assert_eq!(par.version, CKPTS - 1);
                assert_eq!(&par.data, snaps.last().unwrap(), "victim {victim}");
                let (last, seq_bytes) = restore_rank_latest(&tiers, 0).unwrap();
                assert_eq!((last, &seq_bytes), (par.version, &par.data));
            }
            v if v == CKPTS - 1 => {
                let par = par.unwrap_or_else(|e| panic!("victim {victim}: {e}"));
                assert_eq!(par.version, CKPTS - 2);
                assert_eq!(&par.data, &snaps[victim as usize - 1], "victim {victim}");
            }
            _ => {
                assert!(
                    matches!(par, Err(LineageError::Hole { missing, .. }) if missing == victim),
                    "victim {victim}: expected hole"
                );
            }
        }
    }
}
